//! The Chute benchmark: granular flow down a 26° incline with frictional
//! contact history. Prints the developing downslope velocity profile.
//!
//! ```text
//! cargo run --release --example granular_chute
//! ```

use md_workloads::{build_deck, Benchmark};

fn main() -> Result<(), md_core::CoreError> {
    let mut deck = build_deck(Benchmark::Chute, 1, 1)?;
    println!("granular particles: {}", deck.simulation.atoms().len());
    println!("box: {}", deck.simulation.sim_box());

    // Let gravity act for a while.
    deck.simulation.run(400)?;

    // Velocity profile: mean downslope (x) velocity per height band.
    let atoms = deck.simulation.atoms();
    let mut bands: Vec<(f64, usize)> = vec![(0.0, 0); 10];
    for i in 0..atoms.len() {
        let z = atoms.x()[i].z;
        let band = ((z / 2.0) as usize).min(bands.len() - 1);
        bands[band].0 += atoms.v()[i].x;
        bands[band].1 += 1;
    }
    println!(
        "\ndownslope velocity profile after {} steps:",
        deck.simulation.step_index()
    );
    println!("{:>10}  {:>10}  {:>8}", "height", "mean v_x", "atoms");
    for (k, (vx, n)) in bands.iter().enumerate() {
        if *n > 0 {
            let mean = vx / *n as f64;
            println!(
                "{:>10}  {:>10.4}  {:>8}  {}",
                format!("{}-{}", 2 * k, 2 * (k + 1)),
                mean,
                n,
                ">".repeat((mean.abs() * 2000.0).min(40.0) as usize)
            );
        }
    }
    println!("\n(the frozen base layer stays at zero; upper layers shear downhill,");
    println!("which is the flowing-state imbalance the paper's Figure 4 reports)");
    Ok(())
}
