//! The paper's Section 8 experiment on the *real* engine: run the same LJ
//! melt with single, mixed, and double pair kernels and compare both the
//! wall-clock rate and the numerical drift they cause.
//!
//! ```text
//! cargo run --release --example precision_study
//! ```

use md_core::{PrecisionMode, Simulation, UnitSystem, Vec3};
use md_potentials::LjCut;
use md_workloads::lattice::{fcc, fcc_lattice_constant};

fn build(mode: PrecisionMode) -> Result<Simulation, md_core::CoreError> {
    let (bx, x) = fcc(14, 14, 14, fcc_lattice_constant(0.8442));
    let mut atoms = md_core::AtomStore::with_capacity(x.len());
    for p in x {
        atoms.push(p, Vec3::zero(), 0);
    }
    atoms.set_masses(vec![1.0]);
    md_core::compute::seed_velocities(&mut atoms, &UnitSystem::lj(), 1.44, 11);
    let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5)?;
    md_core::PairStyle::set_precision(&mut lj, mode);
    Simulation::builder(bx, atoms, UnitSystem::lj())
        .pair(Box::new(lj))
        .skin(0.3)
        .dt(0.005)
        .build()
}

fn main() -> Result<(), md_core::CoreError> {
    println!(
        "LJ melt, {} atoms, 100 NVE steps per mode:\n",
        4 * 14 * 14 * 14
    );
    println!(
        "{:>8}  {:>10}  {:>14}  {:>14}",
        "mode", "TS/s", "final energy", "drift vs f64"
    );
    // Double-precision run is the numerical reference.
    let mut reference = build(PrecisionMode::Double)?;
    reference.run(100)?;
    let e_ref = reference.thermo().total_energy();
    for mode in PrecisionMode::ALL {
        let mut sim = build(mode)?;
        let report = sim.run(100)?;
        let e = sim.thermo().total_energy();
        println!(
            "{:>8}  {:>10.1}  {:>14.4}  {:>14.3e}",
            mode.label(),
            report.ts_per_sec,
            e,
            ((e - e_ref) / e_ref).abs()
        );
    }
    println!("\nsingle/mixed kernels really do run in f32: the trajectory");
    println!("diverges from the f64 reference at the 1e-6..1e-4 level while");
    println!("the physics (bound melt, conserved energy scale) is unchanged.");
    println!("\nnote on speed: this scalar engine pays f64->f32 casts per pair,");
    println!("so f32 may not win wall-clock here; the vectorized kernels of the");
    println!("paper's platforms profit from the narrower type, which is what the");
    println!("calibrated models show in Figures 15-16.");
    Ok(())
}
