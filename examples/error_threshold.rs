//! The paper's Section 7 experiment in miniature, on the *real* engine:
//! tighten the PPPM relative force-error threshold and watch the mesh, the
//! k-space runtime share, and the actual force accuracy respond.
//!
//! ```text
//! cargo run --release --example error_threshold
//! ```

use md_core::{KspaceStyle, SimBox, TaskKind, Vec3, V3};
use md_kspace::{Ewald, Pppm};
use md_workloads::rhodo;

fn main() -> Result<(), md_core::CoreError> {
    // Part 1: force accuracy against an Ewald reference on a small charged
    // system — the threshold is a *real* knob, not a label.
    println!("PPPM force error vs Ewald reference (240 random charges):");
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    let l = 16.0;
    let bx = SimBox::cubic(l);
    let x: Vec<V3> = (0..240)
        .map(|_| {
            Vec3::new(
                rng.gen::<f64>() * l,
                rng.gen::<f64>() * l,
                rng.gen::<f64>() * l,
            )
        })
        .collect();
    let q: Vec<f64> = (0..240)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    // Total Coulomb force = reciprocal part (solver) + real-space erfc part
    // (normally the pair style); each solver picks its own splitting g, so
    // only the *total* is comparable across solvers.
    let real_space_forces = |g: f64| -> Vec<V3> {
        let mut f = vec![Vec3::zero(); x.len()];
        let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
        for i in 0..x.len() {
            for j in (i + 1)..x.len() {
                let d = bx.min_image(x[i], x[j]);
                let r2 = d.norm2();
                if r2 < 7.9 * 7.9 {
                    let r = r2.sqrt();
                    let gr = g * r;
                    let qq = q[i] * q[j];
                    let fpair = qq
                        * (md_core::math::erfc(gr) / r
                            + two_over_sqrt_pi * gr * (-gr * gr).exp() / r)
                        / r2;
                    f[i] += d * fpair;
                    f[j] -= d * fpair;
                }
            }
        }
        f
    };
    let mut reference = Ewald::new(7.9, 1e-7);
    reference.setup(&bx, &q)?;
    let mut f_ref = vec![Vec3::zero(); x.len()];
    reference.compute(&bx, &x, &q, &mut f_ref);
    for (fi, ri) in f_ref.iter_mut().zip(real_space_forces(reference.g_ewald())) {
        *fi += ri;
    }
    let rms_ref = (f_ref.iter().map(|v| v.norm2()).sum::<f64>() / x.len() as f64).sqrt();
    println!("{:>10}  {:>14}  {:>12}", "threshold", "mesh", "rel. error");
    for err in [1e-3, 1e-4, 1e-5, 1e-6] {
        let mut pppm = Pppm::new(7.9, err, 5);
        pppm.setup(&bx, &q)?;
        let mut f = vec![Vec3::zero(); x.len()];
        pppm.compute(&bx, &x, &q, &mut f);
        for (fi, ri) in f.iter_mut().zip(real_space_forces(pppm.g_ewald())) {
            *fi += ri;
        }
        let rms_err = (f
            .iter()
            .zip(&f_ref)
            .map(|(a, b)| (*a - *b).norm2())
            .sum::<f64>()
            / x.len() as f64)
            .sqrt()
            / rms_ref;
        let g = pppm.grid();
        println!(
            "{err:>10.0e}  {:>4}x{:<4}x{:<4}  {rms_err:>12.2e}",
            g[0], g[1], g[2]
        );
    }

    // Part 2: the rhodo-class deck at two thresholds — the k-space share of
    // the real per-step wall time grows exactly as the paper's Fig. 11 shows.
    println!("\nrhodo-class deck (32k atoms), real engine, 4 steps each:");
    for err in [1e-4, 1e-6] {
        let mut sim = rhodo::build_with_error(1, 9, err)?;
        sim.run(4)?;
        let ledger = sim.ledger();
        let mesh = sim.kspace_stats().map_or(0, |s| s.grid_points);
        println!(
            "  threshold {err:>6.0e}: Kspace {:>5.1}%  Pair {:>5.1}%  ({mesh} mesh points)",
            ledger.percent(TaskKind::Kspace),
            ledger.percent(TaskKind::Pair),
        );
    }
    println!("\n(the full-scale sweep is Figure 10-14: `figures fig10 fig11 fig13`)");
    Ok(())
}
