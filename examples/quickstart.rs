//! Quickstart: build a Lennard-Jones melt, run it, and read the
//! LAMMPS-style task breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use md_core::{Simulation, TaskKind};
use md_potentials::LjCut;
use md_workloads::lattice::{fcc, fcc_lattice_constant};

fn main() -> Result<(), md_core::CoreError> {
    // 4000 atoms on an fcc lattice at the classic reduced density 0.8442.
    let (bx, x) = fcc(10, 10, 10, fcc_lattice_constant(0.8442));
    let mut atoms = md_core::AtomStore::with_capacity(x.len());
    for p in x {
        atoms.push(p, md_core::Vec3::zero(), 0);
    }
    atoms.set_masses(vec![1.0]);
    md_core::compute::seed_velocities(&mut atoms, &md_core::UnitSystem::lj(), 1.44, 42);

    let mut sim = Simulation::builder(bx, atoms, md_core::UnitSystem::lj())
        .pair(Box::new(LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5)?))
        .skin(0.3)
        .dt(0.005)
        .thermo_every(50)
        .build()?;

    println!("initial: {}", sim.thermo());
    let report = sim.run(200)?;
    println!("final:   {}", sim.thermo());
    println!();
    println!(
        "{} steps in {:.3} s  ->  {:.1} timesteps/s",
        report.steps, report.wall_seconds, report.ts_per_sec
    );
    println!("neighbor rebuilds: {}", report.neighbor_builds);
    println!();
    println!("task breakdown (paper Table 1 taxonomy):");
    for task in TaskKind::ALL {
        let pct = report.ledger.percent(task);
        if pct > 0.05 {
            println!(
                "  {:<8} {:>5.1}%  {}",
                task.label(),
                pct,
                "#".repeat((pct / 2.0) as usize)
            );
        }
    }
    Ok(())
}
