//! The Rhodopsin-class deck: CHARMM-style pair forces, PPPM long-range
//! electrostatics, SHAKE-constrained waters, Nose-Hoover NPT.
//!
//! ```text
//! cargo run --release --example rhodopsin_npt
//! ```

use md_core::TaskKind;
use md_workloads::{build_deck, Benchmark};

fn main() -> Result<(), md_core::CoreError> {
    let mut deck = build_deck(Benchmark::Rhodo, 1, 9)?;
    let sim = &deck.simulation;
    println!("atoms: {}", sim.atoms().len());
    println!(
        "topology: {} bonds, {} angles, {} dihedrals",
        sim.atoms().bonds().len(),
        sim.atoms().angles().len(),
        sim.atoms().dihedrals().len()
    );
    println!("box: {}", sim.sim_box());
    println!(
        "neighbors/atom within cutoff: {:.0} (paper Table 2: 440)",
        sim.neighbor_list()
            .expect("pair style")
            .stats()
            .neighbors_within_cutoff
    );

    println!("\nrunning 10 NPT steps with SHAKE + PPPM (this exercises the");
    println!("slowest per-step path of the whole suite)...\n");
    for _ in 0..5 {
        deck.simulation.run(2)?;
        let t = deck.simulation.thermo();
        println!("{t}");
    }

    let ledger = deck.simulation.ledger();
    println!("\ntask shares:");
    for task in TaskKind::ALL {
        let pct = ledger.percent(task);
        if pct > 0.5 {
            println!("  {:<8} {:>5.1}%", task.label(), pct);
        }
    }
    println!(
        "\nkspace active: reciprocal Coulomb energy {:.1} kcal/mol",
        deck.simulation.energy().ecoul
    );
    Ok(())
}
