//! The LJ benchmark deck end-to-end: energy conservation, melt diagnostics,
//! and the Table-2 neighbor statistics of a 32k-atom run.
//!
//! ```text
//! cargo run --release --example lj_melt
//! ```

use md_workloads::{build_deck, Benchmark};

fn main() -> Result<(), md_core::CoreError> {
    let mut deck = build_deck(Benchmark::Lj, 1, 7)?;
    println!("deck: {:?}", deck);
    println!("box:  {}", deck.simulation.sim_box());
    let nl = deck.simulation.neighbor_list().expect("pair style present");
    println!(
        "neighbors/atom: {:.1} stored, {:.1} within cutoff (paper Table 2: {})",
        nl.stats().neighbors_per_atom,
        nl.stats().neighbors_within_cutoff,
        deck.info.neighbors_per_atom,
    );

    let e0 = deck.simulation.thermo();
    println!("\n{:>6}  {}", "step", e0);
    for _ in 0..5 {
        deck.simulation.run(20)?;
        let t = deck.simulation.thermo();
        println!("{:>6}  {}", deck.simulation.step_index(), t);
    }
    let e1 = deck.simulation.thermo();
    let drift = ((e1.total_energy() - e0.total_energy()) / e0.total_energy()).abs();
    println!("\nrelative energy drift over 100 NVE steps: {drift:.2e}");
    println!("ledger: {}", deck.simulation.ledger());
    Ok(())
}
