//! Capacity planner: use the calibrated instance models to pick the best
//! platform configuration for a target experiment — the practical payoff of
//! the paper's characterization.
//!
//! ```text
//! cargo run --release --example capacity_planner [benchmark] [size-scale]
//! ```

use md_harness::{ExperimentContext, Fidelity};
use md_workloads::{size_label, Benchmark};

fn main() -> Result<(), md_core::CoreError> {
    let mut args = std::env::args().skip(1);
    let bench = args
        .next()
        .map(|s| Benchmark::parse(&s))
        .transpose()?
        .unwrap_or(Benchmark::Lj);
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let ctx = ExperimentContext::new(Fidelity::Full);
    println!(
        "planning {} at {}k atoms on the paper's two instances...\n",
        bench,
        size_label(scale)
    );

    println!("CPU instance (dual Xeon 8358):");
    println!(
        "{:>6}  {:>10}  {:>8}  {:>10}",
        "ranks", "TS/s", "watts", "TS/s/W"
    );
    let mut best_cpu = (0usize, 0.0f64);
    for p in [1usize, 2, 4, 8, 16, 32, 64] {
        let r = ctx.cpu_run(bench, scale, p)?;
        if r.ts_per_sec > best_cpu.1 {
            best_cpu = (p, r.ts_per_sec);
        }
        println!(
            "{:>6}  {:>10.1}  {:>8.0}  {:>10.3}",
            p, r.ts_per_sec, r.watts, r.ts_per_sec_per_watt
        );
    }

    if bench.gpu_supported() {
        println!("\nGPU instance (8x V100):");
        println!(
            "{:>6}  {:>10}  {:>8}  {:>10}  {:>8}",
            "gpus", "TS/s", "watts", "TS/s/W", "util%"
        );
        let mut best_gpu = (0usize, 0.0f64);
        for g in [1usize, 2, 4, 6, 8] {
            let r = ctx.gpu_run(bench, scale, g)?;
            if r.ts_per_sec > best_gpu.1 {
                best_gpu = (g, r.ts_per_sec);
            }
            println!(
                "{:>6}  {:>10.1}  {:>8.0}  {:>10.3}  {:>8.1}",
                g,
                r.ts_per_sec,
                r.watts,
                r.ts_per_sec_per_watt,
                100.0 * r.device_utilization
            );
        }
        println!(
            "\nbest: CPU {} ranks at {:.1} TS/s vs GPU {} devices at {:.1} TS/s",
            best_cpu.0, best_cpu.1, best_gpu.0, best_gpu.1
        );
    } else {
        println!("\n(the reference GPU package cannot run {bench}; CPU only)");
        println!("best: {} ranks at {:.1} TS/s", best_cpu.0, best_cpu.1);
    }
    Ok(())
}
