//! GPU-model lane attribution: the paper's headline GPU findings (Figs.
//! 7–9) as executable tests over the traced offload schedule.
//!
//! - device-lane spans round-trip through the Chrome trace exporter
//!   bit-identically (at the exporter's fixed microsecond precision);
//! - the LJ deck on the 1-GPU model is memcpy-bound (>50% of active
//!   device time is PCIe copies), while EAM keeps a larger kernel share
//!   with its pair work split across `k_eam_fast`/`k_energy_fast`
//!   (Fig. 8's kernel-vs-memcpy view);
//! - the host↔device critical path names the PCIe copy class as the
//!   bounding segment of LJ steps (the mechanism behind Fig. 9's poor
//!   multi-GPU scaling);
//! - the `run_deck --gpu-insight` CLI surfaces all of it: ranked finding,
//!   device lanes in the trace file, PCIe counters in the OpenMetrics
//!   export.

use md_insight::{BoundSegment, DeviceCriticalPath, GpuAttribution};
use md_model::{
    GpuModel, GpuRunOptions, GpuTracedRun, KernelKind, WorkloadProfile, DEVICE_LANE_BASE,
    GPU_HOST_LANE,
};
use md_observe::{chrome_trace_json, Json, ObserveConfig, Phase, Recorder};
use md_workloads::{build_positions, Benchmark};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;

const SIM_STEPS: u64 = 12;

fn traced(bench: Benchmark, gpus: usize, recorder: Option<&Recorder>) -> GpuTracedRun {
    let profile = WorkloadProfile::measure(bench, 40, 1).expect("profile");
    let (bx, x) = build_positions(bench, 1, 1).expect("positions");
    let mut model = GpuModel::new();
    if let Some(rec) = recorder {
        model.set_recorder(rec.clone());
    }
    model
        .simulate_traced(
            &profile,
            &bx,
            &x,
            &GpuRunOptions {
                gpus,
                precision: md_core::PrecisionMode::Mixed,
            },
            SIM_STEPS,
        )
        .expect("traced run")
}

/// The LJ 1-GPU run is shared by several tests; the model is deterministic,
/// so computing it once is safe.
fn lj_run() -> &'static GpuTracedRun {
    static RUN: OnceLock<GpuTracedRun> = OnceLock::new();
    RUN.get_or_init(|| traced(Benchmark::Lj, 1, None))
}

/// The trace exporter prints timestamps/durations as `{:.3}` µs; an event
/// round-trips bit-identically iff the parsed value equals the formatted
/// one re-parsed.
fn at_export_precision(us: f64) -> u64 {
    format!("{us:.3}")
        .parse::<f64>()
        .expect("exporter text parses")
        .to_bits()
}

#[test]
fn device_lane_spans_round_trip_bit_identically_through_the_trace_exporter() {
    let rec = Recorder::new(ObserveConfig {
        enabled: true,
        ..ObserveConfig::default()
    });
    let run = traced(Benchmark::Lj, 2, Some(&rec));
    let total_segments: usize = run.timeline.steps.iter().map(|s| s.segments.len()).sum();
    assert!(total_segments > 0, "traced run schedules device work");

    // Expected spans: every device-lane event in the snapshot, keyed at
    // the exporter's fixed precision.
    let snap = rec.snapshot();
    let mut expected: Vec<(u32, &str, u64, u64)> = snap
        .events
        .iter()
        .filter(|e| e.lane >= GPU_HOST_LANE && e.phase == Phase::Span)
        .map(|e| {
            (
                e.lane,
                e.name,
                at_export_precision(e.ts_us),
                at_export_precision(e.dur_us),
            )
        })
        .collect();
    assert_eq!(
        expected
            .iter()
            .filter(|(lane, ..)| *lane >= DEVICE_LANE_BASE)
            .count(),
        total_segments,
        "one span per scheduled device op"
    );

    let doc = chrome_trace_json(&rec);
    let json = Json::parse(&doc).expect("exporter emits valid JSON");
    let events = json
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");

    // Device lanes are named for Perfetto.
    let lane_names: Vec<String> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_owned))
        .collect();
    for name in ["gpu host", "gpu 0", "gpu 1"] {
        assert!(
            lane_names.iter().any(|n| n == name),
            "missing lane {name:?} in {lane_names:?}"
        );
    }

    // Parse every device-lane span back and compare the multisets bitwise.
    let mut parsed: Vec<(u32, &str, u64, u64)> = Vec::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let lane = e.get("tid").and_then(Json::as_f64).expect("tid") as u32;
        if lane < GPU_HOST_LANE {
            continue;
        }
        let name = e.get("name").and_then(Json::as_str).expect("name");
        let name = KernelKind::ALL
            .iter()
            .map(|k| k.label())
            .chain(["host"])
            .find(|l| *l == name)
            .expect("device span names come from the kernel vocabulary");
        let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
        let dur = e.get("dur").and_then(Json::as_f64).expect("dur");
        parsed.push((lane, name, ts.to_bits(), dur.to_bits()));
    }
    expected.sort_unstable();
    parsed.sort_unstable();
    assert_eq!(
        parsed, expected,
        "device-lane spans round-trip bit-identically"
    );
}

#[test]
fn lj_deck_on_one_gpu_is_memcpy_bound() {
    let attr = GpuAttribution::from_timeline(&lj_run().timeline);
    assert_eq!(attr.devices.len(), 1);
    assert_eq!(attr.steps, SIM_STEPS as usize);
    let d = &attr.devices[0];
    // The paper's Fig. 8 finding: PCIe copies dominate active device time
    // for the small LJ deck (modeled: ~86%).
    assert!(
        d.memcpy_percent_of_active > 50.0,
        "LJ on 1 GPU must be memcpy-bound, got {:.1}%",
        d.memcpy_percent_of_active
    );
    assert!(attr.mean_memcpy_percent > 50.0);
    assert!(d.htod_bytes_per_step > 0.0 && d.dtoh_bytes_per_step > 0.0);
    // Shares decompose: kernel + memcpy covers active time.
    assert!((d.memcpy_percent_of_active + d.kernel_percent_of_active - 100.0).abs() < 1e-9);
    assert!((d.active_seconds - (d.kernel_seconds + d.memcpy_seconds)).abs() < 1e-12);
}

#[test]
fn eam_stays_kernel_bound_relative_to_lj() {
    let eam = traced(Benchmark::Eam, 1, None);
    let lj = lj_run();
    let eam_attr = GpuAttribution::from_timeline(&eam.timeline);
    let lj_attr = GpuAttribution::from_timeline(&lj.timeline);
    // The PCIe latency term dominates every small deck in absolute terms
    // (as in the paper's Fig. 8, where memcpy leads everywhere); "EAM
    // stays kernel-bound" is relative: its split pair kernels keep a
    // larger kernel share than LJ's single k_lj_fast.
    assert!(
        eam_attr.devices[0].kernel_percent_of_active > lj_attr.devices[0].kernel_percent_of_active,
        "EAM kernel share {:.1}% must exceed LJ's {:.1}%",
        eam_attr.devices[0].kernel_percent_of_active,
        lj_attr.devices[0].kernel_percent_of_active
    );
    // Fig. 8's EAM signature: the pair work splits across k_eam_fast +
    // k_energy_fast, together the largest compute contributor ...
    let pair = eam.result.kernels.seconds(KernelKind::KEamFast)
        + eam.result.kernels.seconds(KernelKind::KEnergyFast);
    for (kind, seconds) in eam.result.kernels.iter() {
        if !kind.is_memcpy() && kind != KernelKind::KEamFast && kind != KernelKind::KEnergyFast {
            assert!(
                pair > seconds,
                "EAM pair kernels ({:.1} us) must outweigh {} ({:.1} us)",
                pair * 1e6,
                kind.label(),
                seconds * 1e6
            );
        }
    }
    // ... and heavier than LJ's pair kernel on the same deck size.
    let lj_pair = lj.result.kernels.seconds(KernelKind::KLjFast);
    assert!(
        pair > lj_pair,
        "EAM pair work {pair} must exceed LJ's {lj_pair}"
    );
}

#[test]
fn host_device_critical_path_is_copy_bounded_for_lj() {
    let cp = DeviceCriticalPath::from_timeline(&lj_run().timeline);
    assert_eq!(cp.steps.len(), SIM_STEPS as usize);
    // The acceptance criterion: at least one LJ step is bounded by the
    // device copy (modeled: all of them).
    assert!(cp.copy_bound_steps >= 1, "no copy-bound step found");
    assert_eq!(cp.dominant, Some(BoundSegment::Copy));
    let first = &cp.steps[0];
    assert_eq!(first.bound, BoundSegment::Copy);
    assert!(first.kind.expect("bounding op").is_memcpy());
    assert!(
        first.seconds >= first.host_seconds,
        "copy class outweighs the host segment"
    );
    assert!(first.device_seconds > first.host_seconds);
    // Totals are consistent and the render names the finding.
    assert_eq!(
        cp.host_bound_steps + cp.copy_bound_steps + cp.kernel_bound_steps,
        SIM_STEPS
    );
    assert!(cp.total_seconds > 0.0 && cp.bound_seconds > 0.0);
    assert!(cp.bound_seconds <= cp.total_seconds + 1e-12);
    let rendered = cp.render();
    assert!(rendered.contains("copy-bound"));
    assert!(rendered.contains("[CUDA memcpy"));
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn run_deck_gpu_insight_cli_reports_and_exports_device_lanes() {
    let tag = std::process::id();
    let out_dir = std::env::temp_dir().join(format!("md-gpu-insight-{tag}"));
    let trace_path = std::env::temp_dir().join(format!("md-gpu-trace-{tag}.json"));
    let output = Command::new(env!("CARGO_BIN_EXE_run_deck"))
        .current_dir(repo_root())
        .args([
            "lj",
            "--steps",
            "10",
            "--thermo",
            "10",
            "--deterministic",
            "--gpu-insight",
        ])
        .arg("--trace")
        .arg(&trace_path)
        .arg("--insight")
        .arg(&out_dir)
        .args(["--baselines", "baselines"])
        .output()
        .expect("run_deck executes");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "run_deck --gpu-insight failed.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );

    // The report ranks the memcpy-bound finding and the copy-bound path.
    assert!(
        stdout.contains("gpu.memcpy_bound"),
        "missing finding.\nstdout:\n{stdout}"
    );
    assert!(
        stdout.contains("critical_path.device_copy"),
        "stdout:\n{stdout}"
    );
    assert!(stdout.contains("per-device breakdown"), "stdout:\n{stdout}");

    // The trace file carries the device lanes and memcpy spans.
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    for needle in [
        "\"gpu 0\"",
        "\"gpu host\"",
        "[CUDA memcpy HtoD]",
        "[CUDA memcpy DtoH]",
    ] {
        assert!(trace.contains(needle), "trace missing {needle}");
    }

    // The OpenMetrics export carries the PCIe byte counters.
    let om = std::fs::read_to_string(out_dir.join("metrics.om")).expect("metrics.om");
    assert!(om.contains("md_gpu_pcie_htod_bytes"), "metrics:\n{om}");
    assert!(om.contains("md_gpu_pcie_dtoh_bytes"), "metrics:\n{om}");
    md_insight::parse_openmetrics(&om).expect("strict OpenMetrics round-trip");

    let _ = std::fs::remove_dir_all(&out_dir);
    let _ = std::fs::remove_file(&trace_path);
}
