//! Cross-crate physics integration tests: the engine, force fields, and
//! long-range solvers working together on the real benchmark decks.

use md_core::math::erfc;
use md_core::{KspaceStyle, SimBox, Threads, Vec3, V3};
use md_kspace::{Ewald, Pppm};
use md_workloads::{build_deck, build_deck_with, Benchmark};

/// Relative energy-drift bound for the truncated (unshifted) LJ melt under
/// NVE — the drift comes from pairs crossing the cutoff, as in LAMMPS. The
/// serial engine holds this bound over hundreds of steps; the threaded
/// engine must hold the SAME bound (threading reorders reductions, it must
/// not change the physics).
const LJ_NVE_DRIFT_BOUND: f64 = 2e-2;

/// NVE energy conservation on the actual 32k LJ deck over a longer window.
#[test]
fn lj_deck_conserves_energy_over_100_steps() {
    let mut deck = build_deck(Benchmark::Lj, 1, 11).unwrap();
    // Skip the first relaxation steps (lattice -> melt).
    deck.simulation.run(20).unwrap();
    let e0 = deck.simulation.thermo().total_energy();
    deck.simulation.run(100).unwrap();
    let e1 = deck.simulation.thermo().total_energy();
    let rel = ((e1 - e0) / e0).abs();
    assert!(
        rel < LJ_NVE_DRIFT_BOUND,
        "energy drift {rel} over 100 steps"
    );
}

/// The same conservation bound must survive a LONG window on the threaded
/// engine: 1000 NVE steps of the 32k LJ melt on 4 fast-mode threads.
#[test]
fn threaded_lj_deck_conserves_energy_over_1000_steps() {
    let mut deck = build_deck_with(Benchmark::Lj, 1, 11, Threads::fast(4)).unwrap();
    deck.simulation.run(20).unwrap();
    let e0 = deck.simulation.thermo().total_energy();
    deck.simulation.run(1000).unwrap();
    let e1 = deck.simulation.thermo().total_energy();
    let rel = ((e1 - e0) / e0).abs();
    assert!(
        rel < LJ_NVE_DRIFT_BOUND,
        "threaded energy drift {rel} over 1000 steps"
    );
}

/// The chain deck's Langevin thermostat drags the melt toward T* = 1.0: the
/// stretched initial lattice heats the system first, then the thermostat
/// (damp = 10τ, so full equilibration takes ~2500 steps) cools it back.
#[test]
fn chain_deck_thermostat_cools_toward_unit_temperature() {
    let mut deck = build_deck(Benchmark::Chain, 1, 3).unwrap();
    deck.simulation.run(100).unwrap();
    let t_hot = deck.simulation.thermo().temperature;
    deck.simulation.run(250).unwrap();
    let t_later = deck.simulation.thermo().temperature;
    assert!(
        t_hot > 1.0,
        "lattice release should heat the melt, T = {t_hot}"
    );
    assert!(
        t_later < t_hot,
        "thermostat must cool toward 1.0: {t_hot} -> {t_later}"
    );
    assert!((0.5..=2.5).contains(&t_later), "temperature {t_later}");
}

/// EAM copper stays a bound solid under NVE at 1600 K.
#[test]
fn eam_deck_stays_cohesive() {
    let mut deck = build_deck(Benchmark::Eam, 1, 5).unwrap();
    deck.simulation.run(30).unwrap();
    let thermo = deck.simulation.thermo();
    let per_atom = thermo.potential / deck.simulation.atoms().len() as f64;
    assert!(per_atom < -2.0, "cohesive energy per atom {per_atom} eV");
}

/// Full periodic Coulomb: PPPM + real-space erfc tail matches Ewald +
/// real-space on the same disordered charged system.
#[test]
fn pppm_and_ewald_agree_on_total_coulomb_energy() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(4);
    let l = 14.0;
    let bx = SimBox::cubic(l);
    let n = 100;
    let x: Vec<V3> = (0..n)
        .map(|_| {
            Vec3::new(
                rng.gen::<f64>() * l,
                rng.gen::<f64>() * l,
                rng.gen::<f64>() * l,
            )
        })
        .collect();
    let q: Vec<f64> = (0..n)
        .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
        .collect();
    let cutoff = 6.9;

    let real_space = |g: f64| {
        let mut e = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let r = bx.min_image(x[i], x[j]).norm();
                if r < cutoff {
                    e += q[i] * q[j] * erfc(g * r) / r;
                }
            }
        }
        e
    };

    let mut ewald = Ewald::new(cutoff, 1e-6);
    ewald.setup(&bx, &q).unwrap();
    let mut f = vec![Vec3::zero(); n];
    let e_ewald = ewald.compute(&bx, &x, &q, &mut f).ecoul + real_space(ewald.g_ewald());

    let mut pppm = Pppm::new(cutoff, 1e-5, 5);
    pppm.setup(&bx, &q).unwrap();
    let mut f = vec![Vec3::zero(); n];
    let e_pppm = pppm.compute(&bx, &x, &q, &mut f).ecoul + real_space(pppm.g_ewald());

    let rel = ((e_pppm - e_ewald) / e_ewald).abs();
    assert!(rel < 0.02, "PPPM {e_pppm} vs Ewald {e_ewald} (rel {rel})");
}

/// The rhodo deck holds its SHAKE constraints while NPT + PPPM integrate.
#[test]
fn rhodo_deck_maintains_constraints_under_npt() {
    let mut deck = build_deck(Benchmark::Rhodo, 1, 9).unwrap();
    deck.simulation.run(5).unwrap();
    let atoms = deck.simulation.atoms();
    let bx = *deck.simulation.sim_box();
    // Every water O-H bond must still be at its constrained length.
    let mut checked = 0;
    for b in atoms.bonds() {
        if b.kind == 1 {
            let r = bx
                .min_image(atoms.x()[b.i as usize], atoms.x()[b.j as usize])
                .norm();
            assert!((r - 0.9572).abs() < 1e-3, "O-H bond at {r}");
            checked += 1;
        }
    }
    assert!(checked > 10_000, "checked {checked} constrained bonds");
}

/// Granular chute: momentum is injected by gravity, dissipated by friction —
/// the flow approaches a steady shear rather than free fall.
#[test]
fn chute_flow_is_dissipative() {
    let mut deck = build_deck(Benchmark::Chute, 1, 1).unwrap();
    deck.simulation.run(300).unwrap();
    let atoms = deck.simulation.atoms();
    let n_base = 40 * 40;
    let mean_vx: f64 =
        atoms.v()[n_base..].iter().map(|v| v.x).sum::<f64>() / (atoms.len() - n_base) as f64;
    // Free fall after 300 steps (t = 0.03) would give v = g sinθ t ≈ 0.013
    // with zero friction; flow starts and stays of that order, not larger.
    assert!(mean_vx > 0.0, "flow must move downhill");
    assert!(
        mean_vx < 0.05,
        "friction must limit acceleration, v = {mean_vx}"
    );
}
