//! Shape-fidelity integration tests: the regenerated figures must show the
//! paper's qualitative findings (who wins, orderings, crossovers), per the
//! reproduction contract in DESIGN.md.
//!
//! These run at `Fidelity::Quick` (32k and 256k sizes) so CI stays fast; the
//! full sweep is produced by the `figures` binary and the benches.

use md_core::{PrecisionMode, TaskKind};
use md_harness::{ExperimentContext, Fidelity};
use md_workloads::Benchmark;
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::new(Fidelity::Quick))
}

/// Paper Section 5: with one MPI process, the LJ experiment spends over 75%
/// of its runtime in Pair; Chain and Chute (5 and 7 neighbors/atom) spend
/// significantly less.
#[test]
fn pair_share_follows_neighbor_count() {
    let lj = ctx().cpu_run(Benchmark::Lj, 1, 1).unwrap();
    let chain = ctx().cpu_run(Benchmark::Chain, 1, 1).unwrap();
    let chute = ctx().cpu_run(Benchmark::Chute, 1, 1).unwrap();
    assert!(
        lj.tasks.percent(TaskKind::Pair) > 70.0,
        "lj Pair share {:.1}%",
        lj.tasks.percent(TaskKind::Pair)
    );
    assert!(chain.tasks.percent(TaskKind::Pair) < lj.tasks.percent(TaskKind::Pair) - 15.0);
    assert!(chute.tasks.percent(TaskKind::Pair) < lj.tasks.percent(TaskKind::Pair) - 15.0);
}

/// Paper Section 5: communication starts to dominate for smaller systems
/// with high parallelization.
#[test]
fn comm_dominates_small_systems_at_high_rank_counts() {
    let small_p64 = ctx().cpu_run(Benchmark::Lj, 1, 64).unwrap();
    let small_p4 = ctx().cpu_run(Benchmark::Lj, 1, 4).unwrap();
    let big_p64 = ctx().cpu_run(Benchmark::Lj, 2, 64).unwrap();
    assert!(small_p64.tasks.percent(TaskKind::Comm) > small_p4.tasks.percent(TaskKind::Comm));
    assert!(small_p64.tasks.percent(TaskKind::Comm) > big_p64.tasks.percent(TaskKind::Comm));
}

/// Paper Figure 4: MPI overhead decreases with system size; chain and chute
/// show much more imbalance than lj and eam.
#[test]
fn mpi_overhead_and_imbalance_shapes() {
    let small = ctx().cpu_run(Benchmark::Lj, 1, 32).unwrap();
    let big = ctx().cpu_run(Benchmark::Lj, 2, 32).unwrap();
    assert!(
        small.mpi_time_percent > big.mpi_time_percent,
        "{:.1}% vs {:.1}%",
        small.mpi_time_percent,
        big.mpi_time_percent
    );
    let chute = ctx().cpu_run(Benchmark::Chute, 1, 32).unwrap();
    let chain = ctx().cpu_run(Benchmark::Chain, 1, 32).unwrap();
    let eam = ctx().cpu_run(Benchmark::Eam, 1, 32).unwrap();
    assert!(chute.mpi_imbalance_percent > eam.mpi_imbalance_percent * 2.0);
    assert!(chain.mpi_imbalance_percent > eam.mpi_imbalance_percent);
}

/// Paper Figure 6: rhodopsin is by far the slowest experiment; chute has the
/// best small-system performance.
#[test]
fn cpu_performance_ordering() {
    let mut ts = std::collections::HashMap::new();
    for b in Benchmark::ALL {
        ts.insert(b, ctx().cpu_run(b, 1, 64).unwrap().ts_per_sec);
    }
    let rhodo = ts[&Benchmark::Rhodo];
    for b in Benchmark::ALL {
        if b != Benchmark::Rhodo {
            assert!(ts[&b] > 3.0 * rhodo, "{b} at {} vs rhodo {rhodo}", ts[&b]);
        }
    }
    let max = ts.values().copied().fold(0.0f64, f64::max);
    assert_eq!(
        ts[&Benchmark::Chute],
        max,
        "chute leads small systems: {ts:?}"
    );
}

/// Paper Section 6: multi-GPU strong scaling is considerably worse than the
/// CPU MPI scaling; EAM outperforms Chain on the GPU instance (contrary to
/// the CPU instance).
#[test]
fn gpu_scaling_and_eam_vs_chain_inversion() {
    let cpu1 = ctx().cpu_run(Benchmark::Lj, 2, 1).unwrap();
    let cpu64 = ctx().cpu_run(Benchmark::Lj, 2, 64).unwrap();
    let cpu_eff = cpu64.parallel_efficiency(&cpu1);
    let gpu1 = ctx().gpu_run(Benchmark::Lj, 2, 1).unwrap();
    let gpu8 = ctx().gpu_run(Benchmark::Lj, 2, 8).unwrap();
    let gpu_eff = gpu8.parallel_efficiency(&gpu1);
    assert!(
        gpu_eff < cpu_eff,
        "GPU efficiency {gpu_eff:.2} should trail CPU {cpu_eff:.2}"
    );

    // CPU: chain beats eam; GPU: eam catches up or wins (pair offload suits
    // EAM; neighbor/bond work drags chain).
    let cpu_eam = ctx().cpu_run(Benchmark::Eam, 2, 64).unwrap().ts_per_sec;
    let cpu_chain = ctx().cpu_run(Benchmark::Chain, 2, 64).unwrap().ts_per_sec;
    let gpu_eam = ctx().gpu_run(Benchmark::Eam, 2, 8).unwrap().ts_per_sec;
    let gpu_chain = ctx().gpu_run(Benchmark::Chain, 2, 8).unwrap().ts_per_sec;
    let cpu_ratio = cpu_eam / cpu_chain;
    let gpu_ratio = gpu_eam / gpu_chain;
    assert!(
        gpu_ratio > cpu_ratio,
        "EAM must gain on Chain when offloaded: cpu {cpu_ratio:.2} vs gpu {gpu_ratio:.2}"
    );
}

/// Paper Section 7: lowering the error threshold increases k-space runtime
/// share and reduces performance on both instances; the GPU collapse is far
/// more dramatic.
#[test]
fn error_threshold_sensitivity() {
    let coarse = ctx()
        .cpu_run_with(Benchmark::Rhodo, 2, 64, PrecisionMode::Mixed, Some(1e-4))
        .unwrap();
    let tight = ctx()
        .cpu_run_with(Benchmark::Rhodo, 2, 64, PrecisionMode::Mixed, Some(1e-7))
        .unwrap();
    assert!(tight.ts_per_sec < coarse.ts_per_sec);
    assert!(tight.tasks.percent(TaskKind::Kspace) > coarse.tasks.percent(TaskKind::Kspace));

    let g_coarse = ctx()
        .gpu_run_with(Benchmark::Rhodo, 2, 8, PrecisionMode::Mixed, Some(1e-4))
        .unwrap();
    let g_tight = ctx()
        .gpu_run_with(Benchmark::Rhodo, 2, 8, PrecisionMode::Mixed, Some(1e-7))
        .unwrap();
    let cpu_drop = coarse.ts_per_sec / tight.ts_per_sec;
    let gpu_drop = g_coarse.ts_per_sec / g_tight.ts_per_sec;
    assert!(
        gpu_drop > cpu_drop,
        "GPU collapse ({gpu_drop:.1}x) must exceed CPU ({cpu_drop:.1}x)"
    );
    // And the HtoD traffic must grow (Section 7's memcpy observation).
    use md_model::KernelKind;
    assert!(
        g_tight.kernels.seconds(KernelKind::MemcpyHtoD)
            > g_coarse.kernels.seconds(KernelKind::MemcpyHtoD)
    );
}

/// Paper Section 8: double precision costs performance everywhere; the LJ
/// benchmark on the GPU is the most sensitive, rhodopsin on the GPU barely
/// moves.
#[test]
fn precision_sensitivity_shapes() {
    let cpu_s = ctx()
        .cpu_run_with(Benchmark::Lj, 2, 64, PrecisionMode::Single, None)
        .unwrap();
    let cpu_d = ctx()
        .cpu_run_with(Benchmark::Lj, 2, 64, PrecisionMode::Double, None)
        .unwrap();
    assert!(cpu_s.ts_per_sec > cpu_d.ts_per_sec);

    // The GPU sensitivity is clearest at the large size (paper Section 8:
    // "the LJ benchmark on GPU being the most sensitive"); small systems sit
    // on the PCIe latency floor where precision barely matters.
    let lj_s = ctx()
        .gpu_run_with(Benchmark::Lj, 4, 8, PrecisionMode::Single, None)
        .unwrap();
    let lj_d = ctx()
        .gpu_run_with(Benchmark::Lj, 4, 8, PrecisionMode::Double, None)
        .unwrap();
    let rhodo_s = ctx()
        .gpu_run_with(Benchmark::Rhodo, 4, 8, PrecisionMode::Single, None)
        .unwrap();
    let rhodo_d = ctx()
        .gpu_run_with(Benchmark::Rhodo, 4, 8, PrecisionMode::Double, None)
        .unwrap();
    let lj_ratio = lj_s.ts_per_sec / lj_d.ts_per_sec;
    let rhodo_ratio = rhodo_s.ts_per_sec / rhodo_d.ts_per_sec;
    assert!(lj_ratio > 1.15, "lj GPU single/double ratio {lj_ratio:.2}");
    assert!(
        rhodo_ratio < lj_ratio - 0.02,
        "rhodo ({rhodo_ratio:.2}) must be less precision-sensitive than lj ({lj_ratio:.2})"
    );
}

/// Table 2 check: measured neighbors/atom reproduce the paper's ordering and
/// magnitudes.
#[test]
fn table2_neighbor_counts() {
    let f = md_harness::tables::table2(ctx()).unwrap();
    assert_eq!(f.table.len(), 5);
    let get = |name: &str| -> f64 {
        f.table
            .rows()
            .iter()
            .find(|r| r[0] == name)
            .expect("row exists")[6]
            .parse()
            .expect("numeric")
    };
    assert!(get("rhodo") > 300.0);
    assert!((40.0..=70.0).contains(&get("lj")));
    assert!((30.0..=60.0).contains(&get("eam")));
    assert!(get("chain") < 10.0);
    assert!(get("chute") < 12.0);
}
