//! Thread-count invariance: in deterministic mode every parallel reduction
//! follows a fixed chunk decomposition and a fixed reduction order, so the
//! SAME trajectory must fall out of the engine no matter how many threads
//! compute it — bitwise, not approximately.
//!
//! Each benchmark deck runs for a fixed number of steps at 1, 2, and 4
//! threads (deterministic mode) and the final positions, forces, and the
//! task ledger's per-phase step counts are compared exactly. Chute's
//! granular pair style is serial by design (per-contact mutable history),
//! but its deck still exercises the threaded neighbor builds.

use md_core::Threads;
use md_workloads::{build_deck_with, Benchmark};

/// Steps per deck. Rhodopsin (PPPM + SHAKE + NPT) costs ~100× an LJ step in
/// debug builds, so it runs a shorter window that still spans several
/// neighbor rebuilds and every kernel phase.
fn steps_for(benchmark: Benchmark) -> u64 {
    match benchmark {
        Benchmark::Rhodo => 10,
        _ => 50,
    }
}

struct Fingerprint {
    x_bits: Vec<u64>,
    f_bits: Vec<u64>,
    step_counts: [u64; 8],
}

fn fingerprint(benchmark: Benchmark, threads: Threads) -> Fingerprint {
    let mut deck = build_deck_with(benchmark, 1, 2022, threads).expect("deck builds");
    deck.simulation
        .run(steps_for(benchmark))
        .expect("deck runs");
    let atoms = deck.simulation.atoms();
    let bits = |v: &[md_core::V3]| -> Vec<u64> {
        v.iter()
            .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
            .collect()
    };
    Fingerprint {
        x_bits: bits(atoms.x()),
        f_bits: bits(atoms.f()),
        step_counts: deck.simulation.ledger().step_counts(),
    }
}

fn assert_bits_eq(what: &str, t: usize, got: &[u64], want: &[u64]) {
    assert_eq!(got.len(), want.len(), "{what}: length at {t} threads");
    let diverged = got.iter().zip(want).filter(|(a, b)| a != b).count();
    if diverged > 0 {
        let first = got.iter().zip(want).position(|(a, b)| a != b).unwrap();
        panic!(
            "{what}: {diverged}/{} components diverged at {t} threads \
             (first at flat index {first}: {:#x} vs {:#x})",
            got.len(),
            got[first],
            want[first]
        );
    }
}

fn assert_thread_invariant(benchmark: Benchmark) {
    let baseline = fingerprint(benchmark, Threads::deterministic(1));
    for t in [2usize, 4] {
        let run = fingerprint(benchmark, Threads::deterministic(t));
        assert_eq!(
            run.step_counts, baseline.step_counts,
            "{benchmark}: per-phase step counts diverged at {t} threads"
        );
        assert_bits_eq(
            &format!("{benchmark} positions"),
            t,
            &run.x_bits,
            &baseline.x_bits,
        );
        assert_bits_eq(
            &format!("{benchmark} forces"),
            t,
            &run.f_bits,
            &baseline.f_bits,
        );
    }
}

#[test]
fn lj_deck_is_bitwise_thread_invariant() {
    assert_thread_invariant(Benchmark::Lj);
}

#[test]
fn chain_deck_is_bitwise_thread_invariant() {
    assert_thread_invariant(Benchmark::Chain);
}

#[test]
fn eam_deck_is_bitwise_thread_invariant() {
    assert_thread_invariant(Benchmark::Eam);
}

#[test]
fn rhodo_deck_is_bitwise_thread_invariant() {
    assert_thread_invariant(Benchmark::Rhodo);
}

#[test]
fn chute_deck_is_bitwise_thread_invariant() {
    assert_thread_invariant(Benchmark::Chute);
}
