//! The decomposition correctness contract: forces computed per-rank over
//! owned + ghost atoms must equal the single-process result.

use md_core::neighbor::{NeighborList, NeighborListKind};
use md_core::{PairStyle, PairSystem, SimBox, UnitSystem, Vec3, V3};
use md_parallel::{Decomposition, GhostExchange, WorkloadCensus};
use md_potentials::LjCut;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_system(n: usize, l: f64, seed: u64) -> (SimBox, Vec<V3>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let bx = SimBox::cubic(l);
    let x = (0..n)
        .map(|_| {
            Vec3::new(
                rng.gen::<f64>() * l,
                rng.gen::<f64>() * l,
                rng.gen::<f64>() * l,
            )
        })
        .collect();
    (bx, x)
}

fn serial_forces(bx: &SimBox, x: &[V3], cutoff: f64) -> Vec<V3> {
    let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], cutoff).unwrap();
    let mut nl = NeighborList::new(cutoff, 0.0, NeighborListKind::Half);
    nl.build(x, bx).unwrap();
    let v = vec![Vec3::zero(); x.len()];
    let kinds = vec![0u32; x.len()];
    let charge = vec![0.0; x.len()];
    let radius = vec![0.0; x.len()];
    let masses = vec![1.0];
    let units = UnitSystem::lj();
    let sys = PairSystem {
        bx,
        x,
        v: &v,
        kinds: &kinds,
        charge: &charge,
        radius: &radius,
        mass_by_type: &masses,
        units: &units,
        dt: 0.005,
    };
    let mut f = vec![Vec3::zero(); x.len()];
    lj.compute(&sys, &nl, &mut f);
    f
}

/// Per-rank force computation over owned + ghosts, Newton off across ranks.
fn decomposed_forces(bx: &SimBox, x: &[V3], cutoff: f64, ranks: usize) -> Vec<V3> {
    let d = Decomposition::new(*bx, ranks).unwrap();
    let exchange = GhostExchange::build(&d, x, cutoff);
    let mut f_global = vec![Vec3::zero(); x.len()];
    for r in 0..ranks {
        let rank = exchange.rank(r);
        // Local arrays: owned first, then ghosts (with shifted coordinates).
        let mut local_x: Vec<V3> = rank.owned.iter().map(|&i| x[i]).collect();
        local_x.extend(rank.ghosts.iter().map(|&(_, p)| p));
        let nlocal = rank.owned.len();
        let nall = local_x.len();
        if nall == 0 {
            continue;
        }
        // A non-periodic bounding box around owned + ghosts: ghost copies
        // are already in the subdomain's frame, so no wraparound is needed.
        let mut lo = Vec3::splat(f64::INFINITY);
        let mut hi = Vec3::splat(f64::NEG_INFINITY);
        for p in &local_x {
            for k in 0..3 {
                lo[k] = lo[k].min(p[k]);
                hi[k] = hi[k].max(p[k]);
            }
        }
        let pad = cutoff + 1.0;
        let local_bx = SimBox::new(lo - Vec3::splat(pad), hi + Vec3::splat(pad))
            .unwrap()
            .with_periodicity(false, false, false);
        // Half list over owned + ghosts: every pair involving an owned atom
        // appears exactly once, so the owned entries accumulate their
        // complete forces; partial forces landing on ghost entries are what
        // real MPI reverse communication would ship back to the owners.
        let mut nl = NeighborList::new(cutoff, 0.0, NeighborListKind::Half);
        nl.build(&local_x, &local_bx).unwrap();
        let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], cutoff).unwrap();
        let v = vec![Vec3::zero(); nall];
        let kinds = vec![0u32; nall];
        let charge = vec![0.0; nall];
        let radius = vec![0.0; nall];
        let masses = vec![1.0];
        let units = UnitSystem::lj();
        let sys = PairSystem {
            bx: &local_bx,
            x: &local_x,
            v: &v,
            kinds: &kinds,
            charge: &charge,
            radius: &radius,
            mass_by_type: &masses,
            units: &units,
            dt: 0.005,
        };
        let mut f_local = vec![Vec3::zero(); nall];
        lj.compute(&sys, &nl, &mut f_local);
        // Owned entries carry the complete force for the owned atom.
        for (k, &gi) in rank.owned.iter().enumerate() {
            debug_assert!(k < nlocal);
            f_global[gi] = f_local[k];
        }
    }
    f_global
}

#[test]
fn decomposed_forces_match_serial_for_8_ranks() {
    let (bx, x) = random_system(600, 12.0, 21);
    let cutoff = 2.0;
    let serial = serial_forces(&bx, &x, cutoff);
    let decomposed = decomposed_forces(&bx, &x, cutoff, 8);
    for i in 0..x.len() {
        let d = (serial[i] - decomposed[i]).norm();
        assert!(
            d < 1e-9 * serial[i].norm().max(1.0),
            "atom {i}: serial {} vs decomposed {}",
            serial[i],
            decomposed[i]
        );
    }
}

#[test]
fn decomposed_forces_match_serial_for_anisotropic_grid() {
    let (bx, x) = random_system(400, 10.0, 5);
    let cutoff = 1.5;
    let serial = serial_forces(&bx, &x, cutoff);
    for ranks in [2usize, 3, 6, 12] {
        let decomposed = decomposed_forces(&bx, &x, cutoff, ranks);
        // Relative tolerance: unscreened random gases contain near-contact
        // pairs whose near-singular r^-13 forces amplify the one-ulp
        // difference between `(a-b)+L` (serial minimum image) and `a-(b-L)`
        // (pre-shifted ghost coordinates).
        let max_rel = (0..x.len())
            .map(|i| (serial[i] - decomposed[i]).norm() / serial[i].norm().max(1.0))
            .fold(0.0f64, f64::max);
        assert!(
            max_rel < 1e-9,
            "ranks {ranks}: max relative force error {max_rel}"
        );
    }
}

#[test]
fn census_ghosts_match_explicit_exchange() {
    let (bx, x) = random_system(1500, 16.0, 9);
    let d = Decomposition::new(bx, 16).unwrap();
    let exchange = GhostExchange::build(&d, &x, 1.8);
    let census = WorkloadCensus::measure(&d, &x, 1.8);
    for r in 0..16 {
        assert_eq!(
            census.loads()[r].owned,
            exchange.rank(r).owned.len(),
            "rank {r} owned"
        );
        assert_eq!(
            census.loads()[r].ghosts,
            exchange.rank(r).ghosts.len(),
            "rank {r} ghosts"
        );
    }
}
