//! Checkpoint/restart fidelity: a run that is checkpointed, torn down, and
//! restored must continue **bitwise identically** to one that was never
//! interrupted — positions, velocities, forces, images, step counter, and
//! thermo history. Every deck exercises its own state surface (Langevin
//! RNG streams, Nose-Hoover/barostat internals, granular contact history,
//! PPPM accumulators, neighbor rebuild schedule), so all five run here, in
//! deterministic mode at 1 and 4 threads.
//!
//! Corruption tests ride along: a checkpoint with any flipped byte or any
//! truncation must be rejected with a typed error, never restored or
//! panicked on.

use md_core::Threads;
use md_resilience::Checkpoint;
use md_workloads::{build_deck_with, Benchmark, Deck};

const SEED: u64 = 2022;

/// Steps before the checkpoint / after it. Rhodo is ~100x an LJ step in
/// debug builds, so its window is shorter but still crosses neighbor
/// rebuilds and thermo samples.
fn windows(benchmark: Benchmark) -> (u64, u64) {
    match benchmark {
        Benchmark::Rhodo => (4, 4),
        _ => (15, 20),
    }
}

struct Fingerprint {
    x_bits: Vec<u64>,
    v_bits: Vec<u64>,
    f_bits: Vec<u64>,
    images: Vec<[i32; 3]>,
    step: u64,
    thermo_rows: usize,
}

fn fingerprint(deck: &Deck) -> Fingerprint {
    let atoms = deck.simulation.atoms();
    let bits = |v: &[md_core::V3]| -> Vec<u64> {
        v.iter()
            .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
            .collect()
    };
    Fingerprint {
        x_bits: bits(atoms.x()),
        v_bits: bits(atoms.v()),
        f_bits: bits(atoms.f()),
        images: atoms.images().to_vec(),
        step: deck.simulation.step_index(),
        thermo_rows: deck.simulation.thermo_log().len(),
    }
}

fn assert_identical(uninterrupted: &Fingerprint, resumed: &Fingerprint, label: &str) {
    assert_eq!(uninterrupted.step, resumed.step, "{label}: step");
    assert_eq!(
        uninterrupted.thermo_rows, resumed.thermo_rows,
        "{label}: thermo rows"
    );
    assert_eq!(uninterrupted.x_bits, resumed.x_bits, "{label}: positions");
    assert_eq!(uninterrupted.v_bits, resumed.v_bits, "{label}: velocities");
    assert_eq!(uninterrupted.f_bits, resumed.f_bits, "{label}: forces");
    assert_eq!(uninterrupted.images, resumed.images, "{label}: images");
}

/// Run `k1` steps, checkpoint through the full encode/decode byte path,
/// restore into a freshly built deck, run `k2` more on both — compare.
fn roundtrip(benchmark: Benchmark, threads: Threads) {
    let label = format!("{benchmark} x{}", threads.count);
    let (k1, k2) = windows(benchmark);

    let mut original = build_deck_with(benchmark, 1, SEED, threads).expect("deck builds");
    original.simulation.run(k1).expect("pre-checkpoint run");
    let bytes = Checkpoint::capture(&original, SEED).encode();

    // The uninterrupted arm keeps going on the same simulation object.
    original.simulation.run(k2).expect("uninterrupted run");
    let reference = fingerprint(&original);

    // The resumed arm decodes the bytes as a restart would (fresh process:
    // nothing shared with `original` but the byte blob).
    let ckpt = Checkpoint::decode(&bytes).expect("checkpoint decodes");
    assert_eq!(ckpt.header.step, k1);
    assert_eq!(ckpt.header.benchmark, benchmark);
    assert_eq!(ckpt.header.threads, threads);
    let mut resumed = ckpt.restore().expect("checkpoint restores");
    assert_eq!(resumed.simulation.step_index(), k1, "{label}: resume step");
    resumed.simulation.run(k2).expect("resumed run");

    assert_identical(&reference, &fingerprint(&resumed), &label);
}

macro_rules! roundtrip_tests {
    ($($name:ident: $bench:expr, $threads:expr;)*) => {$(
        #[test]
        fn $name() {
            roundtrip($bench, Threads::deterministic($threads));
        }
    )*}
}

roundtrip_tests! {
    lj_roundtrips_serial: Benchmark::Lj, 1;
    lj_roundtrips_threaded: Benchmark::Lj, 4;
    chain_roundtrips_serial: Benchmark::Chain, 1;
    chain_roundtrips_threaded: Benchmark::Chain, 4;
    eam_roundtrips_serial: Benchmark::Eam, 1;
    eam_roundtrips_threaded: Benchmark::Eam, 4;
    chute_roundtrips_serial: Benchmark::Chute, 1;
    chute_roundtrips_threaded: Benchmark::Chute, 4;
    rhodo_roundtrips_serial: Benchmark::Rhodo, 1;
    rhodo_roundtrips_threaded: Benchmark::Rhodo, 4;
}

#[test]
fn corrupted_checkpoints_are_rejected() {
    let mut deck =
        build_deck_with(Benchmark::Lj, 1, SEED, Threads::deterministic(1)).expect("deck builds");
    deck.simulation.run(5).expect("runs");
    let good = Checkpoint::capture(&deck, SEED).encode();
    assert!(Checkpoint::decode(&good).is_ok(), "control");

    // Every single-byte corruption must be caught (CRC covers the body,
    // explicit checks cover magic and the CRC trailer itself).
    let stride = (good.len() / 97).max(1);
    for i in (0..good.len()).step_by(stride) {
        let mut bad = good.clone();
        bad[i] ^= 0x01;
        assert!(
            Checkpoint::decode(&bad).is_err(),
            "flipped byte {i} of {} went undetected",
            good.len()
        );
    }

    // Every truncation must be caught without panicking.
    for cut in (0..good.len()).step_by(stride) {
        assert!(
            Checkpoint::decode(&good[..cut]).is_err(),
            "truncation to {cut} bytes went undetected"
        );
    }
}

#[test]
fn restored_state_cannot_cross_decks() {
    let mut lj = build_deck_with(Benchmark::Lj, 1, SEED, Threads::deterministic(1)).unwrap();
    lj.simulation.run(3).unwrap();
    let mut ckpt = Checkpoint::capture(&lj, SEED);
    // Forge the header onto a structurally different deck (Chain carries a
    // Langevin fix; LJ carries none): the fix-count guard must reject the
    // blob with a typed error rather than overlay mismatched state.
    ckpt.header.benchmark = Benchmark::Chain;
    assert!(ckpt.restore().is_err());
}
