//! End-to-end validation of the md-insight analysis layer: a modeled
//! 8-rank cluster with a `rank-slow` fault injected must have the analyzer
//! attribute the imbalance to the slowed rank and flag a perf regression
//! against the committed `baselines/` record, both through the library API
//! and through the `run_deck --insight` CLI (whose OpenMetrics and
//! folded-stack artifacts must round-trip the strict parsers).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

use md_harness::insight;
use md_insight::{parse_folded, parse_openmetrics, Baseline, RegressionConfig, Verdict};
use md_model::{CpuModel, CpuRunOptions, CpuRunResult, WorkloadProfile};
use md_observe::{counter_name_allowed, ObserveConfig, Recorder};
use md_resilience::FaultPlan;
use md_workloads::{build_positions, Benchmark};

/// Matches run_deck's deck-recipe seed so modeled costs line up with the
/// committed baseline.
const DECK_SEED: u64 = 2022;

/// Matches run_deck's baseline-comparable simulated window.
const MODEL_SIM_STEPS: u64 = 60;

const SLOWED_RANK: usize = 3;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Runs the modeled 8-rank LJ cluster the same way `run_deck --insight`
/// does, optionally under the `rank-slow:3x4@0` fault.
fn model_lj(faulted: bool, recorder: &Recorder) -> (CpuRunResult, u64) {
    let profile = WorkloadProfile::measure(Benchmark::Lj, 20, 1).expect("profile");
    let (bx, x) = build_positions(Benchmark::Lj, 1, DECK_SEED).expect("positions");
    let mut model = CpuModel::new();
    model.set_recorder(recorder.clone());
    if faulted {
        let plan = FaultPlan::parse(&format!("rank-slow:{SLOWED_RANK}x4@0")).expect("fault plan");
        model.set_faults(Arc::new(plan));
    }
    let opts = CpuRunOptions {
        ranks: 8,
        sim_steps: MODEL_SIM_STEPS,
        thermo_every: 10,
        collect_rank_stats: true,
        ..CpuRunOptions::default()
    };
    let result = model.simulate(&profile, &bx, &x, &opts).expect("simulate");
    (result, opts.steps)
}

#[test]
fn rank_slow_fault_is_attributed_to_the_slowed_rank() {
    let recorder = Recorder::new(ObserveConfig::default());
    let (result, _) = model_lj(true, &recorder);
    let report = insight::analyze(&result, &recorder);

    let imb = report.imbalance.as_ref().expect("imbalance section");
    assert_eq!(
        imb.suspect_rank,
        Some(SLOWED_RANK),
        "4x-slowed rank must be named the imbalance source \
         (compute: {:?})",
        imb.rank_compute_seconds
    );
    assert!(
        imb.suspect_excess_percent > 10.0,
        "a 4x slowdown is far past the threshold, got {:.1}%",
        imb.suspect_excess_percent
    );

    let cp = report.critical.as_ref().expect("critical-path section");
    let (top_rank, _) = cp.top_rank.expect("someone bounds the run");
    assert_eq!(
        top_rank, SLOWED_RANK,
        "the slowed rank bounds the critical path"
    );

    assert!(report.has_critical());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.kind == "imbalance.suspect_rank"
                && f.message.contains(&format!("rank {SLOWED_RANK}"))),
        "findings must name the rank: {:?}",
        report.findings
    );

    // Published headline gauges follow the counter-naming convention.
    report.publish_counters(&recorder);
    let snap = recorder.snapshot();
    for name in snap.counters.keys() {
        assert!(counter_name_allowed(name), "counter {name} off-convention");
    }
    assert_eq!(snap.counters["imbalance_suspect_rank"], SLOWED_RANK as f64);
}

#[test]
fn healthy_run_is_balanced_and_matches_the_committed_baseline() {
    let recorder = Recorder::new(ObserveConfig::default());
    let (result, model_steps) = model_lj(false, &recorder);
    let report = insight::analyze(&result, &recorder);
    let imb = report.imbalance.as_ref().expect("imbalance section");
    assert_eq!(imb.suspect_rank, None, "healthy run has no suspect");

    let baseline = Baseline::load(&repo_root().join("baselines"), "lj")
        .expect("baseline dir readable")
        .expect("baselines/lj.json is committed");
    let obs = insight::observations(&result, model_steps);
    let check = baseline.compare(&obs, &RegressionConfig::default());
    assert!(
        !check.regressed,
        "modeled costs are deterministic, so a healthy run must match:\n{}",
        check.render()
    );
}

#[test]
fn faulted_run_regresses_against_the_committed_baseline() {
    let recorder = Recorder::new(ObserveConfig::default());
    let (result, model_steps) = model_lj(true, &recorder);
    let baseline = Baseline::load(&repo_root().join("baselines"), "lj")
        .expect("baseline dir readable")
        .expect("baselines/lj.json is committed");
    let obs = insight::observations(&result, model_steps);
    let check = baseline.compare(&obs, &RegressionConfig::default());
    assert!(
        check.regressed,
        "a 4x rank slowdown must regress:\n{}",
        check.render()
    );
    let pair = check
        .verdicts
        .iter()
        .find(|v| v.name == "step_seconds.Pair")
        .expect("Pair metric present");
    assert_eq!(
        pair.verdict,
        Verdict::Regressed,
        "Pair carries the slowdown"
    );
}

#[test]
fn run_deck_insight_cli_reports_the_fault_and_exports_round_trip() {
    let out_dir = std::env::temp_dir().join(format!("md-insight-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_dir);
    let output = Command::new(env!("CARGO_BIN_EXE_run_deck"))
        .current_dir(repo_root())
        .args([
            "lj",
            "--steps",
            "10",
            "--thermo",
            "10",
            "--deterministic",
            "--faults",
            &format!("rank-slow:{SLOWED_RANK}x4@0"),
            "--insight",
        ])
        .arg(&out_dir)
        .args(["--baselines", "baselines"])
        .output()
        .expect("run_deck executes");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);

    // A detected regression exits 3 by contract.
    assert_eq!(
        output.status.code(),
        Some(3),
        "expected regression exit code.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains(&format!("rank {SLOWED_RANK}")),
        "report must name the slowed rank.\nstdout:\n{stdout}"
    );
    assert!(
        stdout.contains("REGRESSED"),
        "report must flag the regression.\nstdout:\n{stdout}"
    );

    let report_txt =
        std::fs::read_to_string(out_dir.join("report.txt")).expect("report.txt written");
    assert!(report_txt.contains(&format!("rank {SLOWED_RANK}")));
    assert!(report_txt.contains("critical path"));

    let metrics_om =
        std::fs::read_to_string(out_dir.join("metrics.om")).expect("metrics.om written");
    let metrics = parse_openmetrics(&metrics_om).expect("OpenMetrics round-trips");
    let suspect = metrics
        .iter()
        .find(|m| m.name == "md_imbalance_suspect_rank")
        .expect("suspect-rank gauge exported");
    assert_eq!(suspect.value, SLOWED_RANK as f64);

    let folded_txt =
        std::fs::read_to_string(out_dir.join("folded.txt")).expect("folded.txt written");
    let folded = parse_folded(&folded_txt).expect("folded stacks round-trip");
    assert!(!folded.is_empty(), "traced run produces stacks");
    let critical_lane: Vec<_> = folded
        .iter()
        .filter(|(frames, _)| frames[0] == "critical_path")
        .collect();
    let lanes_seen: BTreeSet<String> = folded.iter().map(|(f, _)| f[0].clone()).collect();
    assert!(
        !critical_lane.is_empty(),
        "critical-path lane present in folded output, saw lanes {lanes_seen:?}"
    );

    let _ = std::fs::remove_dir_all(&out_dir);
}

#[test]
fn update_baselines_is_refused_under_fault_injection() {
    let out_dir = std::env::temp_dir().join(format!("md-insight-refuse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_dir);
    let output = Command::new(env!("CARGO_BIN_EXE_run_deck"))
        .current_dir(repo_root())
        .args([
            "lj",
            "--steps",
            "10",
            "--thermo",
            "10",
            "--faults",
            "rank-slow:1x2@0",
            "--update-baselines",
            "--insight",
        ])
        .arg(&out_dir)
        .output()
        .expect("run_deck executes");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("poison"),
        "refusal must explain itself: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&out_dir);
}
