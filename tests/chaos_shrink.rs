//! Chaos-under-determinism: a rank crash at a fixed step must be survived
//! by the degraded-mode shrink on every deck, and because the shrink rolls
//! back to a healthy snapshot and replays on the survivors — touching no
//! physics knob — the post-shrink trajectory must be **bitwise identical**
//! both across two faulted runs and against a crash-free run of the same
//! deck. The `shrink.reports` artifact must round-trip the wire decoder.
//!
//! Riding along: a fault plan that defeats the whole mitigation ladder
//! (more crashes than the retry budget) must exit with the dedicated
//! unrecoverable code (4) and a structured report on stderr — never a
//! panic — and `--repartition-every` must surface suspect-triggered
//! re-splits on the modeled cluster through the CLI.

use std::path::{Path, PathBuf};
use std::process::Command;

use md_resilience::ShrinkReport;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run_deck(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_run_deck"))
        .current_dir(repo_root())
        .args(args)
        .output()
        .expect("run_deck executes")
}

/// Decodes `<dir>/shrink.reports`: u32-LE report count, then per report a
/// u32-LE length prefix and a checksummed [`ShrinkReport`] blob.
fn read_shrink_reports(dir: &Path) -> Vec<ShrinkReport> {
    let bytes = std::fs::read(dir.join("shrink.reports")).expect("shrink.reports written");
    assert!(bytes.len() >= 4, "file carries at least a count");
    let count = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    let mut reports = Vec::with_capacity(count);
    let mut at = 4;
    for _ in 0..count {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 4;
        let report = ShrinkReport::decode(&bytes[at..at + len]).expect("report decodes");
        at += len;
        reports.push(report);
    }
    assert_eq!(at, bytes.len(), "no trailing garbage");
    reports
}

/// Two faulted runs and one crash-free run of `deck`, all deterministic.
/// The crash at `crash_step` must be shrunk past, every arm must agree
/// bitwise on the final atom state, and the shrink report must record the
/// 8 -> 7 rank transition.
fn chaos_run_is_deterministic(deck: &str, steps: u64, crash_step: u64, ckpt_every: u64) {
    let base = std::env::temp_dir().join(format!("md-chaos-{deck}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let fault = format!("rank-crash:3@{crash_step}");
    let steps_s = steps.to_string();
    let thermo_s = ckpt_every.to_string();
    let ckpt_s = ckpt_every.to_string();

    let mut data: Vec<Vec<u8>> = Vec::new();
    for arm in ["a", "b"] {
        let dir = base.join(arm);
        std::fs::create_dir_all(&dir).expect("arm dir");
        let data_path = dir.join("final.data");
        let ckpt_dir = dir.join("ckpt");
        let output = run_deck(&[
            deck,
            "--steps",
            &steps_s,
            "--thermo",
            &thermo_s,
            "--deterministic",
            "--faults",
            &fault,
            "--checkpoint-every",
            &ckpt_s,
            "--checkpoint-dir",
            ckpt_dir.to_str().unwrap(),
            "--write-data",
            data_path.to_str().unwrap(),
        ]);
        let stdout = String::from_utf8_lossy(&output.stdout);
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            output.status.success(),
            "{deck} arm {arm} must survive the crash.\nstdout:\n{stdout}\nstderr:\n{stderr}"
        );
        assert!(
            stdout.contains("declared failed after"),
            "{deck} arm {arm}: detection must be narrated.\nstdout:\n{stdout}"
        );
        assert!(
            stdout.contains("re-decomposed over 7 ranks"),
            "{deck} arm {arm}: shrink must be narrated.\nstdout:\n{stdout}"
        );

        let reports = read_shrink_reports(&ckpt_dir);
        assert_eq!(reports.len(), 1, "{deck} arm {arm}: one crash, one shrink");
        let r = &reports[0];
        assert_eq!(r.failed_rank, 3, "{deck}: crashed rank is recorded");
        assert_eq!(r.step, crash_step, "{deck}: crash step is recorded");
        assert_eq!((r.ranks_before, r.ranks_after), (8, 7), "{deck}: 8 -> 7");
        assert!(r.rollback_step <= crash_step, "{deck}: rolled backwards");

        data.push(std::fs::read(&data_path).expect("data file written"));
    }
    assert_eq!(
        data[0], data[1],
        "{deck}: two faulted runs must agree bitwise"
    );

    // The crash-free reference: same deck, same cadence, no fault. The
    // shrink replays lost steps from a healthy snapshot, so recovery must
    // be invisible in the final state.
    let clean_dir = base.join("clean");
    std::fs::create_dir_all(&clean_dir).expect("clean dir");
    let clean_path = clean_dir.join("final.data");
    let output = run_deck(&[
        deck,
        "--steps",
        &steps_s,
        "--thermo",
        &thermo_s,
        "--deterministic",
        "--checkpoint-every",
        &ckpt_s,
        "--checkpoint-dir",
        clean_dir.join("ckpt").to_str().unwrap(),
        "--write-data",
        clean_path.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "{deck}: clean reference runs");
    let clean = std::fs::read(&clean_path).expect("clean data written");
    assert_eq!(
        data[0], clean,
        "{deck}: post-shrink trajectory must equal the crash-free one"
    );

    let _ = std::fs::remove_dir_all(&base);
}

macro_rules! chaos_tests {
    ($($name:ident: $deck:literal, $steps:expr, $crash:expr, $ckpt:expr;)*) => {$(
        #[test]
        fn $name() {
            chaos_run_is_deterministic($deck, $steps, $crash, $ckpt);
        }
    )*}
}

chaos_tests! {
    lj_crash_shrinks_deterministically: "lj", 30, 15, 10;
    chain_crash_shrinks_deterministically: "chain", 30, 15, 10;
    eam_crash_shrinks_deterministically: "eam", 30, 15, 10;
    chute_crash_shrinks_deterministically: "chute", 30, 15, 10;
    rhodo_crash_shrinks_deterministically: "rhodo", 8, 4, 4;
}

/// More crashes than the retry budget (`RecoveryPolicy::default().max_retries
/// = 4`) defeats every rung: the run must end in a structured failure report
/// and the dedicated exit code, not a panic.
#[test]
fn ladder_exhaustion_exits_with_the_unrecoverable_code() {
    let output = run_deck(&[
        "lj",
        "--steps",
        "30",
        "--thermo",
        "30",
        "--deterministic",
        "--faults",
        "rank-crash:0@5,rank-crash:1@6,rank-crash:2@7,rank-crash:3@8,rank-crash:4@9",
    ]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(4),
        "exhaustion has its own exit code.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("unrecoverable"),
        "failure must be reported, not panicked: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "a defeated ladder is a report, not a panic: {stderr}"
    );
}

/// `--repartition-every` on a run with a slow rank must surface
/// suspect-triggered re-splits of the modeled cluster on stdout, and each
/// narrated re-split names the slowed rank.
#[test]
fn cli_repartitioning_names_the_slow_rank() {
    let output = run_deck(&[
        "lj",
        "--steps",
        "10",
        "--thermo",
        "10",
        "--deterministic",
        "--faults",
        "rank-slow:3x4@0",
        "--repartition-every",
        "20",
    ]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "slow rank is survivable.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("[repartition] step"),
        "re-splits must be narrated.\nstdout:\n{stdout}"
    );
    assert!(
        stdout.contains("rank 3 suspect"),
        "the slowed rank is the suspect.\nstdout:\n{stdout}"
    );
    assert!(
        stdout.contains("imbalance_repartitions"),
        "counter must be printed.\nstdout:\n{stdout}"
    );
}
