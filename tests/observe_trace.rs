//! Golden-file test for md-observe's Chrome trace export: a short real LJ
//! run plus a small virtual-cluster scenario must round-trip through
//! `chrome_trace_json` into valid, Perfetto-loadable JSON with one lane per
//! virtual rank, per-lane monotonic span timestamps, and every task category
//! of the LAMMPS taxonomy represented.

use md_core::TaskKind;
use md_observe::{chrome_trace_json, metrics_jsonl, text_report, Json, ObserveConfig, Recorder};
use md_parallel::{LinkModel, VirtualCluster};
use md_workloads::{build_deck, Benchmark};
use std::collections::{BTreeMap, BTreeSet};

const STEPS: u64 = 5;

fn traced_recorder() -> Recorder {
    let rec = Recorder::new(ObserveConfig {
        enabled: true,
        ..ObserveConfig::default()
    });

    // Lane 0: the real engine, 5 steps of the 32k LJ deck.
    let mut deck = build_deck(Benchmark::Lj, 1, 7).expect("deck builds");
    deck.simulation.set_recorder(rec.clone());
    deck.simulation.run(STEPS).expect("short run");

    // Lanes 1..=4: a 4-rank virtual cluster covering the task categories the
    // LJ deck has no work for (Bond, Kspace, Comm at simulated time).
    let link = LinkModel {
        latency: 2e-6,
        bandwidth: 10e9,
    };
    let mut cluster = VirtualCluster::new(4);
    cluster.set_recorder(rec.clone());
    cluster.mpi_init(0.05, 0.002);
    for step in 0..3 {
        for r in 0..4 {
            let jitter = 1.0 + 0.05 * ((r + step) % 3) as f64;
            cluster.compute(r, TaskKind::Pair, 1e-3 * jitter);
            cluster.compute(r, TaskKind::Bond, 2e-4 * jitter);
            cluster.compute(r, TaskKind::Kspace, 4e-4 * jitter);
            cluster.compute(r, TaskKind::Modify, 1e-4);
        }
        let partners: Vec<Vec<usize>> = (0..4).map(|r| vec![(r + 1) % 4, (r + 3) % 4]).collect();
        cluster.halo_exchange(&partners, &[64e3, 64e3, 64e3, 64e3], link);
        cluster.allreduce(48.0, link, TaskKind::Output);
    }
    rec
}

#[test]
fn chrome_trace_round_trips_with_monotonic_lanes() {
    let rec = traced_recorder();
    let doc = chrome_trace_json(&rec);
    let json = Json::parse(&doc).expect("exporter emits valid JSON");

    let events = json
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(
        events.len() > 50,
        "expected a real trace, got {} events",
        events.len()
    );

    // Lane names: the engine plus the four virtual ranks.
    let lane_names: BTreeSet<String> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_owned))
        .collect();
    for expected in ["engine", "rank 0", "rank 1", "rank 2", "rank 3"] {
        assert!(
            lane_names.contains(expected),
            "missing lane {expected:?} in {lane_names:?}"
        );
    }

    // Per-lane monotonicity of complete ("X") spans, in file order.
    let mut last_ts: BTreeMap<i64, f64> = BTreeMap::new();
    let mut span_names: BTreeSet<String> = BTreeSet::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let tid = e.get("tid").and_then(Json::as_f64).expect("tid") as i64;
        let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
        let dur = e.get("dur").and_then(Json::as_f64).expect("dur");
        assert!(ts >= 0.0 && dur >= 0.0, "negative time in event");
        if let Some(prev) = last_ts.insert(tid, ts) {
            assert!(
                ts >= prev,
                "lane {tid}: span at {ts} before previous {prev}"
            );
        }
        if e.get("cat").and_then(Json::as_str) == Some("task") {
            span_names.insert(e.get("name").and_then(Json::as_str).unwrap().to_owned());
        }
    }

    // Every category of the eight-task taxonomy shows up as a span.
    for task in TaskKind::ALL {
        assert!(
            span_names.contains(task.label()),
            "no {} span in trace (got {span_names:?})",
            task.label()
        );
    }
}

#[test]
fn metrics_jsonl_and_report_cover_the_run() {
    let rec = traced_recorder();

    let jsonl = metrics_jsonl(&rec);
    let mut step_lines = 0;
    for line in jsonl.lines().filter(|l| !l.is_empty()) {
        let obj = Json::parse(line).expect("each JSONL line parses");
        if obj.get("kind").and_then(Json::as_str) == Some("step") {
            step_lines += 1;
        }
    }
    assert_eq!(
        step_lines, STEPS as usize,
        "one step sample per engine step"
    );

    let report = text_report(&rec);
    assert!(report.contains("Pair"), "report lists tasks:\n{report}");
    assert!(report.contains("p99"), "report has percentiles:\n{report}");
}
