//! Property-based tests (proptest) for the core engine invariants.

use md_core::math::{erf, erfc};
use md_core::neighbor::{brute_force_pairs, NeighborList, NeighborListKind};
use md_core::{AtomStore, SimBox, TaskKind, TaskLedger, UnitSystem, Vec3, V3};
use proptest::prelude::*;

fn arb_position(l: f64) -> impl Strategy<Value = V3> {
    (0.0..l, 0.0..l, 0.0..l).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Minimum-image displacement is antisymmetric and never longer than
    /// half the box diagonal.
    #[test]
    fn min_image_is_antisymmetric_and_bounded(
        a in arb_position(12.0),
        b in arb_position(12.0),
    ) {
        let bx = SimBox::cubic(12.0);
        let d1 = bx.min_image(a, b);
        let d2 = bx.min_image(b, a);
        prop_assert!((d1 + d2).norm() < 1e-12);
        for k in 0..3 {
            prop_assert!(d1[k].abs() <= 6.0 + 1e-12);
        }
    }

    /// Wrapping always lands inside the box and preserves the unwrapped
    /// coordinate (position + image·L).
    #[test]
    fn wrap_preserves_unwrapped_coordinate(
        x in -100.0..100.0f64,
        y in -100.0..100.0f64,
        z in -100.0..100.0f64,
    ) {
        let bx = SimBox::cubic(10.0);
        let mut p = Vec3::new(x, y, z);
        let orig = p;
        let mut img = [0i32; 3];
        bx.wrap(&mut p, &mut img);
        prop_assert!(bx.contains(p), "wrapped {p} outside the box");
        let unwrapped = Vec3::new(
            p.x + img[0] as f64 * 10.0,
            p.y + img[1] as f64 * 10.0,
            p.z + img[2] as f64 * 10.0,
        );
        prop_assert!((unwrapped - orig).norm() < 1e-9);
    }

    /// Cell-list neighbor enumeration equals the O(N²) reference for random
    /// configurations, cutoffs, and both list kinds.
    #[test]
    fn neighbor_list_matches_brute_force(
        seed in 0u64..1000,
        n in 20usize..120,
        cutoff in 0.5..3.4f64,
        half in proptest::bool::ANY,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let l = 10.0;
        let bx = SimBox::cubic(l);
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<V3> = (0..n)
            .map(|_| Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l))
            .collect();
        let kind = if half { NeighborListKind::Half } else { NeighborListKind::Full };
        let mut nl = NeighborList::new(cutoff, 0.3, kind);
        nl.build(&x, &bx).unwrap();
        let mut got = std::collections::BTreeSet::new();
        for i in 0..n {
            for &j in nl.neighbors(i) {
                let (a, b) = if (i as u32) < j { (i as u32, j) } else { (j, i as u32) };
                got.insert((a, b));
            }
        }
        let want: std::collections::BTreeSet<_> =
            brute_force_pairs(&x, &bx, cutoff + 0.3).into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Velocity seeding hits the requested temperature exactly and leaves
    /// zero net momentum, for any mass scale.
    #[test]
    fn velocity_seeding_invariants(
        t in 0.1..2000.0f64,
        mass in 0.5..200.0f64,
        seed in 0u64..500,
    ) {
        let mut atoms = AtomStore::new();
        for i in 0..64 {
            atoms.push(Vec3::new(i as f64, 0.5 * i as f64, 0.25 * i as f64), Vec3::zero(), 0);
        }
        atoms.set_masses(vec![mass]);
        let units = UnitSystem::metal();
        md_core::compute::seed_velocities(&mut atoms, &units, t, seed);
        let t_meas = md_core::temperature(&atoms, &units);
        prop_assert!((t_meas - t).abs() < 1e-6 * t);
        let p = md_core::compute::total_momentum(&atoms);
        prop_assert!(p.norm() < 1e-6 * mass * 64.0);
    }

    /// `erfc` stays in (0, 2], is monotone decreasing (strictly so away
    /// from the saturated tails), and complements `erf`.
    #[test]
    fn erfc_bounds_and_complement(x in -6.0..6.0f64, dx in 0.001..0.5f64) {
        let y = erfc(x);
        // At x ≈ -6 the value saturates to 2.0 exactly in f64 (2 - 1e-16
        // rounds to 2), so the upper bound is inclusive.
        prop_assert!(y > 0.0 && y <= 2.0);
        prop_assert!(erfc(x + dx) <= y);
        if x.abs() < 5.0 {
            prop_assert!(erfc(x + dx) < y);
        }
        prop_assert!((erf(x) + y - 1.0).abs() < 1e-12);
    }

    /// Task ledgers: shares always sum to 100% (when nonempty) and merging
    /// is additive.
    #[test]
    fn task_ledger_shares_sum_to_hundred(
        times in proptest::collection::vec(0.0..10.0f64, 8),
    ) {
        let mut ledger = TaskLedger::new();
        for (task, &t) in TaskKind::ALL.iter().zip(&times) {
            ledger.add(*task, t);
        }
        let total: f64 = TaskKind::ALL.iter().map(|&t| ledger.percent(t)).sum();
        if ledger.total() > 0.0 {
            prop_assert!((total - 100.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(total, 0.0);
        }
        let mut doubled = ledger.clone();
        doubled.merge(&ledger);
        prop_assert!((doubled.total() - 2.0 * ledger.total()).abs() < 1e-12);
    }

    /// Box rescaling preserves fractional coordinates.
    #[test]
    fn box_scaling_preserves_fractional_coordinates(
        p in arb_position(8.0),
        factor in 0.5..2.0f64,
    ) {
        let bx = SimBox::cubic(8.0);
        let scaled = bx.scaled(factor);
        let f0 = bx.fractional(p);
        // Rescale the point the same way NPT does.
        let c0 = (bx.lo() + bx.hi()) * 0.5;
        let p1 = c0 + (p - c0) * factor;
        let f1 = scaled.fractional(p1);
        prop_assert!((f0 - f1).norm() < 1e-9);
    }
}

/// SHAKE restores randomly-perturbed water geometries (not a proptest macro
/// case because convergence needs sane perturbations).
#[test]
fn shake_restores_random_perturbations() {
    use md_core::constraint::{Shake, ShakeParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let bx = SimBox::cubic(50.0);
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..25 {
        let mut atoms = AtomStore::new();
        let base = Vec3::new(25.0, 25.0, 25.0);
        atoms.push(base, Vec3::zero(), 0);
        atoms.push(base + Vec3::new(0.9572, 0.0, 0.0), Vec3::zero(), 1);
        atoms.push(base + Vec3::new(-0.24, 0.9266, 0.0), Vec3::zero(), 1);
        atoms.set_masses(vec![16.0, 1.0]);
        // Random perturbation up to 0.05 Å per component.
        for i in 0..3 {
            let d = Vec3::new(
                (rng.gen::<f64>() - 0.5) * 0.1,
                (rng.gen::<f64>() - 0.5) * 0.1,
                (rng.gen::<f64>() - 0.5) * 0.1,
            );
            atoms.x_mut()[i] += d;
        }
        let mut shake = Shake::new(
            vec![
                ShakeParams {
                    i: 0,
                    j: 1,
                    length: 0.9572,
                },
                ShakeParams {
                    i: 0,
                    j: 2,
                    length: 0.9572,
                },
                ShakeParams {
                    i: 1,
                    j: 2,
                    length: 1.5139,
                },
            ],
            1e-8,
            200,
        );
        shake
            .apply(&mut atoms, &bx, 0.001)
            .expect("shake converges");
        for &(i, j, len) in &[(0usize, 1usize, 0.9572), (0, 2, 0.9572), (1, 2, 1.5139)] {
            let r = bx.min_image(atoms.x()[i], atoms.x()[j]).norm();
            assert!((r - len).abs() < 1e-3, "constraint {i}-{j}: {r} vs {len}");
        }
    }
}
