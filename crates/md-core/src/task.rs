//! The LAMMPS task taxonomy (Table 1 of the paper) and per-task time ledgers.
//!
//! Every phase of a timestep is attributed to one of eight computational
//! tasks. Both the real engine (wall-clock seconds) and the virtual cluster
//! (simulated seconds) account their time through [`TaskLedger`], so the
//! harness can regenerate the runtime-breakdown figures (Figs. 3, 7, 11)
//! from either source.

use std::time::Instant;

/// The computational tasks of a LAMMPS timestep (paper Table 1).
///
/// The variants map onto the steps of the reference timestep structure
/// (paper Figure 1): `Modify` covers fixes including time integration (II),
/// `Neigh` is neighbor-list construction (III), `Comm` is inter-processor
/// exchange (IV), `Pair` is the pairwise potential (V), `Kspace` the
/// long-range solver (VI), `Bond` the bonded forces (VII), and `Output` the
/// thermodynamic output (VIII). Everything else is `Other`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum TaskKind {
    /// Computation of bonded forces.
    Bond,
    /// Inter-processor communication of atoms and their properties.
    Comm,
    /// Computation of long-range interaction forces.
    Kspace,
    /// Fixes and computes invoked by fixes (integration, SHAKE, thermostats).
    Modify,
    /// Neighbor-list construction.
    Neigh,
    /// Output of thermodynamic info and dump files.
    Output,
    /// Computation of the pairwise potential.
    Pair,
    /// All other tasks.
    Other,
}

impl TaskKind {
    /// All tasks in the alphabetical order the paper's figure legends use.
    pub const ALL: [TaskKind; 8] = [
        TaskKind::Bond,
        TaskKind::Comm,
        TaskKind::Kspace,
        TaskKind::Modify,
        TaskKind::Neigh,
        TaskKind::Other,
        TaskKind::Output,
        TaskKind::Pair,
    ];

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::Bond => "Bond",
            TaskKind::Comm => "Comm",
            TaskKind::Kspace => "Kspace",
            TaskKind::Modify => "Modify",
            TaskKind::Neigh => "Neigh",
            TaskKind::Output => "Output",
            TaskKind::Pair => "Pair",
            TaskKind::Other => "Other",
        }
    }

    /// Index of this task in [`TaskKind::ALL`].
    pub fn index(self) -> usize {
        TaskKind::ALL
            .iter()
            .position(|&t| t == self)
            .expect("task in ALL")
    }
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated time per task, in seconds (wall-clock or simulated).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TaskLedger {
    seconds: [f64; 8],
    /// Number of timed phases attributed to each task. Unlike `seconds`
    /// (wall clock, noisy), the counts are exact integers: the
    /// thread-invariance suite asserts they are identical across thread
    /// counts, proving the threaded kernels execute the same step structure.
    #[serde(default)]
    counts: [u64; 8],
}

impl TaskLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        TaskLedger::default()
    }

    /// Adds `seconds` to `task` and counts the phase.
    #[inline]
    pub fn add(&mut self, task: TaskKind, seconds: f64) {
        self.seconds[task.index()] += seconds;
        self.counts[task.index()] += 1;
    }

    /// Time accumulated for `task`.
    pub fn seconds(&self, task: TaskKind) -> f64 {
        self.seconds[task.index()]
    }

    /// Number of timed phases attributed to `task`.
    pub fn count(&self, task: TaskKind) -> u64 {
        self.counts[task.index()]
    }

    /// Per-task phase counts in [`TaskKind::ALL`] order (the deterministic
    /// step-structure fingerprint used by `tests/thread_invariance.rs`).
    pub fn step_counts(&self) -> [u64; 8] {
        self.counts
    }

    /// Total time across all tasks.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Percentage share of `task` (0..=100).
    ///
    /// Returns `0.0` whenever [`TaskLedger::total`] is zero — a freshly
    /// created ledger, one that was [`TaskLedger::reset`], or one where
    /// every recorded duration was zero. The shares therefore do **not**
    /// sum to 100 in that case (they sum to 0).
    pub fn percent(&self, task: TaskKind) -> f64 {
        let t = self.total();
        if t > 0.0 {
            100.0 * self.seconds(task) / t
        } else {
            0.0
        }
    }

    /// Times a closure and attributes the elapsed wall-clock time to `task`.
    pub fn time<T>(&mut self, task: TaskKind, body: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = body();
        self.add(task, t0.elapsed().as_secs_f64());
        out
    }

    /// The componentwise difference `self - before` (seconds and counts),
    /// for reporting only one run's share of a cumulative ledger.
    /// Saturates at zero; `before` is expected to be a prior snapshot.
    pub fn delta_since(&self, before: &TaskLedger) -> TaskLedger {
        let mut out = TaskLedger::new();
        for i in 0..8 {
            out.seconds[i] = (self.seconds[i] - before.seconds[i]).max(0.0);
            out.counts[i] = self.counts[i].saturating_sub(before.counts[i]);
        }
        out
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &TaskLedger) {
        for i in 0..8 {
            self.seconds[i] += other.seconds[i];
            self.counts[i] += other.counts[i];
        }
    }

    /// Per-task maximum over a set of ledgers (the per-rank *worst case*:
    /// with bulk-synchronous ranks, the slowest rank in each task bounds the
    /// step, so `max_across` of the rank ledgers is the critical-path view
    /// the paper's imbalance analysis compares against the mean).
    ///
    /// Returns an empty ledger for an empty slice.
    pub fn max_across(ledgers: &[TaskLedger]) -> TaskLedger {
        let mut out = TaskLedger::new();
        for l in ledgers {
            for i in 0..8 {
                out.seconds[i] = out.seconds[i].max(l.seconds[i]);
                out.counts[i] = out.counts[i].max(l.counts[i]);
            }
        }
        out
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.seconds = [0.0; 8];
        self.counts = [0; 8];
    }

    /// `(task, seconds)` pairs in legend order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskKind, f64)> + '_ {
        TaskKind::ALL.iter().map(move |&t| (t, self.seconds(t)))
    }

    /// Appends the ledger for a checkpoint (seconds then counts, in
    /// [`TaskKind::ALL`] order).
    pub fn state_save(&self, w: &mut crate::wire::Writer) {
        w.f64s(&self.seconds);
        w.u64s(&self.counts);
    }

    /// Restores a ledger written by [`TaskLedger::state_save`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::CorruptState`] on a malformed blob.
    pub fn state_load(&mut self, r: &mut crate::wire::Reader<'_>) -> crate::error::Result<()> {
        let corrupt = |n: usize| crate::CoreError::CorruptState {
            what: "task ledger",
            detail: format!("expected 8 slots, found {n}"),
        };
        let seconds = r.f64s()?;
        self.seconds = seconds.try_into().map_err(|v: Vec<f64>| corrupt(v.len()))?;
        let counts = r.u64s()?;
        self.counts = counts.try_into().map_err(|v: Vec<u64>| corrupt(v.len()))?;
        Ok(())
    }
}

impl std::fmt::Display for TaskLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.total();
        write!(f, "total {total:.4}s [")?;
        let mut first = true;
        for (t, s) in self.iter() {
            if s > 0.0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{t} {:.1}%", 100.0 * s / total)?;
                first = false;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_and_percentages() {
        let mut l = TaskLedger::new();
        l.add(TaskKind::Pair, 3.0);
        l.add(TaskKind::Neigh, 1.0);
        assert_eq!(l.total(), 4.0);
        assert_eq!(l.percent(TaskKind::Pair), 75.0);
        assert_eq!(l.percent(TaskKind::Kspace), 0.0);
    }

    #[test]
    fn time_closure_attributes_wall_clock() {
        let mut l = TaskLedger::new();
        let out = l.time(TaskKind::Other, || {
            std::hint::black_box((0..10_000).sum::<u64>())
        });
        assert_eq!(out, 49_995_000);
        assert!(l.seconds(TaskKind::Other) > 0.0);
    }

    #[test]
    fn counts_track_phases_exactly() {
        let mut l = TaskLedger::new();
        l.add(TaskKind::Pair, 0.5);
        l.add(TaskKind::Pair, 0.0); // zero-duration phases still count
        l.add(TaskKind::Neigh, 0.1);
        assert_eq!(l.count(TaskKind::Pair), 2);
        assert_eq!(l.count(TaskKind::Neigh), 1);
        assert_eq!(l.count(TaskKind::Bond), 0);
        let mut other = TaskLedger::new();
        other.add(TaskKind::Pair, 1.0);
        l.merge(&other);
        assert_eq!(l.count(TaskKind::Pair), 3);
        l.reset();
        assert_eq!(l.step_counts(), [0; 8]);
    }

    #[test]
    fn merge_sums_componentwise() {
        let mut a = TaskLedger::new();
        a.add(TaskKind::Bond, 1.0);
        let mut b = TaskLedger::new();
        b.add(TaskKind::Bond, 2.0);
        b.add(TaskKind::Comm, 0.5);
        a.merge(&b);
        assert_eq!(a.seconds(TaskKind::Bond), 3.0);
        assert_eq!(a.seconds(TaskKind::Comm), 0.5);
    }

    #[test]
    fn all_covers_every_label_once() {
        let labels: std::collections::HashSet<_> =
            TaskKind::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn empty_ledger_percent_is_zero() {
        let l = TaskLedger::new();
        assert_eq!(l.percent(TaskKind::Pair), 0.0);
        // Zero-duration entries leave total() at zero too; shares stay 0.
        let mut z = TaskLedger::new();
        z.add(TaskKind::Pair, 0.0);
        assert_eq!(z.percent(TaskKind::Pair), 0.0);
    }

    #[test]
    fn max_across_takes_componentwise_maximum() {
        let mut a = TaskLedger::new();
        a.add(TaskKind::Pair, 3.0);
        a.add(TaskKind::Comm, 0.2);
        let mut b = TaskLedger::new();
        b.add(TaskKind::Pair, 1.0);
        b.add(TaskKind::Comm, 0.9);
        b.add(TaskKind::Kspace, 0.4);
        let m = TaskLedger::max_across(&[a, b]);
        assert_eq!(m.seconds(TaskKind::Pair), 3.0);
        assert_eq!(m.seconds(TaskKind::Comm), 0.9);
        assert_eq!(m.seconds(TaskKind::Kspace), 0.4);
        assert_eq!(m.seconds(TaskKind::Bond), 0.0);
        // Empty input gives an empty ledger.
        assert_eq!(TaskLedger::max_across(&[]), TaskLedger::new());
    }

    #[test]
    fn observe_task_labels_match_taxonomy_order() {
        // md-observe is a leaf crate and cannot see TaskKind; its slot
        // order is a mirror of TaskKind::ALL, pinned here.
        assert_eq!(md_observe::NUM_TASKS, TaskKind::ALL.len());
        for (i, t) in TaskKind::ALL.iter().enumerate() {
            assert_eq!(md_observe::TASK_LABELS[i], t.label(), "slot {i}");
            assert_eq!(t.index(), i);
        }
    }
}
