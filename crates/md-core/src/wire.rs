//! Minimal little-endian binary encoding for checkpoint/restart state.
//!
//! The vendored `serde` is marker-traits only (no backend), so everything
//! that must survive a process restart — atom arrays, RNG streams,
//! thermostat internals, neighbor-list layout — is encoded by hand through
//! [`Writer`]/[`Reader`]. The format is deliberately dumb: fixed-width
//! little-endian scalars, `u64` length prefixes, no alignment, no varints.
//! `f64` round-trips through [`f64::to_bits`], so restored state is bitwise
//! identical to what was saved — the property the resume tests assert.
//!
//! Corruption is reported as [`CoreError::CorruptState`]; a [`crc32`]
//! helper is provided for whole-file checksums (IEEE/zlib polynomial).

use crate::error::{CoreError, Result};
use crate::vec3::Vec3;
use crate::V3;

/// Appends fixed-width little-endian fields to a byte buffer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes raw bytes with no length prefix (magic strings, payloads whose
    /// length the caller frames).
    pub fn raw(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` via its bit pattern (bitwise round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a [`V3`] as three `f64`.
    pub fn v3(&mut self, v: V3) {
        self.f64(v.x);
        self.f64(v.y);
        self.f64(v.z);
    }

    /// Writes a length-prefixed byte blob.
    pub fn blob(&mut self, data: &[u8]) {
        self.usize(data.len());
        self.raw(data);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.blob(s.as_bytes());
    }

    /// Grows the buffer by `extra` zeroed bytes and returns the new tail.
    /// The bulk slice writers fill it with `chunks_exact_mut`, which the
    /// optimizer turns into one pass (these paths carry the multi-megabyte
    /// atom and neighbor arrays, where per-element `extend_from_slice`
    /// costs ~10x).
    fn tail(&mut self, extra: usize) -> &mut [u8] {
        let start = self.buf.len();
        self.buf.resize(start + extra, 0);
        &mut self.buf[start..]
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for (dst, &v) in self.tail(vs.len() * 8).chunks_exact_mut(8).zip(vs) {
            dst.copy_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn u64s(&mut self, vs: &[u64]) {
        self.usize(vs.len());
        for (dst, &v) in self.tail(vs.len() * 8).chunks_exact_mut(8).zip(vs) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a length-prefixed `u32` slice.
    pub fn u32s(&mut self, vs: &[u32]) {
        self.usize(vs.len());
        for (dst, &v) in self.tail(vs.len() * 4).chunks_exact_mut(4).zip(vs) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a length-prefixed `usize` slice (as `u64`).
    pub fn usizes(&mut self, vs: &[usize]) {
        self.usize(vs.len());
        for (dst, &v) in self.tail(vs.len() * 8).chunks_exact_mut(8).zip(vs) {
            dst.copy_from_slice(&(v as u64).to_le_bytes());
        }
    }

    /// Writes a length-prefixed [`V3`] slice.
    pub fn v3s(&mut self, vs: &[V3]) {
        self.usize(vs.len());
        for (dst, v) in self.tail(vs.len() * 24).chunks_exact_mut(24).zip(vs) {
            dst[0..8].copy_from_slice(&v.x.to_bits().to_le_bytes());
            dst[8..16].copy_from_slice(&v.y.to_bits().to_le_bytes());
            dst[16..24].copy_from_slice(&v.z.to_bits().to_le_bytes());
        }
    }

    /// Writes a length-prefixed slice of `[i32; 3]` (periodic image counters).
    pub fn i32x3s(&mut self, vs: &[[i32; 3]]) {
        self.usize(vs.len());
        for (dst, v) in self.tail(vs.len() * 12).chunks_exact_mut(12).zip(vs) {
            dst[0..4].copy_from_slice(&v[0].to_le_bytes());
            dst[4..8].copy_from_slice(&v[1].to_le_bytes());
            dst[8..12].copy_from_slice(&v[2].to_le_bytes());
        }
    }
}

/// Decodes fields written by [`Writer`], failing with
/// [`CoreError::CorruptState`] on truncation or implausible lengths.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    /// Context label used in error messages.
    what: &'static str,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`; `what` labels decode errors.
    pub fn new(data: &'a [u8], what: &'static str) -> Self {
        Reader { data, pos: 0, what }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless every byte has been consumed (trailing garbage check).
    pub fn expect_exhausted(&self) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(self.corrupt(format!("{} trailing bytes after payload", self.remaining())))
        }
    }

    fn corrupt(&self, detail: String) -> CoreError {
        CoreError::CorruptState {
            what: self.what,
            detail,
        }
    }

    /// Takes `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.corrupt(format!(
                "truncated at byte {}: wanted {n} more, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.raw(1)?[0])
    }

    /// Reads a `bool` (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.corrupt(format!("invalid bool byte {b:#x}"))),
        }
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.raw(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.raw(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `i32`.
    pub fn i32(&mut self) -> Result<i32> {
        let b = self.raw(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `usize` (stored as `u64`), bounds-checked against the
    /// remaining payload so corrupted lengths fail instead of OOM-ing.
    pub fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.corrupt(format!("length {v} exceeds usize")))
    }

    /// Reads a length prefix for elements of at least `elem_bytes` each,
    /// rejecting lengths that cannot fit in the remaining payload.
    fn len_for(&mut self, elem_bytes: usize) -> Result<usize> {
        let n = self.usize()?;
        if n.saturating_mul(elem_bytes) > self.remaining() {
            return Err(self.corrupt(format!(
                "implausible length {n} (x{elem_bytes} bytes) with {} bytes left",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a [`V3`].
    pub fn v3(&mut self) -> Result<V3> {
        Ok(Vec3::new(self.f64()?, self.f64()?, self.f64()?))
    }

    /// Reads a length-prefixed byte blob.
    pub fn blob(&mut self) -> Result<&'a [u8]> {
        let n = self.len_for(1)?;
        self.raw(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let b = self.blob()?;
        String::from_utf8(b.to_vec()).map_err(|e| self.corrupt(format!("invalid UTF-8: {e}")))
    }

    fn le_u64(b: &[u8]) -> u64 {
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.len_for(8)?;
        let bytes = self.raw(n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|b| f64::from_bits(Self::le_u64(b)))
            .collect())
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn u64s(&mut self) -> Result<Vec<u64>> {
        let n = self.len_for(8)?;
        let bytes = self.raw(n * 8)?;
        Ok(bytes.chunks_exact(8).map(Self::le_u64).collect())
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn u32s(&mut self) -> Result<Vec<u32>> {
        let n = self.len_for(4)?;
        let bytes = self.raw(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect())
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn usizes(&mut self) -> Result<Vec<usize>> {
        let n = self.len_for(8)?;
        let bytes = self.raw(n * 8)?;
        bytes
            .chunks_exact(8)
            .map(|b| {
                let v = Self::le_u64(b);
                usize::try_from(v).map_err(|_| self.corrupt(format!("length {v} exceeds usize")))
            })
            .collect()
    }

    /// Reads a length-prefixed [`V3`] vector.
    pub fn v3s(&mut self) -> Result<Vec<V3>> {
        let n = self.len_for(24)?;
        let bytes = self.raw(n * 24)?;
        Ok(bytes
            .chunks_exact(24)
            .map(|b| {
                Vec3::new(
                    f64::from_bits(Self::le_u64(&b[0..8])),
                    f64::from_bits(Self::le_u64(&b[8..16])),
                    f64::from_bits(Self::le_u64(&b[16..24])),
                )
            })
            .collect())
    }

    /// Reads a length-prefixed `[i32; 3]` vector.
    pub fn i32x3s(&mut self) -> Result<Vec<[i32; 3]>> {
        let n = self.len_for(12)?;
        let bytes = self.raw(n * 12)?;
        Ok(bytes
            .chunks_exact(12)
            .map(|b| {
                [
                    i32::from_le_bytes([b[0], b[1], b[2], b[3]]),
                    i32::from_le_bytes([b[4], b[5], b[6], b[7]]),
                    i32::from_le_bytes([b[8], b[9], b[10], b[11]]),
                ]
            })
            .collect())
    }
}

/// CRC-32 (IEEE 802.3 / zlib polynomial, reflected), for checkpoint
/// checksums. Slicing-by-8: eight compile-time tables let the hot loop
/// consume 8 bytes per iteration, which matters because the checksum runs
/// over multi-megabyte checkpoint bodies on every periodic save.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLES: [[u32; 256]; 8] = {
        let mut tables = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            tables[0][i] = c;
            i += 1;
        }
        let mut t = 1;
        while t < 8 {
            let mut i = 0;
            while i < 256 {
                let prev = tables[t - 1][i];
                tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
                i += 1;
            }
            t += 1;
        }
        tables
    };
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_bitwise() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i32(-42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("chute");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.str().unwrap(), "chute");
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn slices_round_trip() {
        let mut w = Writer::new();
        w.v3s(&[Vec3::new(1.0, -2.5, 3e-300), Vec3::zero()]);
        w.i32x3s(&[[1, -2, 3]]);
        w.u32s(&[9, 8, 7]);
        w.usizes(&[0, usize::MAX]);
        w.f64s(&[0.1, 0.2]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        let vs = r.v3s().unwrap();
        assert_eq!(vs[0], Vec3::new(1.0, -2.5, 3e-300));
        assert_eq!(r.i32x3s().unwrap(), vec![[1, -2, 3]]);
        assert_eq!(r.u32s().unwrap(), vec![9, 8, 7]);
        assert_eq!(r.usizes().unwrap(), vec![0, usize::MAX]);
        assert_eq!(r.f64s().unwrap(), vec![0.1, 0.2]);
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = Writer::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4], "neighbor list");
        let err = r.u64().unwrap_err();
        assert!(matches!(
            err,
            CoreError::CorruptState {
                what: "neighbor list",
                ..
            }
        ));
    }

    #[test]
    fn implausible_length_is_rejected_without_allocating() {
        let mut w = Writer::new();
        w.u64(u64::MAX / 2); // absurd element count
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert!(r.v3s().is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = Writer::new();
        w.u32(5);
        w.u8(0xFF);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        r.u32().unwrap();
        assert!(r.expect_exhausted().is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }
}
