//! The engine's shared-memory `Threads(n)` knob.
//!
//! The paper's Section 2.2 contrasts LAMMPS's two intra-node parallelization
//! levels — MPI spatial decomposition and OpenMP loop threading. `md-parallel`
//! models the former; this knob drives the latter on the *real* engine: the
//! pair kernels (`md-potentials::threaded`), the neighbor-list build
//! (`md-core::neighbor`), and the PPPM solver (`md-kspace`) all accept a
//! thread-team configuration through [`crate::SimulationBuilder::threads`].
//!
//! ## Determinism contract
//!
//! With `deterministic` set, every parallel reduction uses a *fixed-order*
//! chunk decomposition whose shape is independent of the thread count: the
//! atom range is split into [`Threads::DET_CHUNKS`] chunks, each chunk's
//! partial sum is accumulated in serial order, and the partials are reduced
//! in ascending chunk order. Running the same deck at 1, 2, or 4 threads
//! then reproduces the exact same floating-point operation tree, so the
//! trajectories match **bitwise** (locked in by `tests/thread_invariance.rs`).
//! In fast mode the chunk count equals the thread count, which removes the
//! redundant buffer traffic but lets results drift across thread counts at
//! the fp-associativity level (still deterministic for a *fixed* count).

/// Shared-memory thread-team configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Threads {
    /// Worker threads for the hot kernels (1 = serial).
    pub count: usize,
    /// Fixed-order reductions: bitwise thread-count-invariant trajectories.
    pub deterministic: bool,
}

impl Threads {
    /// Fixed chunk count used by deterministic-mode reductions. The chunk
    /// decomposition (and therefore the reduction tree) must not depend on
    /// the thread count, so deterministic runs use this many chunks
    /// regardless of `count`; thread counts above it gain nothing.
    pub const DET_CHUNKS: usize = 16;

    /// Serial execution (the default everywhere).
    pub fn serial() -> Self {
        Threads {
            count: 1,
            deterministic: false,
        }
    }

    /// `n` threads in fast mode (per-count-deterministic reductions).
    pub fn fast(n: usize) -> Self {
        Threads {
            count: n.max(1),
            deterministic: false,
        }
    }

    /// `n` threads with bitwise thread-count-invariant reductions.
    pub fn deterministic(n: usize) -> Self {
        Threads {
            count: n.max(1),
            deterministic: true,
        }
    }

    /// Reads the knob from the environment: `MD_THREADS` (thread count,
    /// default 1) and `MD_DETERMINISTIC` (`1`/`true`/`on` switches the
    /// fixed-order reductions on). This is what the CI thread matrix sets.
    pub fn from_env() -> Self {
        let count = std::env::var("MD_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        let deterministic = matches!(
            std::env::var("MD_DETERMINISTIC").as_deref(),
            Ok("1") | Ok("true") | Ok("on")
        );
        Threads {
            count,
            deterministic,
        }
    }

    /// Whether any kernel should take its threaded path. Deterministic mode
    /// counts as active even at one thread: the fixed-chunk reduction must
    /// run so a 1-thread trajectory is comparable to an n-thread one.
    pub fn active(self) -> bool {
        self.count > 1 || self.deterministic
    }

    /// The reduction chunk count this configuration implies.
    pub fn chunks(self) -> usize {
        if self.deterministic {
            Self::DET_CHUNKS
        } else {
            self.count
        }
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::serial()
    }
}

impl std::fmt::Display for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} thread{}{}",
            self.count,
            if self.count == 1 { "" } else { "s" },
            if self.deterministic {
                " (deterministic)"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_inactive_fast_multi_is_active() {
        assert!(!Threads::serial().active());
        assert!(!Threads::fast(1).active());
        assert!(Threads::fast(2).active());
    }

    #[test]
    fn deterministic_is_active_even_single_threaded() {
        assert!(Threads::deterministic(1).active());
        assert_eq!(Threads::deterministic(1).chunks(), Threads::DET_CHUNKS);
        assert_eq!(Threads::deterministic(4).chunks(), Threads::DET_CHUNKS);
        assert_eq!(Threads::fast(4).chunks(), 4);
    }

    #[test]
    fn zero_counts_clamp_to_one() {
        assert_eq!(Threads::fast(0).count, 1);
        assert_eq!(Threads::deterministic(0).count, 1);
    }

    #[test]
    fn display_names_the_mode() {
        assert_eq!(Threads::serial().to_string(), "1 thread");
        assert_eq!(
            Threads::deterministic(4).to_string(),
            "4 threads (deterministic)"
        );
    }
}
