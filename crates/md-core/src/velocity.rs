//! Direct velocity-manipulation fixes: hard temperature rescaling
//! (LAMMPS `fix temp/rescale`) and the Berendsen weak-coupling thermostat
//! (`fix temp/berendsen`) — the cheap alternatives to Langevin/Nose-Hoover
//! that equilibration stages of MD decks commonly use.
//!
//! Both act on velocities directly between steps (not through forces), so
//! they are applied by the caller via [`TempRescale::apply`] /
//! [`BerendsenThermostat::apply`] rather than as post-force [`crate::Fix`]es.

use crate::atoms::AtomStore;
use crate::compute::temperature;
use crate::units::UnitSystem;

/// Hard velocity rescaling toward a target temperature whenever the
/// instantaneous temperature strays outside a window.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TempRescale {
    /// Target temperature.
    pub t_target: f64,
    /// Allowed deviation before rescaling triggers.
    pub window: f64,
    /// Fraction of the deviation removed per application (1.0 = exact).
    pub fraction: f64,
}

impl TempRescale {
    /// Creates a rescaler.
    ///
    /// # Panics
    ///
    /// Panics if the target is non-positive, the window negative, or the
    /// fraction outside `(0, 1]`.
    pub fn new(t_target: f64, window: f64, fraction: f64) -> Self {
        assert!(t_target > 0.0, "target temperature must be positive");
        assert!(window >= 0.0, "window must be non-negative");
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        TempRescale {
            t_target,
            window,
            fraction,
        }
    }

    /// Rescales velocities if the temperature is outside the window.
    ///
    /// Returns the temperature after the call.
    pub fn apply(&self, atoms: &mut AtomStore, units: &UnitSystem) -> f64 {
        let t = temperature(atoms, units);
        if t <= 0.0 || (t - self.t_target).abs() <= self.window {
            return t;
        }
        let t_new = t + self.fraction * (self.t_target - t);
        let s = (t_new / t).sqrt();
        for v in atoms.v_mut() {
            *v *= s;
        }
        temperature(atoms, units)
    }
}

/// Berendsen weak-coupling thermostat: velocities scale by
/// `λ = sqrt(1 + (dt/τ)(T0/T - 1))` each step.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BerendsenThermostat {
    /// Target temperature.
    pub t_target: f64,
    /// Coupling time constant τ (time units).
    pub tau: f64,
}

impl BerendsenThermostat {
    /// Creates the thermostat.
    ///
    /// # Panics
    ///
    /// Panics if the target or τ is non-positive.
    pub fn new(t_target: f64, tau: f64) -> Self {
        assert!(t_target > 0.0, "target temperature must be positive");
        assert!(tau > 0.0, "coupling time must be positive");
        BerendsenThermostat { t_target, tau }
    }

    /// Applies one weak-coupling step of length `dt`.
    ///
    /// Returns the temperature after the call.
    pub fn apply(&self, atoms: &mut AtomStore, units: &UnitSystem, dt: f64) -> f64 {
        let t = temperature(atoms, units);
        if t <= 0.0 {
            return t;
        }
        let lambda2 = 1.0 + (dt / self.tau) * (self.t_target / t - 1.0);
        let s = lambda2.max(0.0).sqrt();
        for v in atoms.v_mut() {
            *v *= s;
        }
        temperature(atoms, units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::seed_velocities;
    use crate::vec3::Vec3;

    fn hot_gas(t: f64) -> (AtomStore, UnitSystem) {
        let mut a = AtomStore::new();
        for i in 0..200 {
            a.push(Vec3::new(i as f64, 0.0, 0.0), Vec3::zero(), 0);
        }
        a.set_masses(vec![1.0]);
        let u = UnitSystem::lj();
        seed_velocities(&mut a, &u, t, 7);
        (a, u)
    }

    #[test]
    fn rescale_hits_target_exactly_with_full_fraction() {
        let (mut a, u) = hot_gas(3.0);
        let fix = TempRescale::new(1.0, 0.05, 1.0);
        let t = fix.apply(&mut a, &u);
        assert!((t - 1.0).abs() < 1e-9, "temperature {t}");
    }

    #[test]
    fn rescale_respects_window() {
        let (mut a, u) = hot_gas(1.02);
        let fix = TempRescale::new(1.0, 0.1, 1.0);
        let t = fix.apply(&mut a, &u);
        assert!((t - 1.02).abs() < 1e-9, "inside window, no rescale: {t}");
    }

    #[test]
    fn rescale_partial_fraction_moves_halfway() {
        let (mut a, u) = hot_gas(2.0);
        let fix = TempRescale::new(1.0, 0.0, 0.5);
        let t = fix.apply(&mut a, &u);
        assert!((t - 1.5).abs() < 1e-9, "halfway: {t}");
    }

    #[test]
    fn berendsen_relaxes_exponentially() {
        let (mut a, u) = hot_gas(2.0);
        let thermo = BerendsenThermostat::new(1.0, 0.5);
        let dt = 0.005;
        let mut t = 2.0;
        // After τ of coupling the deviation should shrink by ~1/e.
        for _ in 0..100 {
            t = thermo.apply(&mut a, &u, dt);
        }
        let expect = 1.0 + (2.0 - 1.0) * (-(100.0 * dt) / 0.5f64).exp();
        assert!((t - expect).abs() < 0.05, "T = {t}, expect ≈ {expect}");
    }

    #[test]
    fn berendsen_heats_cold_systems_too() {
        let (mut a, u) = hot_gas(0.5);
        let thermo = BerendsenThermostat::new(1.0, 0.2);
        let mut t = 0.5;
        for _ in 0..400 {
            t = thermo.apply(&mut a, &u, 0.005);
        }
        assert!((t - 1.0).abs() < 0.05, "T = {t}");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rescale_rejects_bad_fraction() {
        let _ = TempRescale::new(1.0, 0.0, 0.0);
    }
}
