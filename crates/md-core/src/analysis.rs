//! Trajectory analysis: radial distribution function, mean-squared
//! displacement, and velocity autocorrelation — the standard observables a
//! downstream MD user computes from the engine's output (step VIII of the
//! paper's timestep, "compute system properties of interest").

use crate::atoms::AtomStore;
use crate::error::{CoreError, Result};
use crate::neighbor::{NeighborList, NeighborListKind};
use crate::simbox::SimBox;
use crate::vec3::Vec3;
use crate::V3;

/// A radial distribution function g(r) histogram.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Rdf {
    rmax: f64,
    bins: Vec<f64>,
    samples: usize,
    natoms: usize,
    volume: f64,
}

impl Rdf {
    /// Creates an empty g(r) accumulator with `nbins` bins up to `rmax`.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive range or zero bins.
    pub fn new(rmax: f64, nbins: usize) -> Result<Self> {
        if !(rmax > 0.0) || nbins == 0 {
            return Err(CoreError::InvalidParameter {
                name: "rdf",
                reason: format!("need rmax ({rmax}) > 0 and nbins ({nbins}) > 0"),
            });
        }
        Ok(Rdf {
            rmax,
            bins: vec![0.0; nbins],
            samples: 0,
            natoms: 0,
            volume: 0.0,
        })
    }

    /// Accumulates one configuration (cell-binned, O(N·rmax³ρ)).
    ///
    /// # Errors
    ///
    /// Returns an error if `rmax` exceeds half the smallest box extent.
    pub fn accumulate(&mut self, bx: &SimBox, x: &[V3]) -> Result<()> {
        let mut nl = NeighborList::new(self.rmax, 0.0, NeighborListKind::Half);
        nl.build(x, bx)?;
        let nbins = self.bins.len();
        let dr = self.rmax / nbins as f64;
        for i in 0..x.len() {
            for &j in nl.neighbors(i) {
                let r = bx.min_image(x[i], x[j as usize]).norm();
                let bin = ((r / dr) as usize).min(nbins - 1);
                // Each half-list pair counts for both atoms.
                self.bins[bin] += 2.0;
            }
        }
        self.samples += 1;
        self.natoms = x.len();
        self.volume = bx.volume();
        Ok(())
    }

    /// Normalized `(r, g(r))` rows (bin centers).
    pub fn histogram(&self) -> Vec<(f64, f64)> {
        if self.samples == 0 || self.natoms == 0 {
            return Vec::new();
        }
        let nbins = self.bins.len();
        let dr = self.rmax / nbins as f64;
        let rho = self.natoms as f64 / self.volume;
        let norm = self.samples as f64 * self.natoms as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(k, &count)| {
                let r_lo = k as f64 * dr;
                let r_hi = r_lo + dr;
                let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
                let ideal = rho * shell;
                (r_lo + 0.5 * dr, count / (norm * ideal))
            })
            .collect()
    }

    /// The position of the global maximum of g(r) (None before sampling).
    pub fn first_peak(&self) -> Option<f64> {
        let h = self.histogram();
        h.iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .filter(|&&(_, g)| g > 0.0)
            .map(|&(r, _)| r)
    }

    /// The center of the first bin where g(r) exceeds `threshold` — the
    /// onset of the first coordination shell (None before sampling or if
    /// nothing exceeds the threshold).
    pub fn first_shell(&self, threshold: f64) -> Option<f64> {
        self.histogram()
            .into_iter()
            .find(|&(_, g)| g > threshold)
            .map(|(r, _)| r)
    }
}

/// Mean-squared displacement tracker using unwrapped coordinates
/// (positions + image counters, so periodic wrapping does not truncate
/// trajectories).
#[derive(Debug, Clone)]
pub struct Msd {
    origin: Vec<V3>,
}

impl Msd {
    /// Captures the current unwrapped positions as the displacement origin.
    pub fn new(atoms: &AtomStore, bx: &SimBox) -> Self {
        Msd {
            origin: unwrapped(atoms, bx),
        }
    }

    /// Mean-squared displacement relative to the origin snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the atom count changed since the origin snapshot.
    pub fn value(&self, atoms: &AtomStore, bx: &SimBox) -> f64 {
        let now = unwrapped(atoms, bx);
        assert_eq!(now.len(), self.origin.len(), "atom count changed");
        if now.is_empty() {
            return 0.0;
        }
        now.iter()
            .zip(&self.origin)
            .map(|(a, b)| (*a - *b).norm2())
            .sum::<f64>()
            / now.len() as f64
    }
}

/// Velocity autocorrelation tracker: `C(t) = ⟨v(t)·v(0)⟩ / ⟨v(0)·v(0)⟩`.
#[derive(Debug, Clone)]
pub struct VelocityAutocorrelation {
    v0: Vec<V3>,
    norm: f64,
}

impl VelocityAutocorrelation {
    /// Captures the current velocities as the correlation origin.
    pub fn new(atoms: &AtomStore) -> Self {
        let v0: Vec<V3> = atoms.v().to_vec();
        let norm = v0
            .iter()
            .map(|v| v.norm2())
            .sum::<f64>()
            .max(f64::MIN_POSITIVE);
        VelocityAutocorrelation { v0, norm }
    }

    /// The normalized correlation at the current time (1.0 at the origin).
    ///
    /// # Panics
    ///
    /// Panics if the atom count changed since the origin snapshot.
    pub fn value(&self, atoms: &AtomStore) -> f64 {
        assert_eq!(atoms.len(), self.v0.len(), "atom count changed");
        let dot: f64 = atoms.v().iter().zip(&self.v0).map(|(a, b)| a.dot(*b)).sum();
        dot / self.norm
    }
}

fn unwrapped(atoms: &AtomStore, bx: &SimBox) -> Vec<V3> {
    let l = bx.lengths();
    atoms
        .x()
        .iter()
        .zip(atoms.images())
        .map(|(&p, img)| {
            p + Vec3::new(
                img[0] as f64 * l.x,
                img[1] as f64 * l.y,
                img[2] as f64 * l.z,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gas(n: usize, l: f64, seed: u64) -> (SimBox, Vec<V3>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bx = SimBox::cubic(l);
        let x = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                )
            })
            .collect();
        (bx, x)
    }

    #[test]
    fn ideal_gas_rdf_is_flat_at_one() {
        let (bx, x) = gas(4000, 20.0, 1);
        let mut rdf = Rdf::new(5.0, 25).unwrap();
        rdf.accumulate(&bx, &x).unwrap();
        let h = rdf.histogram();
        // Skip the first couple of bins (tiny shells, noisy).
        for &(r, g) in h.iter().skip(3) {
            assert!((g - 1.0).abs() < 0.25, "g({r:.2}) = {g:.2}");
        }
    }

    #[test]
    fn lattice_rdf_peaks_at_nearest_neighbor_distance() {
        // Simple cubic lattice spacing 2: first peak at r = 2.
        let bx = SimBox::cubic(20.0);
        let mut x = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                for k in 0..10 {
                    x.push(Vec3::new(2.0 * i as f64, 2.0 * j as f64, 2.0 * k as f64));
                }
            }
        }
        let mut rdf = Rdf::new(3.5, 70).unwrap();
        rdf.accumulate(&bx, &x).unwrap();
        // On a perfect lattice g(r) is a train of delta spikes; locate the
        // onset of the first coordination shell rather than the global max
        // (the 12-neighbor second shell can rival the 6-neighbor first one).
        let shell = rdf.first_shell(1.0).unwrap();
        assert!((shell - 2.0).abs() < 0.1, "first shell at {shell}");
        let peak = rdf.first_peak().unwrap();
        assert!(peak >= shell, "peak {peak} before the first shell {shell}");
    }

    #[test]
    fn rdf_rejects_oversized_range() {
        let (bx, x) = gas(100, 6.0, 2);
        let mut rdf = Rdf::new(4.0, 10).unwrap();
        assert!(rdf.accumulate(&bx, &x).is_err());
    }

    #[test]
    fn msd_tracks_ballistic_motion_through_wrapping() {
        let bx = SimBox::cubic(10.0);
        let mut atoms = AtomStore::new();
        atoms.push(Vec3::new(5.0, 5.0, 5.0), Vec3::new(1.0, 0.0, 0.0), 0);
        atoms.set_masses(vec![1.0]);
        let msd = Msd::new(&atoms, &bx);
        // Move 23 units in x, wrapping twice.
        for _ in 0..230 {
            atoms.x_mut()[0].x += 0.1;
            let bx2 = bx;
            let (x, im) = atoms.x_and_images_mut();
            bx2.wrap(&mut x[0], &mut im[0]);
        }
        let v = msd.value(&atoms, &bx);
        assert!((v - 23.0f64.powi(2)).abs() < 1e-6, "MSD {v}");
    }

    #[test]
    fn vacf_starts_at_one_and_flips_sign_on_reversal() {
        let mut atoms = AtomStore::new();
        for i in 0..10 {
            atoms.push(Vec3::new(i as f64, 0.0, 0.0), Vec3::new(1.0, -0.5, 0.25), 0);
        }
        atoms.set_masses(vec![1.0]);
        let vacf = VelocityAutocorrelation::new(&atoms);
        assert!((vacf.value(&atoms) - 1.0).abs() < 1e-12);
        for v in atoms.v_mut() {
            *v = -*v;
        }
        assert!((vacf.value(&atoms) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_bins_rejected() {
        assert!(Rdf::new(5.0, 0).is_err());
        assert!(Rdf::new(-1.0, 10).is_err());
    }
}
