//! # md-core — the verlette molecular-dynamics engine core
//!
//! This crate implements the structural skeleton of a classical MD code in the
//! spirit of LAMMPS, as characterized by Peverelli et al., *"Characterizing
//! Molecular Dynamics Simulation on Commodity Platforms"* (IISWC 2022):
//!
//! * a simulation box with periodic boundary conditions ([`SimBox`]),
//! * a structure-of-arrays atom store with molecular topology ([`AtomStore`]),
//! * cell-binned Verlet neighbor lists with a skin distance ([`NeighborList`]),
//! * velocity-Verlet NVE and Nose-Hoover style NPT integration,
//! * a Langevin thermostat and SHAKE bond constraints,
//! * the LAMMPS task taxonomy (Pair / Bond / Kspace / Neigh / Comm / Modify /
//!   Output / Other) with per-task timing ledgers ([`TaskLedger`]),
//! * and the [`Simulation`] driver that stitches a timestep together in the
//!   order of Figure 1 of the paper.
//!
//! Force fields live in `md-potentials`; long-range solvers in `md-kspace`;
//! the domain-decomposed virtual cluster in `md-parallel`.
//!
//! ## Example
//!
//! ```rust
//! use md_core::{AtomStore, SimBox, Vec3};
//!
//! // An empty cubic box, 10x10x10 in reduced units, fully periodic.
//! let bx = SimBox::cubic(10.0);
//! let mut atoms = AtomStore::new();
//! atoms.push(Vec3::new(1.0, 2.0, 3.0), Vec3::zero(), 0);
//! assert_eq!(atoms.len(), 1);
//! assert!((bx.volume() - 1000.0).abs() < 1e-12);
//! ```

pub mod analysis;
pub mod atoms;
pub mod compute;
pub mod constraint;
pub mod error;
pub mod force;
pub mod integrate;
pub mod math;
pub mod neighbor;
pub mod real;
pub mod simbox;
pub mod simulation;
pub mod task;
pub mod thermostat;
pub mod threads;
pub mod units;
pub mod vec3;
pub mod velocity;
pub mod wire;

pub use atoms::{Angle, AtomStore, Bond, Dihedral};
pub use compute::{kinetic_energy, remove_drift, temperature, ThermoState};
pub use constraint::{Shake, ShakeParams};
pub use error::{CoreError, Result};
pub use force::{
    AngleStyle, BondStyle, DihedralStyle, EnergyVirial, Fix, KspaceStyle, PairStyle, PairSystem,
};
pub use integrate::{Integrator, NoseHooverNpt, NptParams, VelocityVerlet};
pub use neighbor::{NeighborBuildStats, NeighborList, NeighborListKind};
pub use real::{PrecisionMode, Real};
pub use simbox::SimBox;
pub use simulation::{Simulation, SimulationBuilder, StepReport};
pub use task::{TaskKind, TaskLedger};
pub use thermostat::Langevin;
pub use threads::Threads;
pub use units::UnitSystem;
pub use vec3::Vec3;
pub use velocity::{BerendsenThermostat, TempRescale};

/// Convenience alias for the engine's state-precision vector (always `f64`).
pub type V3 = Vec3<f64>;
