//! A minimal 3-vector generic over the kernel scalar type.

use crate::real::Real;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-component vector of [`Real`] scalars.
///
/// Positions, velocities, and forces are stored as `Vec3<f64>` (alias
/// [`crate::V3`]); pairwise kernels may instantiate `Vec3<f32>` internally.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Vec3<R> {
    /// X component.
    pub x: R,
    /// Y component.
    pub y: R,
    /// Z component.
    pub z: R,
}

impl<R: Real> Vec3<R> {
    /// Creates a vector from its components.
    #[inline(always)]
    pub fn new(x: R, y: R, z: R) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    #[inline(always)]
    pub fn zero() -> Self {
        Vec3 {
            x: R::ZERO,
            y: R::ZERO,
            z: R::ZERO,
        }
    }

    /// A vector with all components equal to `v`.
    #[inline(always)]
    pub fn splat(v: R) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline(always)]
    pub fn dot(self, other: Self) -> R {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline(always)]
    pub fn cross(self, other: Self) -> Self {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline(always)]
    pub fn norm2(self) -> R {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline(always)]
    pub fn norm(self) -> R {
        self.norm2().sqrt()
    }

    /// Component-wise multiplication.
    #[inline(always)]
    pub fn mul_elem(self, other: Self) -> Self {
        Vec3 {
            x: self.x * other.x,
            y: self.y * other.y,
            z: self.z * other.z,
        }
    }

    /// Converts each component via `f64` into another scalar width.
    #[inline(always)]
    pub fn cast<S: Real>(self) -> Vec3<S> {
        Vec3 {
            x: S::from_f64(self.x.to_f64()),
            y: S::from_f64(self.y.to_f64()),
            z: S::from_f64(self.z.to_f64()),
        }
    }

    /// Largest absolute component, useful for displacement triggers.
    #[inline(always)]
    pub fn max_abs(self) -> R {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }
}

impl<R: Real> Add for Vec3<R> {
    type Output = Self;
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl<R: Real> Sub for Vec3<R> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl<R: Real> Neg for Vec3<R> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl<R: Real> Mul<R> for Vec3<R> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, s: R) -> Self {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl<R: Real> Div<R> for Vec3<R> {
    type Output = Self;
    #[inline(always)]
    fn div(self, s: R) -> Self {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl<R: Real> AddAssign for Vec3<R> {
    #[inline(always)]
    fn add_assign(&mut self, o: Self) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl<R: Real> SubAssign for Vec3<R> {
    #[inline(always)]
    fn sub_assign(&mut self, o: Self) {
        self.x -= o.x;
        self.y -= o.y;
        self.z -= o.z;
    }
}

impl<R: Real> MulAssign<R> for Vec3<R> {
    #[inline(always)]
    fn mul_assign(&mut self, s: R) {
        self.x *= s;
        self.y *= s;
        self.z *= s;
    }
}

impl<R: Real> DivAssign<R> for Vec3<R> {
    #[inline(always)]
    fn div_assign(&mut self, s: R) {
        self.x /= s;
        self.y /= s;
        self.z /= s;
    }
}

impl<R: Real> Index<usize> for Vec3<R> {
    type Output = R;
    #[inline(always)]
    fn index(&self, i: usize) -> &R {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl<R: Real> IndexMut<usize> for Vec3<R> {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut R {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl<R: Real> From<[R; 3]> for Vec3<R> {
    fn from(a: [R; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl<R: Real> From<Vec3<R>> for [R; 3] {
    fn from(v: Vec3<R>) -> Self {
        [v.x, v.y, v.z]
    }
}

impl<R: Real> std::fmt::Display for Vec3<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(x.cross(y).dot(x), 0.0);
    }

    #[test]
    fn norms() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm2(), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.max_abs(), 4.0);
    }

    #[test]
    fn indexing_and_conversion() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        v[2] = 9.0;
        assert_eq!(v[0] + v[1] + v[2], 12.0);
        let arr: [f64; 3] = v.into();
        assert_eq!(Vec3::from(arr), v);
        let w: Vec3<f32> = v.cast();
        assert_eq!(w.z, 9.0f32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let v: Vec3<f64> = Vec3::zero();
        let _ = v[3];
    }
}
