//! Langevin thermostat (LAMMPS `fix langevin`), used by the Chain benchmark.
//!
//! Applied in the post-force stage: each atom receives a friction force
//! `-m v / damp` and a random force whose variance satisfies the
//! fluctuation-dissipation theorem, so the system samples the canonical
//! ensemble at the target temperature.

use crate::atoms::AtomStore;
use crate::error::{CoreError, Result};
use crate::units::UnitSystem;
use crate::vec3::Vec3;
use crate::wire;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Langevin thermostat fix.
#[derive(Debug, Clone)]
pub struct Langevin {
    t_target: f64,
    damp: f64,
    rng: StdRng,
}

impl Langevin {
    /// Creates a thermostat targeting temperature `t_target` with relaxation
    /// time `damp`, seeded deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `t_target < 0`,
    /// `damp <= 0`, or either is non-finite.
    pub fn new(t_target: f64, damp: f64, seed: u64) -> Result<Self> {
        if !(t_target.is_finite() && t_target >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "t_target",
                reason: format!("target temperature {t_target} must be non-negative and finite"),
            });
        }
        if !(damp.is_finite() && damp > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "damp",
                reason: format!("damping time {damp} must be positive and finite"),
            });
        }
        Ok(Langevin {
            t_target,
            damp,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Target temperature.
    pub fn t_target(&self) -> f64 {
        self.t_target
    }

    /// Relaxation (damping) time.
    pub fn damp(&self) -> f64 {
        self.damp
    }

    /// Adds friction and random forces to `atoms.f` for one timestep `dt`.
    pub fn post_force(&mut self, atoms: &mut AtomStore, units: &UnitSystem, dt: f64) {
        let gamma = 1.0 / self.damp;
        let n = atoms.len();
        for i in 0..n {
            let m = atoms.mass(i);
            // Friction: -(m/damp) v, converted to force units via mvv2e.
            let fr = atoms.v()[i] * (-gamma * m * units.mvv2e);
            // Fluctuation: variance 2 m kB T γ / dt in force units.
            let sigma =
                (2.0 * m * units.boltzmann * self.t_target * units.mvv2e * gamma / dt).sqrt();
            let mut gauss = || {
                let u1: f64 = self.rng.gen::<f64>().max(1e-300);
                let u2: f64 = self.rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            let frand = Vec3::new(sigma * gauss(), sigma * gauss(), sigma * gauss());
            atoms.f_mut()[i] += fr + frand;
        }
    }
}

impl crate::force::Fix for Langevin {
    fn name(&self) -> &'static str {
        "langevin"
    }

    fn post_force(&mut self, sys: &crate::force::PairSystem<'_>, f: &mut [crate::V3]) {
        let gamma = 1.0 / self.damp;
        let units = sys.units;
        let dt = sys.dt;
        for i in 0..sys.v.len() {
            let m = sys.mass(i);
            let fr = sys.v[i] * (-gamma * m * units.mvv2e);
            let sigma =
                (2.0 * m * units.boltzmann * self.t_target * units.mvv2e * gamma / dt).sqrt();
            let mut gauss = || {
                let u1: f64 = self.rng.gen::<f64>().max(1e-300);
                let u2: f64 = self.rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            let frand = Vec3::new(sigma * gauss(), sigma * gauss(), sigma * gauss());
            f[i] += fr + frand;
        }
    }

    fn state_save(&self, w: &mut wire::Writer) {
        // The RNG stream is the thermostat's only mutable state; restoring
        // it bitwise is what makes an interrupted Chain run resume on the
        // same random-force sequence as an uninterrupted one.
        w.u64s(&self.rng.state());
    }

    fn state_load(&mut self, r: &mut wire::Reader<'_>) -> Result<()> {
        let s = r.u64s()?;
        let s: [u64; 4] = s
            .try_into()
            .map_err(|v: Vec<u64>| CoreError::CorruptState {
                what: "langevin",
                detail: format!("RNG state has {} words, expected 4", v.len()),
            })?;
        self.rng = StdRng::from_state(s);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::temperature;
    use crate::integrate::{IntegrateContext, Integrator, VelocityVerlet};
    use crate::simbox::SimBox;

    /// Free particles + Langevin must equilibrate to the target temperature.
    #[test]
    fn equilibrates_ideal_gas_to_target() {
        let mut a = AtomStore::new();
        let mut s = 1u64;
        for _ in 0..1000 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = |s: u64, sh: u32| ((s >> sh) & 0xfff) as f64 / 4096.0;
            a.push(
                Vec3::new(10.0 * r(s, 0), 10.0 * r(s, 12), 10.0 * r(s, 24)),
                Vec3::zero(),
                0,
            );
        }
        a.set_masses(vec![1.0]);
        let u = UnitSystem::lj();
        let mut bx = SimBox::cubic(10.0);
        let mut lang = Langevin::new(1.5, 1.0, 77).unwrap();
        let mut nve = VelocityVerlet::new();
        let dt = 0.005;
        let mut t_acc = 0.0;
        let mut samples = 0;
        for step in 0..6000 {
            let ctx = IntegrateContext {
                dt,
                units: &u,
                virial: 0.0,
            };
            nve.initial_integrate(&mut a, &mut bx, &ctx);
            a.zero_forces();
            lang.post_force(&mut a, &u, dt);
            nve.final_integrate(&mut a, &mut bx, &ctx);
            if step > 3000 {
                t_acc += temperature(&a, &u);
                samples += 1;
            }
        }
        let t_mean = t_acc / samples as f64;
        assert!(
            (t_mean - 1.5).abs() < 0.1,
            "mean temperature {t_mean} not near 1.5"
        );
    }

    #[test]
    fn zero_temperature_damps_motion() {
        let mut a = AtomStore::new();
        a.push(Vec3::zero(), Vec3::new(5.0, 0.0, 0.0), 0);
        a.set_masses(vec![1.0]);
        let u = UnitSystem::lj();
        let mut bx = SimBox::cubic(10.0);
        let mut lang = Langevin::new(0.0, 0.5, 1).unwrap();
        let mut nve = VelocityVerlet::new();
        for _ in 0..2000 {
            let ctx = IntegrateContext {
                dt: 0.005,
                units: &u,
                virial: 0.0,
            };
            nve.initial_integrate(&mut a, &mut bx, &ctx);
            a.zero_forces();
            lang.post_force(&mut a, &u, 0.005);
            nve.final_integrate(&mut a, &mut bx, &ctx);
        }
        assert!(a.v()[0].norm() < 1e-3, "velocity should decay to zero");
    }

    #[test]
    fn rejects_zero_damp() {
        let err = Langevin::new(1.0, 0.0, 0).unwrap_err();
        assert!(matches!(
            err,
            crate::CoreError::InvalidParameter { name: "damp", .. }
        ));
        assert!(Langevin::new(-1.0, 1.0, 0).is_err());
        assert!(Langevin::new(f64::NAN, 1.0, 0).is_err());
    }

    #[test]
    fn rng_state_round_trip_resumes_the_same_stream() {
        use crate::force::Fix;
        let mut a = Langevin::new(1.0, 0.5, 42).unwrap();
        // Burn some draws so the stream is mid-flight.
        for _ in 0..100 {
            let _ = a.rng.gen::<f64>();
        }
        let mut w = wire::Writer::new();
        Fix::state_save(&a, &mut w);
        let bytes = w.into_bytes();
        let mut b = Langevin::new(1.0, 0.5, 7).unwrap(); // different seed
        Fix::state_load(&mut b, &mut wire::Reader::new(&bytes, "langevin")).unwrap();
        for _ in 0..32 {
            assert_eq!(a.rng.gen::<f64>().to_bits(), b.rng.gen::<f64>().to_bits());
        }
        // A malformed blob is rejected.
        let mut w = wire::Writer::new();
        w.u64s(&[1, 2, 3]);
        let bad = w.into_bytes();
        assert!(Fix::state_load(&mut b, &mut wire::Reader::new(&bad, "langevin")).is_err());
    }
}
