//! Force-field interfaces: pair, bonded, and k-space (long-range) styles.
//!
//! Concrete potentials live in `md-potentials` (pairwise and bonded) and
//! `md-kspace` (Ewald, PPPM). The [`Simulation`](crate::Simulation) driver
//! invokes them through these object-safe traits and attributes their time to
//! the `Pair`, `Bond`, and `Kspace` tasks of the paper's Table 1.

use crate::atoms::{Angle, Bond, Dihedral};
use crate::error::Result;
use crate::neighbor::{NeighborList, NeighborListKind};
use crate::real::PrecisionMode;
use crate::simbox::SimBox;
use crate::units::UnitSystem;
use crate::V3;

/// Energy and scalar virial accumulated by one force computation.
///
/// The virial is `Σ r_ij · f_ij` over interactions; the pressure follows as
/// `P = (N k_B T + virial / 3) / V` (times the unit system's `nktv2p`).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyVirial {
    /// Van der Waals (or general non-Coulomb) potential energy.
    pub evdwl: f64,
    /// Coulomb potential energy (real-space or reciprocal, per style).
    pub ecoul: f64,
    /// Scalar virial `Σ r·f`.
    pub virial: f64,
}

impl EnergyVirial {
    /// Sum of both energy channels.
    pub fn energy(&self) -> f64 {
        self.evdwl + self.ecoul
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &EnergyVirial) -> EnergyVirial {
        EnergyVirial {
            evdwl: self.evdwl + other.evdwl,
            ecoul: self.ecoul + other.ecoul,
            virial: self.virial + other.virial,
        }
    }
}

impl std::ops::AddAssign for EnergyVirial {
    fn add_assign(&mut self, o: Self) {
        *self = self.merged(&o);
    }
}

/// Read-only view of the per-atom state a pair style may consume.
///
/// Granular styles need velocities, radii, and the timestep (for the shear
/// history); Coulomb styles need charges; everything needs positions, types,
/// and the box.
#[derive(Debug, Clone, Copy)]
pub struct PairSystem<'a> {
    /// Simulation box (for minimum-image displacements).
    pub bx: &'a SimBox,
    /// Positions.
    pub x: &'a [V3],
    /// Velocities.
    pub v: &'a [V3],
    /// Per-atom type indices.
    pub kinds: &'a [u32],
    /// Per-atom charges.
    pub charge: &'a [f64],
    /// Per-atom radii (granular styles; zero elsewhere).
    pub radius: &'a [f64],
    /// Per-type mass table (`mass_by_type[kinds[i]]` is atom `i`'s mass).
    pub mass_by_type: &'a [f64],
    /// Unit constants (Coulomb prefactor, Boltzmann).
    pub units: &'a UnitSystem,
    /// Timestep, needed by history-dependent styles.
    pub dt: f64,
}

impl PairSystem<'_> {
    /// Mass of atom `i`.
    #[inline(always)]
    pub fn mass(&self, i: usize) -> f64 {
        self.mass_by_type[self.kinds[i] as usize]
    }
}

/// A post-force fix (LAMMPS `fix`): thermostats, gravity, walls.
///
/// Fixes run after pair/bonded/k-space forces each timestep and accumulate
/// additional forces into `f`. Their time is attributed to the `Modify` task.
pub trait Fix: Send {
    /// Fix name (e.g. `langevin`, `gravity`, `wall/gran`).
    fn name(&self) -> &'static str;

    /// Adds this fix's forces for the current step.
    fn post_force(&mut self, sys: &PairSystem<'_>, f: &mut [V3]);

    /// Appends the fix's mutable state (RNG streams, accumulators) for a
    /// checkpoint. Stateless fixes write nothing.
    fn state_save(&self, _w: &mut crate::wire::Writer) {}

    /// Restores state written by [`Fix::state_save`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::CorruptState`] on a malformed blob.
    fn state_load(&mut self, _r: &mut crate::wire::Reader<'_>) -> Result<()> {
        Ok(())
    }
}

/// A pairwise interaction potential (LAMMPS `pair_style`).
pub trait PairStyle: Send {
    /// Style name, matching LAMMPS nomenclature (e.g. `lj/cut`).
    fn name(&self) -> &'static str;

    /// Interaction cutoff (the neighbor list adds the skin on top).
    fn cutoff(&self) -> f64;

    /// Which neighbor-list convention the style requires.
    ///
    /// Defaults to half lists (Newton's third law reused); the granular
    /// history style overrides this to [`NeighborListKind::Full`].
    fn list_kind(&self) -> NeighborListKind {
        NeighborListKind::Half
    }

    /// Accumulates forces into `f` and returns energy/virial.
    ///
    /// `f` has one entry per atom; for half lists the style must apply
    /// Newton's third law itself.
    fn compute(&mut self, sys: &PairSystem<'_>, nl: &NeighborList, f: &mut [V3]) -> EnergyVirial;

    /// Selects the floating-point strategy (paper Section 8).
    ///
    /// Styles without reduced-precision kernels may ignore this.
    fn set_precision(&mut self, _mode: PrecisionMode) {}

    /// The currently active floating-point strategy.
    fn precision(&self) -> PrecisionMode {
        PrecisionMode::Double
    }

    /// Attaches an observability recorder so threaded styles can emit
    /// per-worker spans (one lane per thread, showing the fork/join shape
    /// of the pair kernel). Serial styles ignore it.
    fn set_recorder(&mut self, _recorder: md_observe::Recorder) {}

    /// Appends the style's mutable state (e.g. granular contact history)
    /// for a checkpoint. History-free styles write nothing.
    fn state_save(&self, _w: &mut crate::wire::Writer) {}

    /// Restores state written by [`PairStyle::state_save`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::CorruptState`] on a malformed blob.
    fn state_load(&mut self, _r: &mut crate::wire::Reader<'_>) -> Result<()> {
        Ok(())
    }
}

/// A two-body bonded potential (LAMMPS `bond_style`).
pub trait BondStyle: Send {
    /// Style name (e.g. `fene`, `harmonic`).
    fn name(&self) -> &'static str;

    /// Accumulates bond forces into `f` and returns energy/virial.
    fn compute(&mut self, bx: &SimBox, x: &[V3], bonds: &[Bond], f: &mut [V3]) -> EnergyVirial;
}

/// A three-body angle potential (LAMMPS `angle_style`).
pub trait AngleStyle: Send {
    /// Style name (e.g. `harmonic`, `charmm`).
    fn name(&self) -> &'static str;

    /// Accumulates angle forces into `f` and returns energy/virial.
    fn compute(&mut self, bx: &SimBox, x: &[V3], angles: &[Angle], f: &mut [V3]) -> EnergyVirial;
}

/// A four-body dihedral potential (LAMMPS `dihedral_style`).
pub trait DihedralStyle: Send {
    /// Style name (e.g. `harmonic`, `charmm`).
    fn name(&self) -> &'static str;

    /// Accumulates dihedral forces into `f` and returns energy/virial.
    fn compute(
        &mut self,
        bx: &SimBox,
        x: &[V3],
        dihedrals: &[Dihedral],
        f: &mut [V3],
    ) -> EnergyVirial;
}

/// Statistics a long-range solver exposes to the performance models.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KspaceStats {
    /// FFT mesh dimensions.
    pub grid: [usize; 3],
    /// Total mesh points.
    pub grid_points: usize,
    /// Ewald splitting parameter actually used.
    pub g_ewald: f64,
    /// Estimated relative force error at the current settings.
    pub estimated_error: f64,
}

/// A long-range Coulomb solver (LAMMPS `kspace_style`).
pub trait KspaceStyle: Send {
    /// Style name (`ewald`, `pppm`).
    fn name(&self) -> &'static str;

    /// Prepares mesh/coefficients for a box and charge population.
    ///
    /// Must be called before [`KspaceStyle::compute`] and again whenever the
    /// box changes (the NPT barostat calls it through the driver).
    ///
    /// # Errors
    ///
    /// Returns an error if the box and accuracy target are incompatible.
    fn setup(&mut self, bx: &SimBox, q: &[f64]) -> Result<()>;

    /// Accumulates reciprocal-space forces into `f`; returns energy/virial
    /// (energy in `ecoul`).
    fn compute(&mut self, bx: &SimBox, x: &[V3], q: &[f64], f: &mut [V3]) -> EnergyVirial;

    /// Mesh statistics for the performance model.
    fn stats(&self) -> KspaceStats;

    /// Attaches an observability recorder so the solver can emit
    /// kernel-phase sub-spans (charge assignment, FFTs, interpolation)
    /// under the `Kspace` task. Solvers without internal phases ignore it.
    fn set_recorder(&mut self, _recorder: md_observe::Recorder) {}

    /// Sets the shared-memory thread-team configuration (see
    /// [`crate::Threads`]). Solvers without threaded kernels ignore it.
    fn set_threads(&mut self, _threads: crate::Threads) {}

    /// Tightens the solver's accuracy target one notch (recovery-ladder
    /// mitigation for k-space-induced force errors). Returns `true` if the
    /// target changed; the caller must re-run [`KspaceStyle::setup`] for the
    /// new target to take effect. Solvers without an accuracy knob return
    /// `false`.
    fn tighten_accuracy(&mut self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_virial_merges() {
        let a = EnergyVirial {
            evdwl: 1.0,
            ecoul: 2.0,
            virial: 3.0,
        };
        let mut b = EnergyVirial::default();
        b += a;
        b += a;
        assert_eq!(b.energy(), 6.0);
        assert_eq!(b.virial, 6.0);
    }

    #[test]
    fn traits_are_object_safe() {
        fn _takes(
            _: &dyn PairStyle,
            _: &dyn BondStyle,
            _: &dyn AngleStyle,
            _: &dyn DihedralStyle,
            _: &dyn KspaceStyle,
        ) {
        }
    }
}
