//! The simulation box: an orthogonal, optionally periodic region of space.
//!
//! The box supports per-axis periodicity (the Chute benchmark is periodic in
//! x/y but walled in z), minimum-image displacement, coordinate wrapping, and
//! isotropic rescaling for barostats.

use crate::error::{CoreError, Result};
use crate::vec3::Vec3;
use crate::V3;

/// An axis-aligned orthogonal simulation box.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimBox {
    lo: V3,
    hi: V3,
    periodic: [bool; 3],
}

impl SimBox {
    /// Creates a box spanning `[lo, hi)` on each axis, fully periodic.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBox`] if any extent is non-positive or not
    /// finite.
    pub fn new(lo: V3, hi: V3) -> Result<Self> {
        for d in 0..3 {
            let ext = hi[d] - lo[d];
            if !(ext.is_finite() && ext > 0.0) {
                return Err(CoreError::InvalidBox {
                    reason: format!("extent along axis {d} is {ext}"),
                });
            }
        }
        Ok(SimBox {
            lo,
            hi,
            periodic: [true; 3],
        })
    }

    /// A fully periodic cube `[0, l)^3`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is not a positive finite number.
    pub fn cubic(l: f64) -> Self {
        SimBox::new(Vec3::zero(), Vec3::splat(l)).expect("cubic box edge must be positive")
    }

    /// A fully periodic box with the given extents starting at the origin.
    ///
    /// # Panics
    ///
    /// Panics if any extent is not a positive finite number.
    pub fn orthogonal(lx: f64, ly: f64, lz: f64) -> Self {
        SimBox::new(Vec3::zero(), Vec3::new(lx, ly, lz)).expect("box extents must be positive")
    }

    /// Sets per-axis periodicity flags; non-periodic axes use fixed walls.
    pub fn with_periodicity(mut self, x: bool, y: bool, z: bool) -> Self {
        self.periodic = [x, y, z];
        self
    }

    /// Lower corner.
    pub fn lo(&self) -> V3 {
        self.lo
    }

    /// Upper corner.
    pub fn hi(&self) -> V3 {
        self.hi
    }

    /// Extent along each axis.
    pub fn lengths(&self) -> V3 {
        self.hi - self.lo
    }

    /// Whether the given axis (0..3) is periodic.
    pub fn is_periodic(&self, axis: usize) -> bool {
        self.periodic[axis]
    }

    /// Box volume.
    pub fn volume(&self) -> f64 {
        let l = self.lengths();
        l.x * l.y * l.z
    }

    /// Smallest extent among periodic axes (all axes if none are periodic).
    pub fn min_periodic_extent(&self) -> f64 {
        let l = self.lengths();
        let mut m = f64::INFINITY;
        for d in 0..3 {
            if self.periodic[d] {
                m = m.min(l[d]);
            }
        }
        if m.is_infinite() {
            l.x.min(l.y).min(l.z)
        } else {
            m
        }
    }

    /// Validates that an interaction `range` is usable under minimum-image
    /// convention (must not exceed half the smallest periodic extent).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CutoffTooLarge`] when it does.
    pub fn check_interaction_range(&self, range: f64) -> Result<()> {
        let min_ext = self.min_periodic_extent();
        if range * 2.0 > min_ext {
            return Err(CoreError::CutoffTooLarge {
                range,
                min_extent: min_ext,
            });
        }
        Ok(())
    }

    /// Minimum-image displacement `a - b`.
    #[inline(always)]
    pub fn min_image(&self, a: V3, b: V3) -> V3 {
        let l = self.lengths();
        let mut d = a - b;
        for k in 0..3 {
            if self.periodic[k] {
                let lk = l[k];
                if d[k] > 0.5 * lk {
                    d[k] -= lk;
                } else if d[k] < -0.5 * lk {
                    d[k] += lk;
                }
            }
        }
        d
    }

    /// Wraps a position into the primary cell along periodic axes, updating
    /// the per-atom image counters so trajectories stay unwrappable.
    ///
    /// O(1) regardless of how far outside the box the position is (a
    /// diverging trajectory must not turn wrapping into a loop).
    #[inline]
    pub fn wrap(&self, x: &mut V3, image: &mut [i32; 3]) {
        let l = self.lengths();
        for k in 0..3 {
            if !self.periodic[k] {
                continue;
            }
            let shift = ((x[k] - self.lo[k]) / l[k]).floor();
            if shift != 0.0 {
                x[k] -= shift * l[k];
                image[k] += shift as i32;
            }
            // Guard against `x == hi` after rounding.
            if x[k] >= self.hi[k] {
                x[k] -= l[k];
                image[k] += 1;
            } else if x[k] < self.lo[k] {
                x[k] += l[k];
                image[k] -= 1;
            }
        }
    }

    /// Isotropically rescales the box about its center by `factor`, returning
    /// the new box. Positions must be rescaled by the caller (see
    /// [`crate::integrate::NoseHooverNpt`]).
    pub fn scaled(&self, factor: f64) -> SimBox {
        let c = (self.lo + self.hi) * 0.5;
        let half = (self.hi - self.lo) * (0.5 * factor);
        SimBox {
            lo: c - half,
            hi: c + half,
            periodic: self.periodic,
        }
    }

    /// Maps a position to fractional coordinates in `[0,1)` per axis.
    #[inline]
    pub fn fractional(&self, x: V3) -> V3 {
        let l = self.lengths();
        Vec3::new(
            (x.x - self.lo.x) / l.x,
            (x.y - self.lo.y) / l.y,
            (x.z - self.lo.z) / l.z,
        )
    }

    /// Whether `x` lies inside the box (half-open on each axis).
    pub fn contains(&self, x: V3) -> bool {
        (0..3).all(|d| x[d] >= self.lo[d] && x[d] < self.hi[d])
    }
}

impl std::fmt::Display for SimBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let l = self.lengths();
        write!(
            f,
            "box {:.4} x {:.4} x {:.4} (pbc {}{}{})",
            l.x,
            l.y,
            l.z,
            if self.periodic[0] { 'p' } else { 'f' },
            if self.periodic[1] { 'p' } else { 'f' },
            if self.periodic[2] { 'p' } else { 'f' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_box() {
        let err = SimBox::new(Vec3::zero(), Vec3::new(1.0, 0.0, 1.0)).unwrap_err();
        assert!(matches!(err, CoreError::InvalidBox { .. }));
    }

    #[test]
    fn min_image_wraps_across_boundary() {
        let bx = SimBox::cubic(10.0);
        let a = Vec3::new(9.5, 0.0, 0.0);
        let b = Vec3::new(0.5, 0.0, 0.0);
        let d = bx.min_image(a, b);
        assert!((d.x - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn min_image_respects_nonperiodic_axis() {
        let bx = SimBox::cubic(10.0).with_periodicity(true, true, false);
        let a = Vec3::new(0.0, 0.0, 9.5);
        let b = Vec3::new(0.0, 0.0, 0.5);
        assert!((bx.min_image(a, b).z - 9.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_tracks_images() {
        let bx = SimBox::cubic(10.0);
        let mut x = Vec3::new(12.5, -0.5, 5.0);
        let mut img = [0, 0, 0];
        bx.wrap(&mut x, &mut img);
        assert!((x.x - 2.5).abs() < 1e-12);
        assert!((x.y - 9.5).abs() < 1e-12);
        assert_eq!(img, [1, -1, 0]);
    }

    #[test]
    fn scaling_preserves_center() {
        let bx = SimBox::orthogonal(4.0, 6.0, 8.0);
        let s = bx.scaled(2.0);
        assert!((s.volume() - 8.0 * bx.volume()).abs() < 1e-9);
        let c0 = (bx.lo() + bx.hi()) * 0.5;
        let c1 = (s.lo() + s.hi()) * 0.5;
        assert!((c0 - c1).norm() < 1e-12);
    }

    #[test]
    fn interaction_range_check() {
        let bx = SimBox::cubic(10.0);
        assert!(bx.check_interaction_range(4.9).is_ok());
        assert!(bx.check_interaction_range(5.1).is_err());
    }

    #[test]
    fn fractional_and_contains() {
        let bx = SimBox::orthogonal(2.0, 4.0, 8.0);
        let f = bx.fractional(Vec3::new(1.0, 1.0, 6.0));
        assert_eq!(f, Vec3::new(0.5, 0.25, 0.75));
        assert!(bx.contains(Vec3::new(0.0, 0.0, 0.0)));
        assert!(!bx.contains(Vec3::new(2.0, 0.0, 0.0)));
    }
}
