//! Time integration: velocity-Verlet NVE and Nose-Hoover style NPT.
//!
//! All benchmarks in the paper's suite except Rhodopsin use plain NVE
//! integration (constant atoms/volume/energy, the LAMMPS `fix nve`);
//! Rhodopsin integrates with `fix npt`, Nose-Hoover style non-Hamiltonian
//! equations of motion that thermostat the temperature and barostat the
//! pressure by rescaling the box.

use crate::atoms::AtomStore;
use crate::compute::{pressure, temperature};
use crate::error::{CoreError, Result};
use crate::simbox::SimBox;
use crate::units::UnitSystem;
use crate::wire;

/// Per-step data the driver feeds to an integrator.
#[derive(Debug, Clone, Copy)]
pub struct IntegrateContext<'a> {
    /// Timestep length in time units.
    pub dt: f64,
    /// Unit constants.
    pub units: &'a UnitSystem,
    /// Scalar virial from the most recent force evaluation.
    pub virial: f64,
}

/// A time-integration strategy (LAMMPS `fix nve`, `fix npt`, ...).
///
/// The driver calls [`Integrator::initial_integrate`] before the force
/// computation (step I of the paper's Figure 1) and
/// [`Integrator::final_integrate`] after it.
pub trait Integrator: Send {
    /// Integrator name (`nve`, `npt`).
    fn name(&self) -> &'static str;

    /// First half-kick and drift: `v += (dt/2) f/m`, `x += dt v`.
    fn initial_integrate(
        &mut self,
        atoms: &mut AtomStore,
        bx: &mut SimBox,
        ctx: &IntegrateContext<'_>,
    );

    /// Second half-kick: `v += (dt/2) f/m`, plus any thermostat/barostat work.
    fn final_integrate(
        &mut self,
        atoms: &mut AtomStore,
        bx: &mut SimBox,
        ctx: &IntegrateContext<'_>,
    );

    /// Appends the integrator's mutable state (thermostat friction,
    /// barostat strain rate) for a checkpoint. NVE writes nothing.
    fn state_save(&self, _w: &mut wire::Writer) {}

    /// Restores state written by [`Integrator::state_save`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptState`] on a malformed blob.
    fn state_load(&mut self, _r: &mut wire::Reader<'_>) -> Result<()> {
        Ok(())
    }
}

/// Plain velocity-Verlet NVE integration (`fix nve`).
#[derive(Debug, Clone, Copy, Default)]
pub struct VelocityVerlet;

impl VelocityVerlet {
    /// Creates the NVE integrator.
    pub fn new() -> Self {
        VelocityVerlet
    }
}

/// Applies `v += (dt/2) f/m` (the `ftm2v = 1/mvv2e` force→acceleration
/// conversion of LAMMPS) to every atom.
fn half_kick(atoms: &mut AtomStore, dt: f64, units: &UnitSystem) {
    let ftm2v = 1.0 / units.mvv2e;
    let n = atoms.len();
    for i in 0..n {
        let inv_m = ftm2v / atoms.mass(i);
        let f = atoms.f()[i];
        atoms.v_mut()[i] += f * (0.5 * dt * inv_m);
    }
}

/// Applies `x += dt v` to every atom.
fn drift(atoms: &mut AtomStore, dt: f64) {
    let (x, v) = atoms.x_v_mut();
    for (xi, vi) in x.iter_mut().zip(v.iter()) {
        *xi += *vi * dt;
    }
}

impl Integrator for VelocityVerlet {
    fn name(&self) -> &'static str {
        "nve"
    }

    fn initial_integrate(
        &mut self,
        atoms: &mut AtomStore,
        _bx: &mut SimBox,
        ctx: &IntegrateContext<'_>,
    ) {
        half_kick(atoms, ctx.dt, ctx.units);
        drift(atoms, ctx.dt);
    }

    fn final_integrate(
        &mut self,
        atoms: &mut AtomStore,
        _bx: &mut SimBox,
        ctx: &IntegrateContext<'_>,
    ) {
        half_kick(atoms, ctx.dt, ctx.units);
    }
}

/// Parameters for the Nose-Hoover NPT integrator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NptParams {
    /// Temperature set point.
    pub t_target: f64,
    /// Thermostat relaxation time (time units; LAMMPS `Tdamp`).
    pub t_damp: f64,
    /// Pressure set point (pressure units of the unit system).
    pub p_target: f64,
    /// Barostat relaxation time (LAMMPS `Pdamp`).
    pub p_damp: f64,
}

/// Nose-Hoover style NPT integration (`fix npt`).
///
/// This is the practical single-chain form: a Nose-Hoover thermostat friction
/// `ξ` driven by the temperature error, plus an isotropic barostat strain rate
/// `ε̇` driven by the pressure error, applied as a box/position dilation each
/// step. It reproduces the set points and the relaxation-time behavior of the
/// full MTK equations, which is what the workload characterization depends
/// on; the full MTK chain corrections are beyond the scope of this engine and
/// are documented as a substitution in DESIGN.md.
#[derive(Debug, Clone)]
pub struct NoseHooverNpt {
    params: NptParams,
    /// Thermostat friction coefficient (1/time units).
    xi: f64,
    /// Barostat strain rate (1/time units).
    eps_dot: f64,
}

impl NoseHooverNpt {
    /// Creates an NPT integrator with the given set points.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if a damping time or the
    /// target temperature is non-positive or non-finite.
    pub fn new(params: NptParams) -> Result<Self> {
        for (name, v) in [
            ("Tdamp", params.t_damp),
            ("Pdamp", params.p_damp),
            ("t_target", params.t_target),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(CoreError::InvalidParameter {
                    name,
                    reason: format!("{name} {v} must be positive and finite"),
                });
            }
        }
        Ok(NoseHooverNpt {
            params,
            xi: 0.0,
            eps_dot: 0.0,
        })
    }

    /// The configured set points.
    pub fn params(&self) -> NptParams {
        self.params
    }

    /// Current thermostat friction (diagnostic).
    pub fn friction(&self) -> f64 {
        self.xi
    }

    /// Current barostat strain rate (diagnostic).
    pub fn strain_rate(&self) -> f64 {
        self.eps_dot
    }
}

impl Integrator for NoseHooverNpt {
    fn name(&self) -> &'static str {
        "npt"
    }

    fn initial_integrate(
        &mut self,
        atoms: &mut AtomStore,
        bx: &mut SimBox,
        ctx: &IntegrateContext<'_>,
    ) {
        let dt = ctx.dt;
        // Thermostat half-update: dξ/dt = (T/T0 - 1) / Tdamp².
        let t_cur = temperature(atoms, ctx.units);
        self.xi += 0.5 * dt * (t_cur / self.params.t_target - 1.0)
            / (self.params.t_damp * self.params.t_damp);
        let scale = (-self.xi * 0.5 * dt).exp();
        for v in atoms.v_mut() {
            *v *= scale;
        }

        half_kick(atoms, dt, ctx.units);
        drift(atoms, dt);

        // Barostat: relax ε̇ toward the pressure error, then dilate.
        let p_cur = pressure(atoms, ctx.units, bx, ctx.virial);
        // Normalize the pressure error by the instantaneous kinetic pressure
        // scale so the strain rate is dimensionless per unit time.
        let n_kt = (atoms.len() as f64 * ctx.units.boltzmann * self.params.t_target / bx.volume()
            * ctx.units.nktv2p)
            .max(f64::MIN_POSITIVE);
        let drive = (p_cur - self.params.p_target) / n_kt;
        let pd2 = self.params.p_damp * self.params.p_damp;
        self.eps_dot += dt * drive / pd2;
        // Critical-ish damping so the cell does not ring.
        self.eps_dot *= 1.0 - (dt / self.params.p_damp).min(0.5);
        let dil = (self.eps_dot * dt).exp();
        let dil = dil.clamp(0.999, 1.001); // guard against kicks from poor initial pressure
        *bx = bx.scaled(dil);
        let center = (bx.lo() + bx.hi()) * 0.5;
        for x in atoms.x_mut() {
            *x = center + (*x - center) * dil;
        }
    }

    fn final_integrate(
        &mut self,
        atoms: &mut AtomStore,
        _bx: &mut SimBox,
        ctx: &IntegrateContext<'_>,
    ) {
        let dt = ctx.dt;
        half_kick(atoms, dt, ctx.units);
        let t_cur = temperature(atoms, ctx.units);
        self.xi += 0.5 * dt * (t_cur / self.params.t_target - 1.0)
            / (self.params.t_damp * self.params.t_damp);
        let scale = (-self.xi * 0.5 * dt).exp();
        for v in atoms.v_mut() {
            *v *= scale;
        }
    }

    fn state_save(&self, w: &mut wire::Writer) {
        w.f64(self.xi);
        w.f64(self.eps_dot);
    }

    fn state_load(&mut self, r: &mut wire::Reader<'_>) -> Result<()> {
        self.xi = r.f64()?;
        self.eps_dot = r.f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::seed_velocities;
    use crate::vec3::Vec3;

    fn free_particle() -> (AtomStore, SimBox, UnitSystem) {
        let mut a = AtomStore::new();
        a.push(Vec3::new(5.0, 5.0, 5.0), Vec3::new(1.0, 0.0, 0.0), 0);
        a.set_masses(vec![2.0]);
        (a, SimBox::cubic(10.0), UnitSystem::lj())
    }

    #[test]
    fn nve_free_particle_moves_ballistically() {
        let (mut a, mut bx, u) = free_particle();
        let ctx = IntegrateContext {
            dt: 0.01,
            units: &u,
            virial: 0.0,
        };
        let mut nve = VelocityVerlet::new();
        for _ in 0..100 {
            nve.initial_integrate(&mut a, &mut bx, &ctx);
            nve.final_integrate(&mut a, &mut bx, &ctx);
        }
        assert!((a.x()[0].x - 6.0).abs() < 1e-12);
        assert!((a.v()[0].x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nve_constant_force_quadratic_trajectory() {
        let (mut a, mut bx, u) = free_particle();
        a.v_mut()[0] = Vec3::zero();
        let mut nve = VelocityVerlet::new();
        let dt = 0.001;
        let nsteps = 1000;
        for _ in 0..nsteps {
            let ctx = IntegrateContext {
                dt,
                units: &u,
                virial: 0.0,
            };
            nve.initial_integrate(&mut a, &mut bx, &ctx);
            a.f_mut()[0] = Vec3::new(2.0, 0.0, 0.0); // constant force
            nve.final_integrate(&mut a, &mut bx, &ctx);
        }
        let t = dt * nsteps as f64;
        // a = F/m = 1.0, x = x0 + a t^2/2 (Verlet is exact for constant force
        // up to the half-step offset of the first kick).
        let expect = 5.0 + 0.5 * 1.0 * t * t;
        assert!((a.x()[0].x - expect).abs() < 2e-3, "{}", a.x()[0].x);
        assert!((a.v()[0].x - 1.0 * t).abs() < 2e-3);
    }

    #[test]
    fn npt_thermostat_pulls_temperature_to_target() {
        let mut a = AtomStore::new();
        let mut seed = 1u64;
        for i in 0..512 {
            seed = seed
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let r = |s: u64, sh: u32| ((s >> sh) & 0x3ff) as f64 / 1024.0;
            let _ = i;
            a.push(
                Vec3::new(20.0 * r(seed, 0), 20.0 * r(seed, 10), 20.0 * r(seed, 20)),
                Vec3::zero(),
                0,
            );
        }
        a.set_masses(vec![1.0]);
        let u = UnitSystem::lj();
        seed_velocities(&mut a, &u, 2.0, 9);
        let mut bx = SimBox::cubic(20.0);
        let mut npt = NoseHooverNpt::new(NptParams {
            t_target: 1.0,
            t_damp: 0.5,
            p_target: 0.5,
            p_damp: 5.0,
        })
        .unwrap();
        // Ideal gas (no forces): thermostat should cool 2.0 -> ~1.0.
        for _ in 0..4000 {
            let ctx = IntegrateContext {
                dt: 0.005,
                units: &u,
                virial: 0.0,
            };
            npt.initial_integrate(&mut a, &mut bx, &ctx);
            a.zero_forces();
            npt.final_integrate(&mut a, &mut bx, &ctx);
        }
        let t = temperature(&a, &u);
        assert!(
            (t - 1.0).abs() < 0.25,
            "temperature {t} did not relax to 1.0"
        );
    }

    #[test]
    fn npt_barostat_compresses_overexpanded_gas() {
        // Ideal gas at T=1 in a box with P < target: the barostat must shrink V.
        let mut a = AtomStore::new();
        let mut s = 7u64;
        for _ in 0..512 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = |s: u64, sh: u32| ((s >> sh) & 0x3ff) as f64 / 1024.0;
            a.push(
                Vec3::new(30.0 * r(s, 0), 30.0 * r(s, 10), 30.0 * r(s, 20)),
                Vec3::zero(),
                0,
            );
        }
        a.set_masses(vec![1.0]);
        let u = UnitSystem::lj();
        seed_velocities(&mut a, &u, 1.0, 4);
        let mut bx = SimBox::cubic(30.0);
        let v0 = bx.volume();
        let mut npt = NoseHooverNpt::new(NptParams {
            t_target: 1.0,
            t_damp: 0.5,
            p_target: 0.2, // ideal-gas pressure here is 512/27000 ≈ 0.019
            p_damp: 2.0,
        })
        .unwrap();
        for _ in 0..3000 {
            let ctx = IntegrateContext {
                dt: 0.005,
                units: &u,
                virial: 0.0,
            };
            npt.initial_integrate(&mut a, &mut bx, &ctx);
            a.zero_forces();
            npt.final_integrate(&mut a, &mut bx, &ctx);
        }
        assert!(
            bx.volume() < 0.8 * v0,
            "volume {} did not shrink from {v0}",
            bx.volume()
        );
    }

    #[test]
    fn npt_rejects_bad_damping() {
        let err = NoseHooverNpt::new(NptParams {
            t_target: 1.0,
            t_damp: 0.0,
            p_target: 1.0,
            p_damp: 1.0,
        })
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidParameter { name: "Tdamp", .. }
        ));
    }

    #[test]
    fn npt_state_round_trips_bitwise() {
        let params = NptParams {
            t_target: 1.0,
            t_damp: 0.5,
            p_target: 0.5,
            p_damp: 5.0,
        };
        let mut a = NoseHooverNpt::new(params).unwrap();
        a.xi = 0.123456789;
        a.eps_dot = -3.2e-7;
        let mut w = wire::Writer::new();
        Integrator::state_save(&a, &mut w);
        let bytes = w.into_bytes();
        let mut b = NoseHooverNpt::new(params).unwrap();
        let mut r = wire::Reader::new(&bytes, "npt");
        Integrator::state_load(&mut b, &mut r).unwrap();
        assert_eq!(b.xi.to_bits(), a.xi.to_bits());
        assert_eq!(b.eps_dot.to_bits(), a.eps_dot.to_bits());
    }
}
