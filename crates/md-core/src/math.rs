//! Special functions the force fields and long-range solvers need.
//!
//! Rust's standard library has no `erf`/`erfc`; the Ewald/PPPM real-space
//! kernels need them at near-double precision, so both are implemented here:
//! a Maclaurin series for small arguments and a Lentz continued fraction for
//! large ones, giving ~1e-15 relative accuracy over the range MD uses.

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Accurate to ~1e-15 for |x| ≤ 10; underflows to 0 beyond ~27.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 2.5 {
        1.0 - erf_series(x)
    } else {
        erfc_continued_fraction(x)
    }
}

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x < 2.5 {
        erf_series(x)
    } else {
        1.0 - erfc_continued_fraction(x)
    }
}

/// Maclaurin series `erf(x) = 2/√π Σ (-1)^n x^(2n+1) / (n! (2n+1))`.
fn erf_series(x: f64) -> f64 {
    let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    for n in 1..200 {
        term *= -x2 / n as f64;
        let contrib = term / (2.0 * n as f64 + 1.0);
        sum += contrib;
        if contrib.abs() < 1e-18 * sum.abs().max(1e-300) {
            break;
        }
    }
    two_over_sqrt_pi * sum
}

/// Continued fraction `erfc(x) = e^{-x²}/√π · 1/(x + 1/2/(x + 1/(x + 3/2/(x + ...))))`
/// evaluated with the modified Lentz algorithm.
fn erfc_continued_fraction(x: f64) -> f64 {
    let tiny = 1e-300;
    let mut f = x.max(tiny);
    let mut c = f; // modified Lentz: C0 = b0
    let mut d = 0.0;
    for k in 1..200 {
        let a = k as f64 / 2.0;
        // b_k = x, a_k = k/2
        d = x + a * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = x + a / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-17 {
            break;
        }
    }
    (-x * x).exp() / std::f64::consts::PI.sqrt() / f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        // Reference values from Abramowitz & Stegun / mpmath.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.4795001221869535),
            (1.0, 0.15729920705028513),
            (2.0, 0.004677734981063127),
            (3.0, 2.209049699858544e-5),
            (5.0, 1.5374597944280347e-12),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            // Series cancellation near the series/fraction boundary costs a
            // couple of digits; 1e-11 relative is far beyond MD needs.
            assert!(
                (got - want).abs() <= 1e-11 * want.max(1e-300) + 1e-16,
                "erfc({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erf_erfc_complementarity() {
        for i in 0..100 {
            let x = -4.0 + 0.08 * i as f64;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14, "x = {x}");
        }
    }

    #[test]
    fn negative_arguments() {
        assert!((erfc(-1.0) - (2.0 - 0.15729920705028513)).abs() < 1e-14);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-16);
    }

    #[test]
    fn monotone_decreasing() {
        let mut prev = erfc(-3.0);
        for i in 1..=120 {
            let x = -3.0 + 0.05 * i as f64;
            let cur = erfc(x);
            assert!(cur < prev, "erfc not decreasing at x = {x}");
            prev = cur;
        }
    }
}
