//! SHAKE bond-length constraints (LAMMPS `fix shake`).
//!
//! The Rhodopsin benchmark constrains bonds involving hydrogen with SHAKE
//! [Andersen 1983], removing the fastest vibrations so a 2 fs timestep stays
//! stable. This implementation iteratively projects positions back onto the
//! constraint manifold after the drift step and applies the corresponding
//! velocity corrections (the RATTLE velocity half is folded into the position
//! correction divided by `dt`).

use crate::atoms::AtomStore;
use crate::error::{CoreError, Result};
use crate::simbox::SimBox;

/// One distance constraint between two atoms.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShakeParams {
    /// First atom.
    pub i: u32,
    /// Second atom.
    pub j: u32,
    /// Constrained bond length.
    pub length: f64,
}

/// The SHAKE constraint solver.
#[derive(Debug, Clone)]
pub struct Shake {
    constraints: Vec<ShakeParams>,
    tolerance: f64,
    max_iterations: usize,
    /// Iterations used by the most recent solve (diagnostic).
    last_iterations: usize,
}

impl Shake {
    /// Creates a solver over the given constraints.
    ///
    /// `tolerance` is the allowed relative deviation `|r² - d²| / d²`.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` or any constraint length is non-positive.
    pub fn new(constraints: Vec<ShakeParams>, tolerance: f64, max_iterations: usize) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        for c in &constraints {
            assert!(c.length > 0.0, "constraint length must be positive");
        }
        Shake {
            constraints,
            tolerance,
            max_iterations,
            last_iterations: 0,
        }
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Iterations used by the most recent [`Shake::apply`].
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }

    /// The constraint list.
    pub fn constraints(&self) -> &[ShakeParams] {
        &self.constraints
    }

    /// Projects positions onto the constraint manifold and corrects
    /// velocities; call after the drift step with the same `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoConvergence`] if the iteration does not reach
    /// the tolerance within `max_iterations` sweeps.
    pub fn apply(&mut self, atoms: &mut AtomStore, bx: &SimBox, dt: f64) -> Result<()> {
        if self.constraints.is_empty() {
            return Ok(());
        }
        let inv_dt = if dt > 0.0 { 1.0 / dt } else { 0.0 };
        let mut worst = 0.0f64;
        for sweep in 0..self.max_iterations {
            worst = 0.0;
            for c in &self.constraints {
                let (i, j) = (c.i as usize, c.j as usize);
                let d2 = c.length * c.length;
                let rij = bx.min_image(atoms.x()[i], atoms.x()[j]);
                let r2 = rij.norm2();
                let diff = r2 - d2;
                let rel = diff.abs() / d2;
                worst = worst.max(rel);
                if rel <= self.tolerance {
                    continue;
                }
                let mi = atoms.mass(i);
                let mj = atoms.mass(j);
                let inv_mi = 1.0 / mi;
                let inv_mj = 1.0 / mj;
                // Iterative projection along the current bond direction:
                // g solves |r + g (1/mi + 1/mj) r|^2 = d^2 to first order.
                let g = -diff / (2.0 * r2 * (inv_mi + inv_mj));
                let corr_i = rij * (g * inv_mi);
                let corr_j = rij * (-g * inv_mj);
                atoms.x_mut()[i] += corr_i;
                atoms.x_mut()[j] += corr_j;
                atoms.v_mut()[i] += corr_i * inv_dt;
                atoms.v_mut()[j] += corr_j * inv_dt;
            }
            if worst <= self.tolerance {
                self.last_iterations = sweep + 1;
                return Ok(());
            }
        }
        Err(CoreError::NoConvergence {
            what: "shake",
            iterations: self.max_iterations,
            residual: worst,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;

    fn water_like() -> (AtomStore, SimBox) {
        let mut a = AtomStore::new();
        // O at origin, two H's slightly off their 1.0-length bonds.
        a.push(Vec3::new(0.0, 0.0, 0.0), Vec3::zero(), 0);
        a.push(Vec3::new(1.08, 0.0, 0.0), Vec3::zero(), 1);
        a.push(Vec3::new(-0.31, 0.95, 0.0), Vec3::zero(), 1);
        a.set_masses(vec![16.0, 1.0]);
        (a, SimBox::cubic(20.0))
    }

    #[test]
    fn restores_bond_lengths() {
        let (mut a, bx) = water_like();
        let mut shake = Shake::new(
            vec![
                ShakeParams {
                    i: 0,
                    j: 1,
                    length: 1.0,
                },
                ShakeParams {
                    i: 0,
                    j: 2,
                    length: 1.0,
                },
            ],
            1e-8,
            100,
        );
        shake.apply(&mut a, &bx, 0.001).unwrap();
        for (i, j) in [(0usize, 1usize), (0, 2)] {
            let r = bx.min_image(a.x()[i], a.x()[j]).norm();
            assert!((r - 1.0).abs() < 1e-4, "bond {i}-{j} length {r}");
        }
        assert!(shake.last_iterations() >= 1);
    }

    #[test]
    fn heavy_atom_moves_less() {
        let (mut a, bx) = water_like();
        let o_before = a.x()[0];
        let h_before = a.x()[1];
        let mut shake = Shake::new(
            vec![ShakeParams {
                i: 0,
                j: 1,
                length: 1.0,
            }],
            1e-10,
            100,
        );
        shake.apply(&mut a, &bx, 0.001).unwrap();
        let o_moved = (a.x()[0] - o_before).norm();
        let h_moved = (a.x()[1] - h_before).norm();
        assert!(
            o_moved < h_moved / 10.0,
            "O moved {o_moved}, H moved {h_moved}"
        );
    }

    #[test]
    fn velocity_correction_matches_position_correction() {
        let (mut a, bx) = water_like();
        let dt = 0.002;
        let x_before = a.x()[1];
        let mut shake = Shake::new(
            vec![ShakeParams {
                i: 0,
                j: 1,
                length: 1.0,
            }],
            1e-10,
            100,
        );
        shake.apply(&mut a, &bx, dt).unwrap();
        let dx = a.x()[1] - x_before;
        assert!((a.v()[1] - dx * (1.0 / dt)).norm() < 1e-12);
    }

    #[test]
    fn reports_non_convergence() {
        let (mut a, bx) = water_like();
        // Impossible pair of constraints: same atoms, two different lengths.
        let mut shake = Shake::new(
            vec![
                ShakeParams {
                    i: 0,
                    j: 1,
                    length: 1.0,
                },
                ShakeParams {
                    i: 0,
                    j: 1,
                    length: 2.0,
                },
            ],
            1e-10,
            20,
        );
        let err = shake.apply(&mut a, &bx, 0.001).unwrap_err();
        assert!(matches!(
            err,
            CoreError::NoConvergence { what: "shake", .. }
        ));
    }

    #[test]
    fn empty_solver_is_a_noop() {
        let (mut a, bx) = water_like();
        let before = a.x().to_vec();
        let mut shake = Shake::new(vec![], 1e-8, 10);
        shake.apply(&mut a, &bx, 0.001).unwrap();
        assert_eq!(a.x(), before.as_slice());
    }
}
