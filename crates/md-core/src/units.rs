//! Unit systems, mirroring the LAMMPS `units` command.
//!
//! The benchmark suite spans three unit systems: reduced Lennard-Jones units
//! (LJ, Chain, Chute), `metal` units (EAM: eV, Å, ps), and `real` units
//! (Rhodopsin: kcal/mol, Å, fs). The engine is unit-agnostic; a
//! [`UnitSystem`] bundles the constants that the integrators, thermostats,
//! and Coulomb kernels need.

/// Physical constants for one simulation unit system.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UnitSystem {
    /// Short name ("lj", "metal", "real").
    pub name: &'static str,
    /// Boltzmann constant in (energy unit)/(temperature unit).
    pub boltzmann: f64,
    /// Coulomb conversion `q_i q_j / r → energy`; zero for chargeless systems.
    pub qqr2e: f64,
    /// Conversion from (mass × velocity²) to energy units (`mvv2e`).
    pub mvv2e: f64,
    /// Conversion from energy/volume to pressure units (`nktv2p`).
    pub nktv2p: f64,
    /// Conventional timestep in time units (τ for LJ, ps for metal, fs for real).
    pub default_dt: f64,
    /// Femtoseconds of physical time per unit of simulation time; lets the
    /// harness convert TS/s into ns/day for the paper's headline numbers.
    pub femtoseconds_per_time_unit: f64,
}

impl UnitSystem {
    /// Reduced Lennard-Jones units: ε = σ = m = kB = 1.
    pub const fn lj() -> Self {
        UnitSystem {
            name: "lj",
            boltzmann: 1.0,
            qqr2e: 1.0,
            mvv2e: 1.0,
            nktv2p: 1.0,
            default_dt: 0.005,
            // Conventional argon mapping: τ ≈ 2.1569 ps (only used for ns/day
            // conversions, which the paper reports only for rhodopsin).
            femtoseconds_per_time_unit: 2156.9,
        }
    }

    /// `metal` units: eV, Å, ps, K, bar (used by the EAM benchmark).
    pub const fn metal() -> Self {
        UnitSystem {
            name: "metal",
            boltzmann: 8.617333262e-5,
            qqr2e: 14.399645,
            mvv2e: 1.0364269e-4,
            nktv2p: 1.6021765e6,
            default_dt: 0.001,
            femtoseconds_per_time_unit: 1000.0,
        }
    }

    /// `real` units: kcal/mol, Å, fs, K, atm (used by the Rhodopsin benchmark).
    pub const fn real() -> Self {
        UnitSystem {
            name: "real",
            boltzmann: 0.0019872067,
            qqr2e: 332.06371,
            mvv2e: 48.88821291 * 48.88821291,
            nktv2p: 68568.415,
            default_dt: 1.0,
            femtoseconds_per_time_unit: 1.0,
        }
    }

    /// Looks a system up by its LAMMPS name.
    ///
    /// Returns `None` for unknown names.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "lj" => Some(Self::lj()),
            "metal" => Some(Self::metal()),
            "real" => Some(Self::real()),
            _ => None,
        }
    }
}

impl Default for UnitSystem {
    fn default() -> Self {
        Self::lj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(UnitSystem::by_name("lj"), Some(UnitSystem::lj()));
        assert_eq!(UnitSystem::by_name("metal").unwrap().name, "metal");
        assert_eq!(UnitSystem::by_name("real").unwrap().name, "real");
        assert!(UnitSystem::by_name("si").is_none());
    }

    #[test]
    fn metal_boltzmann_matches_ev_per_kelvin() {
        let u = UnitSystem::metal();
        assert!((u.boltzmann - 8.617e-5).abs() < 1e-7);
    }

    #[test]
    fn real_units_kinetic_conversion_is_consistent() {
        // In real units velocities are Å/fs; mvv2e converts g/mol (Å/fs)^2 to
        // kcal/mol: 1 g/mol Å^2/fs^2 = 1e7 J/mol = 2390.06 kcal/mol.
        let u = UnitSystem::real();
        assert!((u.mvv2e - 2390.057).abs() < 0.01);
    }
}
