//! Floating-point abstraction for precision-sensitive kernels.
//!
//! The paper's Section 8 studies the performance impact of computing pairwise
//! non-bonded forces in single, double, or mixed precision (single-precision
//! arithmetic with double-precision force accumulation, the LAMMPS INTEL /
//! GPU package default). The engine keeps its *state* (positions, velocities)
//! in `f64`; the pair kernels are generic over [`Real`] so that the same
//! kernel source instantiates an `f32` and an `f64` variant, and a
//! [`PrecisionMode`] selects which variant runs and how forces accumulate.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A scalar usable inside force kernels: `f32` or `f64`.
///
/// This trait is sealed: the set of IEEE types the engine supports is closed,
/// and downstream crates select among them with [`PrecisionMode`].
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + private::Sealed
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// The value two, handy in kinetic-energy and Verlet expressions.
    const TWO: Self;
    /// One half.
    const HALF: Self;

    /// Lossy conversion from `f64` (the engine's state precision).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// `self^n` for small integer exponents.
    fn powi(self, n: i32) -> Self;
    /// Minimum of two values.
    fn min(self, other: Self) -> Self;
    /// Maximum of two values.
    fn max(self, other: Self) -> Self;
    /// Machine epsilon of the representation.
    fn epsilon() -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const HALF: Self = 0.5;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

/// Floating-point strategy for pairwise force kernels (paper Section 8).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize, Default,
)]
pub enum PrecisionMode {
    /// `f32` arithmetic, `f32` accumulation.
    Single,
    /// `f32` arithmetic, `f64` force accumulation (the LAMMPS default).
    #[default]
    Mixed,
    /// `f64` arithmetic throughout.
    Double,
}

impl PrecisionMode {
    /// All modes, in the order the paper reports them.
    pub const ALL: [PrecisionMode; 3] = [
        PrecisionMode::Single,
        PrecisionMode::Mixed,
        PrecisionMode::Double,
    ];

    /// Short lowercase label used in figure legends ("single", "mixed", "double").
    pub fn label(self) -> &'static str {
        match self {
            PrecisionMode::Single => "single",
            PrecisionMode::Mixed => "mixed",
            PrecisionMode::Double => "double",
        }
    }

    /// Bytes per scalar moved through the arithmetic units.
    pub fn compute_width(self) -> usize {
        match self {
            PrecisionMode::Single | PrecisionMode::Mixed => 4,
            PrecisionMode::Double => 8,
        }
    }

    /// Bytes per scalar in the force accumulators.
    pub fn accumulate_width(self) -> usize {
        match self {
            PrecisionMode::Single => 4,
            PrecisionMode::Mixed | PrecisionMode::Double => 8,
        }
    }
}

impl std::fmt::Display for PrecisionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f32() {
        let x = <f32 as Real>::from_f64(1.5);
        assert_eq!(x.to_f64(), 1.5);
    }

    #[test]
    fn generic_kernel_works_for_both_widths() {
        fn lj_energy<R: Real>(r2: R) -> R {
            let inv2 = R::ONE / r2;
            let inv6 = inv2 * inv2 * inv2;
            R::from_f64(4.0) * inv6 * (inv6 - R::ONE)
        }
        let e32 = lj_energy(1.2f32).to_f64();
        let e64 = lj_energy(1.2f64);
        assert!((e32 - e64).abs() < 1e-6, "{e32} vs {e64}");
    }

    #[test]
    fn mode_widths() {
        assert_eq!(PrecisionMode::Single.compute_width(), 4);
        assert_eq!(PrecisionMode::Mixed.compute_width(), 4);
        assert_eq!(PrecisionMode::Mixed.accumulate_width(), 8);
        assert_eq!(PrecisionMode::Double.compute_width(), 8);
    }

    #[test]
    fn labels_are_stable() {
        for m in PrecisionMode::ALL {
            assert_eq!(m.to_string(), m.label());
        }
    }
}
