//! Error types for the core engine.

use std::fmt;

/// Convenience result alias used across `md-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors produced by the core MD engine.
///
/// All variants carry enough context to be actionable without a debugger; the
/// `Display` form is lowercase and without trailing punctuation per Rust API
/// guidelines (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The simulation box is invalid (non-positive extent, bad tilt, ...).
    InvalidBox {
        /// Human-readable reason.
        reason: String,
    },
    /// A per-atom array had an unexpected length.
    LengthMismatch {
        /// What was being validated.
        what: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Number of entries found.
        found: usize,
    },
    /// The requested cutoff does not fit the box under minimum-image PBC.
    CutoffTooLarge {
        /// Requested interaction range (cutoff + skin).
        range: f64,
        /// Smallest periodic box extent.
        min_extent: f64,
    },
    /// An atom type index is out of range for a parameter table.
    UnknownAtomType {
        /// Offending type index.
        atom_type: u32,
        /// Number of types the table was built for.
        ntypes: usize,
    },
    /// An iterative solver (SHAKE, barostat, ...) failed to converge.
    NoConvergence {
        /// Which solver failed.
        what: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// A configuration value is outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// A serialized state blob failed validation (truncation, bad magic,
    /// version or checksum mismatch, inconsistent lengths).
    CorruptState {
        /// What was being decoded (e.g. `checkpoint`, `neighbor list`).
        what: &'static str,
        /// Human-readable reason.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidBox { reason } => write!(f, "invalid simulation box: {reason}"),
            CoreError::LengthMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "length mismatch for {what}: expected {expected}, found {found}"
            ),
            CoreError::CutoffTooLarge { range, min_extent } => write!(
                f,
                "interaction range {range} exceeds half the smallest box extent {min_extent}"
            ),
            CoreError::UnknownAtomType { atom_type, ntypes } => {
                write!(f, "atom type {atom_type} out of range for {ntypes} types")
            }
            CoreError::NoConvergence {
                what,
                iterations,
                residual,
            } => write!(
                f,
                "{what} failed to converge after {iterations} iterations (residual {residual:e})"
            ),
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            CoreError::CorruptState { what, detail } => {
                write!(f, "corrupt {what} state: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_period() {
        let e = CoreError::LengthMismatch {
            what: "velocities",
            expected: 10,
            found: 9,
        };
        let s = e.to_string();
        assert!(s.starts_with("length mismatch"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
