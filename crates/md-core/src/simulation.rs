//! The timestep driver: wires integrator, neighbor list, force styles, and
//! fixes together in the order of the paper's Figure 1, attributing the time
//! of every phase to its Table-1 task.
//!
//! ```text
//! I    initial integration          -> Modify
//! II   apply boundary conditions    -> Neigh (folded into the rebuild check)
//! III  update neighbor list         -> Neigh
//! IV   (inter-processor comm)       -> Comm (only in md-parallel runs)
//! V    pairwise short-range forces  -> Pair
//! VI   long-range forces            -> Kspace
//! VII  bonded forces                -> Bond
//! VIII compute system properties    -> Output
//! ```

use crate::atoms::AtomStore;
use crate::compute::{kinetic_energy, pressure, temperature, ThermoState};
use crate::constraint::Shake;
use crate::error::{CoreError, Result};
use crate::force::{
    AngleStyle, BondStyle, DihedralStyle, EnergyVirial, Fix, KspaceStyle, PairStyle, PairSystem,
};
use crate::integrate::{IntegrateContext, Integrator, VelocityVerlet};
use crate::neighbor::NeighborList;
use crate::simbox::SimBox;
use crate::task::{TaskKind, TaskLedger};
use crate::threads::Threads;
use crate::units::UnitSystem;
use crate::vec3::Vec3;
use crate::wire;
use crate::V3;
use md_observe::{Recorder, StepSample, NUM_TASKS};
use std::time::Instant;

/// Trace lane of the real engine (virtual ranks use lanes `1..`).
const ENGINE_LANE: u32 = 0;

/// Summary of a [`Simulation::run`] call.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Timesteps executed.
    pub steps: u64,
    /// Wall-clock seconds elapsed.
    pub wall_seconds: f64,
    /// Timesteps per second (the paper's TS/s metric).
    pub ts_per_sec: f64,
    /// Per-task time ledger for the run.
    pub ledger: TaskLedger,
    /// Thermodynamic state after the final step.
    pub thermo: ThermoState,
    /// Neighbor-list rebuilds during the run.
    pub neighbor_builds: usize,
}

/// A single-process MD simulation.
///
/// Construct with [`SimulationBuilder`]; drive with [`Simulation::step`] or
/// [`Simulation::run`].
pub struct Simulation {
    units: UnitSystem,
    dt: f64,
    bx: SimBox,
    atoms: AtomStore,
    pair: Option<Box<dyn PairStyle>>,
    bond: Option<Box<dyn BondStyle>>,
    angle: Option<Box<dyn AngleStyle>>,
    dihedral: Option<Box<dyn DihedralStyle>>,
    kspace: Option<Box<dyn KspaceStyle>>,
    integrator: Box<dyn Integrator>,
    fixes: Vec<Box<dyn Fix>>,
    shake: Option<Shake>,
    neighbor: Option<NeighborList>,
    forces: Vec<V3>,
    ledger: TaskLedger,
    step: u64,
    thermo_every: u64,
    energy: EnergyVirial,
    thermo_log: Vec<ThermoState>,
    recorder: Recorder,
    threads: Threads,
    /// Step index of the most recent neighbor rebuild (for the
    /// rebuild-interval histogram).
    last_rebuild_step: u64,
    /// Total energy at the first thermo sample (drift reference).
    energy_first: Option<f64>,
    /// Most recently computed relative energy drift.
    last_drift: f64,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("atoms", &self.atoms.len())
            .field("step", &self.step)
            .field("dt", &self.dt)
            .field("box", &self.bx)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Starts building a simulation over `atoms` in `bx`.
    pub fn builder(bx: SimBox, atoms: AtomStore, units: UnitSystem) -> SimulationBuilder {
        SimulationBuilder::new(bx, atoms, units)
    }

    /// Current timestep index.
    pub fn step_index(&self) -> u64 {
        self.step
    }

    /// The simulation box (changes under NPT).
    pub fn sim_box(&self) -> &SimBox {
        &self.bx
    }

    /// The atom store.
    pub fn atoms(&self) -> &AtomStore {
        &self.atoms
    }

    /// The atom store, mutable (e.g. to reseed velocities between stages).
    pub fn atoms_mut(&mut self) -> &mut AtomStore {
        &mut self.atoms
    }

    /// The per-task time ledger accumulated so far.
    pub fn ledger(&self) -> &TaskLedger {
        &self.ledger
    }

    /// Unit system in use.
    pub fn units(&self) -> &UnitSystem {
        &self.units
    }

    /// Timestep length.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The neighbor list, if a pair style is configured.
    pub fn neighbor_list(&self) -> Option<&NeighborList> {
        self.neighbor.as_ref()
    }

    /// Energy/virial totals from the most recent force evaluation.
    pub fn energy(&self) -> EnergyVirial {
        self.energy
    }

    /// Mesh statistics of the long-range solver, if one is configured.
    pub fn kspace_stats(&self) -> Option<crate::force::KspaceStats> {
        self.kspace.as_ref().map(|k| k.stats())
    }

    /// Thermodynamic rows recorded so far (one per `thermo_every` steps).
    pub fn thermo_log(&self) -> &[ThermoState] {
        &self.thermo_log
    }

    /// The attached observability recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The shared-memory thread-team configuration.
    pub fn threads(&self) -> Threads {
        self.threads
    }

    /// Attaches an observability recorder after construction. The handle is
    /// shared with the pair style and the k-space solver (if any), which
    /// emit kernel-phase and per-thread sub-spans on the same timeline.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        recorder.set_lane_name(ENGINE_LANE, "engine");
        if let Some(p) = self.pair.as_mut() {
            p.set_recorder(recorder.clone());
        }
        if let Some(ks) = self.kspace.as_mut() {
            ks.set_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }

    /// Computes the instantaneous thermodynamic state.
    pub fn thermo(&self) -> ThermoState {
        ThermoState {
            step: self.step,
            temperature: temperature(&self.atoms, &self.units),
            kinetic: kinetic_energy(&self.atoms, &self.units),
            potential: self.energy.energy(),
            pressure: pressure(&self.atoms, &self.units, &self.bx, self.energy.virial),
            volume: self.bx.volume(),
        }
    }

    /// Evaluates all forces at the current positions (used at setup and by
    /// every timestep). Updates `self.energy` and the atom force array.
    fn compute_forces(&mut self) {
        let n = self.atoms.len();
        if self.forces.len() != n {
            self.forces.resize(n, Vec3::zero());
        }
        for f in &mut self.forces {
            *f = Vec3::zero();
        }
        let mut energy = EnergyVirial::default();

        // Pair (task V).
        if let (Some(pair), Some(nl)) = (self.pair.as_mut(), self.neighbor.as_ref()) {
            let t0 = Instant::now();
            let sys = PairSystem {
                bx: &self.bx,
                x: self.atoms.x(),
                v: self.atoms.v(),
                kinds: self.atoms.kinds(),
                charge: self.atoms.charges(),
                radius: self.atoms.radii(),
                mass_by_type: self.atoms.masses_by_type(),
                units: &self.units,
                dt: self.dt,
            };
            energy += pair.compute(&sys, nl, &mut self.forces);
            let dt = t0.elapsed().as_secs_f64();
            self.ledger.add(TaskKind::Pair, dt);
            self.recorder
                .record_span(ENGINE_LANE, "task", "Pair", t0, dt);
        }

        // Bonded (task VII).
        let t0 = Instant::now();
        let mut bonded_any = false;
        if let Some(bond) = self.bond.as_mut() {
            energy += bond.compute(
                &self.bx,
                self.atoms.x(),
                self.atoms.bonds(),
                &mut self.forces,
            );
            bonded_any = true;
        }
        if let Some(angle) = self.angle.as_mut() {
            energy += angle.compute(
                &self.bx,
                self.atoms.x(),
                self.atoms.angles(),
                &mut self.forces,
            );
            bonded_any = true;
        }
        if let Some(dihedral) = self.dihedral.as_mut() {
            energy += dihedral.compute(
                &self.bx,
                self.atoms.x(),
                self.atoms.dihedrals(),
                &mut self.forces,
            );
            bonded_any = true;
        }
        if bonded_any {
            let dt = t0.elapsed().as_secs_f64();
            self.ledger.add(TaskKind::Bond, dt);
            self.recorder
                .record_span(ENGINE_LANE, "task", "Bond", t0, dt);
        }

        // K-space (task VI).
        if let Some(kspace) = self.kspace.as_mut() {
            let t0 = Instant::now();
            energy += kspace.compute(
                &self.bx,
                self.atoms.x(),
                self.atoms.charges(),
                &mut self.forces,
            );
            let dt = t0.elapsed().as_secs_f64();
            self.ledger.add(TaskKind::Kspace, dt);
            self.recorder
                .record_span(ENGINE_LANE, "task", "Kspace", t0, dt);
        }

        // Post-force fixes (Modify).
        if !self.fixes.is_empty() {
            let t0 = Instant::now();
            let sys = PairSystem {
                bx: &self.bx,
                x: self.atoms.x(),
                v: self.atoms.v(),
                kinds: self.atoms.kinds(),
                charge: self.atoms.charges(),
                radius: self.atoms.radii(),
                mass_by_type: self.atoms.masses_by_type(),
                units: &self.units,
                dt: self.dt,
            };
            for fix in &mut self.fixes {
                fix.post_force(&sys, &mut self.forces);
            }
            let dt = t0.elapsed().as_secs_f64();
            self.ledger.add(TaskKind::Modify, dt);
            self.recorder
                .record_span(ENGINE_LANE, "task", "Modify", t0, dt);
        }

        self.atoms.f_mut().copy_from_slice(&self.forces);
        self.energy = energy;
    }

    /// Rebuilds the neighbor list if the displacement trigger fired, wrapping
    /// positions into the box first (task III / boundary step II). Returns
    /// whether a rebuild happened.
    ///
    /// # Errors
    ///
    /// Propagates neighbor-build failures (cutoff too large for the box).
    fn refresh_neighbors(&mut self, force_build: bool) -> Result<bool> {
        let Some(nl) = self.neighbor.as_mut() else {
            return Ok(false);
        };
        let t0 = Instant::now();
        let rebuild = force_build || nl.needs_rebuild(self.atoms.x(), &self.bx);
        if rebuild {
            {
                let bx = self.bx;
                let (x, images) = self.atoms.x_and_images_mut();
                for (xi, im) in x.iter_mut().zip(images.iter_mut()) {
                    bx.wrap(xi, im);
                }
            }
            let atoms = &self.atoms;
            nl.build_with(atoms.x(), &self.bx, |i| atoms.exclusions(i))?;
        }
        let dt = t0.elapsed().as_secs_f64();
        self.ledger.add(TaskKind::Neigh, dt);
        self.recorder
            .record_span(ENGINE_LANE, "task", "Neigh", t0, dt);
        Ok(rebuild)
    }

    /// Advances the simulation by one timestep.
    ///
    /// # Errors
    ///
    /// Returns an error if SHAKE fails to converge or the neighbor list
    /// cannot be rebuilt.
    pub fn step(&mut self) -> Result<()> {
        let observing = self.recorder.is_enabled();
        let step_t0 = Instant::now();
        let ledger_before = if observing {
            Some(self.ledger.clone())
        } else {
            None
        };

        // I: initial integration (+ SHAKE projection) — Modify.
        let t0 = Instant::now();
        let ctx = IntegrateContext {
            dt: self.dt,
            units: &self.units,
            virial: self.energy.virial,
        };
        self.integrator
            .initial_integrate(&mut self.atoms, &mut self.bx, &ctx);
        if let Some(shake) = self.shake.as_mut() {
            shake.apply(&mut self.atoms, &self.bx, self.dt)?;
        }
        let dt = t0.elapsed().as_secs_f64();
        self.ledger.add(TaskKind::Modify, dt);
        self.recorder
            .record_span(ENGINE_LANE, "task", "Modify", t0, dt);

        // II + III: boundary conditions + neighbor maintenance — Neigh.
        let rebuilt = self.refresh_neighbors(false)?;

        // V + VI + VII (+ post-force fixes): forces.
        self.compute_forces();

        // Final integration — Modify.
        let t0 = Instant::now();
        let ctx = IntegrateContext {
            dt: self.dt,
            units: &self.units,
            virial: self.energy.virial,
        };
        self.integrator
            .final_integrate(&mut self.atoms, &mut self.bx, &ctx);
        let dt = t0.elapsed().as_secs_f64();
        self.ledger.add(TaskKind::Modify, dt);
        self.recorder
            .record_span(ENGINE_LANE, "task", "Modify", t0, dt);

        self.step += 1;

        // VIII: thermodynamic output — Output.
        if self.thermo_every > 0 && self.step.is_multiple_of(self.thermo_every) {
            let t0 = Instant::now();
            let row = self.thermo();
            if observing {
                let e = row.total_energy();
                let e0 = *self.energy_first.get_or_insert(e);
                self.last_drift = (e - e0).abs() / e0.abs().max(1.0);
                self.recorder
                    .gauge(ENGINE_LANE, "energy_drift", self.last_drift);
            }
            self.thermo_log.push(row);
            let dt = t0.elapsed().as_secs_f64();
            self.ledger.add(TaskKind::Output, dt);
            self.recorder
                .record_span(ENGINE_LANE, "task", "Output", t0, dt);
        }

        if let Some(before) = ledger_before {
            self.record_step_sample(&before, step_t0, rebuilt);
        }
        Ok(())
    }

    /// Assembles and records this step's [`StepSample`], the residual
    /// `Other` span, the latency/rebuild histograms, and the counters.
    /// Only called when the recorder is enabled.
    fn record_step_sample(&mut self, before: &TaskLedger, step_t0: Instant, rebuilt: bool) {
        let wall = step_t0.elapsed().as_secs_f64();
        let mut task_seconds = [0.0; NUM_TASKS];
        for (i, (task, secs)) in self.ledger.iter().enumerate() {
            task_seconds[i] = secs - before.seconds(task);
        }
        // Time inside step() not attributed to any task is `Other`.
        let accounted: f64 = task_seconds.iter().sum();
        let other = (wall - accounted).max(0.0);
        task_seconds[TaskKind::Other.index()] += other;
        if other > 0.0 {
            let end_us = self.recorder.now_us();
            self.recorder.record_span_at(
                ENGINE_LANE,
                "task",
                "Other",
                (end_us - other * 1e6).max(0.0),
                other * 1e6,
            );
        }

        self.recorder.observe("step_latency_us", wall * 1e6);
        if rebuilt {
            self.recorder.count(ENGINE_LANE, "neighbor_rebuilds", 1.0);
            self.recorder.observe(
                "rebuild_interval_steps",
                (self.step - self.last_rebuild_step) as f64,
            );
            self.last_rebuild_step = self.step;
        }
        let pair_interactions = self.neighbor.as_ref().map_or(0, |n| n.len() as u64);
        self.recorder
            .gauge(ENGINE_LANE, "pair_interactions", pair_interactions as f64);
        self.recorder.push_step(StepSample {
            step: self.step,
            task_seconds,
            wall_seconds: wall,
            neighbor_rebuild: rebuilt,
            // Single-process engine: no ghost layer (md-parallel owns them).
            ghost_atoms: 0,
            pair_interactions,
            energy_drift: self.last_drift,
        });
    }

    /// Runs `nsteps` timesteps and reports timing.
    ///
    /// # Errors
    ///
    /// Stops at the first failing step and returns its error.
    pub fn run(&mut self, nsteps: u64) -> Result<StepReport> {
        let ledger_before = self.ledger.clone();
        let builds_before = self.neighbor.as_ref().map_or(0, |n| n.stats().builds);
        let t0 = Instant::now();
        for _ in 0..nsteps {
            self.step()?;
        }
        let wall = t0.elapsed().as_secs_f64();
        // Report only this run's share (both seconds and phase counts).
        let ledger = self.ledger.delta_since(&ledger_before);
        Ok(StepReport {
            steps: nsteps,
            wall_seconds: wall,
            ts_per_sec: if wall > 0.0 {
                nsteps as f64 / wall
            } else {
                0.0
            },
            ledger,
            thermo: self.thermo(),
            neighbor_builds: self.neighbor.as_ref().map_or(0, |n| n.stats().builds) - builds_before,
        })
    }

    /// Relative energy drift at the most recent thermo sample (zero until
    /// the recorder has observed at least one sample).
    pub fn last_energy_drift(&self) -> f64 {
        self.last_drift
    }

    /// Replaces the timestep (recovery-ladder mitigation: shrink `dt` after
    /// a numerical-health violation).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `dt` is positive and
    /// finite.
    pub fn set_dt(&mut self, dt: f64) -> Result<()> {
        if !(dt > 0.0 && dt.is_finite()) {
            return Err(CoreError::InvalidParameter {
                name: "dt",
                reason: format!("timestep {dt} must be positive and finite"),
            });
        }
        self.dt = dt;
        Ok(())
    }

    /// Forces a neighbor-list rebuild at the current positions, regardless
    /// of the displacement trigger (recovery-ladder mitigation).
    ///
    /// # Errors
    ///
    /// Propagates neighbor-build failures.
    pub fn force_neighbor_rebuild(&mut self) -> Result<()> {
        self.refresh_neighbors(true)?;
        Ok(())
    }

    /// Tightens the long-range solver's accuracy target one notch and
    /// re-runs its setup (recovery-ladder mitigation). Returns `false` if no
    /// solver is configured or it has no accuracy knob.
    ///
    /// # Errors
    ///
    /// Propagates solver setup failures at the tightened target.
    pub fn tighten_kspace(&mut self) -> Result<bool> {
        let Some(ks) = self.kspace.as_mut() else {
            return Ok(false);
        };
        if !ks.tighten_accuracy() {
            return Ok(false);
        }
        ks.setup(&self.bx, self.atoms.charges())?;
        Ok(true)
    }

    /// Serializes the simulation's full dynamic state (everything the
    /// timestep loop mutates) into a self-contained byte blob.
    ///
    /// The blob captures positions, velocities, forces, image flags, the
    /// box, step counter, timestep, energy accumulators, the thermo log, the
    /// task ledger, the neighbor list (including its rebuild-trigger
    /// reference positions), and the opaque per-component state of the
    /// integrator, fixes, and pair style (RNG streams, barostat internals,
    /// granular contact history). Static configuration — topology, masses,
    /// charges, force-field parameters — is *not* stored: a restore target
    /// is expected to be rebuilt from the same deck recipe first, then
    /// overlaid with [`Simulation::load_state`]. Together the two reproduce
    /// an uninterrupted run bitwise.
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = wire::Writer::new();
        w.u64(self.step);
        w.f64(self.dt);
        w.v3(self.bx.lo());
        w.v3(self.bx.hi());
        for d in 0..3 {
            w.bool(self.bx.is_periodic(d));
        }
        w.v3s(self.atoms.x());
        w.v3s(self.atoms.v());
        w.v3s(self.atoms.f());
        w.i32x3s(self.atoms.images());
        w.f64(self.energy.evdwl);
        w.f64(self.energy.ecoul);
        w.f64(self.energy.virial);
        match self.energy_first {
            Some(e) => {
                w.bool(true);
                w.f64(e);
            }
            None => w.bool(false),
        }
        w.f64(self.last_drift);
        w.u64(self.last_rebuild_step);
        w.usize(self.thermo_log.len());
        for row in &self.thermo_log {
            w.u64(row.step);
            w.f64(row.temperature);
            w.f64(row.kinetic);
            w.f64(row.potential);
            w.f64(row.pressure);
            w.f64(row.volume);
        }
        self.ledger.state_save(&mut w);
        // Per-component state goes into length-prefixed sub-blobs so each
        // component's reader can be checked for exact exhaustion.
        let sub_blob = |f: &dyn Fn(&mut wire::Writer)| {
            let mut sub = wire::Writer::new();
            f(&mut sub);
            sub.into_bytes()
        };
        match &self.neighbor {
            Some(nl) => {
                w.bool(true);
                w.blob(&sub_blob(&|sub| nl.state_save(sub)));
            }
            None => w.bool(false),
        }
        w.blob(&sub_blob(&|sub| self.integrator.state_save(sub)));
        w.usize(self.fixes.len());
        for fix in &self.fixes {
            w.blob(&sub_blob(&|sub| fix.state_save(sub)));
        }
        match &self.pair {
            Some(p) => {
                w.bool(true);
                w.blob(&sub_blob(&|sub| p.state_save(sub)));
            }
            None => w.bool(false),
        }
        w.into_bytes()
    }

    /// Restores state written by [`Simulation::save_state`] onto a
    /// simulation freshly rebuilt from the same deck recipe (same
    /// benchmark, scale, seed, and thread count).
    ///
    /// On success the simulation continues bitwise-identically to the run
    /// that produced the blob. On error the simulation may be partially
    /// overwritten and must be discarded.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptState`] if the blob is malformed,
    /// truncated, carries trailing bytes, or disagrees with this
    /// simulation's structure (atom count, component population).
    pub fn load_state(&mut self, data: &[u8]) -> Result<()> {
        let mut r = wire::Reader::new(data, "simulation");
        let corrupt = |detail: String| CoreError::CorruptState {
            what: "simulation",
            detail,
        };
        self.step = r.u64()?;
        let dt = r.f64()?;
        if !(dt > 0.0 && dt.is_finite()) {
            return Err(corrupt(format!("timestep {dt} is not positive and finite")));
        }
        self.dt = dt;
        let lo = r.v3()?;
        let hi = r.v3()?;
        let periodic = [r.bool()?, r.bool()?, r.bool()?];
        self.bx = SimBox::new(lo, hi)?.with_periodicity(periodic[0], periodic[1], periodic[2]);
        let n = self.atoms.len();
        let check_len = |what: &str, len: usize| {
            if len == n {
                Ok(())
            } else {
                Err(corrupt(format!("{what} has {len} entries for {n} atoms")))
            }
        };
        let x = r.v3s()?;
        check_len("position array", x.len())?;
        let v = r.v3s()?;
        check_len("velocity array", v.len())?;
        let f = r.v3s()?;
        check_len("force array", f.len())?;
        let images = r.i32x3s()?;
        check_len("image array", images.len())?;
        self.atoms.x_mut().copy_from_slice(&x);
        self.atoms.v_mut().copy_from_slice(&v);
        self.atoms.f_mut().copy_from_slice(&f);
        self.atoms.images_mut().copy_from_slice(&images);
        self.forces = f;
        self.energy = EnergyVirial {
            evdwl: r.f64()?,
            ecoul: r.f64()?,
            virial: r.f64()?,
        };
        self.energy_first = if r.bool()? { Some(r.f64()?) } else { None };
        self.last_drift = r.f64()?;
        self.last_rebuild_step = r.u64()?;
        let rows = r.usize()?;
        self.thermo_log = Vec::new();
        for _ in 0..rows {
            self.thermo_log.push(ThermoState {
                step: r.u64()?,
                temperature: r.f64()?,
                kinetic: r.f64()?,
                potential: r.f64()?,
                pressure: r.f64()?,
                volume: r.f64()?,
            });
        }
        self.ledger.state_load(&mut r)?;
        let sub = |blob: &[u8],
                   what: &'static str,
                   apply: &mut dyn FnMut(&mut wire::Reader<'_>) -> Result<()>|
         -> Result<()> {
            let mut sr = wire::Reader::new(blob, what);
            apply(&mut sr)?;
            sr.expect_exhausted()
        };
        let has_neighbor = r.bool()?;
        if has_neighbor != self.neighbor.is_some() {
            return Err(corrupt(
                "neighbor-list presence disagrees with this simulation".to_string(),
            ));
        }
        if has_neighbor {
            let blob = r.blob()?;
            let nl = self.neighbor.as_mut().expect("checked above");
            sub(blob, "neighbor list", &mut |sr| nl.state_load(sr))?;
        }
        let blob = r.blob()?;
        sub(blob, "integrator", &mut |sr| self.integrator.state_load(sr))?;
        let nfixes = r.usize()?;
        if nfixes != self.fixes.len() {
            return Err(corrupt(format!(
                "{nfixes} fix blobs for {} configured fixes",
                self.fixes.len()
            )));
        }
        for fix in &mut self.fixes {
            let blob = r.blob()?;
            sub(blob, "fix", &mut |sr| fix.state_load(sr))?;
        }
        let has_pair = r.bool()?;
        if has_pair != self.pair.is_some() {
            return Err(corrupt(
                "pair-style presence disagrees with this simulation".to_string(),
            ));
        }
        if has_pair {
            let blob = r.blob()?;
            let p = self.pair.as_mut().expect("checked above");
            sub(blob, "pair style", &mut |sr| p.state_load(sr))?;
        }
        r.expect_exhausted()
    }
}

/// Builder for [`Simulation`] (non-consuming configuration, consuming build).
pub struct SimulationBuilder {
    bx: SimBox,
    atoms: AtomStore,
    units: UnitSystem,
    dt: Option<f64>,
    skin: f64,
    pair: Option<Box<dyn PairStyle>>,
    bond: Option<Box<dyn BondStyle>>,
    angle: Option<Box<dyn AngleStyle>>,
    dihedral: Option<Box<dyn DihedralStyle>>,
    kspace: Option<Box<dyn KspaceStyle>>,
    integrator: Option<Box<dyn Integrator>>,
    fixes: Vec<Box<dyn Fix>>,
    shake: Option<Shake>,
    thermo_every: u64,
    recorder: Option<Recorder>,
    threads: Threads,
}

impl std::fmt::Debug for SimulationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("atoms", &self.atoms.len())
            .field("skin", &self.skin)
            .finish_non_exhaustive()
    }
}

impl SimulationBuilder {
    /// Creates a builder with NVE integration, the unit system's default
    /// timestep, and a zero skin.
    pub fn new(bx: SimBox, atoms: AtomStore, units: UnitSystem) -> Self {
        SimulationBuilder {
            bx,
            atoms,
            units,
            dt: None,
            skin: 0.0,
            pair: None,
            bond: None,
            angle: None,
            dihedral: None,
            kspace: None,
            integrator: None,
            fixes: Vec::new(),
            shake: None,
            thermo_every: 0,
            recorder: None,
            threads: Threads::serial(),
        }
    }

    /// Sets the timestep (defaults to the unit system's conventional value).
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = Some(dt);
        self
    }

    /// Sets the neighbor skin distance.
    pub fn skin(mut self, skin: f64) -> Self {
        self.skin = skin;
        self
    }

    /// Sets the pairwise potential.
    pub fn pair(mut self, pair: Box<dyn PairStyle>) -> Self {
        self.pair = Some(pair);
        self
    }

    /// Sets the bond potential.
    pub fn bond(mut self, bond: Box<dyn BondStyle>) -> Self {
        self.bond = Some(bond);
        self
    }

    /// Sets the angle potential.
    pub fn angle(mut self, angle: Box<dyn AngleStyle>) -> Self {
        self.angle = Some(angle);
        self
    }

    /// Sets the dihedral potential.
    pub fn dihedral(mut self, dihedral: Box<dyn DihedralStyle>) -> Self {
        self.dihedral = Some(dihedral);
        self
    }

    /// Sets the long-range solver.
    pub fn kspace(mut self, kspace: Box<dyn KspaceStyle>) -> Self {
        self.kspace = Some(kspace);
        self
    }

    /// Sets the integrator (defaults to NVE velocity-Verlet).
    pub fn integrator(mut self, integrator: Box<dyn Integrator>) -> Self {
        self.integrator = Some(integrator);
        self
    }

    /// Adds a post-force fix (thermostat, gravity, wall, ...).
    pub fn fix(mut self, fix: Box<dyn Fix>) -> Self {
        self.fixes.push(fix);
        self
    }

    /// Adds SHAKE constraints.
    pub fn shake(mut self, shake: Shake) -> Self {
        self.shake = Some(shake);
        self
    }

    /// Records a thermo row every `every` steps (0 disables).
    pub fn thermo_every(mut self, every: u64) -> Self {
        self.thermo_every = every;
        self
    }

    /// Attaches an observability recorder (defaults to
    /// [`Recorder::disabled`], whose hooks cost one atomic load each).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Sets the shared-memory thread-team configuration (defaults to
    /// serial). Applied to the neighbor-list build and the k-space solver;
    /// pair styles thread through the `Threaded` wrapper in
    /// `md-potentials`, which the workload decks construct to match.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Validates the configuration, builds the initial neighbor list, runs
    /// the k-space setup, and evaluates initial forces.
    ///
    /// # Errors
    ///
    /// Returns an error if the atom store is inconsistent, the box cannot
    /// accommodate the interaction range, or a style's setup fails.
    pub fn build(self) -> Result<Simulation> {
        self.atoms.validate()?;
        if self.atoms.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "atoms",
                reason: "simulation has no atoms".to_string(),
            });
        }
        if self.atoms.masses_by_type().is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "masses",
                reason: "mass table is empty; call AtomStore::set_masses".to_string(),
            });
        }
        let dt = self.dt.unwrap_or(self.units.default_dt);
        if !(dt > 0.0 && dt.is_finite()) {
            return Err(CoreError::InvalidParameter {
                name: "dt",
                reason: format!("timestep {dt} must be positive and finite"),
            });
        }
        if !(self.skin.is_finite() && self.skin >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "skin",
                reason: format!(
                    "neighbor skin {} must be non-negative and finite",
                    self.skin
                ),
            });
        }
        let neighbor = match &self.pair {
            Some(p) => {
                let cutoff = p.cutoff();
                if !(cutoff > 0.0 && cutoff.is_finite()) {
                    return Err(CoreError::InvalidParameter {
                        name: "cutoff",
                        reason: format!(
                            "pair style `{}` cutoff {cutoff} must be positive and finite",
                            p.name()
                        ),
                    });
                }
                // Reject a list range that exceeds half the box up front,
                // with a typed error, rather than deep inside the first
                // cell-list build.
                self.bx.check_interaction_range(cutoff + self.skin)?;
                let mut nl = NeighborList::new(cutoff, self.skin, p.list_kind());
                nl.set_threads(self.threads.count);
                Some(nl)
            }
            None => None,
        };
        let mut kspace = self.kspace;
        if let Some(ks) = kspace.as_mut() {
            ks.set_threads(self.threads);
            ks.setup(&self.bx, self.atoms.charges())?;
        }
        let mut sim = Simulation {
            units: self.units,
            dt,
            bx: self.bx,
            atoms: self.atoms,
            pair: self.pair,
            bond: self.bond,
            angle: self.angle,
            dihedral: self.dihedral,
            kspace,
            integrator: self
                .integrator
                .unwrap_or_else(|| Box::new(VelocityVerlet::new())),
            fixes: self.fixes,
            shake: self.shake,
            neighbor,
            forces: Vec::new(),
            ledger: TaskLedger::new(),
            step: 0,
            thermo_every: self.thermo_every,
            energy: EnergyVirial::default(),
            thermo_log: Vec::new(),
            recorder: Recorder::disabled(),
            threads: self.threads,
            last_rebuild_step: 0,
            energy_first: None,
            last_drift: 0.0,
        };
        if let Some(rec) = self.recorder {
            sim.set_recorder(rec);
        }
        sim.refresh_neighbors(true)?;
        sim.compute_forces();
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pure harmonic tether to the box center, for driver plumbing tests.
    struct Tether {
        k: f64,
    }

    impl PairStyle for Tether {
        fn name(&self) -> &'static str {
            "tether"
        }
        fn cutoff(&self) -> f64 {
            2.0
        }
        fn compute(
            &mut self,
            sys: &PairSystem<'_>,
            _nl: &NeighborList,
            f: &mut [V3],
        ) -> EnergyVirial {
            let c = (sys.bx.lo() + sys.bx.hi()) * 0.5;
            let mut e = 0.0;
            for (i, &xi) in sys.x.iter().enumerate() {
                let d = xi - c;
                f[i] -= d * self.k;
                e += 0.5 * self.k * d.norm2();
            }
            EnergyVirial {
                evdwl: e,
                ecoul: 0.0,
                virial: 0.0,
            }
        }
    }

    fn harmonic_sim() -> Simulation {
        let mut atoms = AtomStore::new();
        atoms.push(Vec3::new(6.0, 5.0, 5.0), Vec3::zero(), 0);
        atoms.set_masses(vec![1.0]);
        Simulation::builder(SimBox::cubic(10.0), atoms, UnitSystem::lj())
            .pair(Box::new(Tether { k: 1.0 }))
            .dt(0.01)
            .skin(0.5)
            .thermo_every(10)
            .build()
            .unwrap()
    }

    #[test]
    fn harmonic_oscillator_conserves_energy() {
        let mut sim = harmonic_sim();
        let e0 = sim.thermo().total_energy();
        sim.run(2000).unwrap();
        let e1 = sim.thermo().total_energy();
        assert!((e1 - e0).abs() < 1e-4 * e0.abs().max(1.0), "{e0} -> {e1}");
    }

    #[test]
    fn harmonic_oscillator_has_correct_period() {
        let mut sim = harmonic_sim();
        // omega = sqrt(k/m) = 1, period = 2*pi; after one period x ~ initial.
        let steps = (2.0 * std::f64::consts::PI / 0.01).round() as u64;
        sim.run(steps).unwrap();
        assert!((sim.atoms().x()[0].x - 6.0).abs() < 1e-3);
    }

    #[test]
    fn ledger_attributes_pair_and_modify_time() {
        let mut sim = harmonic_sim();
        sim.run(50).unwrap();
        assert!(sim.ledger().seconds(TaskKind::Pair) > 0.0);
        assert!(sim.ledger().seconds(TaskKind::Modify) > 0.0);
        assert!(sim.ledger().seconds(TaskKind::Neigh) > 0.0);
    }

    #[test]
    fn thermo_log_records_rows() {
        let mut sim = harmonic_sim();
        sim.run(35).unwrap();
        assert_eq!(sim.thermo_log().len(), 3);
        assert_eq!(sim.thermo_log()[0].step, 10);
    }

    #[test]
    fn builder_rejects_missing_masses() {
        let mut atoms = AtomStore::new();
        atoms.push(Vec3::zero(), Vec3::zero(), 0);
        let err = Simulation::builder(SimBox::cubic(5.0), atoms, UnitSystem::lj())
            .build()
            .unwrap_err();
        // validate() reports the missing mass entry as an unknown atom type.
        assert!(matches!(err, CoreError::UnknownAtomType { .. }));
    }

    #[test]
    fn builder_rejects_bad_dt() {
        let mut atoms = AtomStore::new();
        atoms.push(Vec3::zero(), Vec3::zero(), 0);
        atoms.set_masses(vec![1.0]);
        let err = Simulation::builder(SimBox::cubic(5.0), atoms, UnitSystem::lj())
            .dt(-1.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidParameter { name: "dt", .. }
        ));
    }

    #[test]
    fn recorder_collects_steps_spans_and_histograms() {
        let mut atoms = AtomStore::new();
        atoms.push(Vec3::new(6.0, 5.0, 5.0), Vec3::zero(), 0);
        atoms.set_masses(vec![1.0]);
        let rec = md_observe::Recorder::default();
        let mut sim = Simulation::builder(SimBox::cubic(10.0), atoms, UnitSystem::lj())
            .pair(Box::new(Tether { k: 1.0 }))
            .dt(0.01)
            .skin(0.5)
            .thermo_every(10)
            .recorder(rec.clone())
            .build()
            .unwrap();
        sim.run(30).unwrap();

        assert_eq!(rec.step_count(), 30);
        let latency = rec
            .hist_summary("step_latency_us")
            .expect("latency histogram");
        assert_eq!(latency.count, 30);
        assert!(latency.p99 >= latency.p50);
        // Pair, Modify, Neigh, Output spans must all be present.
        let names: std::collections::HashSet<&'static str> =
            rec.events().iter().map(|e| e.name).collect();
        for want in ["Pair", "Modify", "Neigh", "Output"] {
            assert!(names.contains(want), "missing {want} span");
        }
        let sample = rec.last_step().unwrap();
        assert_eq!(sample.step, 30);
        assert!(sample.wall_seconds > 0.0);
        // The split sums to the step wall time (Other absorbs the rest).
        let sum: f64 = sample.task_seconds.iter().sum();
        assert!(
            sum <= sample.wall_seconds * 1.0001,
            "{sum} vs {}",
            sample.wall_seconds
        );
        assert!(rec.counter_value("pair_interactions").is_some());
        assert!(rec.counter_value("energy_drift").is_some());
    }

    #[test]
    fn disabled_recorder_stays_empty_through_run() {
        let mut sim = harmonic_sim();
        sim.run(10).unwrap();
        assert_eq!(sim.recorder().event_count(), 0);
        assert_eq!(sim.recorder().step_count(), 0);
    }

    #[test]
    fn run_report_counts_only_its_own_time() {
        let mut sim = harmonic_sim();
        sim.run(20).unwrap();
        let r = sim.run(20).unwrap();
        assert_eq!(r.steps, 20);
        assert!(r.ts_per_sec > 0.0);
        assert!(r.ledger.total() <= sim.ledger().total());
    }
}
