//! Diagnostics computed from the atom state: kinetic energy, temperature,
//! pressure, and the per-step thermodynamic record (paper step VIII).

use crate::atoms::AtomStore;
use crate::simbox::SimBox;
use crate::units::UnitSystem;
use crate::vec3::Vec3;
use crate::V3;

/// One row of thermodynamic output.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThermoState {
    /// Timestep index.
    pub step: u64,
    /// Instantaneous temperature.
    pub temperature: f64,
    /// Kinetic energy.
    pub kinetic: f64,
    /// Potential energy (pair + bonded + kspace).
    pub potential: f64,
    /// Pressure in the unit system's pressure units.
    pub pressure: f64,
    /// Box volume.
    pub volume: f64,
}

impl ThermoState {
    /// Total (kinetic + potential) energy.
    pub fn total_energy(&self) -> f64 {
        self.kinetic + self.potential
    }
}

impl std::fmt::Display for ThermoState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {:>8}  T {:>10.4}  E {:>14.6}  P {:>12.4}  V {:>12.2}",
            self.step,
            self.temperature,
            self.total_energy(),
            self.pressure,
            self.volume
        )
    }
}

/// Kinetic energy `Σ ½ m v²` in the unit system's energy units.
pub fn kinetic_energy(atoms: &AtomStore, units: &UnitSystem) -> f64 {
    let mut ke = 0.0;
    for (i, v) in atoms.v().iter().enumerate() {
        ke += 0.5 * atoms.mass(i) * v.norm2();
    }
    ke * units.mvv2e
}

/// Instantaneous temperature from the equipartition theorem,
/// `T = 2 KE / (3 N k_B)` (no degrees of freedom removed).
pub fn temperature(atoms: &AtomStore, units: &UnitSystem) -> f64 {
    let n = atoms.len();
    if n == 0 {
        return 0.0;
    }
    2.0 * kinetic_energy(atoms, units) / (3.0 * n as f64 * units.boltzmann)
}

/// Pressure from the virial theorem:
/// `P = (N k_B T + virial / 3) / V`, scaled to pressure units.
pub fn pressure(atoms: &AtomStore, units: &UnitSystem, bx: &SimBox, virial: f64) -> f64 {
    let n = atoms.len() as f64;
    let t = temperature(atoms, units);
    (n * units.boltzmann * t + virial / 3.0) / bx.volume() * units.nktv2p
}

/// Removes the center-of-mass velocity so the system has zero net momentum.
///
/// Returns the drift velocity that was removed.
pub fn remove_drift(atoms: &mut AtomStore) -> V3 {
    let n = atoms.len();
    if n == 0 {
        return Vec3::zero();
    }
    let mut p = Vec3::zero();
    let mut m_tot = 0.0;
    for i in 0..n {
        let m = atoms.mass(i);
        p += atoms.v()[i] * m;
        m_tot += m;
    }
    let drift = p / m_tot;
    for v in atoms.v_mut() {
        *v -= drift;
    }
    drift
}

/// Total linear momentum (useful as a conservation check in tests).
pub fn total_momentum(atoms: &AtomStore) -> V3 {
    let mut p = Vec3::zero();
    for i in 0..atoms.len() {
        p += atoms.v()[i] * atoms.mass(i);
    }
    p
}

/// Assigns Maxwell-Boltzmann velocities at temperature `t` and removes drift.
///
/// Deterministic for a given `seed`.
pub fn seed_velocities(atoms: &mut AtomStore, units: &UnitSystem, t: f64, seed: u64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let n = atoms.len();
    for i in 0..n {
        let m = atoms.mass(i);
        let sigma = (units.boltzmann * t / (m * units.mvv2e)).sqrt();
        // Box-Muller pairs; the third component reuses a fresh pair.
        let mut gauss = || {
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        atoms.v_mut()[i] = Vec3::new(sigma * gauss(), sigma * gauss(), sigma * gauss());
    }
    remove_drift(atoms);
    // Rescale to hit the requested temperature exactly.
    let cur = temperature(atoms, units);
    if cur > 0.0 {
        let s = (t / cur).sqrt();
        for v in atoms.v_mut() {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gas(n: usize) -> (AtomStore, UnitSystem) {
        let mut a = AtomStore::new();
        let mut k = 0u64;
        for _ in 0..n {
            // Deterministic pseudo-random lattice jitter.
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = |k: u64, s: u64| ((k >> s) & 0xffff) as f64 / 65536.0;
            a.push(
                Vec3::new(10.0 * r(k, 0), 10.0 * r(k, 16), 10.0 * r(k, 32)),
                Vec3::zero(),
                0,
            );
        }
        a.set_masses(vec![1.0]);
        (a, UnitSystem::lj())
    }

    #[test]
    fn seeded_velocities_hit_target_temperature() {
        let (mut a, u) = gas(500);
        seed_velocities(&mut a, &u, 1.44, 42);
        assert!((temperature(&a, &u) - 1.44).abs() < 1e-9);
        assert!(total_momentum(&a).norm() < 1e-9);
    }

    #[test]
    fn seeding_is_deterministic() {
        let (mut a, u) = gas(50);
        let (mut b, _) = gas(50);
        seed_velocities(&mut a, &u, 1.0, 7);
        seed_velocities(&mut b, &u, 1.0, 7);
        assert_eq!(a.v(), b.v());
    }

    #[test]
    fn remove_drift_zeroes_momentum() {
        let (mut a, _) = gas(10);
        for v in a.v_mut() {
            *v = Vec3::new(1.0, 2.0, 3.0);
        }
        let drift = remove_drift(&mut a);
        assert!((drift - Vec3::new(1.0, 2.0, 3.0)).norm() < 1e-12);
        assert!(total_momentum(&a).norm() < 1e-12);
    }

    #[test]
    fn ideal_gas_pressure() {
        // Virial-free gas: P V = N kB T.
        let (mut a, u) = gas(1000);
        seed_velocities(&mut a, &u, 2.0, 3);
        let bx = SimBox::cubic(10.0);
        let p = pressure(&a, &u, &bx, 0.0);
        let expect = 1000.0 * 1.0 * 2.0 / 1000.0;
        assert!((p - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn metal_units_temperature_scale() {
        // A copper atom (63.5 amu) at 300 K has RMS speed ~0.034 Å/ps per DOF.
        let mut a = AtomStore::new();
        a.push(Vec3::zero(), Vec3::zero(), 0);
        a.set_masses(vec![63.546]);
        let u = UnitSystem::metal();
        seed_velocities(&mut a, &u, 300.0, 5);
        // One atom: drift removal zeroes everything, then rescale can't fix it;
        // just check kinetic energy formula directly instead.
        a.v_mut()[0] = Vec3::new(0.1, 0.0, 0.0);
        let ke = kinetic_energy(&a, &u);
        assert!((ke - 0.5 * 63.546 * 0.01 * u.mvv2e).abs() < 1e-12);
    }
}
