//! Cell-binned Verlet neighbor lists with a skin distance.
//!
//! LAMMPS (Section 2 of the paper) tracks, for each atom, all partners within
//! `cutoff + skin`; the *skin* allows reusing a list across several timesteps
//! and rebuilding only when some atom has moved more than half the skin.
//! The list can be *half* (each pair appears once — Newton's third law
//! reused, the default) or *full* (each pair appears from both sides — what
//! the granular Chute style requires, as the paper notes it does not exploit
//! Newton's third law).
//!
//! The build is shared-memory parallel when [`NeighborList::set_threads`]
//! asks for more than one thread: binning stays serial (it defines the
//! within-cell LIFO walk order), the per-atom candidate search fans out over
//! contiguous atom stripes, and the per-stripe results are concatenated in
//! stripe order. Because the search is pure integer/comparison work and each
//! atom's neighbor row depends only on the (serial) bin structure, the
//! threaded build is **bitwise identical** to the serial one at any thread
//! count — no `deterministic` toggle is needed here, unlike the
//! floating-point reductions in `md-potentials::threaded` and `md-kspace`.

use crate::error::{CoreError, Result};
use crate::simbox::SimBox;
use crate::wire;
use crate::V3;

/// Whether each pair is listed once (half) or from both atoms (full).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NeighborListKind {
    /// Each `{i, j}` pair appears once, on the lower-indexed atom.
    Half,
    /// Each `{i, j}` pair appears in both atoms' lists.
    Full,
}

/// Build/usage statistics, reported by Table 2 and consumed by the
/// performance models.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NeighborBuildStats {
    /// Number of times the list was (re)built.
    pub builds: usize,
    /// Number of timestep-boundary checks that did *not* trigger a rebuild.
    pub skipped_checks: usize,
    /// Pairs stored at the last build.
    pub pairs: usize,
    /// Pairs within the bare cutoff (no skin) at the last build.
    pub pairs_within_cutoff: usize,
    /// Stored neighbors per atom at the last build (full-list convention;
    /// includes the skin shell).
    pub neighbors_per_atom: f64,
    /// Neighbors per atom within the bare cutoff — the "Neighbors/atom" row
    /// of the paper's Table 2.
    pub neighbors_within_cutoff: f64,
    /// Cells in the binning grid at the last build.
    pub cells: usize,
}

/// A Verlet neighbor list built through cell binning.
#[derive(Debug, Clone)]
pub struct NeighborList {
    cutoff: f64,
    skin: f64,
    kind: NeighborListKind,
    offsets: Vec<usize>,
    neigh: Vec<u32>,
    x_at_build: Vec<V3>,
    stats: NeighborBuildStats,
    threads: usize,
}

impl NeighborList {
    /// Creates an empty list for interactions up to `cutoff`, with rebuild
    /// hysteresis `skin`.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff <= 0` or `skin < 0`.
    pub fn new(cutoff: f64, skin: f64, kind: NeighborListKind) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        assert!(skin >= 0.0, "skin must be non-negative");
        NeighborList {
            cutoff,
            skin,
            kind,
            offsets: vec![0],
            neigh: Vec::new(),
            x_at_build: Vec::new(),
            stats: NeighborBuildStats::default(),
            threads: 1,
        }
    }

    /// Assembles a list directly from flattened parts (`offsets.len() ==
    /// natoms + 1`, `neigh` indexed by the offsets). Used to build
    /// restricted *views* of an existing list (e.g. per-thread chunks); the
    /// caller is responsible for the pairs being a subset of a valid build.
    ///
    /// # Panics
    ///
    /// Panics if the offsets are not monotonically consistent with `neigh`.
    pub fn from_parts(
        cutoff: f64,
        skin: f64,
        kind: NeighborListKind,
        offsets: Vec<usize>,
        neigh: Vec<u32>,
    ) -> Self {
        assert!(
            !offsets.is_empty() && offsets[0] == 0,
            "offsets must start at 0"
        );
        assert_eq!(
            *offsets.last().expect("nonempty"),
            neigh.len(),
            "offsets must cover neigh"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        let stats = NeighborBuildStats {
            builds: 1,
            pairs: neigh.len(),
            ..NeighborBuildStats::default()
        };
        NeighborList {
            cutoff,
            skin,
            kind,
            offsets,
            neigh,
            x_at_build: Vec::new(),
            stats,
            threads: 1,
        }
    }

    /// Sets the worker-thread count for subsequent builds (1 = serial).
    /// The threaded build produces bitwise-identical lists at any count.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Worker threads used for builds.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Interaction cutoff.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Skin distance.
    pub fn skin(&self) -> f64 {
        self.skin
    }

    /// Half or full list.
    pub fn kind(&self) -> NeighborListKind {
        self.kind
    }

    /// Build statistics.
    pub fn stats(&self) -> NeighborBuildStats {
        self.stats
    }

    /// The neighbor slice of atom `i`.
    #[inline(always)]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.neigh[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of atoms the list was last built for.
    pub fn natoms(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total stored pairs (directed entries).
    pub fn len(&self) -> usize {
        self.neigh.len()
    }

    /// Whether the list holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.neigh.is_empty()
    }

    /// Whether any atom has moved more than `skin / 2` since the last build.
    ///
    /// Uses minimum-image displacement so wrapped coordinates do not trigger
    /// spurious rebuilds.
    pub fn needs_rebuild(&self, x: &[V3], bx: &SimBox) -> bool {
        if self.x_at_build.len() != x.len() {
            return true;
        }
        let limit2 = (0.5 * self.skin) * (0.5 * self.skin);
        x.iter()
            .zip(&self.x_at_build)
            .any(|(&a, &b)| bx.min_image(a, b).norm2() > limit2)
    }

    /// Checks the displacement trigger and rebuilds (with exclusions) if needed.
    ///
    /// Returns `true` when a rebuild happened.
    ///
    /// # Errors
    ///
    /// Propagates [`NeighborList::build_with`] errors.
    pub fn check_and_build<'a>(
        &mut self,
        x: &[V3],
        bx: &SimBox,
        exclusions: impl Fn(usize) -> &'a [u32] + Sync,
    ) -> Result<bool> {
        if self.needs_rebuild(x, bx) {
            self.build_with(x, bx, exclusions)?;
            Ok(true)
        } else {
            self.stats.skipped_checks += 1;
            Ok(false)
        }
    }

    /// Unconditionally rebuilds the list with no exclusions.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::CutoffTooLarge`] if `cutoff + skin`
    /// exceeds half the smallest periodic box extent.
    pub fn build(&mut self, x: &[V3], bx: &SimBox) -> Result<()> {
        self.build_with(x, bx, |_| &[])
    }

    /// Unconditionally rebuilds the list, dropping pairs reported by
    /// `exclusions(i)` (a sorted slice of excluded partners of atom `i`).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::CutoffTooLarge`] if `cutoff + skin`
    /// exceeds half the smallest periodic box extent.
    pub fn build_with<'a>(
        &mut self,
        x: &[V3],
        bx: &SimBox,
        exclusions: impl Fn(usize) -> &'a [u32] + Sync,
    ) -> Result<()> {
        let range = self.cutoff + self.skin;
        bx.check_interaction_range(range)?;
        let n = x.len();
        let range2 = range * range;
        let cut2 = self.cutoff * self.cutoff;
        let mut within_cut = 0usize;
        let lengths = bx.lengths();

        // Bin geometry: cells at least `range` wide so only 27 cells are searched.
        let mut ncell = [1usize; 3];
        for d in 0..3 {
            ncell[d] = ((lengths[d] / range).floor() as usize).max(1);
        }
        let ncells = ncell[0] * ncell[1] * ncell[2];

        // Count-then-fill binning.
        let cell_of = |p: V3| -> usize {
            let f = bx.fractional(p);
            let mut c = [0usize; 3];
            for d in 0..3 {
                let fd = f[d].clamp(0.0, 1.0 - 1e-12);
                c[d] = ((fd * ncell[d] as f64) as usize).min(ncell[d] - 1);
            }
            (c[2] * ncell[1] + c[1]) * ncell[0] + c[0]
        };
        let mut head = vec![u32::MAX; ncells];
        let mut next = vec![u32::MAX; n];
        for (i, &p) in x.iter().enumerate() {
            let c = cell_of(p);
            next[i] = head[c];
            head[c] = i as u32;
        }

        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.neigh.clear();
        self.offsets.push(0);

        let half = self.kind == NeighborListKind::Half;
        // With fewer than 3 cells on a periodic axis, distinct (dx,dy,dz)
        // offsets alias to the same cell and candidates repeat; dedupe then.
        let needs_dedup = (0..3).any(|d| ncell[d] < 3 && bx.is_periodic(d));

        // The per-atom candidate search, shared by the serial and threaded
        // paths. Appends atom `i`'s neighbor row to `scratch` (in the bin
        // walk order set by the serial binning above) and returns how many
        // of the row's pairs fall within the bare cutoff.
        let head = &head;
        let next = &next;
        let exclusions = &exclusions;
        let search = move |i: usize, scratch: &mut Vec<u32>| -> usize {
            let mut wc = 0usize;
            let xi = x[i];
            let f = bx.fractional(xi);
            let mut ci = [0usize; 3];
            for d in 0..3 {
                let fd = f[d].clamp(0.0, 1.0 - 1e-12);
                ci[d] = ((fd * ncell[d] as f64) as usize).min(ncell[d] - 1);
            }
            let row_start = scratch.len();
            let excl = exclusions(i);
            for dz in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let mut cc = [0usize; 3];
                        let deltas = [dx, dy, dz];
                        let mut skip = false;
                        for d in 0..3 {
                            let raw = ci[d] as i64 + deltas[d];
                            if bx.is_periodic(d) {
                                cc[d] = raw.rem_euclid(ncell[d] as i64) as usize;
                            } else if raw < 0 || raw >= ncell[d] as i64 {
                                skip = true;
                                break;
                            } else {
                                cc[d] = raw as usize;
                            }
                        }
                        if skip {
                            continue;
                        }
                        let cell = (cc[2] * ncell[1] + cc[1]) * ncell[0] + cc[0];
                        let mut j = head[cell];
                        while j != u32::MAX {
                            let ju = j as usize;
                            if ju != i && (!half || ju > i) {
                                let d = bx.min_image(x[ju], xi);
                                let r2 = d.norm2();
                                if r2 < range2
                                    && (excl.is_empty() || excl.binary_search(&j).is_err())
                                    && (!needs_dedup || !scratch[row_start..].contains(&j))
                                {
                                    scratch.push(j);
                                    if r2 < cut2 {
                                        wc += 1;
                                    }
                                }
                            }
                            j = next[ju];
                        }
                    }
                }
            }
            wc
        };

        let t = self.threads.min(n.max(1));
        if t > 1 {
            // Stripe the atom range across threads; each worker fills a
            // private (row lengths, neighbors) pair. Concatenating in stripe
            // order reproduces the serial layout exactly, so the stripe
            // width never affects the result.
            let stripe = n.div_ceil(t);
            let parts = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = (0..t)
                    .map(|k| {
                        let lo = k * stripe;
                        let hi = ((k + 1) * stripe).min(n);
                        let search = &search;
                        s.spawn(move |_| {
                            let mut lens = Vec::with_capacity(hi - lo);
                            let mut neigh: Vec<u32> = Vec::new();
                            let mut wc = 0usize;
                            for i in lo..hi {
                                let row_start = neigh.len();
                                wc += search(i, &mut neigh);
                                lens.push(neigh.len() - row_start);
                            }
                            (lens, neigh, wc)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("neighbor build worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("neighbor build scope panicked");
            for (lens, neigh, wc) in parts {
                within_cut += wc;
                let mut off = *self.offsets.last().expect("offsets nonempty");
                for l in lens {
                    off += l;
                    self.offsets.push(off);
                }
                self.neigh.extend_from_slice(&neigh);
            }
        } else {
            for i in 0..n {
                within_cut += search(i, &mut self.neigh);
                self.offsets.push(self.neigh.len());
            }
        }

        self.x_at_build.clear();
        self.x_at_build.extend_from_slice(x);
        self.stats.builds += 1;
        self.stats.pairs = self.neigh.len();
        self.stats.pairs_within_cutoff = within_cut;
        self.stats.cells = ncells;
        let per_atom = |directed: f64| {
            if n == 0 {
                0.0
            } else {
                match self.kind {
                    NeighborListKind::Half => 2.0 * directed / n as f64,
                    NeighborListKind::Full => directed / n as f64,
                }
            }
        };
        self.stats.neighbors_per_atom = per_atom(self.neigh.len() as f64);
        self.stats.neighbors_within_cutoff = per_atom(within_cut as f64);
        Ok(())
    }

    /// Appends the list's full dynamic state for a checkpoint: the flattened
    /// rows, the reference positions of the rebuild trigger, and the
    /// statistics. `x_at_build` is what makes resume bitwise-faithful — a
    /// fresh rebuild at restore time would reset the displacement trigger
    /// and shift every subsequent rebuild, changing summation orders.
    pub fn state_save(&self, w: &mut wire::Writer) {
        w.usizes(&self.offsets);
        w.u32s(&self.neigh);
        w.v3s(&self.x_at_build);
        w.usize(self.stats.builds);
        w.usize(self.stats.skipped_checks);
        w.usize(self.stats.pairs);
        w.usize(self.stats.pairs_within_cutoff);
        w.f64(self.stats.neighbors_per_atom);
        w.f64(self.stats.neighbors_within_cutoff);
        w.usize(self.stats.cells);
    }

    /// Restores state written by [`NeighborList::state_save`] onto a list
    /// created with the same cutoff/skin/kind (the deck rebuild provides
    /// those).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptState`] on a malformed or internally
    /// inconsistent blob.
    pub fn state_load(&mut self, r: &mut wire::Reader<'_>) -> Result<()> {
        let offsets = r.usizes()?;
        let neigh = r.u32s()?;
        let x_at_build = r.v3s()?;
        let corrupt = |detail: String| CoreError::CorruptState {
            what: "neighbor list",
            detail,
        };
        if offsets.first() != Some(&0) {
            return Err(corrupt("offsets must start at 0".to_string()));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(corrupt("offsets must be monotone".to_string()));
        }
        if *offsets.last().expect("nonempty") != neigh.len() {
            return Err(corrupt(format!(
                "offsets cover {} entries but {} are stored",
                offsets.last().expect("nonempty"),
                neigh.len()
            )));
        }
        if x_at_build.len() + 1 != offsets.len() {
            return Err(corrupt(format!(
                "{} reference positions for {} atoms",
                x_at_build.len(),
                offsets.len() - 1
            )));
        }
        let natoms = x_at_build.len() as u32;
        if neigh.iter().any(|&j| j >= natoms) {
            return Err(corrupt("neighbor index out of range".to_string()));
        }
        self.offsets = offsets;
        self.neigh = neigh;
        self.x_at_build = x_at_build;
        self.stats.builds = r.usize()?;
        self.stats.skipped_checks = r.usize()?;
        self.stats.pairs = r.usize()?;
        self.stats.pairs_within_cutoff = r.usize()?;
        self.stats.neighbors_per_atom = r.f64()?;
        self.stats.neighbors_within_cutoff = r.f64()?;
        self.stats.cells = r.usize()?;
        Ok(())
    }
}

impl std::fmt::Display for NeighborList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} neighbor list: cutoff {} skin {} ({} atoms, {:.1} nbr/atom)",
            self.kind,
            self.cutoff,
            self.skin,
            self.natoms(),
            self.stats.neighbors_per_atom
        )
    }
}

/// Reference O(N²) neighbor enumeration, used by tests and tiny systems.
pub fn brute_force_pairs(x: &[V3], bx: &SimBox, range: f64) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let r2 = range * range;
    for i in 0..x.len() {
        for j in (i + 1)..x.len() {
            if bx.min_image(x[j], x[i]).norm2() < r2 {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_positions(n: usize, l: f64, seed: u64) -> Vec<V3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                )
            })
            .collect()
    }

    fn pair_set(nl: &NeighborList) -> std::collections::BTreeSet<(u32, u32)> {
        let mut s = std::collections::BTreeSet::new();
        for i in 0..nl.natoms() {
            for &j in nl.neighbors(i) {
                let (a, b) = if (i as u32) < j {
                    (i as u32, j)
                } else {
                    (j, i as u32)
                };
                s.insert((a, b));
            }
        }
        s
    }

    #[test]
    fn matches_brute_force_half() {
        let bx = SimBox::cubic(10.0);
        let x = random_positions(200, 10.0, 42);
        let mut nl = NeighborList::new(2.0, 0.5, NeighborListKind::Half);
        nl.build(&x, &bx).unwrap();
        let expected: std::collections::BTreeSet<_> =
            brute_force_pairs(&x, &bx, 2.5).into_iter().collect();
        assert_eq!(pair_set(&nl), expected);
    }

    #[test]
    fn matches_brute_force_full() {
        let bx = SimBox::cubic(8.0);
        let x = random_positions(150, 8.0, 7);
        let mut nl = NeighborList::new(1.5, 0.3, NeighborListKind::Full);
        nl.build(&x, &bx).unwrap();
        let expected: std::collections::BTreeSet<_> =
            brute_force_pairs(&x, &bx, 1.8).into_iter().collect();
        assert_eq!(pair_set(&nl), expected);
        // Full list has exactly twice the directed entries.
        assert_eq!(nl.len(), 2 * expected.len());
    }

    #[test]
    fn nonperiodic_axis_has_no_wraparound_pairs() {
        let bx = SimBox::cubic(10.0).with_periodicity(true, true, false);
        let x = vec![Vec3::new(5.0, 5.0, 0.2), Vec3::new(5.0, 5.0, 9.8)];
        let mut nl = NeighborList::new(2.0, 0.0, NeighborListKind::Half);
        nl.build(&x, &bx).unwrap();
        assert_eq!(nl.len(), 0);
    }

    #[test]
    fn rebuild_trigger_uses_half_skin() {
        let bx = SimBox::cubic(10.0);
        let mut x = random_positions(50, 10.0, 3);
        let mut nl = NeighborList::new(2.0, 0.4, NeighborListKind::Half);
        nl.build(&x, &bx).unwrap();
        assert!(!nl.needs_rebuild(&x, &bx));
        x[0].x += 0.19; // less than skin/2
        assert!(!nl.needs_rebuild(&x, &bx));
        x[0].x += 0.05; // now over skin/2 total
        assert!(nl.needs_rebuild(&x, &bx));
    }

    #[test]
    fn rejects_oversized_cutoff() {
        let bx = SimBox::cubic(4.0);
        let x = random_positions(10, 4.0, 1);
        let mut nl = NeighborList::new(2.5, 0.0, NeighborListKind::Half);
        assert!(nl.build(&x, &bx).is_err());
    }

    #[test]
    fn stats_track_builds_and_density() {
        let bx = SimBox::cubic(10.0);
        let x = random_positions(500, 10.0, 11);
        let mut nl = NeighborList::new(2.0, 0.3, NeighborListKind::Half);
        nl.build(&x, &bx).unwrap();
        let s = nl.stats();
        assert_eq!(s.builds, 1);
        // Expected full-convention neighbors/atom ~ rho * 4/3 pi r^3.
        let rho = 500.0 / 1000.0;
        let expect = rho * 4.0 / 3.0 * std::f64::consts::PI * 2.3f64.powi(3);
        assert!(
            (s.neighbors_per_atom - expect).abs() / expect < 0.25,
            "{} vs {}",
            s.neighbors_per_atom,
            expect
        );
    }

    #[test]
    fn threaded_build_is_bitwise_identical_to_serial() {
        let bx = SimBox::cubic(10.0);
        let x = random_positions(400, 10.0, 99);
        let excl: Vec<Vec<u32>> = (0..400u32)
            .map(|i| {
                if i % 7 == 0 {
                    vec![(i + 1) % 400]
                } else {
                    vec![]
                }
            })
            .collect();
        let mut serial = NeighborList::new(2.0, 0.4, NeighborListKind::Half);
        serial.build_with(&x, &bx, |i| excl[i].as_slice()).unwrap();
        for t in [2, 3, 4, 7] {
            let mut nl = NeighborList::new(2.0, 0.4, NeighborListKind::Half);
            nl.set_threads(t);
            nl.build_with(&x, &bx, |i| excl[i].as_slice()).unwrap();
            assert_eq!(nl.offsets, serial.offsets, "{t} threads: offsets");
            assert_eq!(nl.neigh, serial.neigh, "{t} threads: neighbor order");
            assert_eq!(
                nl.stats().pairs_within_cutoff,
                serial.stats().pairs_within_cutoff,
                "{t} threads: within-cutoff count"
            );
        }
        // More threads than atoms degrades gracefully.
        let tiny = random_positions(3, 10.0, 5);
        let mut nl = NeighborList::new(2.0, 0.4, NeighborListKind::Half);
        nl.set_threads(8);
        nl.build(&tiny, &bx).unwrap();
        let mut s = NeighborList::new(2.0, 0.4, NeighborListKind::Half);
        s.build(&tiny, &bx).unwrap();
        assert_eq!(nl.offsets, s.offsets);
        assert_eq!(nl.neigh, s.neigh);
    }

    #[test]
    fn exclusions_remove_pairs() {
        let bx = SimBox::cubic(10.0);
        let x = vec![Vec3::new(1.0, 1.0, 1.0), Vec3::new(1.5, 1.0, 1.0)];
        let mut nl = NeighborList::new(2.0, 0.0, NeighborListKind::Half);
        nl.build(&x, &bx).unwrap();
        assert_eq!(nl.len(), 1);
        let excl: Vec<Vec<u32>> = vec![vec![1], vec![0]];
        nl.build_with(&x, &bx, |i| excl[i].as_slice()).unwrap();
        assert_eq!(nl.len(), 0);
    }
}
