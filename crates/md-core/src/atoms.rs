//! Structure-of-arrays atom storage plus molecular topology.
//!
//! LAMMPS-style MD engines favor SoA layouts so pairwise kernels stream
//! through coordinate arrays. [`AtomStore`] keeps positions, velocities,
//! forces, per-atom type/charge/radius, image flags, and the bonded topology
//! (bonds, angles, dihedrals) plus special-pair exclusions.

use crate::error::{CoreError, Result};
use crate::vec3::Vec3;
use crate::V3;
use std::collections::HashSet;

/// A covalent bond between two atoms, with a per-bond type index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Bond {
    /// Bond-type index into the bond style's parameter table.
    pub kind: u32,
    /// First atom index.
    pub i: u32,
    /// Second atom index.
    pub j: u32,
}

/// A three-body angle `i-j-k` centered on `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Angle {
    /// Angle-type index.
    pub kind: u32,
    /// First flank atom.
    pub i: u32,
    /// Central atom.
    pub j: u32,
    /// Second flank atom.
    pub k: u32,
}

/// A four-body dihedral `i-j-k-l` around the `j-k` axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Dihedral {
    /// Dihedral-type index.
    pub kind: u32,
    /// First atom.
    pub i: u32,
    /// Second atom (axis start).
    pub j: u32,
    /// Third atom (axis end).
    pub k: u32,
    /// Fourth atom.
    pub l: u32,
}

/// SoA storage for all per-atom state and the molecular topology.
///
/// Invariants: all per-atom vectors have identical length; bond/angle/dihedral
/// indices are validated against that length by [`AtomStore::validate`].
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct AtomStore {
    x: Vec<V3>,
    v: Vec<V3>,
    f: Vec<V3>,
    kind: Vec<u32>,
    charge: Vec<f64>,
    radius: Vec<f64>,
    image: Vec<[i32; 3]>,
    molecule: Vec<u32>,
    mass_by_type: Vec<f64>,
    bonds: Vec<Bond>,
    angles: Vec<Angle>,
    dihedrals: Vec<Dihedral>,
    /// Flattened per-atom exclusion lists (1-2/1-3/1-4 special pairs).
    excl_offsets: Vec<usize>,
    excl_atoms: Vec<u32>,
}

impl AtomStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        AtomStore::default()
    }

    /// Creates an empty store with room for `n` atoms.
    pub fn with_capacity(n: usize) -> Self {
        AtomStore {
            x: Vec::with_capacity(n),
            v: Vec::with_capacity(n),
            f: Vec::with_capacity(n),
            kind: Vec::with_capacity(n),
            charge: Vec::with_capacity(n),
            radius: Vec::with_capacity(n),
            image: Vec::with_capacity(n),
            molecule: Vec::with_capacity(n),
            ..AtomStore::default()
        }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the store holds no atoms.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Appends one atom with zero charge/radius and molecule 0; returns its index.
    pub fn push(&mut self, x: V3, v: V3, kind: u32) -> usize {
        self.push_full(x, v, kind, 0.0, 0.0, 0)
    }

    /// Appends one atom with every per-atom attribute; returns its index.
    pub fn push_full(
        &mut self,
        x: V3,
        v: V3,
        kind: u32,
        charge: f64,
        radius: f64,
        molecule: u32,
    ) -> usize {
        self.x.push(x);
        self.v.push(v);
        self.f.push(Vec3::zero());
        self.kind.push(kind);
        self.charge.push(charge);
        self.radius.push(radius);
        self.image.push([0; 3]);
        self.molecule.push(molecule);
        self.x.len() - 1
    }

    /// Positions (read-only).
    pub fn x(&self) -> &[V3] {
        &self.x
    }

    /// Positions (mutable).
    pub fn x_mut(&mut self) -> &mut [V3] {
        &mut self.x
    }

    /// Velocities (read-only).
    pub fn v(&self) -> &[V3] {
        &self.v
    }

    /// Velocities (mutable).
    pub fn v_mut(&mut self) -> &mut [V3] {
        &mut self.v
    }

    /// Forces (read-only).
    pub fn f(&self) -> &[V3] {
        &self.f
    }

    /// Forces (mutable).
    pub fn f_mut(&mut self) -> &mut [V3] {
        &mut self.f
    }

    /// Per-atom type indices.
    pub fn kinds(&self) -> &[u32] {
        &self.kind
    }

    /// Per-atom charges.
    pub fn charges(&self) -> &[f64] {
        &self.charge
    }

    /// Per-atom charges (mutable).
    pub fn charges_mut(&mut self) -> &mut [f64] {
        &mut self.charge
    }

    /// Per-atom radii (granular styles).
    pub fn radii(&self) -> &[f64] {
        &self.radius
    }

    /// Per-atom radii (mutable).
    pub fn radii_mut(&mut self) -> &mut [f64] {
        &mut self.radius
    }

    /// Per-atom periodic image counters.
    pub fn images(&self) -> &[[i32; 3]] {
        &self.image
    }

    /// Per-atom periodic image counters (mutable).
    pub fn images_mut(&mut self) -> &mut [[i32; 3]] {
        &mut self.image
    }

    /// Per-atom molecule ids.
    pub fn molecules(&self) -> &[u32] {
        &self.molecule
    }

    /// Simultaneous mutable access to positions and images (for wrapping).
    pub fn x_and_images_mut(&mut self) -> (&mut [V3], &mut [[i32; 3]]) {
        (&mut self.x, &mut self.image)
    }

    /// Simultaneous mutable access to positions and velocities (integration).
    pub fn x_v_mut(&mut self) -> (&mut [V3], &mut [V3]) {
        (&mut self.x, &mut self.v)
    }

    /// Simultaneous access to velocities (mut) and forces (shared).
    pub fn v_mut_f(&mut self) -> (&mut [V3], &[V3]) {
        (&mut self.v, &self.f)
    }

    /// Sets the per-type mass table (`mass_by_type[t]` is the mass of type `t`).
    pub fn set_masses(&mut self, masses: Vec<f64>) {
        self.mass_by_type = masses;
    }

    /// Mass of atom `i`.
    ///
    /// # Panics
    ///
    /// Panics if the atom's type has no entry in the mass table.
    #[inline(always)]
    pub fn mass(&self, i: usize) -> f64 {
        self.mass_by_type[self.kind[i] as usize]
    }

    /// The per-type mass table.
    pub fn masses_by_type(&self) -> &[f64] {
        &self.mass_by_type
    }

    /// Number of distinct atom types implied by the mass table.
    pub fn ntypes(&self) -> usize {
        self.mass_by_type.len()
    }

    /// Adds a bond.
    pub fn add_bond(&mut self, kind: u32, i: u32, j: u32) {
        self.bonds.push(Bond { kind, i, j });
    }

    /// Adds an angle.
    pub fn add_angle(&mut self, kind: u32, i: u32, j: u32, k: u32) {
        self.angles.push(Angle { kind, i, j, k });
    }

    /// Adds a dihedral.
    pub fn add_dihedral(&mut self, kind: u32, i: u32, j: u32, k: u32, l: u32) {
        self.dihedrals.push(Dihedral { kind, i, j, k, l });
    }

    /// All bonds.
    pub fn bonds(&self) -> &[Bond] {
        &self.bonds
    }

    /// All angles.
    pub fn angles(&self) -> &[Angle] {
        &self.angles
    }

    /// All dihedrals.
    pub fn dihedrals(&self) -> &[Dihedral] {
        &self.dihedrals
    }

    /// Zeroes the force array (start of the force-computation phase).
    pub fn zero_forces(&mut self) {
        for f in &mut self.f {
            *f = Vec3::zero();
        }
    }

    /// Builds per-atom exclusion lists from the topology.
    ///
    /// `exclude12/13/14` correspond to LAMMPS `special_bonds` weights of zero
    /// for 1-2 (directly bonded), 1-3 (angle-separated), and 1-4
    /// (dihedral-separated) pairs. Excluded pairs are *removed* from the
    /// neighbor list at build time. CHARMM decks use `0 0 0` (all excluded);
    /// FENE decks use `0 1 1` (only 1-2 excluded).
    pub fn build_exclusions(&mut self, exclude12: bool, exclude13: bool, exclude14: bool) {
        let n = self.len();
        let mut sets: Vec<HashSet<u32>> = vec![HashSet::new(); n];
        let add = |sets: &mut Vec<HashSet<u32>>, a: u32, b: u32| {
            if a != b {
                sets[a as usize].insert(b);
                sets[b as usize].insert(a);
            }
        };
        if exclude12 {
            for b in &self.bonds {
                add(&mut sets, b.i, b.j);
            }
        }
        if exclude13 {
            for a in &self.angles {
                add(&mut sets, a.i, a.k);
            }
        }
        if exclude14 {
            for d in &self.dihedrals {
                add(&mut sets, d.i, d.l);
            }
        }
        self.excl_offsets = Vec::with_capacity(n + 1);
        self.excl_atoms.clear();
        self.excl_offsets.push(0);
        for set in &sets {
            let mut v: Vec<u32> = set.iter().copied().collect();
            v.sort_unstable();
            self.excl_atoms.extend_from_slice(&v);
            self.excl_offsets.push(self.excl_atoms.len());
        }
    }

    /// The exclusion list of atom `i` (sorted), or empty if none were built.
    #[inline(always)]
    pub fn exclusions(&self, i: usize) -> &[u32] {
        if self.excl_offsets.is_empty() {
            &[]
        } else {
            &self.excl_atoms[self.excl_offsets[i]..self.excl_offsets[i + 1]]
        }
    }

    /// Whether the pair `(i, j)` is excluded from non-bonded interactions.
    #[inline(always)]
    pub fn is_excluded(&self, i: usize, j: u32) -> bool {
        self.exclusions(i).binary_search(&j).is_ok()
    }

    /// Total number of excluded (directed) pairs.
    pub fn exclusion_count(&self) -> usize {
        self.excl_atoms.len()
    }

    /// Validates internal consistency: array lengths, topology indices, and
    /// mass-table coverage.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] describing the first inconsistency found.
    pub fn validate(&self) -> Result<()> {
        let n = self.len();
        for (what, len) in [
            ("velocities", self.v.len()),
            ("forces", self.f.len()),
            ("types", self.kind.len()),
            ("charges", self.charge.len()),
            ("radii", self.radius.len()),
            ("images", self.image.len()),
            ("molecules", self.molecule.len()),
        ] {
            if len != n {
                return Err(CoreError::LengthMismatch {
                    what,
                    expected: n,
                    found: len,
                });
            }
        }
        let ntypes = self.mass_by_type.len();
        for &t in &self.kind {
            if (t as usize) >= ntypes {
                return Err(CoreError::UnknownAtomType {
                    atom_type: t,
                    ntypes,
                });
            }
        }
        let check = |i: u32| (i as usize) < n;
        for b in &self.bonds {
            if !check(b.i) || !check(b.j) {
                return Err(CoreError::InvalidParameter {
                    name: "bond",
                    reason: format!("bond ({}, {}) references a missing atom", b.i, b.j),
                });
            }
        }
        for a in &self.angles {
            if !check(a.i) || !check(a.j) || !check(a.k) {
                return Err(CoreError::InvalidParameter {
                    name: "angle",
                    reason: format!(
                        "angle ({}, {}, {}) references a missing atom",
                        a.i, a.j, a.k
                    ),
                });
            }
        }
        for d in &self.dihedrals {
            if !check(d.i) || !check(d.j) || !check(d.k) || !check(d.l) {
                return Err(CoreError::InvalidParameter {
                    name: "dihedral",
                    reason: "dihedral references a missing atom".to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_atom_store() -> AtomStore {
        let mut s = AtomStore::new();
        s.push(Vec3::new(0.0, 0.0, 0.0), Vec3::zero(), 0);
        s.push(Vec3::new(1.0, 0.0, 0.0), Vec3::zero(), 0);
        s.set_masses(vec![1.0]);
        s
    }

    #[test]
    fn push_and_access() {
        let s = two_atom_store();
        assert_eq!(s.len(), 2);
        assert_eq!(s.x()[1].x, 1.0);
        assert_eq!(s.mass(0), 1.0);
        s.validate().unwrap();
    }

    #[test]
    fn validate_catches_bad_type() {
        let mut s = two_atom_store();
        s.push(Vec3::zero(), Vec3::zero(), 7);
        let err = s.validate().unwrap_err();
        assert!(matches!(
            err,
            CoreError::UnknownAtomType { atom_type: 7, .. }
        ));
    }

    #[test]
    fn validate_catches_bad_bond() {
        let mut s = two_atom_store();
        s.add_bond(0, 0, 99);
        assert!(s.validate().is_err());
    }

    #[test]
    fn exclusions_12_13_14() {
        let mut s = AtomStore::new();
        for i in 0..5 {
            s.push(Vec3::new(i as f64, 0.0, 0.0), Vec3::zero(), 0);
        }
        s.set_masses(vec![1.0]);
        // linear chain 0-1-2-3-4
        for i in 0..4u32 {
            s.add_bond(0, i, i + 1);
        }
        for i in 0..3u32 {
            s.add_angle(0, i, i + 1, i + 2);
        }
        for i in 0..2u32 {
            s.add_dihedral(0, i, i + 1, i + 2, i + 3);
        }
        s.build_exclusions(true, true, true);
        assert!(s.is_excluded(0, 1)); // 1-2
        assert!(s.is_excluded(0, 2)); // 1-3
        assert!(s.is_excluded(0, 3)); // 1-4
        assert!(!s.is_excluded(0, 4)); // 1-5 interacts
        s.build_exclusions(true, false, false);
        assert!(s.is_excluded(2, 3));
        assert!(!s.is_excluded(0, 2));
    }

    #[test]
    fn zero_forces_resets() {
        let mut s = two_atom_store();
        s.f_mut()[0] = Vec3::new(1.0, 2.0, 3.0);
        s.zero_forces();
        assert_eq!(s.f()[0], Vec3::zero());
    }
}
