//! Property-based tests for the force fields: every style must conserve
//! momentum, agree with numerical energy derivatives, and respect its
//! analytic special points over random inputs.

use md_core::neighbor::NeighborList;
use md_core::{PairStyle, PairSystem, SimBox, UnitSystem, Vec3, V3};
use md_potentials::{LjCharmmCoulLong, LjCut, MixingRule, SuttonChenEam};
use proptest::prelude::*;

struct Rig {
    bx: SimBox,
    x: Vec<V3>,
    q: Vec<f64>,
}

impl Rig {
    fn random(seed: u64, n: usize, l: f64, min_sep: f64) -> Rig {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let bx = SimBox::cubic(l);
        let mut x: Vec<V3> = Vec::new();
        // Rejection-sample to keep a minimum separation (avoids overflow in
        // r^-12 that would make derivative checks meaningless).
        while x.len() < n {
            let p = Vec3::new(
                rng.gen::<f64>() * l,
                rng.gen::<f64>() * l,
                rng.gen::<f64>() * l,
            );
            if x.iter().all(|&o| bx.min_image(p, o).norm() > min_sep) {
                x.push(p);
            }
        }
        let q = (0..n)
            .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        Rig { bx, x, q }
    }

    fn forces_and_energy(&self, style: &mut dyn PairStyle) -> (Vec<V3>, f64) {
        let mut nl = NeighborList::new(style.cutoff(), 0.3, style.list_kind());
        nl.build(&self.x, &self.bx).expect("valid geometry");
        let n = self.x.len();
        let v = vec![Vec3::zero(); n];
        let kinds = vec![0u32; n];
        let radius = vec![0.0; n];
        let masses = vec![1.0];
        let units = UnitSystem::real();
        let sys = PairSystem {
            bx: &self.bx,
            x: &self.x,
            v: &v,
            kinds: &kinds,
            charge: &self.q,
            radius: &radius,
            mass_by_type: &masses,
            units: &units,
            dt: 1.0,
        };
        let mut f = vec![Vec3::zero(); n];
        let e = style.compute(&sys, &nl, &mut f);
        (f, e.energy())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LJ forces sum to zero (Newton's third law) on random configurations.
    #[test]
    fn lj_conserves_momentum(seed in 0u64..500) {
        let rig = Rig::random(seed, 24, 10.0, 0.8);
        let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap();
        let (f, _) = rig.forces_and_energy(&mut lj);
        let net = f.iter().fold(Vec3::zero(), |a, &b| a + b);
        prop_assert!(net.norm() < 1e-9, "net force {net}");
    }

    /// LJ force equals the negative numerical gradient of the total energy.
    #[test]
    fn lj_force_is_energy_gradient(seed in 0u64..200) {
        let rig = Rig::random(seed, 12, 9.0, 0.9);
        let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap();
        let (f, _) = rig.forces_and_energy(&mut lj);
        let h = 1e-6;
        // Check one random atom/axis per case (full loop is expensive).
        let atom = (seed % 12) as usize;
        let axis = (seed % 3) as usize;
        let mut plus = Rig { bx: rig.bx, x: rig.x.clone(), q: rig.q.clone() };
        plus.x[atom][axis] += h;
        let mut minus = Rig { bx: rig.bx, x: rig.x.clone(), q: rig.q.clone() };
        minus.x[atom][axis] -= h;
        let (_, ep) = plus.forces_and_energy(&mut lj);
        let (_, em) = minus.forces_and_energy(&mut lj);
        let dedx = (ep - em) / (2.0 * h);
        prop_assert!(
            (f[atom][axis] + dedx).abs() < 1e-4 * dedx.abs().max(1.0),
            "atom {atom} axis {axis}: {} vs {}",
            f[atom][axis],
            -dedx
        );
    }

    /// CHARMM + truncated Coulomb also conserves momentum.
    #[test]
    fn charmm_conserves_momentum(seed in 0u64..300) {
        let rig = Rig::random(seed, 20, 24.0, 1.5);
        let mut style = LjCharmmCoulLong::new(1, &[(0, 0.1, 3.0)], 8.0, 10.0, 10.0).unwrap();
        style.set_g_ewald(0.25);
        let (f, _) = rig.forces_and_energy(&mut style);
        let net = f.iter().fold(Vec3::zero(), |a, &b| a + b);
        prop_assert!(net.norm() < 1e-9, "net force {net}");
    }

    /// EAM conserves momentum despite the many-body embedding term.
    #[test]
    fn eam_conserves_momentum(seed in 0u64..300) {
        let rig = Rig::random(seed, 16, 14.0, 1.9);
        let mut eam = SuttonChenEam::copper();
        let (f, _) = rig.forces_and_energy(&mut eam);
        let net = f.iter().fold(Vec3::zero(), |a, &b| a + b);
        prop_assert!(net.norm() < 1e-9, "net force {net}");
    }

    /// Mixing rules: symmetric, fixed on like pairs, and ε positive.
    #[test]
    fn mixing_rules_invariants(
        e1 in 0.01..5.0f64,
        s1 in 0.5..4.0f64,
        e2 in 0.01..5.0f64,
        s2 in 0.5..4.0f64,
    ) {
        for rule in [MixingRule::Arithmetic, MixingRule::Geometric, MixingRule::SixthPower] {
            let (ea, sa) = rule.mix(e1, s1, e2, s2);
            let (eb, sb) = rule.mix(e2, s2, e1, s1);
            prop_assert!((ea - eb).abs() < 1e-12 && (sa - sb).abs() < 1e-12);
            prop_assert!(ea > 0.0 && sa > 0.0);
            // Mixed sigma lies between the two pure sigmas.
            prop_assert!(sa >= s1.min(s2) - 1e-12 && sa <= s1.max(s2) + 1e-12);
        }
    }

    /// The LJ pair energy has its minimum at 2^{1/6}σ for any (ε, σ).
    #[test]
    fn lj_minimum_location(eps in 0.1..4.0f64, sigma in 0.6..2.0f64) {
        let cutoff = 5.0 * sigma;
        let lj = LjCut::new(1, &[(0, 0, eps, sigma)], cutoff).unwrap();
        let rmin = 2.0f64.powf(1.0 / 6.0) * sigma;
        let e_min = lj.pair_energy(0, 0, rmin);
        prop_assert!((e_min + eps).abs() < 1e-9 * eps, "E(rmin) = {e_min}");
        prop_assert!(lj.pair_energy(0, 0, rmin * 0.95) > e_min);
        prop_assert!(lj.pair_energy(0, 0, rmin * 1.05) > e_min);
    }
}
