//! CHARMM-style Lennard-Jones with switching plus real-space long-range
//! Coulomb (LAMMPS `lj/charmm/coul/long`) — the Rhodopsin pair style.
//!
//! The LJ part switches smoothly to zero between an inner and an outer
//! cutoff; the Coulomb part is the Ewald/PPPM *real-space* term
//! `q_i q_j erfc(g r) / r`, whose reciprocal-space complement lives in
//! `md-kspace`. Cross-type LJ coefficients mix arithmetically
//! (`pair_modify mix arithmetic`, paper Table 2).

use crate::mixing::MixingRule;
use md_core::math::erfc;
use md_core::neighbor::NeighborList;
use md_core::{CoreError, EnergyVirial, PairStyle, PairSystem, PrecisionMode, Vec3, V3};

/// `lj/charmm/coul/long` pair style.
#[derive(Debug, Clone)]
pub struct LjCharmmCoulLong {
    ntypes: usize,
    lj1: Vec<f64>,
    lj2: Vec<f64>,
    lj3: Vec<f64>,
    lj4: Vec<f64>,
    inner_lj: f64,
    outer_lj: f64,
    cut_coul: f64,
    /// Ewald splitting parameter; set by the k-space solver via
    /// [`LjCharmmCoulLong::set_g_ewald`].
    g_ewald: f64,
    mode: PrecisionMode,
}

impl LjCharmmCoulLong {
    /// Creates the style.
    ///
    /// `coeffs` lists `(type, epsilon, sigma)` like-pair entries (one per
    /// type); cross terms always mix arithmetically, per the benchmark deck.
    /// `inner_lj < outer_lj` bound the switching region (8.0–10.0 Å for
    /// Rhodopsin); `cut_coul` is the real-space Coulomb cutoff (10.0 Å).
    ///
    /// # Errors
    ///
    /// Returns an error if cutoffs are inconsistent or a type entry is
    /// missing.
    pub fn new(
        ntypes: usize,
        coeffs: &[(u32, f64, f64)],
        inner_lj: f64,
        outer_lj: f64,
        cut_coul: f64,
    ) -> Result<Self, CoreError> {
        if !(0.0 < inner_lj && inner_lj < outer_lj) {
            return Err(CoreError::InvalidParameter {
                name: "inner_lj/outer_lj",
                reason: format!("need 0 < inner ({inner_lj}) < outer ({outer_lj})"),
            });
        }
        if !(cut_coul > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "cut_coul",
                reason: format!("coulomb cutoff {cut_coul} must be positive"),
            });
        }
        let mut eps = vec![None; ntypes];
        let mut sig = vec![None; ntypes];
        for &(t, e, s) in coeffs {
            let t = t as usize;
            if t >= ntypes {
                return Err(CoreError::UnknownAtomType {
                    atom_type: t as u32,
                    ntypes,
                });
            }
            eps[t] = Some(e);
            sig[t] = Some(s);
        }
        for t in 0..ntypes {
            if eps[t].is_none() {
                return Err(CoreError::InvalidParameter {
                    name: "coeffs",
                    reason: format!("missing coefficients for type {t}"),
                });
            }
        }
        let mut lj1 = vec![0.0; ntypes * ntypes];
        let mut lj2 = vec![0.0; ntypes * ntypes];
        let mut lj3 = vec![0.0; ntypes * ntypes];
        let mut lj4 = vec![0.0; ntypes * ntypes];
        for i in 0..ntypes {
            for j in 0..ntypes {
                let (e, s) = MixingRule::Arithmetic.mix(
                    eps[i].expect("checked"),
                    sig[i].expect("checked"),
                    eps[j].expect("checked"),
                    sig[j].expect("checked"),
                );
                let s6 = s.powi(6);
                let s12 = s6 * s6;
                lj1[i * ntypes + j] = 48.0 * e * s12;
                lj2[i * ntypes + j] = 24.0 * e * s6;
                lj3[i * ntypes + j] = 4.0 * e * s12;
                lj4[i * ntypes + j] = 4.0 * e * s6;
            }
        }
        Ok(LjCharmmCoulLong {
            ntypes,
            lj1,
            lj2,
            lj3,
            lj4,
            inner_lj,
            outer_lj,
            cut_coul,
            g_ewald: 0.0,
            mode: PrecisionMode::Double,
        })
    }

    /// Sets the Ewald splitting parameter (the k-space solver knows it).
    ///
    /// With `g_ewald = 0` the Coulomb term degenerates to a plain truncated
    /// `q q / r`, which is also what tests without a k-space solver expect.
    pub fn set_g_ewald(&mut self, g: f64) {
        self.g_ewald = g;
    }

    /// The current Ewald splitting parameter.
    pub fn g_ewald(&self) -> f64 {
        self.g_ewald
    }

    /// CHARMM switching function and its derivative factor at `r²`.
    ///
    /// Returns `(s, ds_dr2)` with `s = 1` inside `inner²` and `s = 0` beyond
    /// `outer²`.
    fn switch(&self, r2: f64) -> (f64, f64) {
        let ri2 = self.inner_lj * self.inner_lj;
        let ro2 = self.outer_lj * self.outer_lj;
        if r2 <= ri2 {
            (1.0, 0.0)
        } else if r2 >= ro2 {
            (0.0, 0.0)
        } else {
            let denom = (ro2 - ri2).powi(3);
            let a = ro2 - r2;
            let s = a * a * (ro2 + 2.0 * r2 - 3.0 * ri2) / denom;
            // ds/d(r2) = [ -2a(ro2+2r2-3ri2) + 2a^2 ] / denom
            let ds = (-2.0 * a * (ro2 + 2.0 * r2 - 3.0 * ri2) + 2.0 * a * a) / denom;
            (s, ds)
        }
    }
}

impl PairStyle for LjCharmmCoulLong {
    fn name(&self) -> &'static str {
        "lj/charmm/coul/long"
    }

    fn cutoff(&self) -> f64 {
        self.outer_lj.max(self.cut_coul)
    }

    fn compute(&mut self, sys: &PairSystem<'_>, nl: &NeighborList, f: &mut [V3]) -> EnergyVirial {
        let n = sys.x.len();
        let cut_lj2 = self.outer_lj * self.outer_lj;
        let cut_coul2 = self.cut_coul * self.cut_coul;
        let qqr2e = sys.units.qqr2e;
        let g = self.g_ewald;
        let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
        let nt = self.ntypes;
        let mut evdwl = 0.0;
        let mut ecoul = 0.0;
        let mut virial = 0.0;
        for i in 0..n {
            let xi = sys.x[i];
            let ti = sys.kinds[i] as usize;
            let qi = sys.charge[i];
            let mut fi = Vec3::zero();
            for &j in nl.neighbors(i) {
                let ju = j as usize;
                let d = sys.bx.min_image(xi, sys.x[ju]);
                let r2 = d.norm2();
                let mut fpair = 0.0;
                if r2 < cut_lj2 {
                    let k = ti * nt + sys.kinds[ju] as usize;
                    let inv2 = 1.0 / r2;
                    let inv6 = inv2 * inv2 * inv2;
                    let e_lj = inv6 * (self.lj3[k] * inv6 - self.lj4[k]);
                    let f_lj = inv6 * (self.lj1[k] * inv6 - self.lj2[k]) * inv2;
                    let (s, ds) = self.switch(r2);
                    // d(E s)/dr2 = dE/dr2 * s + E * ds/dr2; fpair = -2 d(Es)/dr2.
                    fpair += f_lj * s - 2.0 * e_lj * ds;
                    evdwl += e_lj * s;
                }
                if r2 < cut_coul2 {
                    let r = r2.sqrt();
                    let qq = qqr2e * qi * sys.charge[ju];
                    if g > 0.0 {
                        let gr = g * r;
                        let erfc_gr = erfc(gr);
                        let e_c = qq * erfc_gr / r;
                        ecoul += e_c;
                        fpair += (e_c + qq * two_over_sqrt_pi * gr * (-gr * gr).exp() / r) / r2;
                    } else {
                        let e_c = qq / r;
                        ecoul += e_c;
                        fpair += e_c / r2;
                    }
                }
                if fpair != 0.0 {
                    let df = d * fpair;
                    fi += df;
                    f[ju] -= df;
                    virial += r2 * fpair;
                }
            }
            f[i] += fi;
        }
        EnergyVirial {
            evdwl,
            ecoul,
            virial,
        }
    }

    fn set_precision(&mut self, mode: PrecisionMode) {
        self.mode = mode;
    }

    fn precision(&self) -> PrecisionMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::neighbor::NeighborListKind;
    use md_core::{SimBox, UnitSystem};

    fn charged_dimer(
        style: &mut LjCharmmCoulLong,
        r: f64,
        q0: f64,
        q1: f64,
    ) -> (EnergyVirial, Vec<V3>) {
        let bx = SimBox::cubic(50.0);
        let x = vec![Vec3::new(20.0, 20.0, 20.0), Vec3::new(20.0 + r, 20.0, 20.0)];
        let mut nl = NeighborList::new(style.cutoff(), 1.0, NeighborListKind::Half);
        nl.build(&x, &bx).unwrap();
        let v = vec![Vec3::zero(); 2];
        let kinds = vec![0u32; 2];
        let charge = vec![q0, q1];
        let radius = vec![0.0; 2];
        let masses = vec![1.0];
        let units = UnitSystem::real();
        let sys = PairSystem {
            bx: &bx,
            x: &x,
            v: &v,
            kinds: &kinds,
            charge: &charge,
            radius: &radius,
            mass_by_type: &masses,
            units: &units,
            dt: 1.0,
        };
        let mut f = vec![Vec3::zero(); 2];
        let e = style.compute(&sys, &nl, &mut f);
        (e, f)
    }

    fn style() -> LjCharmmCoulLong {
        LjCharmmCoulLong::new(1, &[(0, 0.1, 3.0)], 8.0, 10.0, 10.0).unwrap()
    }

    #[test]
    fn switch_is_one_inside_zero_outside() {
        let s = style();
        assert_eq!(s.switch(7.9 * 7.9), (1.0, 0.0));
        assert_eq!(s.switch(10.1 * 10.1).0, 0.0);
        let (mid, _) = s.switch(9.0 * 9.0);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn switch_is_continuous_at_boundaries() {
        let s = style();
        let eps = 1e-9;
        let ri2 = 64.0;
        let ro2 = 100.0;
        assert!((s.switch(ri2 + eps).0 - 1.0).abs() < 1e-6);
        assert!(s.switch(ro2 - eps).0 < 1e-6);
    }

    #[test]
    fn lj_energy_goes_smoothly_to_zero() {
        let mut s = style();
        let (e_in, _) = charged_dimer(&mut s, 9.99, 0.0, 0.0);
        assert!(e_in.evdwl.abs() < 1e-6, "{}", e_in.evdwl);
        let (e_out, f) = charged_dimer(&mut s, 10.01, 0.0, 0.0);
        assert_eq!(e_out.evdwl, 0.0);
        assert_eq!(f[0], Vec3::zero());
    }

    #[test]
    fn truncated_coulomb_matches_qq_over_r() {
        let mut s = style();
        let (e, f) = charged_dimer(&mut s, 5.0, 1.0, -1.0);
        let want = -UnitSystem::real().qqr2e / 5.0;
        assert!((e.ecoul - want).abs() < 1e-10, "{} vs {want}", e.ecoul);
        // Opposite charges attract: force on atom 0 along +x.
        assert!(f[0].x > 0.0);
    }

    #[test]
    fn damped_coulomb_is_smaller_than_bare() {
        let mut s = style();
        let (bare, _) = charged_dimer(&mut s, 5.0, 1.0, 1.0);
        s.set_g_ewald(0.3);
        let (damped, _) = charged_dimer(&mut s, 5.0, 1.0, 1.0);
        assert!(damped.ecoul < bare.ecoul);
        assert!(damped.ecoul > 0.0);
    }

    #[test]
    fn force_matches_numerical_derivative_with_switching() {
        let mut s = style();
        s.set_g_ewald(0.25);
        let h = 1e-5;
        for r in [4.0, 8.5, 9.5] {
            let (_, f) = charged_dimer(&mut s, r, 0.5, -0.4);
            let (ep, _) = charged_dimer(&mut s, r + h, 0.5, -0.4);
            let (em, _) = charged_dimer(&mut s, r - h, 0.5, -0.4);
            let dedr = (ep.energy() - em.energy()) / (2.0 * h);
            assert!(
                (f[1].x - (-dedr)).abs() < 1e-4 * dedr.abs().max(1.0),
                "r = {r}: {} vs {}",
                f[1].x,
                -dedr
            );
        }
    }

    #[test]
    fn rejects_inverted_cutoffs() {
        assert!(LjCharmmCoulLong::new(1, &[(0, 0.1, 3.0)], 10.0, 8.0, 10.0).is_err());
    }
}
