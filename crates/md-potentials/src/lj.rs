//! The 12-6 Lennard-Jones pair potential with cutoff (LAMMPS `lj/cut`).
//!
//! This is the potential behind the LJ melt and Chain benchmarks. The kernel
//! is generic over compute precision `R` and accumulate precision `A`, so a
//! [`PrecisionMode`] selects real single / mixed / double code paths for the
//! paper's Section 8 study.

use crate::mixing::MixingRule;
use md_core::neighbor::NeighborList;
use md_core::{CoreError, EnergyVirial, PairStyle, PairSystem, PrecisionMode, Real, Vec3, V3};

/// `lj/cut` pair style.
#[derive(Debug, Clone)]
pub struct LjCut {
    ntypes: usize,
    /// Flattened per-type-pair `48 ε σ¹²` (force) table.
    lj1: Vec<f64>,
    /// Flattened per-type-pair `24 ε σ⁶` (force) table.
    lj2: Vec<f64>,
    /// Flattened per-type-pair `4 ε σ¹²` (energy) table.
    lj3: Vec<f64>,
    /// Flattened per-type-pair `4 ε σ⁶` (energy) table.
    lj4: Vec<f64>,
    cutoff: f64,
    mode: PrecisionMode,
}

impl LjCut {
    /// Creates an `lj/cut` style for `ntypes` atom types.
    ///
    /// `coeffs` lists `(type_i, type_j, epsilon, sigma)` entries; missing
    /// cross terms are filled by `MixingRule::Geometric` (the LAMMPS `lj/cut`
    /// default) from the like-pair entries. Use [`LjCut::with_mixing`] to
    /// choose another rule.
    ///
    /// # Errors
    ///
    /// Returns an error if a like-pair entry is missing, a type index is out
    /// of range, or the cutoff is non-positive.
    pub fn new(
        ntypes: usize,
        coeffs: &[(u32, u32, f64, f64)],
        cutoff: f64,
    ) -> Result<Self, CoreError> {
        Self::with_mixing(ntypes, coeffs, cutoff, MixingRule::Geometric)
    }

    /// As [`LjCut::new`] with an explicit mixing rule for missing cross terms.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LjCut::new`].
    pub fn with_mixing(
        ntypes: usize,
        coeffs: &[(u32, u32, f64, f64)],
        cutoff: f64,
        mixing: MixingRule,
    ) -> Result<Self, CoreError> {
        if !(cutoff > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "cutoff",
                reason: format!("cutoff {cutoff} must be positive"),
            });
        }
        let mut eps = vec![None; ntypes * ntypes];
        let mut sig = vec![None; ntypes * ntypes];
        for &(i, j, e, s) in coeffs {
            let (i, j) = (i as usize, j as usize);
            if i >= ntypes || j >= ntypes {
                return Err(CoreError::UnknownAtomType {
                    atom_type: i.max(j) as u32,
                    ntypes,
                });
            }
            eps[i * ntypes + j] = Some(e);
            eps[j * ntypes + i] = Some(e);
            sig[i * ntypes + j] = Some(s);
            sig[j * ntypes + i] = Some(s);
        }
        for t in 0..ntypes {
            if eps[t * ntypes + t].is_none() {
                return Err(CoreError::InvalidParameter {
                    name: "coeffs",
                    reason: format!("missing like-pair coefficients for type {t}"),
                });
            }
        }
        let mut lj1 = vec![0.0; ntypes * ntypes];
        let mut lj2 = vec![0.0; ntypes * ntypes];
        let mut lj3 = vec![0.0; ntypes * ntypes];
        let mut lj4 = vec![0.0; ntypes * ntypes];
        for i in 0..ntypes {
            for j in 0..ntypes {
                let (e, s) = match (eps[i * ntypes + j], sig[i * ntypes + j]) {
                    (Some(e), Some(s)) => (e, s),
                    _ => mixing.mix(
                        eps[i * ntypes + i].expect("like pair set"),
                        sig[i * ntypes + i].expect("like pair set"),
                        eps[j * ntypes + j].expect("like pair set"),
                        sig[j * ntypes + j].expect("like pair set"),
                    ),
                };
                let s6 = s.powi(6);
                let s12 = s6 * s6;
                lj1[i * ntypes + j] = 48.0 * e * s12;
                lj2[i * ntypes + j] = 24.0 * e * s6;
                lj3[i * ntypes + j] = 4.0 * e * s12;
                lj4[i * ntypes + j] = 4.0 * e * s6;
            }
        }
        Ok(LjCut {
            ntypes,
            lj1,
            lj2,
            lj3,
            lj4,
            cutoff,
            mode: PrecisionMode::Double,
        })
    }

    /// Potential energy of an isolated pair at distance `r` (for tests and
    /// reference computations).
    pub fn pair_energy(&self, ti: u32, tj: u32, r: f64) -> f64 {
        if r >= self.cutoff {
            return 0.0;
        }
        let k = ti as usize * self.ntypes + tj as usize;
        let inv6 = r.powi(-6);
        inv6 * (self.lj3[k] * inv6 - self.lj4[k])
    }

    fn kernel<R: Real, A: Real>(
        &self,
        sys: &PairSystem<'_>,
        nl: &NeighborList,
        f: &mut [V3],
    ) -> EnergyVirial {
        let n = sys.x.len();
        let cut2 = R::from_f64(self.cutoff * self.cutoff);
        let l: Vec3<R> = sys.bx.lengths().cast();
        let pbc = [
            sys.bx.is_periodic(0),
            sys.bx.is_periodic(1),
            sys.bx.is_periodic(2),
        ];
        let half = R::from_f64(0.5);
        let mut evdwl = A::ZERO;
        let mut virial = A::ZERO;
        let nt = self.ntypes;
        for i in 0..n {
            let xi: Vec3<R> = sys.x[i].cast();
            let ti = sys.kinds[i] as usize;
            let mut fi: Vec3<A> = Vec3::zero();
            for &j in nl.neighbors(i) {
                let ju = j as usize;
                let mut d: Vec3<R> = xi - sys.x[ju].cast();
                for k in 0..3 {
                    if pbc[k] {
                        let lk = l[k];
                        if d[k] > half * lk {
                            d[k] -= lk;
                        } else if d[k] < -half * lk {
                            d[k] += lk;
                        }
                    }
                }
                let r2 = d.norm2();
                if r2 >= cut2 {
                    continue;
                }
                let k = ti * nt + sys.kinds[ju] as usize;
                let inv2 = R::ONE / r2;
                let inv6 = inv2 * inv2 * inv2;
                let lj1 = R::from_f64(self.lj1[k]);
                let lj2 = R::from_f64(self.lj2[k]);
                let fpair = inv6 * (lj1 * inv6 - lj2) * inv2;
                let df = d * fpair;
                fi += df.cast::<A>();
                // Newton's third law: the half list stores each pair once.
                f[ju] -= df.cast::<f64>();
                let e = inv6 * (R::from_f64(self.lj3[k]) * inv6 - R::from_f64(self.lj4[k]));
                evdwl += A::from_f64(e.to_f64());
                virial += A::from_f64((r2 * fpair).to_f64());
            }
            let fi64: Vec3<f64> = fi.cast();
            f[i] += fi64;
        }
        EnergyVirial {
            evdwl: evdwl.to_f64(),
            ecoul: 0.0,
            virial: virial.to_f64(),
        }
    }
}

impl PairStyle for LjCut {
    fn name(&self) -> &'static str {
        "lj/cut"
    }

    fn cutoff(&self) -> f64 {
        self.cutoff
    }

    fn compute(&mut self, sys: &PairSystem<'_>, nl: &NeighborList, f: &mut [V3]) -> EnergyVirial {
        match self.mode {
            PrecisionMode::Single => self.kernel::<f32, f32>(sys, nl, f),
            PrecisionMode::Mixed => self.kernel::<f32, f64>(sys, nl, f),
            PrecisionMode::Double => self.kernel::<f64, f64>(sys, nl, f),
        }
    }

    fn set_precision(&mut self, mode: PrecisionMode) {
        self.mode = mode;
    }

    fn precision(&self) -> PrecisionMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::neighbor::NeighborListKind;
    use md_core::{SimBox, UnitSystem};

    fn dimer(r: f64) -> (SimBox, Vec<V3>, NeighborList) {
        let bx = SimBox::cubic(20.0);
        let x = vec![Vec3::new(5.0, 5.0, 5.0), Vec3::new(5.0 + r, 5.0, 5.0)];
        let mut nl = NeighborList::new(2.5, 0.3, NeighborListKind::Half);
        nl.build(&x, &bx).unwrap();
        (bx, x, nl)
    }

    fn compute_dimer(lj: &mut LjCut, r: f64) -> (EnergyVirial, Vec<V3>) {
        let (bx, x, nl) = dimer(r);
        let v = vec![Vec3::zero(); 2];
        let kinds = vec![0u32; 2];
        let charge = vec![0.0; 2];
        let radius = vec![0.0; 2];
        let masses = vec![1.0];
        let units = UnitSystem::lj();
        let sys = PairSystem {
            bx: &bx,
            x: &x,
            v: &v,
            kinds: &kinds,
            charge: &charge,
            radius: &radius,
            mass_by_type: &masses,
            units: &units,
            dt: 0.005,
        };
        let mut f = vec![Vec3::zero(); 2];
        let e = lj.compute(&sys, &nl, &mut f);
        (e, f)
    }

    #[test]
    fn minimum_at_two_to_one_sixth() {
        let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap();
        let rmin = 2.0f64.powf(1.0 / 6.0);
        let (e, f) = compute_dimer(&mut lj, rmin);
        assert!((e.evdwl - (-1.0)).abs() < 1e-12, "E(rmin) = {}", e.evdwl);
        assert!(f[0].norm() < 1e-12, "force at minimum {}", f[0]);
    }

    #[test]
    fn repulsive_inside_minimum_attractive_outside() {
        let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap();
        let (_, f) = compute_dimer(&mut lj, 1.0);
        assert!(f[0].x < 0.0 && f[1].x > 0.0, "should repel at r = sigma");
        let (_, f) = compute_dimer(&mut lj, 1.5);
        assert!(
            f[0].x > 0.0 && f[1].x < 0.0,
            "should attract at r = 1.5 sigma"
        );
    }

    #[test]
    fn newtons_third_law() {
        let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap();
        let (_, f) = compute_dimer(&mut lj, 1.2);
        assert!((f[0] + f[1]).norm() < 1e-12);
    }

    #[test]
    fn force_matches_numerical_derivative() {
        let mut lj = LjCut::new(1, &[(0, 0, 1.3, 0.9)], 2.5).unwrap();
        let r = 1.1;
        let h = 1e-6;
        let (_, f) = compute_dimer(&mut lj, r);
        let ep = lj.pair_energy(0, 0, r + h);
        let em = lj.pair_energy(0, 0, r - h);
        let dedr = (ep - em) / (2.0 * h);
        // Force on atom 1 along +x should be -dE/dr.
        assert!((f[1].x - (-dedr)).abs() < 1e-5, "{} vs {}", f[1].x, -dedr);
    }

    #[test]
    fn beyond_cutoff_is_zero() {
        let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap();
        let (e, f) = compute_dimer(&mut lj, 2.6);
        assert_eq!(e.evdwl, 0.0);
        assert_eq!(f[0], Vec3::zero());
    }

    #[test]
    fn precision_modes_agree_to_single_accuracy() {
        let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap();
        let (e_d, f_d) = compute_dimer(&mut lj, 1.3);
        lj.set_precision(PrecisionMode::Single);
        let (e_s, f_s) = compute_dimer(&mut lj, 1.3);
        lj.set_precision(PrecisionMode::Mixed);
        let (e_m, f_m) = compute_dimer(&mut lj, 1.3);
        assert!((e_d.evdwl - e_s.evdwl).abs() < 1e-5);
        assert!((e_d.evdwl - e_m.evdwl).abs() < 1e-5);
        assert!((f_d[0] - f_s[0]).norm() < 1e-4);
        assert!((f_d[0] - f_m[0]).norm() < 1e-4);
        // And double really is more precise than single against itself.
        assert_ne!(e_s.evdwl, e_d.evdwl);
    }

    #[test]
    fn mixing_fills_cross_terms() {
        let lj = LjCut::with_mixing(
            2,
            &[(0, 0, 1.0, 1.0), (1, 1, 4.0, 3.0)],
            5.0,
            MixingRule::Arithmetic,
        )
        .unwrap();
        // eps_01 = 2, sigma_01 = 2 -> E(r) = 4*2*((2/r)^12 - (2/r)^6).
        let r: f64 = 2.5;
        let want = 8.0 * ((2.0 / r).powi(12) - (2.0f64 / r).powi(6));
        assert!((lj.pair_energy(0, 1, r) - want).abs() < 1e-12);
    }

    #[test]
    fn rejects_missing_like_pair() {
        let err = LjCut::new(2, &[(0, 0, 1.0, 1.0)], 2.5).unwrap_err();
        assert!(matches!(err, CoreError::InvalidParameter { .. }));
    }

    #[test]
    fn rejects_bad_cutoff() {
        assert!(LjCut::new(1, &[(0, 0, 1.0, 1.0)], 0.0).is_err());
    }
}
