//! Granular Hookean contact with tangential friction history
//! (LAMMPS `pair_style gran/hooke/history`) — the Chute benchmark.
//!
//! Two granular particles in contact feel a Hookean normal spring-dashpot and
//! a tangential spring whose elongation is the *accumulated* tangential
//! displacement over the life of the contact (the "history"), capped by a
//! Coulomb friction cone. As the paper notes, this style does not exploit
//! Newton's third law: it walks a **full** neighbor list and evaluates every
//! contact from both sides, which is exactly what the engine does here.

use md_core::neighbor::{NeighborList, NeighborListKind};
use md_core::{CoreError, EnergyVirial, Fix, PairStyle, PairSystem, PrecisionMode, Vec3, V3};
use std::collections::HashMap;

/// `gran/hooke/history` pair style.
#[derive(Debug, Clone)]
pub struct GranHookeHistory {
    /// Normal spring constant `kn`.
    kn: f64,
    /// Tangential spring constant `kt` (LAMMPS default: `2/7 kn`).
    kt: f64,
    /// Normal damping `γn`.
    gamma_n: f64,
    /// Tangential damping `γt` (LAMMPS default: `γn / 2`).
    gamma_t: f64,
    /// Coulomb friction coefficient `μ`.
    xmu: f64,
    /// Maximum particle diameter — acts as the neighbor cutoff.
    max_diameter: f64,
    /// Per-directed-contact accumulated tangential displacement.
    history: HashMap<(u32, u32), V3>,
    /// Scratch for contacts still alive this step.
    next_history: HashMap<(u32, u32), V3>,
}

impl GranHookeHistory {
    /// Creates the style with the LAMMPS chute-deck defaults for `kt`/`γt`.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive stiffness, damping, or diameter.
    pub fn new(kn: f64, gamma_n: f64, xmu: f64, max_diameter: f64) -> Result<Self, CoreError> {
        if !(kn > 0.0 && gamma_n >= 0.0 && xmu >= 0.0 && max_diameter > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "gran/hooke/history",
                reason: "kn > 0, gamma_n >= 0, xmu >= 0, diameter > 0 required".to_string(),
            });
        }
        Ok(GranHookeHistory {
            kn,
            kt: 2.0 / 7.0 * kn,
            gamma_n,
            gamma_t: 0.5 * gamma_n,
            xmu,
            max_diameter,
            history: HashMap::new(),
            next_history: HashMap::new(),
        })
    }

    /// Number of live directed contacts with nonzero history.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Accumulated shear vector for directed contact `(i, j)`, if touching.
    pub fn shear(&self, i: u32, j: u32) -> Option<V3> {
        self.history.get(&(i, j)).copied()
    }
}

impl PairStyle for GranHookeHistory {
    fn name(&self) -> &'static str {
        "gran/hooke/history"
    }

    fn cutoff(&self) -> f64 {
        self.max_diameter
    }

    fn list_kind(&self) -> NeighborListKind {
        // The paper singles Chute out: no Newton's-third-law pair halving.
        NeighborListKind::Full
    }

    fn compute(&mut self, sys: &PairSystem<'_>, nl: &NeighborList, f: &mut [V3]) -> EnergyVirial {
        let n = sys.x.len();
        let dt = sys.dt;
        let mut virial = 0.0;
        self.next_history.clear();
        for i in 0..n {
            let xi = sys.x[i];
            let vi = sys.v[i];
            let ri = sys.radius[i];
            let mi = sys.mass(i);
            let mut fi = Vec3::zero();
            for &j in nl.neighbors(i) {
                let ju = j as usize;
                let d = sys.bx.min_image(xi, sys.x[ju]);
                let r = d.norm();
                let sum_r = ri + sys.radius[ju];
                if r >= sum_r || r == 0.0 {
                    continue; // not in contact
                }
                let nhat = d / r;
                let overlap = sum_r - r;
                let meff = mi * sys.mass(ju) / (mi + sys.mass(ju));

                // Relative velocity decomposition (no particle spin modeled;
                // see DESIGN.md substitutions).
                let vrel = vi - sys.v[ju];
                let vn = nhat * vrel.dot(nhat);
                let vt = vrel - vn;

                // Normal: Hookean spring + dashpot.
                let fn_spring = self.kn * overlap;
                let f_normal = nhat * fn_spring - vn * (meff * self.gamma_n);

                // Tangential: history spring + dashpot, Coulomb-capped.
                let key = (i as u32, j);
                let mut shear =
                    self.history.get(&key).copied().unwrap_or_else(Vec3::zero) + vt * dt;
                // Keep the history in the current tangent plane.
                shear -= nhat * shear.dot(nhat);
                let mut f_tang = shear * (-self.kt) - vt * (meff * self.gamma_t);
                let ft_mag = f_tang.norm();
                let ft_max = self.xmu * fn_spring.abs();
                if ft_mag > ft_max && ft_mag > 0.0 {
                    // Slip: cap the force and rescale the stored history so
                    // the spring alone produces the capped force.
                    f_tang *= ft_max / ft_mag;
                    if self.kt > 0.0 {
                        shear = (f_tang + vt * (meff * self.gamma_t)) * (-1.0 / self.kt);
                    }
                }
                self.next_history.insert(key, shear);

                let ftot = f_normal + f_tang;
                fi += ftot;
                virial += d.dot(ftot);
            }
            f[i] += fi;
        }
        std::mem::swap(&mut self.history, &mut self.next_history);
        EnergyVirial {
            evdwl: 0.0, // contacts are dissipative; no conserved pair energy
            ecoul: 0.0,
            // Each contact was visited from both sides: halve the virial.
            virial: 0.5 * virial,
        }
    }

    fn set_precision(&mut self, _mode: PrecisionMode) {}

    fn state_save(&self, w: &mut md_core::wire::Writer) {
        // The contact history is the style's only carried state. HashMap
        // iteration order is nondeterministic, so serialize sorted by key —
        // the checkpoint bytes must be a pure function of the physics.
        let mut keys: Vec<(u32, u32)> = self.history.keys().copied().collect();
        keys.sort_unstable();
        w.usize(keys.len());
        for (i, j) in keys {
            w.u32(i);
            w.u32(j);
            w.v3(self.history[&(i, j)]);
        }
    }

    fn state_load(&mut self, r: &mut md_core::wire::Reader<'_>) -> Result<(), CoreError> {
        let n = r.usize()?;
        let mut history = HashMap::new();
        for _ in 0..n {
            let key = (r.u32()?, r.u32()?);
            let shear = r.v3()?;
            if history.insert(key, shear).is_some() {
                return Err(CoreError::CorruptState {
                    what: "gran/hooke/history",
                    detail: format!("duplicate contact key {key:?}"),
                });
            }
        }
        self.history = history;
        self.next_history.clear();
        Ok(())
    }
}

/// A frictional granular wall at the bottom of the box
/// (LAMMPS `fix wall/gran`), confining the chute flow along -z.
#[derive(Debug, Clone)]
pub struct GranWall {
    /// Wall plane height (z coordinate).
    z: f64,
    kn: f64,
    gamma_n: f64,
}

impl GranWall {
    /// Creates a Hookean wall at height `z`.
    ///
    /// # Panics
    ///
    /// Panics if `kn <= 0` or `gamma_n < 0`.
    pub fn new(z: f64, kn: f64, gamma_n: f64) -> Self {
        assert!(kn > 0.0, "wall stiffness must be positive");
        assert!(gamma_n >= 0.0, "wall damping must be non-negative");
        GranWall { z, kn, gamma_n }
    }
}

impl Fix for GranWall {
    fn name(&self) -> &'static str {
        "wall/gran"
    }

    fn post_force(&mut self, sys: &PairSystem<'_>, f: &mut [V3]) {
        for i in 0..sys.x.len() {
            let r = sys.radius[i];
            let gap = sys.x[i].z - self.z;
            if gap < r {
                let overlap = r - gap;
                let m = sys.mass(i);
                f[i].z += self.kn * overlap - m * self.gamma_n * sys.v[i].z;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::{SimBox, UnitSystem};

    struct Rig {
        bx: SimBox,
        x: Vec<V3>,
        v: Vec<V3>,
        kinds: Vec<u32>,
        charge: Vec<f64>,
        radius: Vec<f64>,
        masses: Vec<f64>,
        units: UnitSystem,
        nl: NeighborList,
    }

    impl Rig {
        fn two_particles(x1: V3, v0: V3, v1: V3) -> Rig {
            let bx = SimBox::cubic(20.0);
            let x = vec![Vec3::new(5.0, 5.0, 5.0), x1];
            let mut nl = NeighborList::new(1.0, 0.1, NeighborListKind::Full);
            nl.build(&x, &bx).unwrap();
            Rig {
                bx,
                x,
                v: vec![v0, v1],
                kinds: vec![0, 0],
                charge: vec![0.0; 2],
                radius: vec![0.5; 2],
                masses: vec![1.0],
                units: UnitSystem::lj(),
                nl,
            }
        }

        fn compute(&mut self, style: &mut GranHookeHistory) -> (EnergyVirial, Vec<V3>) {
            let sys = PairSystem {
                bx: &self.bx,
                x: &self.x,
                v: &self.v,
                kinds: &self.kinds,
                charge: &self.charge,
                radius: &self.radius,
                mass_by_type: &self.masses,
                units: &self.units,
                dt: 1e-4,
            };
            let mut f = vec![Vec3::zero(); self.x.len()];
            let e = style.compute(&sys, &self.nl, &mut f);
            (e, f)
        }
    }

    #[test]
    fn overlapping_particles_repel() {
        let mut style = GranHookeHistory::new(2000.0, 50.0, 0.5, 1.0).unwrap();
        let mut rig = Rig::two_particles(Vec3::new(5.9, 5.0, 5.0), Vec3::zero(), Vec3::zero());
        let (_, f) = rig.compute(&mut style);
        // Overlap 0.1: spring force kn * 0.1 = 200 along -x on atom 0.
        assert!((f[0].x - (-200.0)).abs() < 1e-9, "{}", f[0].x);
        assert!((f[1].x - 200.0).abs() < 1e-9);
    }

    #[test]
    fn separated_particles_do_not_interact() {
        let mut style = GranHookeHistory::new(2000.0, 50.0, 0.5, 1.0).unwrap();
        let mut rig = Rig::two_particles(Vec3::new(6.05, 5.0, 5.0), Vec3::zero(), Vec3::zero());
        let (_, f) = rig.compute(&mut style);
        assert_eq!(f[0], Vec3::zero());
        assert_eq!(style.history_len(), 0);
    }

    #[test]
    fn normal_dashpot_opposes_approach() {
        let mut style = GranHookeHistory::new(2000.0, 50.0, 0.5, 1.0).unwrap();
        // Particle 1 moving toward particle 0.
        let mut rig = Rig::two_particles(
            Vec3::new(5.9, 5.0, 5.0),
            Vec3::zero(),
            Vec3::new(-1.0, 0.0, 0.0),
        );
        let (_, f) = rig.compute(&mut style);
        // Damping adds to the repulsion felt by atom 1 (+x).
        assert!(f[1].x > 200.0, "{}", f[1].x);
    }

    #[test]
    fn shear_history_accumulates_while_sliding() {
        let mut style = GranHookeHistory::new(2000.0, 0.0, 10.0, 1.0).unwrap();
        let mut rig = Rig::two_particles(
            Vec3::new(5.9, 5.0, 5.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0), // sliding tangentially
        );
        let (_, f1) = rig.compute(&mut style);
        let s1 = style.shear(0, 1).expect("contact alive").norm();
        let (_, f2) = rig.compute(&mut style);
        let s2 = style.shear(0, 1).expect("contact alive").norm();
        assert!(s2 > s1, "history must grow: {s1} -> {s2}");
        // Tangential force on atom 0 grows with history.
        assert!(f2[0].y.abs() > f1[0].y.abs());
    }

    #[test]
    fn history_resets_after_separation() {
        let mut style = GranHookeHistory::new(2000.0, 0.0, 10.0, 1.0).unwrap();
        let mut rig = Rig::two_particles(
            Vec3::new(5.9, 5.0, 5.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
        );
        rig.compute(&mut style);
        assert!(style.history_len() > 0);
        // Separate them and rebuild.
        rig.x[1] = Vec3::new(8.0, 5.0, 5.0);
        rig.nl.build(&rig.x, &rig.bx).unwrap();
        rig.compute(&mut style);
        assert_eq!(style.history_len(), 0, "history must be pruned");
    }

    #[test]
    fn friction_cone_caps_tangential_force() {
        let mut style = GranHookeHistory::new(2000.0, 0.0, 0.1, 1.0).unwrap();
        let mut rig = Rig::two_particles(
            Vec3::new(5.9, 5.0, 5.0),
            Vec3::zero(),
            Vec3::new(0.0, 5.0, 0.0),
        );
        // Slide for many steps; |Ft| must never exceed mu * kn * overlap.
        let ft_max = 0.1 * 2000.0 * 0.1;
        for _ in 0..200 {
            let (_, f) = rig.compute(&mut style);
            let ft = f[0].y.abs();
            assert!(ft <= ft_max * (1.0 + 1e-9), "Ft {ft} exceeds cone {ft_max}");
        }
    }

    #[test]
    fn collision_dissipates_energy() {
        // Head-on collision with damping: kinetic energy after < before.
        let mut style = GranHookeHistory::new(2000.0, 50.0, 0.5, 1.0).unwrap();
        let bx = SimBox::cubic(20.0);
        let mut x = vec![Vec3::new(5.0, 5.0, 5.0), Vec3::new(6.05, 5.0, 5.0)];
        let mut v = vec![Vec3::new(0.5, 0.0, 0.0), Vec3::new(-0.5, 0.0, 0.0)];
        let mut nl = NeighborList::new(1.0, 0.2, NeighborListKind::Full);
        let dt = 1e-4;
        let ke0: f64 = v.iter().map(|vi| 0.5 * vi.norm2()).sum();
        let units = UnitSystem::lj();
        for _ in 0..20000 {
            if nl.needs_rebuild(&x, &bx) {
                nl.build(&x, &bx).unwrap();
            }
            let kinds = vec![0u32, 0];
            let charge = vec![0.0; 2];
            let radius = vec![0.5; 2];
            let masses = vec![1.0];
            let sys = PairSystem {
                bx: &bx,
                x: &x,
                v: &v,
                kinds: &kinds,
                charge: &charge,
                radius: &radius,
                mass_by_type: &masses,
                units: &units,
                dt,
            };
            let mut f = vec![Vec3::zero(); 2];
            style.compute(&sys, &nl, &mut f);
            for k in 0..2 {
                v[k] += f[k] * dt;
                x[k] += v[k] * dt;
            }
        }
        let ke1: f64 = v.iter().map(|vi| 0.5 * vi.norm2()).sum();
        // Particles separated again, having lost energy to the dashpot.
        let r = (x[0] - x[1]).norm();
        assert!(r > 1.0, "particles should separate, r = {r}");
        assert!(ke1 < 0.9 * ke0, "KE {ke0} -> {ke1} should dissipate");
    }

    #[test]
    fn wall_pushes_particles_out() {
        let mut wall = GranWall::new(0.0, 2000.0, 50.0);
        let bx = SimBox::cubic(20.0).with_periodicity(true, true, false);
        let x = vec![Vec3::new(5.0, 5.0, 0.3)];
        let v = vec![Vec3::new(0.0, 0.0, -1.0)];
        let kinds = vec![0u32];
        let charge = vec![0.0];
        let radius = vec![0.5];
        let masses = vec![1.0];
        let units = UnitSystem::lj();
        let sys = PairSystem {
            bx: &bx,
            x: &x,
            v: &v,
            kinds: &kinds,
            charge: &charge,
            radius: &radius,
            mass_by_type: &masses,
            units: &units,
            dt: 1e-4,
        };
        let mut f = vec![Vec3::zero()];
        wall.post_force(&sys, &mut f);
        // Overlap 0.2 -> spring 400, plus dashpot +50 against vz = -1.
        assert!(f[0].z > 400.0, "{}", f[0].z);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(GranHookeHistory::new(0.0, 50.0, 0.5, 1.0).is_err());
        assert!(GranHookeHistory::new(2000.0, -1.0, 0.5, 1.0).is_err());
    }

    #[test]
    fn history_state_round_trips_bitwise() {
        let mut style = GranHookeHistory::new(2000.0, 0.0, 10.0, 1.0).unwrap();
        let mut rig = Rig::two_particles(
            Vec3::new(5.9, 5.0, 5.0),
            Vec3::zero(),
            Vec3::new(0.0, 1.0, 0.0),
        );
        rig.compute(&mut style);
        rig.compute(&mut style);
        assert!(style.history_len() > 0);
        let mut w = md_core::wire::Writer::new();
        style.state_save(&mut w);
        let bytes = w.into_bytes();
        let mut other = GranHookeHistory::new(2000.0, 0.0, 10.0, 1.0).unwrap();
        other
            .state_load(&mut md_core::wire::Reader::new(&bytes, "gran"))
            .unwrap();
        assert_eq!(other.history_len(), style.history_len());
        let (a, b) = (style.shear(0, 1).unwrap(), other.shear(0, 1).unwrap());
        assert_eq!(a.y.to_bits(), b.y.to_bits());
        // Duplicate keys are rejected.
        let mut w = md_core::wire::Writer::new();
        w.usize(2);
        for _ in 0..2 {
            w.u32(0);
            w.u32(1);
            w.v3(Vec3::zero());
        }
        let bad = w.into_bytes();
        assert!(other
            .state_load(&mut md_core::wire::Reader::new(&bad, "gran"))
            .is_err());
    }
}
