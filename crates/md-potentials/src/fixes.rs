//! Simple post-force fixes: gravity (the chute driving force) and a freeze
//! fix that immobilizes a particle type (the chute's packed base layer).

use md_core::{Fix, PairSystem, Vec3, V3};

/// Constant gravitational acceleration (LAMMPS `fix gravity`).
///
/// The Chute benchmark drives the flow with gravity tilted by the chute
/// angle: use [`Gravity::chute`] for the deck's `gravity 1.0 chute 26.0`.
#[derive(Debug, Clone, Copy)]
pub struct Gravity {
    g: V3,
}

impl Gravity {
    /// Gravity with an explicit acceleration vector.
    pub fn new(g: V3) -> Self {
        Gravity { g }
    }

    /// LAMMPS `gravity <mag> chute <angle°>`: acceleration of magnitude
    /// `mag` tilted `angle` degrees from -z toward +x.
    pub fn chute(magnitude: f64, angle_deg: f64) -> Self {
        let a = angle_deg.to_radians();
        Gravity {
            g: Vec3::new(magnitude * a.sin(), 0.0, -magnitude * a.cos()),
        }
    }

    /// The acceleration vector.
    pub fn acceleration(&self) -> V3 {
        self.g
    }
}

impl Fix for Gravity {
    fn name(&self) -> &'static str {
        "gravity"
    }

    fn post_force(&mut self, sys: &PairSystem<'_>, f: &mut [V3]) {
        // F = m g, converted to force units (a = F ftm2v / m).
        let mvv2e = sys.units.mvv2e;
        for i in 0..f.len() {
            f[i] += self.g * (sys.mass(i) * mvv2e);
        }
    }
}

/// Zeroes the force on atoms of one type each step, freezing them in place
/// (LAMMPS `fix freeze`/`fix setforce 0 0 0`) provided their initial velocity
/// is zero.
#[derive(Debug, Clone, Copy)]
pub struct Freeze {
    kind: u32,
}

impl Freeze {
    /// Freezes all atoms of type `kind`.
    pub fn new(kind: u32) -> Self {
        Freeze { kind }
    }
}

impl Fix for Freeze {
    fn name(&self) -> &'static str {
        "freeze"
    }

    fn post_force(&mut self, sys: &PairSystem<'_>, f: &mut [V3]) {
        for (i, &t) in sys.kinds.iter().enumerate() {
            if t == self.kind {
                f[i] = Vec3::zero();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::{SimBox, UnitSystem};

    fn rig(kinds: Vec<u32>) -> (SimBox, Vec<V3>, Vec<V3>, Vec<u32>, UnitSystem) {
        let n = kinds.len();
        (
            SimBox::cubic(10.0),
            vec![Vec3::splat(5.0); n],
            vec![Vec3::zero(); n],
            kinds,
            UnitSystem::lj(),
        )
    }

    #[test]
    fn chute_gravity_tilts_toward_x() {
        let g = Gravity::chute(1.0, 26.0);
        let a = g.acceleration();
        assert!(a.x > 0.0 && a.z < 0.0 && a.y == 0.0);
        assert!((a.norm() - 1.0).abs() < 1e-12);
        assert!((a.x / (-a.z) - 26f64.to_radians().tan()).abs() < 1e-12);
    }

    #[test]
    fn gravity_scales_with_mass() {
        let (bx, x, v, kinds, units) = rig(vec![0, 1]);
        let charge = vec![0.0; 2];
        let radius = vec![0.0; 2];
        let masses = vec![1.0, 3.0];
        let sys = PairSystem {
            bx: &bx,
            x: &x,
            v: &v,
            kinds: &kinds,
            charge: &charge,
            radius: &radius,
            mass_by_type: &masses,
            units: &units,
            dt: 0.005,
        };
        let mut f = vec![Vec3::zero(); 2];
        let mut g = Gravity::new(Vec3::new(0.0, 0.0, -2.0));
        g.post_force(&sys, &mut f);
        assert!((f[0].z - (-2.0)).abs() < 1e-12);
        assert!((f[1].z - (-6.0)).abs() < 1e-12);
    }

    #[test]
    fn freeze_zeroes_only_its_type() {
        let (bx, x, v, kinds, units) = rig(vec![0, 1, 0]);
        let charge = vec![0.0; 3];
        let radius = vec![0.0; 3];
        let masses = vec![1.0, 1.0];
        let sys = PairSystem {
            bx: &bx,
            x: &x,
            v: &v,
            kinds: &kinds,
            charge: &charge,
            radius: &radius,
            mass_by_type: &masses,
            units: &units,
            dt: 0.005,
        };
        let mut f = vec![Vec3::splat(1.0); 3];
        let mut freeze = Freeze::new(1);
        freeze.post_force(&sys, &mut f);
        assert_eq!(f[0], Vec3::splat(1.0));
        assert_eq!(f[1], Vec3::zero());
        assert_eq!(f[2], Vec3::splat(1.0));
    }
}
