//! Mixing rules for cross-type Lennard-Jones coefficients
//! (LAMMPS `pair_modify mix`, cited in the paper's Table 2: the Rhodopsin
//! deck uses `mix arithmetic`).

/// How ε and σ for unlike type pairs derive from the like-pair values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MixingRule {
    /// Lorentz-Berthelot: `ε = √(ε_i ε_j)`, `σ = (σ_i + σ_j)/2`.
    Arithmetic,
    /// `ε = √(ε_i ε_j)`, `σ = √(σ_i σ_j)`.
    Geometric,
    /// `ε = 2√(ε_i ε_j) σ_i³σ_j³ / (σ_i⁶ + σ_j⁶)`, `σ = ((σ_i⁶+σ_j⁶)/2)^{1/6}`.
    SixthPower,
}

impl MixingRule {
    /// Mixed `(ε, σ)` for a type pair with like-pair parameters
    /// `(eps_i, sig_i)` and `(eps_j, sig_j)`.
    pub fn mix(self, eps_i: f64, sig_i: f64, eps_j: f64, sig_j: f64) -> (f64, f64) {
        match self {
            MixingRule::Arithmetic => ((eps_i * eps_j).sqrt(), 0.5 * (sig_i + sig_j)),
            MixingRule::Geometric => ((eps_i * eps_j).sqrt(), (sig_i * sig_j).sqrt()),
            MixingRule::SixthPower => {
                let s6i = sig_i.powi(6);
                let s6j = sig_j.powi(6);
                let eps =
                    2.0 * (eps_i * eps_j).sqrt() * sig_i.powi(3) * sig_j.powi(3) / (s6i + s6j);
                let sig = (0.5 * (s6i + s6j)).powf(1.0 / 6.0);
                (eps, sig)
            }
        }
    }

    /// LAMMPS keyword for this rule.
    pub fn label(self) -> &'static str {
        match self {
            MixingRule::Arithmetic => "arithmetic",
            MixingRule::Geometric => "geometric",
            MixingRule::SixthPower => "sixthpower",
        }
    }
}

impl std::fmt::Display for MixingRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_pairs_are_fixed_points() {
        for rule in [
            MixingRule::Arithmetic,
            MixingRule::Geometric,
            MixingRule::SixthPower,
        ] {
            let (e, s) = rule.mix(0.8, 2.0, 0.8, 2.0);
            assert!((e - 0.8).abs() < 1e-12, "{rule}: eps {e}");
            assert!((s - 2.0).abs() < 1e-12, "{rule}: sig {s}");
        }
    }

    #[test]
    fn arithmetic_averages_sigma() {
        let (e, s) = MixingRule::Arithmetic.mix(1.0, 1.0, 4.0, 3.0);
        assert!((e - 2.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_takes_roots() {
        let (e, s) = MixingRule::Geometric.mix(1.0, 1.0, 4.0, 4.0);
        assert!((e - 2.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mixing_is_symmetric() {
        for rule in [
            MixingRule::Arithmetic,
            MixingRule::Geometric,
            MixingRule::SixthPower,
        ] {
            let a = rule.mix(0.5, 1.2, 2.0, 3.4);
            let b = rule.mix(2.0, 3.4, 0.5, 1.2);
            assert!(
                (a.0 - b.0).abs() < 1e-12 && (a.1 - b.1).abs() < 1e-12,
                "{rule}"
            );
        }
    }
}
