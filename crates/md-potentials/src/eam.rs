//! Embedded-Atom Method many-body potential (LAMMPS `pair_style eam`),
//! in the analytic Sutton-Chen form parameterized for copper — the EAM
//! benchmark simulates a Cu metallic solid (paper Section 3).
//!
//! `E = ε Σ_i [ ½ Σ_j (a/r_ij)^n  −  c √ρ_i ]`, `ρ_i = Σ_j (a/r_ij)^m`.
//!
//! Like the tabulated LAMMPS EAM, the computation is two passes over the
//! neighbor list: first accumulate densities (and the pair repulsion), then
//! evaluate the embedding derivative and sweep again for forces. This
//! two-pass structure is what makes the EAM kernel heavier per pair than
//! plain LJ — the effect the paper's Figure 8 attributes to `k_eam_fast` +
//! `k_energy_fast`.

use md_core::neighbor::NeighborList;
use md_core::{CoreError, EnergyVirial, PairStyle, PairSystem, PrecisionMode, Vec3, V3};

/// Sutton-Chen analytic EAM.
#[derive(Debug, Clone)]
pub struct SuttonChenEam {
    /// Energy scale ε (eV in metal units).
    epsilon: f64,
    /// Length scale `a` (Å) — close to the fcc lattice constant.
    a: f64,
    /// Repulsive exponent `n`.
    n: i32,
    /// Density exponent `m`.
    m: i32,
    /// Embedding strength `c`.
    c: f64,
    cutoff: f64,
    /// Scratch: per-atom electron density.
    rho: Vec<f64>,
    /// Scratch: per-atom dF/dρ.
    dembed: Vec<f64>,
    mode: PrecisionMode,
}

impl SuttonChenEam {
    /// Creates a Sutton-Chen EAM with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive scales or cutoff.
    pub fn new(
        epsilon: f64,
        a: f64,
        n: i32,
        m: i32,
        c: f64,
        cutoff: f64,
    ) -> Result<Self, CoreError> {
        if !(epsilon > 0.0 && a > 0.0 && c > 0.0 && cutoff > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "sutton-chen",
                reason: "epsilon, a, c, cutoff must all be positive".to_string(),
            });
        }
        if n <= m || m < 1 {
            return Err(CoreError::InvalidParameter {
                name: "sutton-chen",
                reason: format!("need n ({n}) > m ({m}) >= 1"),
            });
        }
        Ok(SuttonChenEam {
            epsilon,
            a,
            n,
            m,
            c,
            cutoff,
            rho: Vec::new(),
            dembed: Vec::new(),
            mode: PrecisionMode::Double,
        })
    }

    /// The standard copper parameterization (Sutton & Chen 1990) with the
    /// benchmark's 4.95 Å force cutoff.
    ///
    /// # Panics
    ///
    /// Never panics; the built-in parameters are valid.
    pub fn copper() -> Self {
        SuttonChenEam::new(1.2382e-2, 3.61, 9, 6, 39.432, 4.95).expect("valid Cu parameters")
    }

    /// Energy prefactor ε, for assembling totals from the chunk helpers.
    pub(crate) fn energy_scale(&self) -> f64 {
        self.epsilon
    }

    /// Pass-1 body over atom rows `lo..hi`: accumulates electron densities
    /// into the **full-length** `rho` (a row's neighbors land outside the
    /// row range, which is why threaded callers give each chunk a private
    /// buffer) and returns the rows' pair-repulsion energy partial.
    pub(crate) fn density_chunk(
        &self,
        sys: &PairSystem<'_>,
        nl: &NeighborList,
        lo: usize,
        hi: usize,
        rho: &mut [f64],
    ) -> f64 {
        let cut2 = self.cutoff * self.cutoff;
        let mut e_pair = 0.0;
        for i in lo..hi {
            let xi = sys.x[i];
            for &j in nl.neighbors(i) {
                let ju = j as usize;
                let d = sys.bx.min_image(xi, sys.x[ju]);
                let r2 = d.norm2();
                if r2 >= cut2 {
                    continue;
                }
                let r = r2.sqrt();
                let ar = self.a / r;
                e_pair += ar.powi(self.n);
                let dens = ar.powi(self.m);
                rho[i] += dens;
                rho[ju] += dens;
            }
        }
        e_pair
    }

    /// Embedding term over aligned sub-slices of ρ and dF/dρ (elementwise,
    /// so threaded callers can hand out disjoint chunks). Fills `dembed`
    /// and returns the embedding energy partial.
    pub(crate) fn embed_slice(&self, rho: &[f64], dembed: &mut [f64]) -> f64 {
        let mut e_embed = 0.0;
        for (r, de) in rho.iter().zip(dembed.iter_mut()) {
            let sqrt_rho = r.max(1e-300).sqrt();
            e_embed -= self.c * sqrt_rho;
            *de = -self.c / (2.0 * sqrt_rho);
        }
        e_embed
    }

    /// Pass-2 body over atom rows `lo..hi`: accumulates forces into the
    /// **full-length** `f` (Newton's third law writes to neighbors outside
    /// the rows) and returns the rows' virial partial.
    pub(crate) fn force_chunk(
        &self,
        sys: &PairSystem<'_>,
        nl: &NeighborList,
        lo: usize,
        hi: usize,
        dembed: &[f64],
        f: &mut [V3],
    ) -> f64 {
        let cut2 = self.cutoff * self.cutoff;
        let mut virial = 0.0;
        for i in lo..hi {
            let xi = sys.x[i];
            let mut fi = Vec3::zero();
            for &j in nl.neighbors(i) {
                let ju = j as usize;
                let d = sys.bx.min_image(xi, sys.x[ju]);
                let r2 = d.norm2();
                if r2 >= cut2 {
                    continue;
                }
                let r = r2.sqrt();
                let ar = self.a / r;
                // -dE/dr = [ n (a/r)^n + (F'_i + F'_j) m (a/r)^m ] / r  (times ε).
                let dpair = self.n as f64 * ar.powi(self.n);
                let ddens = self.m as f64 * ar.powi(self.m);
                let fpair = self.epsilon * (dpair + (dembed[i] + dembed[ju]) * ddens) / r2;
                let df = d * fpair;
                fi += df;
                f[ju] -= df;
                virial += r2 * fpair;
            }
            f[i] += fi;
        }
        virial
    }

    /// Total potential energy of a finite cluster (reference/tests; O(N²)).
    pub fn cluster_energy(&self, x: &[V3]) -> f64 {
        let mut e_pair = 0.0;
        let mut rho = vec![0.0; x.len()];
        for i in 0..x.len() {
            for j in (i + 1)..x.len() {
                let r = (x[i] - x[j]).norm();
                if r < self.cutoff {
                    e_pair += (self.a / r).powi(self.n);
                    let d = (self.a / r).powi(self.m);
                    rho[i] += d;
                    rho[j] += d;
                }
            }
        }
        let embed: f64 = rho.iter().map(|&r| -self.c * r.sqrt()).sum();
        self.epsilon * (e_pair + embed)
    }
}

impl PairStyle for SuttonChenEam {
    fn name(&self) -> &'static str {
        "eam"
    }

    fn cutoff(&self) -> f64 {
        self.cutoff
    }

    fn compute(&mut self, sys: &PairSystem<'_>, nl: &NeighborList, f: &mut [V3]) -> EnergyVirial {
        let natoms = sys.x.len();

        // Pass 1: densities + pair repulsion energy. The scratch arrays are
        // taken out of `self` so the chunk helpers (which serve the threaded
        // wrapper too) can borrow the style immutably.
        let mut rho = std::mem::take(&mut self.rho);
        rho.clear();
        rho.resize(natoms, 0.0);
        let e_pair = self.density_chunk(sys, nl, 0, natoms, &mut rho);

        // Embedding energy and its derivative.
        let mut dembed = std::mem::take(&mut self.dembed);
        dembed.clear();
        dembed.resize(natoms, 0.0);
        let e_embed = self.embed_slice(&rho, &mut dembed);

        // Pass 2: forces.
        let virial = self.force_chunk(sys, nl, 0, natoms, &dembed, f);

        self.rho = rho;
        self.dembed = dembed;
        EnergyVirial {
            evdwl: self.epsilon * e_pair + self.epsilon * e_embed,
            ecoul: 0.0,
            virial,
        }
    }

    fn set_precision(&mut self, mode: PrecisionMode) {
        self.mode = mode;
    }

    fn precision(&self) -> PrecisionMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::neighbor::NeighborListKind;
    use md_core::{SimBox, UnitSystem};

    /// Builds an fcc lattice with `cells³` unit cells at lattice constant `a0`.
    fn fcc(cells: usize, a0: f64) -> (SimBox, Vec<V3>) {
        let l = cells as f64 * a0;
        let bx = SimBox::cubic(l);
        let basis = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.5, 0.5, 0.0),
            Vec3::new(0.5, 0.0, 0.5),
            Vec3::new(0.0, 0.5, 0.5),
        ];
        let mut x = Vec::new();
        for cx in 0..cells {
            for cy in 0..cells {
                for cz in 0..cells {
                    for b in basis {
                        x.push(Vec3::new(
                            (cx as f64 + b.x) * a0,
                            (cy as f64 + b.y) * a0,
                            (cz as f64 + b.z) * a0,
                        ));
                    }
                }
            }
        }
        (bx, x)
    }

    fn lattice_energy_per_atom(a0: f64) -> f64 {
        let mut eam = SuttonChenEam::copper();
        let (bx, x) = fcc(4, a0);
        let mut nl = NeighborList::new(eam.cutoff(), 0.0, NeighborListKind::Half);
        nl.build(&x, &bx).unwrap();
        let v = vec![Vec3::zero(); x.len()];
        let kinds = vec![0u32; x.len()];
        let charge = vec![0.0; x.len()];
        let radius = vec![0.0; x.len()];
        let masses = vec![63.546];
        let units = UnitSystem::metal();
        let sys = PairSystem {
            bx: &bx,
            x: &x,
            v: &v,
            kinds: &kinds,
            charge: &charge,
            radius: &radius,
            mass_by_type: &masses,
            units: &units,
            dt: 0.001,
        };
        let mut f = vec![Vec3::zero(); x.len()];
        let e = eam.compute(&sys, &nl, &mut f);
        // Perfect lattice: forces vanish by symmetry.
        let max_f = f.iter().map(|fi| fi.norm()).fold(0.0f64, f64::max);
        assert!(max_f < 1e-9, "net force on lattice atom: {max_f}");
        e.evdwl / x.len() as f64
    }

    #[test]
    fn copper_cohesive_energy_is_reasonable() {
        // Experimental Cu cohesive energy is -3.54 eV/atom; Sutton-Chen with
        // a truncated 4.95 Å cutoff lands within ~15%.
        let e = lattice_energy_per_atom(3.615);
        assert!(
            (-4.2..=-2.9).contains(&e),
            "cohesive energy {e} eV/atom out of range"
        );
    }

    #[test]
    fn lattice_constant_minimizes_energy_near_experiment() {
        // Scan a0: the minimum must sit between 3.4 and 3.8 Å.
        let scan: Vec<(f64, f64)> = (0..=16)
            .map(|k| {
                let a0 = 3.3 + 0.04 * k as f64;
                (a0, lattice_energy_per_atom(a0))
            })
            .collect();
        let (best_a0, _) = scan
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("nonempty");
        assert!(
            (3.4..=3.8).contains(&best_a0),
            "energy minimum at a0 = {best_a0}"
        );
    }

    #[test]
    fn force_matches_numerical_derivative_on_cluster() {
        // Free trimer: move one atom, compare force to -dE/dx numerically.
        let eam = SuttonChenEam::copper();
        let x = vec![
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(12.5, 10.0, 10.0),
            Vec3::new(11.2, 12.1, 10.0),
        ];
        let bx = SimBox::cubic(40.0);
        let mut nl = NeighborList::new(eam.cutoff(), 0.0, NeighborListKind::Half);
        nl.build(&x, &bx).unwrap();
        let v = vec![Vec3::zero(); 3];
        let kinds = vec![0u32; 3];
        let charge = vec![0.0; 3];
        let radius = vec![0.0; 3];
        let masses = vec![63.546];
        let units = UnitSystem::metal();
        let sys = PairSystem {
            bx: &bx,
            x: &x,
            v: &v,
            kinds: &kinds,
            charge: &charge,
            radius: &radius,
            mass_by_type: &masses,
            units: &units,
            dt: 0.001,
        };
        let mut eam2 = eam.clone();
        let mut f = vec![Vec3::zero(); 3];
        eam2.compute(&sys, &nl, &mut f);
        let h = 1e-6;
        for axis in 0..3 {
            let mut xp = x.clone();
            xp[0][axis] += h;
            let mut xm = x.clone();
            xm[0][axis] -= h;
            let dedx = (eam.cluster_energy(&xp) - eam.cluster_energy(&xm)) / (2.0 * h);
            assert!(
                (f[0][axis] + dedx).abs() < 1e-6,
                "axis {axis}: F = {} vs -dE/dx = {}",
                f[0][axis],
                -dedx
            );
        }
    }

    #[test]
    fn dimer_is_attractive_at_long_range() {
        let eam = SuttonChenEam::copper();
        let e_far = eam.cluster_energy(&[Vec3::zero(), Vec3::new(4.0, 0.0, 0.0)]);
        let e_near = eam.cluster_energy(&[Vec3::zero(), Vec3::new(2.2, 0.0, 0.0)]);
        assert!(e_far < 0.0, "dimer at 4.0 A should bind, E = {e_far}");
        assert!(e_near < e_far, "shorter dimer should bind more strongly");
    }

    #[test]
    fn rejects_bad_exponents() {
        assert!(SuttonChenEam::new(0.01, 3.6, 6, 9, 39.0, 4.95).is_err());
        assert!(SuttonChenEam::new(-0.01, 3.6, 9, 6, 39.0, 4.95).is_err());
    }
}
