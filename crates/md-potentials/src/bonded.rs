//! Bonded potentials: FENE bonds (Chain benchmark), harmonic bonds/angles and
//! CHARMM dihedrals (Rhodopsin benchmark).
//!
//! The paper observes (Section 5) that bonded-force time is marginal and
//! scales well — these styles exist so the engine exercises the `Bond` task
//! with the real algorithms, not stubs.

use md_core::atoms::{Angle, Bond, Dihedral};
use md_core::{AngleStyle, BondStyle, CoreError, DihedralStyle, EnergyVirial, SimBox, V3};

/// FENE (finitely extensible nonlinear elastic) bond with the WCA core
/// (LAMMPS `bond_style fene`), as used by the bead-spring Chain melt.
#[derive(Debug, Clone)]
pub struct FeneBond {
    /// Spring constant `K` per bond type.
    k: Vec<f64>,
    /// Maximum extension `R0` per bond type.
    r0: Vec<f64>,
    /// LJ ε of the repulsive core per bond type.
    epsilon: Vec<f64>,
    /// LJ σ of the repulsive core per bond type.
    sigma: Vec<f64>,
}

impl FeneBond {
    /// Creates the style from per-bond-type `(K, R0, ε, σ)` rows.
    ///
    /// # Errors
    ///
    /// Returns an error if any `K` or `R0` is non-positive.
    pub fn new(coeffs: &[(f64, f64, f64, f64)]) -> Result<Self, CoreError> {
        for &(k, r0, ..) in coeffs {
            if !(k > 0.0 && r0 > 0.0) {
                return Err(CoreError::InvalidParameter {
                    name: "fene",
                    reason: format!("K ({k}) and R0 ({r0}) must be positive"),
                });
            }
        }
        Ok(FeneBond {
            k: coeffs.iter().map(|c| c.0).collect(),
            r0: coeffs.iter().map(|c| c.1).collect(),
            epsilon: coeffs.iter().map(|c| c.2).collect(),
            sigma: coeffs.iter().map(|c| c.3).collect(),
        })
    }

    /// The Kremer-Grest melt parameterization: `K = 30, R0 = 1.5, ε = σ = 1`.
    pub fn kremer_grest() -> Self {
        FeneBond::new(&[(30.0, 1.5, 1.0, 1.0)]).expect("valid parameters")
    }

    /// Energy of one bond at length `r` (reference for tests).
    pub fn bond_energy(&self, kind: u32, r: f64) -> f64 {
        let t = kind as usize;
        let r0 = self.r0[t];
        let mut e = -0.5 * self.k[t] * r0 * r0 * (1.0 - (r / r0).powi(2)).ln();
        let sigma = self.sigma[t];
        let rmin = 2.0f64.powf(1.0 / 6.0) * sigma;
        if r < rmin {
            let s6 = (sigma / r).powi(6);
            e += 4.0 * self.epsilon[t] * (s6 * s6 - s6) + self.epsilon[t];
        }
        e
    }
}

impl BondStyle for FeneBond {
    fn name(&self) -> &'static str {
        "fene"
    }

    fn compute(&mut self, bx: &SimBox, x: &[V3], bonds: &[Bond], f: &mut [V3]) -> EnergyVirial {
        let mut evdwl = 0.0;
        let mut virial = 0.0;
        for b in bonds {
            let (i, j) = (b.i as usize, b.j as usize);
            let t = b.kind as usize;
            let d = bx.min_image(x[i], x[j]);
            let r2 = d.norm2();
            let r0 = self.r0[t];
            let r02 = r0 * r0;
            let ratio = (r2 / r02).min(1.0 - 1e-9); // clamp near full extension
                                                    // Attractive FENE part: fpair = -K / (1 - (r/R0)^2).
            let mut fpair = -self.k[t] / (1.0 - ratio);
            evdwl += -0.5 * self.k[t] * r02 * (1.0 - ratio).ln();
            // Repulsive WCA core.
            let sigma = self.sigma[t];
            let rmin2 = 2.0f64.powf(1.0 / 3.0) * sigma * sigma;
            if r2 < rmin2 {
                let inv2 = sigma * sigma / r2;
                let inv6 = inv2 * inv2 * inv2;
                fpair += 24.0 * self.epsilon[t] * inv6 * (2.0 * inv6 - 1.0) / r2;
                evdwl += 4.0 * self.epsilon[t] * (inv6 * inv6 - inv6) + self.epsilon[t];
            }
            let df = d * fpair;
            f[i] += df;
            f[j] -= df;
            virial += r2 * fpair;
        }
        EnergyVirial {
            evdwl,
            ecoul: 0.0,
            virial,
        }
    }
}

/// Harmonic bond `E = K (r - r0)²` (LAMMPS `bond_style harmonic`).
#[derive(Debug, Clone)]
pub struct HarmonicBond {
    k: Vec<f64>,
    r0: Vec<f64>,
}

impl HarmonicBond {
    /// Creates the style from per-bond-type `(K, r0)` rows.
    ///
    /// # Errors
    ///
    /// Returns an error if any `K` is negative or `r0` non-positive.
    pub fn new(coeffs: &[(f64, f64)]) -> Result<Self, CoreError> {
        for &(k, r0) in coeffs {
            if !(k >= 0.0 && r0 > 0.0) {
                return Err(CoreError::InvalidParameter {
                    name: "bond harmonic",
                    reason: format!("K ({k}) must be >= 0 and r0 ({r0}) > 0"),
                });
            }
        }
        Ok(HarmonicBond {
            k: coeffs.iter().map(|c| c.0).collect(),
            r0: coeffs.iter().map(|c| c.1).collect(),
        })
    }
}

impl BondStyle for HarmonicBond {
    fn name(&self) -> &'static str {
        "harmonic"
    }

    fn compute(&mut self, bx: &SimBox, x: &[V3], bonds: &[Bond], f: &mut [V3]) -> EnergyVirial {
        let mut evdwl = 0.0;
        let mut virial = 0.0;
        for b in bonds {
            let (i, j) = (b.i as usize, b.j as usize);
            let t = b.kind as usize;
            let d = bx.min_image(x[i], x[j]);
            let r = d.norm();
            let dr = r - self.r0[t];
            evdwl += self.k[t] * dr * dr;
            let fpair = if r > 0.0 {
                -2.0 * self.k[t] * dr / r
            } else {
                0.0
            };
            let df = d * fpair;
            f[i] += df;
            f[j] -= df;
            virial += r * r * fpair;
        }
        EnergyVirial {
            evdwl,
            ecoul: 0.0,
            virial,
        }
    }
}

/// Harmonic angle `E = K (θ - θ0)²` (LAMMPS `angle_style harmonic`);
/// `θ0` is stored in radians.
#[derive(Debug, Clone)]
pub struct HarmonicAngle {
    k: Vec<f64>,
    theta0: Vec<f64>,
}

impl HarmonicAngle {
    /// Creates the style from per-angle-type `(K, θ0°)` rows (θ0 in degrees,
    /// as in LAMMPS input decks).
    ///
    /// # Errors
    ///
    /// Returns an error if any `K` is negative.
    pub fn new(coeffs: &[(f64, f64)]) -> Result<Self, CoreError> {
        for &(k, _) in coeffs {
            if k < 0.0 {
                return Err(CoreError::InvalidParameter {
                    name: "angle harmonic",
                    reason: format!("K ({k}) must be non-negative"),
                });
            }
        }
        Ok(HarmonicAngle {
            k: coeffs.iter().map(|c| c.0).collect(),
            theta0: coeffs.iter().map(|c| c.1.to_radians()).collect(),
        })
    }
}

impl AngleStyle for HarmonicAngle {
    fn name(&self) -> &'static str {
        "harmonic"
    }

    fn compute(&mut self, bx: &SimBox, x: &[V3], angles: &[Angle], f: &mut [V3]) -> EnergyVirial {
        let mut evdwl = 0.0;
        let mut virial = 0.0;
        for a in angles {
            let (i, j, k) = (a.i as usize, a.j as usize, a.k as usize);
            let t = a.kind as usize;
            let d1 = bx.min_image(x[i], x[j]);
            let d2 = bx.min_image(x[k], x[j]);
            let r1 = d1.norm();
            let r2 = d2.norm();
            let mut c = d1.dot(d2) / (r1 * r2);
            c = c.clamp(-1.0, 1.0);
            let s = (1.0 - c * c).sqrt().max(1e-8);
            let theta = c.acos();
            let dtheta = theta - self.theta0[t];
            evdwl += self.k[t] * dtheta * dtheta;
            // a = -2 K dθ / sinθ  (LAMMPS angle_harmonic).
            let coef = -2.0 * self.k[t] * dtheta / s;
            let a11 = coef * c / (r1 * r1);
            let a12 = -coef / (r1 * r2);
            let a22 = coef * c / (r2 * r2);
            let f1 = d1 * a11 + d2 * a12;
            let f3 = d2 * a22 + d1 * a12;
            f[i] += f1;
            f[k] += f3;
            f[j] -= f1 + f3;
            virial += d1.dot(f1) + d2.dot(f3);
        }
        EnergyVirial {
            evdwl,
            ecoul: 0.0,
            virial,
        }
    }
}

/// CHARMM dihedral `E = K [1 + cos(n φ - d)]`
/// (LAMMPS `dihedral_style charmm`).
#[derive(Debug, Clone)]
pub struct CharmmDihedral {
    k: Vec<f64>,
    n: Vec<i32>,
    delta: Vec<f64>,
}

impl CharmmDihedral {
    /// Creates the style from per-type `(K, n, d°)` rows (`d` in degrees).
    ///
    /// # Errors
    ///
    /// Returns an error if any multiplicity `n < 1` or `K < 0`.
    pub fn new(coeffs: &[(f64, i32, f64)]) -> Result<Self, CoreError> {
        for &(k, n, _) in coeffs {
            if n < 1 || k < 0.0 {
                return Err(CoreError::InvalidParameter {
                    name: "dihedral charmm",
                    reason: format!("need K ({k}) >= 0 and n ({n}) >= 1"),
                });
            }
        }
        Ok(CharmmDihedral {
            k: coeffs.iter().map(|c| c.0).collect(),
            n: coeffs.iter().map(|c| c.1).collect(),
            delta: coeffs.iter().map(|c| c.2.to_radians()).collect(),
        })
    }

    /// Dihedral angle φ of the four points (reference for tests).
    pub fn phi(bx: &SimBox, xi: V3, xj: V3, xk: V3, xl: V3) -> f64 {
        let b1 = bx.min_image(xj, xi);
        let b2 = bx.min_image(xk, xj);
        let b3 = bx.min_image(xl, xk);
        let m = b1.cross(b2);
        let n = b2.cross(b3);
        let b2len = b2.norm();
        (b1.dot(n) * b2len).atan2(m.dot(n))
    }
}

impl DihedralStyle for CharmmDihedral {
    fn name(&self) -> &'static str {
        "charmm"
    }

    fn compute(
        &mut self,
        bx: &SimBox,
        x: &[V3],
        dihedrals: &[Dihedral],
        f: &mut [V3],
    ) -> EnergyVirial {
        let mut evdwl = 0.0;
        for d in dihedrals {
            let (i, j, k, l) = (d.i as usize, d.j as usize, d.k as usize, d.l as usize);
            let t = d.kind as usize;
            let b1 = bx.min_image(x[j], x[i]);
            let b2 = bx.min_image(x[k], x[j]);
            let b3 = bx.min_image(x[l], x[k]);
            let m = b1.cross(b2);
            let n = b2.cross(b3);
            let b2len = b2.norm().max(1e-12);
            let phi = (b1.dot(n) * b2len).atan2(m.dot(n));
            let nk = self.n[t] as f64;
            evdwl += self.k[t] * (1.0 + (nk * phi - self.delta[t]).cos());
            // dE/dφ
            let dedphi = -self.k[t] * nk * (nk * phi - self.delta[t]).sin();
            // Analytic gradient of φ (Blondel-Karplus form, verified against
            // numerical differentiation): ∂φ/∂x_i = -(|b2|/|m|²) m,
            // ∂φ/∂x_l = (|b2|/|n|²) n; the inner atoms take the combinations
            // below with p = -b1·b2/|b2|², q = b3·b2/|b2|².
            let m2 = m.norm2().max(1e-24);
            let n2 = n.norm2().max(1e-24);
            let fi = m * (dedphi * b2len / m2);
            let fl = n * (-dedphi * b2len / n2);
            let p = -b1.dot(b2) / (b2len * b2len);
            let q = b3.dot(b2) / (b2len * b2len);
            let fj = fi * (p - 1.0) + fl * q;
            let fk = fi * (-p) - fl * (1.0 + q);
            f[i] += fi;
            f[j] += fj;
            f[k] += fk;
            f[l] += fl;
        }
        EnergyVirial {
            evdwl,
            ecoul: 0.0,
            virial: 0.0, // dihedral virial omitted (traceless for this form)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::atoms::{Angle, Bond, Dihedral};
    use md_core::Vec3;

    fn big_box() -> SimBox {
        SimBox::cubic(100.0)
    }

    #[test]
    fn fene_equilibrium_length_is_near_097() {
        // Kremer-Grest bonds equilibrate around r ≈ 0.97 σ where FENE
        // attraction balances WCA repulsion.
        let fene = FeneBond::kremer_grest();
        let mut best = (0.0, f64::INFINITY);
        for k in 1..200 {
            let r = 0.5 + 0.004 * k as f64;
            let e = fene.bond_energy(0, r);
            if e < best.1 {
                best = (r, e);
            }
        }
        assert!((best.0 - 0.97).abs() < 0.02, "minimum at {}", best.0);
    }

    #[test]
    fn fene_force_matches_numerical_derivative() {
        let mut fene = FeneBond::kremer_grest();
        let bx = big_box();
        for r in [0.8, 0.97, 1.2, 1.4] {
            let x = vec![Vec3::new(50.0, 50.0, 50.0), Vec3::new(50.0 + r, 50.0, 50.0)];
            let bonds = vec![Bond {
                kind: 0,
                i: 0,
                j: 1,
            }];
            let mut f = vec![Vec3::zero(); 2];
            fene.compute(&bx, &x, &bonds, &mut f);
            let h = 1e-7;
            let dedr = (fene.bond_energy(0, r + h) - fene.bond_energy(0, r - h)) / (2.0 * h);
            assert!(
                (f[1].x - (-dedr)).abs() < 1e-4 * dedr.abs().max(1.0),
                "r = {r}: {} vs {}",
                f[1].x,
                -dedr
            );
            assert!((f[0] + f[1]).norm() < 1e-12, "Newton pair");
        }
    }

    #[test]
    fn fene_diverges_near_full_extension() {
        let fene = FeneBond::kremer_grest();
        assert!(fene.bond_energy(0, 1.49) > fene.bond_energy(0, 1.3) * 2.0);
    }

    #[test]
    fn harmonic_bond_force_and_energy() {
        let mut hb = HarmonicBond::new(&[(100.0, 1.5)]).unwrap();
        let bx = big_box();
        let x = vec![Vec3::new(10.0, 10.0, 10.0), Vec3::new(11.7, 10.0, 10.0)];
        let bonds = vec![Bond {
            kind: 0,
            i: 0,
            j: 1,
        }];
        let mut f = vec![Vec3::zero(); 2];
        let e = hb.compute(&bx, &x, &bonds, &mut f);
        assert!((e.evdwl - 100.0 * 0.04).abs() < 1e-10);
        // Stretched bond pulls atoms together: f on atom 1 along -x.
        assert!((f[1].x - (-2.0 * 100.0 * 0.2)).abs() < 1e-9);
    }

    #[test]
    fn harmonic_angle_is_zero_at_equilibrium() {
        let mut ha = HarmonicAngle::new(&[(50.0, 90.0)]).unwrap();
        let bx = big_box();
        let x = vec![
            Vec3::new(11.0, 10.0, 10.0),
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(10.0, 11.0, 10.0),
        ];
        let angles = vec![Angle {
            kind: 0,
            i: 0,
            j: 1,
            k: 2,
        }];
        let mut f = vec![Vec3::zero(); 3];
        let e = ha.compute(&bx, &x, &angles, &mut f);
        assert!(e.evdwl.abs() < 1e-12);
        assert!(f.iter().all(|fi| fi.norm() < 1e-9));
    }

    #[test]
    fn harmonic_angle_force_matches_numerical_derivative() {
        let mut ha = HarmonicAngle::new(&[(35.0, 104.5)]).unwrap();
        let bx = big_box();
        let base = vec![
            Vec3::new(11.0, 10.3, 10.0),
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(9.8, 11.2, 10.4),
        ];
        let angles = vec![Angle {
            kind: 0,
            i: 0,
            j: 1,
            k: 2,
        }];
        let energy = |x: &[V3]| {
            let mut style = HarmonicAngle::new(&[(35.0, 104.5)]).unwrap();
            let mut f = vec![Vec3::zero(); 3];
            style.compute(&bx, x, &angles, &mut f).evdwl
        };
        let mut f = vec![Vec3::zero(); 3];
        ha.compute(&bx, &base, &angles, &mut f);
        let h = 1e-6;
        for atom in 0..3 {
            for axis in 0..3 {
                let mut xp = base.clone();
                xp[atom][axis] += h;
                let mut xm = base.clone();
                xm[atom][axis] -= h;
                let dedx = (energy(&xp) - energy(&xm)) / (2.0 * h);
                assert!(
                    (f[atom][axis] + dedx).abs() < 1e-5,
                    "atom {atom} axis {axis}: {} vs {}",
                    f[atom][axis],
                    -dedx
                );
            }
        }
        // Angle forces are internal: zero net force.
        assert!((f[0] + f[1] + f[2]).norm() < 1e-10);
    }

    #[test]
    fn dihedral_phi_of_planar_trans_is_pi() {
        let bx = big_box();
        let phi = CharmmDihedral::phi(
            &bx,
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, -1.0, 0.0),
        );
        assert!((phi.abs() - std::f64::consts::PI).abs() < 1e-12, "{phi}");
    }

    #[test]
    fn dihedral_force_matches_numerical_derivative() {
        let mut cd = CharmmDihedral::new(&[(2.5, 2, 180.0)]).unwrap();
        let bx = big_box();
        let base = vec![
            Vec3::new(0.1, 1.0, 0.2),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.2, 0.1, -0.1),
            Vec3::new(1.5, -0.9, 0.6),
        ];
        let dihedrals = vec![Dihedral {
            kind: 0,
            i: 0,
            j: 1,
            k: 2,
            l: 3,
        }];
        let energy = |x: &[V3]| {
            let mut style = CharmmDihedral::new(&[(2.5, 2, 180.0)]).unwrap();
            let mut f = vec![Vec3::zero(); 4];
            style.compute(&bx, x, &dihedrals, &mut f).evdwl
        };
        let mut f = vec![Vec3::zero(); 4];
        cd.compute(&bx, &base, &dihedrals, &mut f);
        let h = 1e-6;
        for atom in 0..4 {
            for axis in 0..3 {
                let mut xp = base.to_vec();
                xp[atom][axis] += h;
                let mut xm = base.to_vec();
                xm[atom][axis] -= h;
                let dedx = (energy(&xp) - energy(&xm)) / (2.0 * h);
                assert!(
                    (f[atom][axis] + dedx).abs() < 1e-5,
                    "atom {atom} axis {axis}: {} vs {}",
                    f[atom][axis],
                    -dedx
                );
            }
        }
        assert!((f[0] + f[1] + f[2] + f[3]).norm() < 1e-10, "zero net force");
    }

    #[test]
    fn constructors_validate() {
        assert!(FeneBond::new(&[(0.0, 1.5, 1.0, 1.0)]).is_err());
        assert!(HarmonicBond::new(&[(-1.0, 1.0)]).is_err());
        assert!(HarmonicAngle::new(&[(-1.0, 90.0)]).is_err());
        assert!(CharmmDihedral::new(&[(1.0, 0, 0.0)]).is_err());
    }
}
