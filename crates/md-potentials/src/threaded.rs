//! Shared-memory threaded pair computation — the "OpenMP level" of the
//! LAMMPS INTEL package (paper Section 2.2: MPI spatial decomposition plus
//! intra-task OpenMP; the authors found pure MPI faster for their runs, and
//! this wrapper is how that comparison is reproduced here).
//!
//! [`Threaded`] splits the atom range across threads; each thread walks its
//! atoms' neighbor lists into a private force buffer (so Newton's-third-law
//! updates never race) and the buffers are reduced at the end — the standard
//! force-decomposition scheme of threaded MD kernels.

use md_core::neighbor::{NeighborList, NeighborListKind};
use md_core::{CoreError, EnergyVirial, PairStyle, PairSystem, PrecisionMode, Vec3, V3};

/// A pair style executed by a team of threads over private force buffers.
///
/// The wrapped style must be *chunk-safe*: evaluating a subset of the
/// neighbor lists must produce that subset's exact force contributions.
/// Purely pairwise styles (LJ, CHARMM) are; many-body EAM (inter-pass
/// density reduction) and the history-keeping granular style (shared contact
/// state) are not and are rejected at construction.
pub struct Threaded<P> {
    workers: Vec<P>,
    nthreads: usize,
}

impl<P: std::fmt::Debug> std::fmt::Debug for Threaded<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Threaded")
            .field("nthreads", &self.nthreads)
            .field("style", &self.workers.first())
            .finish()
    }
}

/// Styles that may be evaluated chunk-wise by [`Threaded`].
///
/// Implemented for the purely pairwise styles; sealed by construction (the
/// trait is public so downstream styles can opt in, but the contract is
/// documented above).
pub trait ChunkSafe: PairStyle + Clone {}

impl ChunkSafe for crate::LjCut {}
impl ChunkSafe for crate::LjCharmmCoulLong {}

impl<P: ChunkSafe> Threaded<P> {
    /// Wraps `style`, replicating it per thread.
    ///
    /// # Errors
    ///
    /// Returns an error if `nthreads` is zero.
    pub fn new(style: P, nthreads: usize) -> Result<Self, CoreError> {
        if nthreads == 0 {
            return Err(CoreError::InvalidParameter {
                name: "nthreads",
                reason: "need at least one thread".to_string(),
            });
        }
        Ok(Threaded {
            workers: vec![style; nthreads],
            nthreads,
        })
    }

    /// Thread count.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }
}

/// A neighbor-list *view* restricted to a contiguous atom chunk: atoms
/// outside the chunk present empty lists, so a chunk-safe style evaluates
/// exactly the chunk's pairs.
fn chunk_list(nl: &NeighborList, lo: usize, hi: usize) -> NeighborList {
    // Rebuild a restricted list without re-searching: copy the slices.
    let mut restricted = NeighborListRebuilder::new(nl.cutoff(), nl.skin(), nl.kind());
    for i in 0..nl.natoms() {
        if i >= lo && i < hi {
            restricted.push(nl.neighbors(i));
        } else {
            restricted.push(&[]);
        }
    }
    restricted.finish()
}

/// Internal helper assembling a NeighborList from per-atom slices through
/// the public build API (a synthetic one-shot "build").
struct NeighborListRebuilder {
    cutoff: f64,
    skin: f64,
    kind: NeighborListKind,
    offsets: Vec<usize>,
    neigh: Vec<u32>,
}

impl NeighborListRebuilder {
    fn new(cutoff: f64, skin: f64, kind: NeighborListKind) -> Self {
        NeighborListRebuilder {
            cutoff,
            skin,
            kind,
            offsets: vec![0],
            neigh: Vec::new(),
        }
    }

    fn push(&mut self, neighbors: &[u32]) {
        self.neigh.extend_from_slice(neighbors);
        self.offsets.push(self.neigh.len());
    }

    fn finish(self) -> NeighborList {
        NeighborList::from_parts(self.cutoff, self.skin, self.kind, self.offsets, self.neigh)
    }
}

impl<P: ChunkSafe + Send> PairStyle for Threaded<P> {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn cutoff(&self) -> f64 {
        self.workers[0].cutoff()
    }

    fn list_kind(&self) -> NeighborListKind {
        self.workers[0].list_kind()
    }

    fn compute(&mut self, sys: &PairSystem<'_>, nl: &NeighborList, f: &mut [V3]) -> EnergyVirial {
        let n = sys.x.len();
        let t = self.nthreads.min(n.max(1));
        if t <= 1 {
            return self.workers[0].compute(sys, nl, f);
        }
        let chunk = n.div_ceil(t);
        let mut buffers: Vec<Vec<V3>> = vec![vec![Vec3::zero(); n]; t];
        let mut energies: Vec<EnergyVirial> = vec![EnergyVirial::default(); t];

        crossbeam::thread::scope(|scope| {
            for (k, (worker, (buf, energy))) in self
                .workers
                .iter_mut()
                .zip(buffers.iter_mut().zip(energies.iter_mut()))
                .enumerate()
            {
                let lo = k * chunk;
                let hi = ((k + 1) * chunk).min(n);
                let sys_ref = &*sys;
                let nl_ref = nl;
                scope.spawn(move |_| {
                    if lo < hi {
                        let restricted = chunk_list(nl_ref, lo, hi);
                        *energy = worker.compute(sys_ref, &restricted, buf);
                    }
                });
            }
        })
        .expect("force worker panicked");

        let mut total = EnergyVirial::default();
        for (buf, e) in buffers.iter().zip(&energies) {
            for (fi, bi) in f.iter_mut().zip(buf) {
                *fi += *bi;
            }
            total += *e;
        }
        total
    }

    fn set_precision(&mut self, mode: PrecisionMode) {
        for w in &mut self.workers {
            w.set_precision(mode);
        }
    }

    fn precision(&self) -> PrecisionMode {
        self.workers[0].precision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LjCut;
    use md_core::{SimBox, UnitSystem};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rig(n: usize, seed: u64) -> (SimBox, Vec<V3>, NeighborList) {
        let l = 12.0;
        let bx = SimBox::cubic(l);
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<V3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                )
            })
            .collect();
        let mut nl = NeighborList::new(2.5, 0.3, NeighborListKind::Half);
        nl.build(&x, &bx).unwrap();
        (bx, x, nl)
    }

    fn forces(
        style: &mut dyn PairStyle,
        bx: &SimBox,
        x: &[V3],
        nl: &NeighborList,
    ) -> (Vec<V3>, EnergyVirial) {
        let n = x.len();
        let v = vec![Vec3::zero(); n];
        let kinds = vec![0u32; n];
        let charge = vec![0.0; n];
        let radius = vec![0.0; n];
        let masses = vec![1.0];
        let units = UnitSystem::lj();
        let sys = PairSystem {
            bx,
            x,
            v: &v,
            kinds: &kinds,
            charge: &charge,
            radius: &radius,
            mass_by_type: &masses,
            units: &units,
            dt: 0.005,
        };
        let mut f = vec![Vec3::zero(); n];
        let e = style.compute(&sys, nl, &mut f);
        (f, e)
    }

    #[test]
    fn threaded_forces_match_serial_for_any_thread_count() {
        let (bx, x, nl) = rig(500, 3);
        let mut serial = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap();
        let (f0, e0) = forces(&mut serial, &bx, &x, &nl);
        for t in [1usize, 2, 3, 4, 7] {
            let mut threaded =
                Threaded::new(LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap(), t).unwrap();
            let (f1, e1) = forces(&mut threaded, &bx, &x, &nl);
            // Relative tolerances: the unscreened random gas has near-contact
            // pairs with enormous r^-12 terms, so cross-thread summation
            // order shifts the absolute values at the fp-associativity level.
            let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1.0);
            assert!(rel(e0.evdwl, e1.evdwl) < 1e-12, "{t} threads: energy");
            assert!(rel(e0.virial, e1.virial) < 1e-12, "{t} threads: virial");
            for i in 0..x.len() {
                assert!(
                    (f0[i] - f1[i]).norm() < 1e-12 * f0[i].norm().max(1.0),
                    "{t} threads: atom {i} force mismatch"
                );
            }
        }
    }

    #[test]
    fn precision_plumbs_through() {
        let mut threaded =
            Threaded::new(LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap(), 2).unwrap();
        threaded.set_precision(PrecisionMode::Single);
        assert_eq!(threaded.precision(), PrecisionMode::Single);
        assert_eq!(threaded.cutoff(), 2.5);
        assert_eq!(threaded.nthreads(), 2);
    }

    #[test]
    fn rejects_zero_threads() {
        assert!(Threaded::new(LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap(), 0).is_err());
    }
}
