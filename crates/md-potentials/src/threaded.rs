//! Shared-memory threaded pair computation — the "OpenMP level" of the
//! LAMMPS INTEL package (paper Section 2.2: MPI spatial decomposition plus
//! intra-task OpenMP; the authors found pure MPI faster for their runs, and
//! this wrapper is how that comparison is reproduced here).
//!
//! [`Threaded`] splits the atom range into chunks; each chunk is evaluated
//! into a private force buffer (so Newton's-third-law updates never race)
//! and the buffers are reduced at the end — the standard force-decomposition
//! scheme of threaded MD kernels.
//!
//! ## Determinism
//!
//! The reduction order is *per chunk, ascending* — never per thread. In
//! fast mode ([`Threads::fast`]) the chunk count equals the thread count, so
//! results are reproducible for a fixed count but drift across counts at the
//! fp-associativity level. In deterministic mode ([`Threads::deterministic`])
//! the atom range is always split into [`Threads::DET_CHUNKS`] chunks
//! regardless of the thread count, making the floating-point operation tree
//! — and therefore the trajectory — **bitwise identical** at 1, 2, or 4
//! threads. `tests/thread_invariance.rs` locks this in for every deck.
//!
//! Styles opt in through [`Threadable`]: the purely pairwise styles
//! ([`ChunkSafe`]) reuse a generic chunk evaluator, while the many-body EAM
//! provides its own two-pass decomposition (per-chunk density buffers,
//! chunked embedding, per-chunk force buffers). The history-keeping granular
//! style has shared contact state and implements neither, so wrapping it
//! fails to compile:
//!
//! ```compile_fail
//! use md_potentials::{GranHookeHistory, Threaded};
//!
//! let gran = GranHookeHistory::new(2.0e5, 50.0, 0.5, 1.0).unwrap();
//! let _ = Threaded::new(gran, 2); // ERROR: GranHookeHistory: !Threadable
//! ```

use md_core::neighbor::{NeighborList, NeighborListKind};
use md_core::{CoreError, EnergyVirial, PairStyle, PairSystem, PrecisionMode, Threads, Vec3, V3};
use md_observe::Recorder;
use std::time::Instant;

/// First trace lane for per-thread worker spans ("thread 0", "thread 1", …).
/// The engine owns lane 0 and the virtual-cluster ranks own lanes `1..`, so
/// worker lanes start well above both.
const THREAD_LANE_BASE: u32 = 64;

/// A pair style executed by a team of threads over private chunk buffers.
///
/// Wraps any [`Threadable`] style. Construct with [`Threaded::new`] (fast
/// mode) or [`Threaded::with_mode`] (full [`Threads`] control, including the
/// deterministic fixed-chunk reductions).
pub struct Threaded<P> {
    style: P,
    threads: Threads,
    recorder: Recorder,
}

impl<P: std::fmt::Debug> std::fmt::Debug for Threaded<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Threaded")
            .field("threads", &self.threads)
            .field("style", &self.style)
            .finish()
    }
}

/// Styles whose force computation [`Threaded`] knows how to decompose into
/// fixed-order chunk reductions.
///
/// Purely pairwise styles get this via the generic [`ChunkSafe`] evaluator;
/// the many-body EAM implements its own two-pass scheme. Styles with shared
/// mutable inter-pair state (the granular history style) must not implement
/// this trait.
pub trait Threadable: PairStyle + Clone + Send + Sync + Sized {
    /// Evaluates forces with the chunk decomposition implied by `threads`
    /// (see [`Threads::chunks`]), reducing all partial results in ascending
    /// chunk order.
    fn compute_chunked(
        &mut self,
        sys: &PairSystem<'_>,
        nl: &NeighborList,
        f: &mut [V3],
        threads: Threads,
        recorder: &Recorder,
    ) -> EnergyVirial;
}

/// Styles that may be evaluated chunk-wise by the *generic* evaluator:
/// evaluating a subset of the neighbor lists must produce that subset's
/// exact force contributions. Purely pairwise styles (LJ, CHARMM) qualify;
/// many-body EAM (inter-pass density reduction — it implements
/// [`Threadable`] directly instead) and the history-keeping granular style
/// (shared contact state) do not.
pub trait ChunkSafe: PairStyle + Clone {}

impl ChunkSafe for crate::LjCut {}
impl ChunkSafe for crate::LjCharmmCoulLong {}

impl Threadable for crate::LjCut {
    fn compute_chunked(
        &mut self,
        sys: &PairSystem<'_>,
        nl: &NeighborList,
        f: &mut [V3],
        threads: Threads,
        recorder: &Recorder,
    ) -> EnergyVirial {
        compute_chunk_safe(self, sys, nl, f, threads, recorder)
    }
}

impl Threadable for crate::LjCharmmCoulLong {
    fn compute_chunked(
        &mut self,
        sys: &PairSystem<'_>,
        nl: &NeighborList,
        f: &mut [V3],
        threads: Threads,
        recorder: &Recorder,
    ) -> EnergyVirial {
        compute_chunk_safe(self, sys, nl, f, threads, recorder)
    }
}

impl<P: Threadable> Threaded<P> {
    /// Wraps `style` for fast-mode execution on `nthreads` threads.
    ///
    /// # Errors
    ///
    /// Returns an error if `nthreads` is zero.
    pub fn new(style: P, nthreads: usize) -> Result<Self, CoreError> {
        if nthreads == 0 {
            return Err(CoreError::InvalidParameter {
                name: "nthreads",
                reason: "need at least one thread".to_string(),
            });
        }
        Ok(Threaded {
            style,
            threads: Threads::fast(nthreads),
            recorder: Recorder::disabled(),
        })
    }

    /// Wraps `style` with full control over count and determinism.
    ///
    /// # Errors
    ///
    /// Returns an error if `threads.count` is zero.
    pub fn with_mode(style: P, threads: Threads) -> Result<Self, CoreError> {
        if threads.count == 0 {
            return Err(CoreError::InvalidParameter {
                name: "threads",
                reason: "need at least one thread".to_string(),
            });
        }
        Ok(Threaded {
            style,
            threads,
            recorder: Recorder::disabled(),
        })
    }

    /// Thread count.
    pub fn nthreads(&self) -> usize {
        self.threads.count
    }

    /// The full thread-team configuration.
    pub fn mode(&self) -> Threads {
        self.threads
    }
}

/// Evenly sized chunk bounds over `0..n`. Depends only on `n` and `nchunks`
/// — never the thread count — which is what makes the deterministic
/// decomposition thread-count invariant. Trailing chunks may be empty.
fn chunk_bounds(n: usize, nchunks: usize) -> Vec<(usize, usize)> {
    let nchunks = nchunks.max(1);
    let size = n.div_ceil(nchunks).max(1);
    (0..nchunks)
        .map(|c| ((c * size).min(n), ((c + 1) * size).min(n)))
        .collect()
}

/// Deals `jobs` to `t` workers in contiguous blocks and runs `body` on each
/// job — inline when one worker suffices, on scoped threads otherwise. Each
/// worker's wall time is recorded as a `name` span on its own trace lane.
/// Which worker runs which job never affects results: jobs only touch their
/// own state, and callers reduce job outputs in job order afterwards.
fn run_jobs<J: Send>(
    jobs: &mut [J],
    t: usize,
    recorder: &Recorder,
    name: &'static str,
    body: impl Fn(&mut J) + Send + Sync,
) {
    if t <= 1 || jobs.len() <= 1 {
        for job in jobs.iter_mut() {
            body(job);
        }
        return;
    }
    let per_thread = jobs.len().div_ceil(t);
    crossbeam::thread::scope(|scope| {
        for (k, jobs_k) in jobs.chunks_mut(per_thread).enumerate() {
            let body = &body;
            scope.spawn(move |_| {
                let t0 = Instant::now();
                for job in jobs_k.iter_mut() {
                    body(job);
                }
                recorder.record_span(
                    THREAD_LANE_BASE + k as u32,
                    "thread",
                    name,
                    t0,
                    t0.elapsed().as_secs_f64(),
                );
            });
        }
    })
    .expect("threaded pair worker panicked");
}

/// The generic chunk evaluator for [`ChunkSafe`] styles: each chunk clones
/// the style, evaluates its rows through a restricted neighbor-list view
/// into a private force buffer, and the buffers/energies are reduced in
/// ascending chunk order.
fn compute_chunk_safe<P: ChunkSafe + Send + Sync>(
    style: &P,
    sys: &PairSystem<'_>,
    nl: &NeighborList,
    f: &mut [V3],
    threads: Threads,
    recorder: &Recorder,
) -> EnergyVirial {
    let n = sys.x.len();
    let t = threads.count.min(n).max(1);

    struct Job<P> {
        lo: usize,
        hi: usize,
        worker: P,
        buf: Vec<V3>,
        energy: EnergyVirial,
    }
    let mut jobs: Vec<Job<P>> = chunk_bounds(n, threads.chunks().min(n))
        .into_iter()
        .map(|(lo, hi)| Job {
            lo,
            hi,
            worker: style.clone(),
            buf: vec![Vec3::zero(); n],
            energy: EnergyVirial::default(),
        })
        .collect();

    run_jobs(&mut jobs, t, recorder, "pair", |job| {
        if job.lo < job.hi {
            let restricted = chunk_list(nl, job.lo, job.hi);
            job.energy = job.worker.compute(sys, &restricted, &mut job.buf);
        }
    });

    let mut total = EnergyVirial::default();
    for job in &jobs {
        for (fi, bi) in f.iter_mut().zip(&job.buf) {
            *fi += *bi;
        }
        total += job.energy;
    }
    total
}

impl Threadable for crate::SuttonChenEam {
    /// Two-pass chunk decomposition of the many-body EAM: (1) per-chunk
    /// full-length density buffers + pair-energy partials, reduced in chunk
    /// order; (2) the embedding derivative over disjoint chunk slices of ρ;
    /// (3) per-chunk force buffers + virial partials, reduced in chunk
    /// order. All cross-chunk sums are fixed-order, so the deterministic
    /// mode's trajectories are thread-count invariant.
    fn compute_chunked(
        &mut self,
        sys: &PairSystem<'_>,
        nl: &NeighborList,
        f: &mut [V3],
        threads: Threads,
        recorder: &Recorder,
    ) -> EnergyVirial {
        let style = &*self;
        let n = sys.x.len();
        let t = threads.count.min(n).max(1);
        let bounds = chunk_bounds(n, threads.chunks().min(n));

        // Pass 1: densities + pair repulsion. A chunk's rows contribute
        // density to neighbors *outside* the chunk (Newton's third law on a
        // half list), so every chunk accumulates into a private full-length
        // buffer.
        struct DensityJob {
            lo: usize,
            hi: usize,
            rho: Vec<f64>,
            e_pair: f64,
        }
        let mut djobs: Vec<DensityJob> = bounds
            .iter()
            .map(|&(lo, hi)| DensityJob {
                lo,
                hi,
                rho: vec![0.0; n],
                e_pair: 0.0,
            })
            .collect();
        run_jobs(&mut djobs, t, recorder, "eam_density", |job| {
            job.e_pair = style.density_chunk(sys, nl, job.lo, job.hi, &mut job.rho);
        });
        let mut rho = vec![0.0; n];
        let mut e_pair = 0.0;
        for job in &djobs {
            for (r, pr) in rho.iter_mut().zip(&job.rho) {
                *r += *pr;
            }
            e_pair += job.e_pair;
        }
        drop(djobs);

        // Embedding: dF/dρ is elementwise, so chunks write disjoint slices;
        // only the energy needs the fixed-order partial reduction.
        let mut dembed = vec![0.0; n];
        let mut e_embed = 0.0;
        {
            struct EmbedJob<'a> {
                lo: usize,
                hi: usize,
                dembed: &'a mut [f64],
                e_embed: f64,
            }
            let mut ejobs: Vec<EmbedJob<'_>> = Vec::with_capacity(bounds.len());
            let mut rest: &mut [f64] = &mut dembed;
            for &(lo, hi) in &bounds {
                let (head, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                ejobs.push(EmbedJob {
                    lo,
                    hi,
                    dembed: head,
                    e_embed: 0.0,
                });
            }
            let rho_ref: &[f64] = &rho;
            run_jobs(&mut ejobs, t, recorder, "eam_embed", |job| {
                job.e_embed = style.embed_slice(&rho_ref[job.lo..job.hi], job.dembed);
            });
            for job in &ejobs {
                e_embed += job.e_embed;
            }
        }

        // Pass 2: forces, again into private full-length buffers.
        struct ForceJob {
            lo: usize,
            hi: usize,
            buf: Vec<V3>,
            virial: f64,
        }
        let mut fjobs: Vec<ForceJob> = bounds
            .iter()
            .map(|&(lo, hi)| ForceJob {
                lo,
                hi,
                buf: vec![Vec3::zero(); n],
                virial: 0.0,
            })
            .collect();
        let dembed_ref: &[f64] = &dembed;
        run_jobs(&mut fjobs, t, recorder, "eam_force", |job| {
            job.virial = style.force_chunk(sys, nl, job.lo, job.hi, dembed_ref, &mut job.buf);
        });
        let mut virial = 0.0;
        for job in &fjobs {
            for (fi, bi) in f.iter_mut().zip(&job.buf) {
                *fi += *bi;
            }
            virial += job.virial;
        }

        let eps = style.energy_scale();
        EnergyVirial {
            evdwl: eps * e_pair + eps * e_embed,
            ecoul: 0.0,
            virial,
        }
    }
}

/// A neighbor-list *view* restricted to a contiguous atom chunk: atoms
/// outside the chunk present empty lists, so a chunk-safe style evaluates
/// exactly the chunk's pairs.
fn chunk_list(nl: &NeighborList, lo: usize, hi: usize) -> NeighborList {
    // Rebuild a restricted list without re-searching: copy the slices.
    let mut restricted = NeighborListRebuilder::new(nl.cutoff(), nl.skin(), nl.kind());
    for i in 0..nl.natoms() {
        if i >= lo && i < hi {
            restricted.push(nl.neighbors(i));
        } else {
            restricted.push(&[]);
        }
    }
    restricted.finish()
}

/// Internal helper assembling a NeighborList from per-atom slices through
/// the public build API (a synthetic one-shot "build").
struct NeighborListRebuilder {
    cutoff: f64,
    skin: f64,
    kind: NeighborListKind,
    offsets: Vec<usize>,
    neigh: Vec<u32>,
}

impl NeighborListRebuilder {
    fn new(cutoff: f64, skin: f64, kind: NeighborListKind) -> Self {
        NeighborListRebuilder {
            cutoff,
            skin,
            kind,
            offsets: vec![0],
            neigh: Vec::new(),
        }
    }

    fn push(&mut self, neighbors: &[u32]) {
        self.neigh.extend_from_slice(neighbors);
        self.offsets.push(self.neigh.len());
    }

    fn finish(self) -> NeighborList {
        NeighborList::from_parts(self.cutoff, self.skin, self.kind, self.offsets, self.neigh)
    }
}

impl<P: Threadable> PairStyle for Threaded<P> {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn cutoff(&self) -> f64 {
        self.style.cutoff()
    }

    fn list_kind(&self) -> NeighborListKind {
        self.style.list_kind()
    }

    fn compute(&mut self, sys: &PairSystem<'_>, nl: &NeighborList, f: &mut [V3]) -> EnergyVirial {
        if !self.threads.active() || sys.x.is_empty() {
            return self.style.compute(sys, nl, f);
        }
        self.style
            .compute_chunked(sys, nl, f, self.threads, &self.recorder)
    }

    fn set_precision(&mut self, mode: PrecisionMode) {
        self.style.set_precision(mode);
    }

    fn precision(&self) -> PrecisionMode {
        self.style.precision()
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        if recorder.is_enabled() && self.threads.count > 1 {
            for k in 0..self.threads.count {
                recorder.set_lane_name(THREAD_LANE_BASE + k as u32, format!("thread {k}"));
            }
        }
        self.recorder = recorder;
    }

    fn state_save(&self, w: &mut md_core::wire::Writer) {
        self.style.state_save(w);
    }

    fn state_load(&mut self, r: &mut md_core::wire::Reader<'_>) -> Result<(), CoreError> {
        self.style.state_load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LjCut, SuttonChenEam};
    use md_core::{SimBox, UnitSystem};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rig(n: usize, seed: u64) -> (SimBox, Vec<V3>, NeighborList) {
        let l = 12.0;
        let bx = SimBox::cubic(l);
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<V3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                )
            })
            .collect();
        let mut nl = NeighborList::new(2.5, 0.3, NeighborListKind::Half);
        nl.build(&x, &bx).unwrap();
        (bx, x, nl)
    }

    fn forces(
        style: &mut dyn PairStyle,
        bx: &SimBox,
        x: &[V3],
        nl: &NeighborList,
    ) -> (Vec<V3>, EnergyVirial) {
        let n = x.len();
        let v = vec![Vec3::zero(); n];
        let kinds = vec![0u32; n];
        let charge = vec![0.0; n];
        let radius = vec![0.0; n];
        let masses = vec![1.0];
        let units = UnitSystem::lj();
        let sys = PairSystem {
            bx,
            x,
            v: &v,
            kinds: &kinds,
            charge: &charge,
            radius: &radius,
            mass_by_type: &masses,
            units: &units,
            dt: 0.005,
        };
        let mut f = vec![Vec3::zero(); n];
        let e = style.compute(&sys, nl, &mut f);
        (f, e)
    }

    /// EAM rig: a slightly perturbed fcc block so densities are realistic.
    fn eam_rig(seed: u64, jitter: f64) -> (SimBox, Vec<V3>, NeighborList) {
        let a0 = 3.615;
        let cells = 3usize;
        let l = cells as f64 * a0;
        let bx = SimBox::cubic(l);
        let basis = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.5, 0.5, 0.0),
            Vec3::new(0.5, 0.0, 0.5),
            Vec3::new(0.0, 0.5, 0.5),
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        for cx in 0..cells {
            for cy in 0..cells {
                for cz in 0..cells {
                    for b in basis {
                        let mut j = || (rng.gen::<f64>() - 0.5) * jitter;
                        let dx = j();
                        let dy = j();
                        let dz = j();
                        x.push(Vec3::new(
                            (cx as f64 + b.x) * a0 + dx,
                            (cy as f64 + b.y) * a0 + dy,
                            (cz as f64 + b.z) * a0 + dz,
                        ));
                    }
                }
            }
        }
        let eam = SuttonChenEam::copper();
        let mut nl = NeighborList::new(eam.cutoff(), 0.3, NeighborListKind::Half);
        nl.build(&x, &bx).unwrap();
        (bx, x, nl)
    }

    #[test]
    fn threaded_forces_match_serial_for_any_thread_count() {
        let (bx, x, nl) = rig(500, 3);
        let mut serial = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap();
        let (f0, e0) = forces(&mut serial, &bx, &x, &nl);
        for t in [1usize, 2, 3, 4, 7] {
            let mut threaded =
                Threaded::new(LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap(), t).unwrap();
            let (f1, e1) = forces(&mut threaded, &bx, &x, &nl);
            // Relative tolerances: the unscreened random gas has near-contact
            // pairs with enormous r^-12 terms, so cross-chunk summation
            // order shifts the absolute values at the fp-associativity level.
            let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1.0);
            assert!(rel(e0.evdwl, e1.evdwl) < 1e-12, "{t} threads: energy");
            assert!(rel(e0.virial, e1.virial) < 1e-12, "{t} threads: virial");
            for i in 0..x.len() {
                assert!(
                    (f0[i] - f1[i]).norm() < 1e-12 * f0[i].norm().max(1.0),
                    "{t} threads: atom {i} force mismatch"
                );
            }
        }
    }

    #[test]
    fn deterministic_mode_is_bitwise_thread_count_invariant() {
        let (bx, x, nl) = rig(400, 11);
        let reference = {
            let mut w = Threaded::with_mode(
                LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap(),
                Threads::deterministic(1),
            )
            .unwrap();
            forces(&mut w, &bx, &x, &nl)
        };
        for t in [2usize, 3, 4, 7] {
            let mut w = Threaded::with_mode(
                LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap(),
                Threads::deterministic(t),
            )
            .unwrap();
            let (f, e) = forces(&mut w, &bx, &x, &nl);
            assert_eq!(
                e.evdwl.to_bits(),
                reference.1.evdwl.to_bits(),
                "{t}: energy"
            );
            assert_eq!(
                e.virial.to_bits(),
                reference.1.virial.to_bits(),
                "{t}: virial"
            );
            for i in 0..x.len() {
                for d in 0..3 {
                    assert_eq!(
                        f[i][d].to_bits(),
                        reference.0[i][d].to_bits(),
                        "{t} threads: atom {i} axis {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn threaded_eam_deterministic_is_bitwise_invariant() {
        let (bx, x, nl) = eam_rig(5, 0.15);
        let reference = {
            let mut w =
                Threaded::with_mode(SuttonChenEam::copper(), Threads::deterministic(1)).unwrap();
            forces(&mut w, &bx, &x, &nl)
        };
        for t in [2usize, 4] {
            let mut w =
                Threaded::with_mode(SuttonChenEam::copper(), Threads::deterministic(t)).unwrap();
            let (f, e) = forces(&mut w, &bx, &x, &nl);
            assert_eq!(
                e.evdwl.to_bits(),
                reference.1.evdwl.to_bits(),
                "{t}: energy"
            );
            assert_eq!(
                e.virial.to_bits(),
                reference.1.virial.to_bits(),
                "{t}: virial"
            );
            for i in 0..x.len() {
                for d in 0..3 {
                    assert_eq!(
                        f[i][d].to_bits(),
                        reference.0[i][d].to_bits(),
                        "{t} threads: atom {i} axis {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn precision_plumbs_through() {
        let mut threaded =
            Threaded::new(LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap(), 2).unwrap();
        threaded.set_precision(PrecisionMode::Single);
        assert_eq!(threaded.precision(), PrecisionMode::Single);
        assert_eq!(threaded.cutoff(), 2.5);
        assert_eq!(threaded.nthreads(), 2);
        assert!(!threaded.mode().deterministic);
    }

    #[test]
    fn rejects_zero_threads() {
        assert!(Threaded::new(LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap(), 0).is_err());
        assert!(Threaded::with_mode(
            LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap(),
            Threads {
                count: 0,
                deterministic: true
            }
        )
        .is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// `Threaded<SuttonChenEam>` must match serial EAM to a ulp-scaled
        /// tolerance on randomized configurations: the chunk reduction
        /// reassociates the density/energy sums, so exact equality is not
        /// expected, but the error must stay at the fp-noise level.
        #[test]
        fn threaded_eam_matches_serial(seed in 0u64..1000, t in 1usize..6, det in proptest::bool::ANY) {
            let (bx, x, nl) = eam_rig(seed, 0.25);
            let mut serial = SuttonChenEam::copper();
            let (f0, e0) = forces(&mut serial, &bx, &x, &nl);
            let mode = if det { Threads::deterministic(t) } else { Threads::fast(t) };
            let mut threaded = Threaded::with_mode(SuttonChenEam::copper(), mode).unwrap();
            let (f1, e1) = forces(&mut threaded, &bx, &x, &nl);
            // ~1 ulp per reassociated term, scaled by the accumulation length.
            let tol = 1e-12;
            let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1.0);
            prop_assert!(rel(e0.evdwl, e1.evdwl) < tol, "energy {} vs {}", e0.evdwl, e1.evdwl);
            prop_assert!(rel(e0.virial, e1.virial) < tol, "virial {} vs {}", e0.virial, e1.virial);
            for i in 0..x.len() {
                prop_assert!(
                    (f0[i] - f1[i]).norm() < tol * f0[i].norm().max(1.0),
                    "atom {} force {:?} vs {:?}", i, f0[i], f1[i]
                );
            }
        }

        /// The generic chunk evaluator must agree with serial LJ under both
        /// modes for arbitrary counts.
        #[test]
        fn threaded_lj_matches_serial(seed in 0u64..1000, t in 1usize..8, det in proptest::bool::ANY) {
            let (bx, x, nl) = rig(200, seed);
            let mut serial = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap();
            let (f0, e0) = forces(&mut serial, &bx, &x, &nl);
            let mode = if det { Threads::deterministic(t) } else { Threads::fast(t) };
            let mut threaded = Threaded::with_mode(
                LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap(), mode).unwrap();
            let (f1, e1) = forces(&mut threaded, &bx, &x, &nl);
            let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1.0);
            prop_assert!(rel(e0.evdwl, e1.evdwl) < 1e-12);
            prop_assert!(rel(e0.virial, e1.virial) < 1e-12);
            for i in 0..x.len() {
                prop_assert!((f0[i] - f1[i]).norm() < 1e-12 * f0[i].norm().max(1.0));
            }
        }
    }
}
