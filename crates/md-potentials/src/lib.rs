//! # md-potentials — force fields for the verlette benchmark suite
//!
//! Implements every interaction the paper's five benchmarks need
//! (Table 2 of the paper):
//!
//! | Benchmark | Pair style                  | Bonded styles             |
//! |-----------|-----------------------------|---------------------------|
//! | LJ        | [`LjCut`]                   | —                         |
//! | Chain     | [`LjCut`] (WCA cutoff)      | [`FeneBond`]              |
//! | EAM       | [`SuttonChenEam`]           | —                         |
//! | Chute     | [`GranHookeHistory`]        | —                         |
//! | Rhodopsin | [`LjCharmmCoulLong`]        | [`HarmonicBond`], [`HarmonicAngle`], [`CharmmDihedral`] |
//!
//! plus the fixes the decks use: [`Gravity`], [`GranWall`], [`Freeze`]
//! (the Langevin thermostat lives in `md-core`).
//!
//! The Lennard-Jones kernel is generic over compute/accumulate precision so
//! the paper's Section 8 sensitivity study (single / mixed / double) runs on
//! real code paths.
//!
//! ## Example
//!
//! ```rust
//! use md_potentials::LjCut;
//! use md_core::PairStyle;
//!
//! // One atom type: ε = σ = 1, cutoff 2.5 σ.
//! let lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).unwrap();
//! assert_eq!(lj.cutoff(), 2.5);
//! ```

pub mod bonded;
pub mod charmm;
pub mod eam;
pub mod fixes;
pub mod granular;
pub mod lj;
pub mod mixing;
pub mod threaded;

pub use bonded::{CharmmDihedral, FeneBond, HarmonicAngle, HarmonicBond};
pub use charmm::LjCharmmCoulLong;
pub use eam::SuttonChenEam;
pub use fixes::{Freeze, Gravity};
pub use granular::{GranHookeHistory, GranWall};
pub use lj::LjCut;
pub use mixing::MixingRule;
pub use threaded::{ChunkSafe, Threadable, Threaded};
