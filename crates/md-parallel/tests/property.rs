//! Property-based tests for the decomposition and the virtual cluster.

use md_core::{SimBox, TaskKind, Vec3, V3};
use md_parallel::{
    Decomposition, GhostExchange, LinkModel, ProcGrid, VirtualCluster, WorkloadCensus,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every factorization chosen by ProcGrid multiplies back to P.
    #[test]
    fn proc_grid_factorizes_exactly(
        p in 1usize..129,
        lx in 4.0..40.0f64,
        ly in 4.0..40.0f64,
        lz in 4.0..40.0f64,
    ) {
        let g = ProcGrid::choose(p, Vec3::new(lx, ly, lz)).unwrap();
        prop_assert_eq!(g.count(), p);
    }

    /// Rank-of-position is total: every point maps to a valid rank, and the
    /// subdomain of that rank contains the point.
    #[test]
    fn ownership_is_consistent(
        p in 1usize..65,
        x in 0.0..12.0f64,
        y in 0.0..12.0f64,
        z in 0.0..12.0f64,
    ) {
        let bx = SimBox::cubic(12.0);
        let d = Decomposition::new(bx, p).unwrap();
        let pos = Vec3::new(x, y, z);
        let r = d.rank_of_position(pos);
        prop_assert!(r < p);
        let (lo, hi) = d.subdomain(r);
        for k in 0..3 {
            prop_assert!(pos[k] >= lo[k] - 1e-9 && pos[k] <= hi[k] + 1e-9);
        }
    }

    /// Owned counts always partition the atom set; census ghosts match the
    /// explicit exchange.
    #[test]
    fn census_partitions_and_counts(seed in 0u64..300, p in 2usize..28) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let l = 14.0;
        let bx = SimBox::cubic(l);
        let n = 200;
        let x: Vec<V3> = (0..n)
            .map(|_| Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l))
            .collect();
        let d = Decomposition::new(bx, p).unwrap();
        let census = WorkloadCensus::measure(&d, &x, 1.5);
        prop_assert_eq!(census.loads().iter().map(|r| r.owned).sum::<usize>(), n);
        let exchange = GhostExchange::build(&d, &x, 1.5);
        for r in 0..p {
            prop_assert_eq!(census.loads()[r].owned, exchange.rank(r).owned.len());
            prop_assert_eq!(census.loads()[r].ghosts, exchange.rank(r).ghosts.len());
        }
        prop_assert!(census.imbalance() >= 1.0 - 1e-12);
    }

    /// Face neighbors are symmetric under periodic wrap: if b is a's +x
    /// neighbor then a is b's -x neighbor.
    #[test]
    fn face_neighbors_are_symmetric(p in 1usize..65) {
        let bx = SimBox::cubic(10.0);
        let d = Decomposition::new(bx, p).unwrap();
        for r in 0..p {
            let nb = d.face_neighbors(r);
            for axis in 0..3 {
                let plus = nb[2 * axis + 1];
                let back = d.face_neighbors(plus)[2 * axis];
                prop_assert_eq!(back, r, "rank {} axis {}", r, axis);
            }
        }
    }

    /// Virtual-cluster clock algebra: total ledger time equals clock
    /// advance; a balanced halo produces zero skew; an imbalanced one
    /// produces exactly the skew difference.
    #[test]
    fn virtual_cluster_clock_algebra(
        t_fast in 0.1..5.0f64,
        extra in 0.01..5.0f64,
    ) {
        let mut c = VirtualCluster::new(2);
        let link = LinkModel { latency: 0.0, bandwidth: 1e12 };
        c.compute(0, TaskKind::Pair, t_fast + extra);
        c.compute(1, TaskKind::Pair, t_fast);
        c.halo_exchange(&[vec![1], vec![0]], &[0.0, 0.0], link);
        // Fast rank waited exactly `extra`.
        prop_assert!((c.mpi_ledger(1).skew_seconds() - extra).abs() < 1e-12);
        prop_assert_eq!(c.mpi_ledger(0).skew_seconds(), 0.0);
        // Clocks are synchronized afterwards.
        prop_assert!((c.max_clock() - c.min_clock()).abs() < 1e-12);
        // Ledger totals equal the clock.
        for r in 0..2 {
            let ledger_total = c.task_ledger(r).total();
            prop_assert!((ledger_total - c.max_clock()).abs() < 1e-9);
        }
    }

    /// Allreduce leaves all clocks equal regardless of prior skew.
    #[test]
    fn allreduce_synchronizes(times in proptest::collection::vec(0.0..10.0f64, 2..16)) {
        let p = times.len();
        let mut c = VirtualCluster::new(p);
        for (r, &t) in times.iter().enumerate() {
            c.compute(r, TaskKind::Pair, t);
        }
        c.allreduce(64.0, LinkModel { latency: 1e-6, bandwidth: 1e10 }, TaskKind::Output);
        prop_assert!((c.max_clock() - c.min_clock()).abs() < 1e-12);
        // The slowest rank never waits.
        let slowest = times
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("nonempty");
        prop_assert_eq!(c.mpi_ledger(slowest).skew_seconds(), 0.0);
    }
}
