//! Property-based tests for the comm-health wire layer: ghost-payload
//! framing must round-trip arbitrary payloads, reject every single-byte
//! corruption, and the retry backoff must be a pure, capped function.

use md_core::wire::crc32;
use md_parallel::{frame_ghost_payload, verify_ghost_payload, CommPolicy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Framing then verifying returns the original payload bytes.
    #[test]
    fn ghost_frame_round_trips(payload in proptest::collection::vec(0u8..=255, 0..512)) {
        let frame = frame_ghost_payload(&payload);
        let back = verify_ghost_payload(&frame).expect("clean frame verifies");
        prop_assert_eq!(back, payload);
    }

    /// Flipping any single byte of the frame — tag, payload, or CRC
    /// trailer — is detected.
    #[test]
    fn any_single_byte_flip_is_detected(
        payload in proptest::collection::vec(0u8..=255, 1..256),
        pos_seed in 0usize..1_000_000,
        flip in 1u8..=255,
    ) {
        let mut frame = frame_ghost_payload(&payload);
        let pos = pos_seed % frame.len();
        frame[pos] ^= flip;
        prop_assert!(
            verify_ghost_payload(&frame).is_err(),
            "flip of byte {} survived verification",
            pos
        );
    }

    /// Truncating the frame anywhere is detected.
    #[test]
    fn truncation_is_detected(
        payload in proptest::collection::vec(0u8..=255, 0..128),
        cut_seed in 0usize..1_000_000,
    ) {
        let frame = frame_ghost_payload(&payload);
        let cut = cut_seed % frame.len();
        prop_assert!(verify_ghost_payload(&frame[..cut]).is_err());
    }

    /// The backoff schedule is pure (same inputs, same delay), positive,
    /// and bounded by 1.5x the cap (the jitter factor's upper bound).
    #[test]
    fn backoff_is_pure_and_capped(
        seed in 0u64..1000,
        rank in 0usize..64,
        step in 0u64..10_000,
        attempt in 1u32..12,
    ) {
        let policy = CommPolicy { seed, ..CommPolicy::default() };
        let a = policy.backoff_seconds(rank, step, attempt);
        let b = policy.backoff_seconds(rank, step, attempt);
        prop_assert_eq!(a, b, "backoff must be deterministic");
        prop_assert!(a > 0.0);
        prop_assert!(a <= policy.backoff_cap * 1.5 + 1e-12);
    }

    /// The CRC the frame carries is the standard CRC-32 of everything
    /// before the trailer, so independent implementations interoperate.
    #[test]
    fn frame_trailer_is_plain_crc32(payload in proptest::collection::vec(0u8..=255, 0..64)) {
        let frame = frame_ghost_payload(&payload);
        let (body, trailer) = frame.split_at(frame.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().unwrap());
        prop_assert_eq!(stored, crc32(body));
    }
}
