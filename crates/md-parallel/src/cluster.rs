//! The virtual cluster: MPI ranks on simulated clocks.
//!
//! Each rank owns a virtual clock (seconds of simulated wall time), a
//! per-task ledger ([`md_core::TaskLedger`]) and a per-MPI-function ledger
//! ([`crate::MpiLedger`]). Compute advances one clock; communication
//! operations synchronize clocks bulk-synchronously through a
//! latency/bandwidth [`LinkModel`]. Skew between clocks at a synchronization
//! point becomes `MPI_Wait` time — which is exactly how the paper's "MPI
//! imbalance" metric arises from heterogeneous per-rank work.

use crate::comm::{
    frame_ghost_payload, ghost_digest, verify_ghost_payload, CommExchange, CommHealthEvent,
    CommPolicy, CommStatus,
};
use crate::mpi::{MpiFunction, MpiLedger};
use md_core::{TaskKind, TaskLedger};
use md_observe::Recorder;
use std::collections::BTreeSet;
use std::sync::Arc;

/// First trace lane used by virtual ranks (lane 0 is the real engine).
const RANK_LANE_BASE: u32 = 1;

/// Simulated seconds → trace microseconds.
const US: f64 = 1e6;

/// A latency/bandwidth model of one communication link.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkModel {
    /// Per-message latency, seconds.
    pub latency: f64,
    /// Sustained bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl LinkModel {
    /// Transfer time of `bytes` over this link.
    pub fn transfer(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }
}

/// One virtual MPI rank.
#[derive(Debug, Clone, Default)]
struct VirtualRank {
    clock: f64,
    tasks: TaskLedger,
    mpi: MpiLedger,
}

/// A deterministic fault model queried by the virtual cluster.
///
/// All queries are pure functions of `(rank, step)` so an injected fault
/// schedule is reproducible run-to-run and can be re-queried after a
/// recovery rollback without drifting. Defaults model a healthy cluster.
pub trait ClusterFaults: Send + Sync {
    /// Multiplier on rank `rank`'s compute time at `step` (`> 1` models a
    /// degraded core, thermal throttling, or a noisy neighbor).
    fn compute_scale(&self, _rank: usize, _step: u64) -> f64 {
        1.0
    }

    /// Extra seconds rank `rank`'s clock stalls at the top of `step`
    /// (transient hang: page fault storm, OS jitter, GC on a shared node).
    fn stall_seconds(&self, _rank: usize, _step: u64) -> f64 {
        0.0
    }

    /// Whether the halo message destined for `rank` is lost at `step`
    /// (the partner must retransmit; the receiver pays the extra round).
    fn drop_halo(&self, _rank: usize, _step: u64) -> bool {
        false
    }

    /// Whether `rank` receives its halo payload twice at `step`
    /// (duplicated delivery: the extra volume transits the link again).
    fn duplicate_halo(&self, _rank: usize, _step: u64) -> bool {
        false
    }

    /// Whether `rank` has crashed (fail-stop) as of `step`. A crashed
    /// rank's clock freezes and it drops out of every exchange; live peers
    /// notice only through deadline timeouts, spend their retry budget,
    /// then declare it failed (see [`VirtualCluster::set_comm_policy`]).
    fn crash_rank(&self, _rank: usize, _step: u64) -> bool {
        false
    }

    /// Whether the halo payload `rank` receives at `step` is corrupted in
    /// flight. Detected by the CRC-32 frame check of the comm-health layer
    /// and answered with one deterministic backoff + retransmission.
    fn corrupt_halo(&self, _rank: usize, _step: u64) -> bool {
        false
    }
}

/// One timestep's critical-path attribution: the rank whose work bounded
/// the step (ties go to the lowest rank) and the task that rank spent the
/// most time in while doing so. A sequence of these is the chain of
/// (rank, task) pairs that bulk-synchronous execution actually waited on —
/// the per-step refinement of [`TaskLedger::max_across`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CriticalStep {
    /// Timestep index.
    pub step: u64,
    /// Rank whose clock bounded the step.
    pub rank: usize,
    /// Simulated seconds the cluster-wide frontier advanced this step.
    pub seconds: f64,
    /// The bounding rank's dominant task during the step.
    pub task: TaskKind,
    /// Seconds the bounding rank spent in that dominant task.
    pub task_seconds: f64,
}

/// Per-step snapshot taken at `begin_step` so the closing bookkeeping can
/// compute deltas.
#[derive(Debug, Clone)]
struct OpenStep {
    step: u64,
    start_max_clock: f64,
    tasks: Vec<TaskLedger>,
    /// Per-rank skew-wait seconds at step open, so closing can separate
    /// work from time spent waiting on slower ranks.
    skews: Vec<f64>,
}

/// A set of virtual ranks evolving bulk-synchronously.
#[derive(Clone)]
pub struct VirtualCluster {
    ranks: Vec<VirtualRank>,
    recorder: Recorder,
    faults: Option<Arc<dyn ClusterFaults>>,
    /// Step index faults are queried at (set by [`VirtualCluster::begin_step`]).
    current_step: u64,
    /// Whether per-step critical-path records are kept.
    track_steps: bool,
    /// The step currently being accumulated (tracking only).
    open_step: Option<OpenStep>,
    /// Closed per-step critical-path records (tracking only).
    critical: Vec<CriticalStep>,
    /// Comm-health policy; `None` leaves every exchange unpoliced and the
    /// cluster bitwise-identical to its pre-detection behavior.
    comm: Option<CommPolicy>,
    /// Classified unhealthy exchanges (policy attached only).
    comm_events: Vec<CommHealthEvent>,
    /// Retries each rank has spent against
    /// [`CommPolicy::max_rank_retries`].
    budget_used: Vec<u32>,
    /// Ranks the fault model has fail-stopped (model truth).
    crashed: BTreeSet<usize>,
    /// Crashed ranks some live peer has *declared* failed after exhausting
    /// its retry budget; excluded from all further exchanges.
    detected: BTreeSet<usize>,
}

impl std::fmt::Debug for VirtualCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualCluster")
            .field("ranks", &self.ranks)
            .field("current_step", &self.current_step)
            .field("faults", &self.faults.is_some())
            .finish_non_exhaustive()
    }
}

impl VirtualCluster {
    /// Creates `n` ranks with zeroed clocks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "cluster needs at least one rank");
        VirtualCluster {
            ranks: vec![VirtualRank::default(); n],
            recorder: Recorder::disabled(),
            faults: None,
            current_step: 0,
            track_steps: false,
            open_step: None,
            critical: Vec::new(),
            comm: None,
            comm_events: Vec::new(),
            budget_used: vec![0; n],
            crashed: BTreeSet::new(),
            detected: BTreeSet::new(),
        }
    }

    /// Attaches the comm-health policy: subsequent halo exchanges and
    /// allreduces are policed — held to the per-exchange deadline, their
    /// framed ghost payloads CRC-checked, and failures retried under the
    /// policy's seeded backoff. Without a policy the detection layer is
    /// bitwise-invisible.
    pub fn set_comm_policy(&mut self, policy: CommPolicy) {
        self.comm = Some(policy);
    }

    /// Classified unhealthy exchanges so far (policy attached only).
    pub fn comm_events(&self) -> &[CommHealthEvent] {
        &self.comm_events
    }

    /// Drains the classified exchanges.
    pub fn take_comm_events(&mut self) -> Vec<CommHealthEvent> {
        std::mem::take(&mut self.comm_events)
    }

    /// Ranks a live peer has declared failed (retry budget exhausted on a
    /// silent partner). These are excluded from every further exchange —
    /// the model-side half of the degraded-mode shrink.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.detected.iter().copied().collect()
    }

    /// Ranks the fault model has fail-stopped so far (superset of
    /// [`VirtualCluster::failed_ranks`]: a crash is model truth, detection
    /// costs a budget's worth of timeouts first).
    pub fn crashed_ranks(&self) -> Vec<usize> {
        self.crashed.iter().copied().collect()
    }

    /// Retries rank `r` has spent against its budget.
    pub fn retries_spent(&self, r: usize) -> u32 {
        self.budget_used.get(r).copied().unwrap_or(0)
    }

    /// Attaches a fault model. Subsequent compute and halo operations are
    /// perturbed according to the model at the step index most recently
    /// passed to [`VirtualCluster::begin_step`].
    pub fn set_faults(&mut self, faults: Arc<dyn ClusterFaults>) {
        self.faults = Some(faults);
    }

    /// Step index faults are currently queried at.
    pub fn current_step(&self) -> u64 {
        self.current_step
    }

    /// Marks the beginning of timestep `step` and applies any scheduled
    /// rank stalls: a stalled rank's clock silently advances before it does
    /// any work, which downstream synchronization points convert into
    /// `MPI_Wait` on every *other* rank — the paper's imbalance mechanism,
    /// triggered by a fault instead of a decomposition artifact.
    pub fn begin_step(&mut self, step: u64) {
        self.current_step = step;
        if self.track_steps {
            self.close_open_step();
            self.open_step = Some(OpenStep {
                step,
                start_max_clock: self.max_clock(),
                tasks: self.ranks.iter().map(|r| r.tasks.clone()).collect(),
                skews: self.ranks.iter().map(|r| r.mpi.skew_seconds()).collect(),
            });
        }
        let Some(faults) = self.faults.clone() else {
            return;
        };
        for r in 0..self.ranks.len() {
            if !self.crashed.contains(&r) && faults.crash_rank(r, step) {
                // Fail-stop: clock freezes; peers will detect the silence.
                self.crashed.insert(r);
                self.recorder.count(Self::lane(r), "fault_rank_crash", 1.0);
            }
        }
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            if self.crashed.contains(&r) {
                continue;
            }
            let stall = faults.stall_seconds(r, step);
            if stall > 0.0 {
                let lane = Self::lane(r);
                self.recorder.record_span_at(
                    lane,
                    "fault",
                    "rank_stall",
                    rank.clock * US,
                    stall * US,
                );
                self.recorder.count(lane, "fault_rank_stall", 1.0);
                rank.clock += stall;
                rank.tasks.add(TaskKind::Other, stall);
            }
        }
    }

    /// Attaches an observability recorder. Every rank gets its own trace
    /// lane (`1..=nranks`, lane 0 is the real engine); compute and MPI
    /// operations are recorded as spans at *simulated* timestamps, so the
    /// exported Chrome trace shows the paper's imbalance as a timeline.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        for r in 0..self.nranks() {
            recorder.set_lane_name(Self::lane(r), format!("rank {r}"));
        }
        if self.track_steps {
            recorder.set_lane_name(self.critical_lane(), "critical_path");
        }
        self.recorder = recorder;
    }

    /// Trace lane of rank `r`.
    fn lane(r: usize) -> u32 {
        RANK_LANE_BASE + r as u32
    }

    /// Trace lane of the critical-path timeline (one past the rank lanes).
    pub fn critical_lane(&self) -> u32 {
        RANK_LANE_BASE + self.nranks() as u32
    }

    /// Turns on per-step critical-path tracking: every
    /// [`VirtualCluster::begin_step`] closes the previous step into a
    /// [`CriticalStep`] record (call [`VirtualCluster::finish_step_tracking`]
    /// after the last step), and each record is also emitted as a span on a
    /// dedicated `critical_path` trace lane at simulated timestamps.
    pub fn enable_step_tracking(&mut self) {
        self.track_steps = true;
        self.recorder
            .set_lane_name(self.critical_lane(), "critical_path");
    }

    /// Closes the step currently being tracked (the per-step loop only
    /// opens steps; the last one has no successor to close it).
    pub fn finish_step_tracking(&mut self) {
        self.close_open_step();
    }

    /// The per-step critical-path records collected so far.
    pub fn critical_path(&self) -> &[CriticalStep] {
        &self.critical
    }

    /// Folds the open step (if any) into a [`CriticalStep`]: the rank that
    /// did the most *work* this step — ledger time minus skew-wait, i.e. the
    /// rank everyone else waited on — bounded it; its largest per-task time
    /// delta since the step opened names the bounding task. (Raw clocks
    /// can't be compared here: synchronization points equalize them, so the
    /// slowest rank's clock is no higher than its waiters'.)
    fn close_open_step(&mut self) {
        let Some(open) = self.open_step.take() else {
            return;
        };
        let work = |r: usize| {
            let busy = self.ranks[r].tasks.delta_since(&open.tasks[r]).total();
            let waited = self.ranks[r].mpi.skew_seconds() - open.skews[r];
            (busy - waited).max(0.0)
        };
        let bound = (0..self.nranks())
            .max_by(|&a, &b| {
                work(a)
                    .partial_cmp(&work(b))
                    .expect("finite seconds")
                    // Ties go to the lowest rank.
                    .then(b.cmp(&a))
            })
            .expect("at least one rank");
        let delta = self.ranks[bound].tasks.delta_since(&open.tasks[bound]);
        let (task, task_seconds) = TaskKind::ALL
            .iter()
            .map(|&t| (t, delta.seconds(t)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite seconds"))
            .expect("eight tasks");
        let seconds = (self.max_clock() - open.start_max_clock).max(0.0);
        if seconds > 0.0 {
            self.recorder.record_span_at(
                self.critical_lane(),
                "critical",
                task.label(),
                open.start_max_clock * US,
                seconds * US,
            );
        }
        self.critical.push(CriticalStep {
            step: open.step,
            rank: bound,
            seconds,
            task,
            task_seconds,
        });
    }

    /// Per-rank task ledgers, rank order (owned snapshot).
    pub fn rank_task_ledgers(&self) -> Vec<TaskLedger> {
        self.ranks.iter().map(|r| r.tasks.clone()).collect()
    }

    /// Per-rank MPI ledgers, rank order (owned snapshot).
    pub fn rank_mpi_ledgers(&self) -> Vec<MpiLedger> {
        self.ranks.iter().map(|r| r.mpi.clone()).collect()
    }

    /// Per-rank virtual clocks, rank order.
    pub fn rank_clocks(&self) -> Vec<f64> {
        self.ranks.iter().map(|r| r.clock).collect()
    }

    /// Rank count.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Advances rank `r` by `seconds` of compute attributed to `task`.
    ///
    /// An attached fault model may scale the time (rank slowdown faults).
    pub fn compute(&mut self, r: usize, task: TaskKind, seconds: f64) {
        if self.crashed.contains(&r) {
            return;
        }
        let seconds = match &self.faults {
            Some(f) => {
                let scale = f.compute_scale(r, self.current_step);
                if scale != 1.0 {
                    self.recorder.count(Self::lane(r), "fault_rank_slow", 1.0);
                }
                seconds * scale
            }
            None => seconds,
        };
        let rank = &mut self.ranks[r];
        self.recorder.record_span_at(
            Self::lane(r),
            "task",
            task.label(),
            rank.clock * US,
            seconds * US,
        );
        rank.clock += seconds;
        rank.tasks.add(task, seconds);
    }

    /// Models `MPI_Init`: every rank pays `base + per_rank · P` seconds
    /// (the paper observes the per-rank `MPI_Init` cost *grows* with the
    /// number of processes).
    pub fn mpi_init(&mut self, base: f64, per_rank: f64) {
        let p = self.nranks() as f64;
        let cost = base + per_rank * p;
        let rec = self.recorder.clone();
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            rec.record_span_at(Self::lane(r), "mpi", "MPI_Init", rank.clock * US, cost * US);
            rank.clock += cost;
            rank.mpi.add(MpiFunction::Init, cost);
            rank.tasks.add(TaskKind::Other, cost);
        }
    }

    /// Models one halo-exchange phase: every rank does a paired
    /// `MPI_Sendrecv` with partners `partners[r]`, moving `bytes[r]` each
    /// way. Ranks must first catch up to the slowest partner (skew becomes
    /// `MPI_Wait`), then pay the transfer.
    ///
    /// Exchange time is attributed to the `Comm` task.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the rank count.
    pub fn halo_exchange(&mut self, partners: &[Vec<usize>], bytes: &[f64], link: LinkModel) {
        assert_eq!(partners.len(), self.nranks(), "partners per rank");
        assert_eq!(bytes.len(), self.nranks(), "bytes per rank");
        let clocks: Vec<f64> = self.ranks.iter().map(|r| r.clock).collect();
        let step = self.current_step;
        for r in 0..self.nranks() {
            if self.crashed.contains(&r) {
                // A fail-stop rank neither sends nor receives; its silence
                // is what live peers detect below.
                continue;
            }
            let mut sync_to = clocks[r];
            let mut any_partner = false;
            // A peer already declared failed is excluded outright (the
            // shrink re-planned around it); a crashed peer not yet detected
            // is the one this rank times out on.
            let mut undetected_crash: Option<usize> = None;
            for &p in &partners[r] {
                if p == r || self.detected.contains(&p) {
                    continue;
                }
                if self.crashed.contains(&p) {
                    undetected_crash = Some(p);
                    continue;
                }
                sync_to = sync_to.max(clocks[p]);
                any_partner = true;
            }
            let wait = sync_to - clocks[r];
            // Volume: what this rank sends plus what it receives from live
            // peers.
            let recv: f64 = partners[r]
                .iter()
                .filter(|&&p| p != r && !self.detected.contains(&p) && !self.crashed.contains(&p))
                .map(|&p| bytes[p] / partners[p].len().max(1) as f64)
                .sum();
            let sent = if any_partner { bytes[r] } else { 0.0 };
            let mut xfer = if any_partner {
                link.transfer(sent + recv)
            } else {
                0.0
            };
            let lane = Self::lane(r);
            if any_partner {
                if let Some(f) = self.faults.clone() {
                    if f.drop_halo(r, step) {
                        // Lost inbound message: the partner retransmits, so
                        // the receiver pays a full extra latency + volume.
                        xfer += link.transfer(recv);
                        self.recorder.count(lane, "fault_halo_drop", 1.0);
                    }
                    if f.duplicate_halo(r, step) {
                        // Duplicated delivery: the payload transits the link
                        // twice (no extra handshake latency).
                        xfer += recv / link.bandwidth;
                        self.recorder.count(lane, "fault_halo_dup", 1.0);
                    }
                }
            }
            // Comm-health policing: frame + CRC-check the ghost payload,
            // hold silent peers to the deadline, retry under the seeded
            // backoff. `penalty` is every simulated second lost to it.
            let mut penalty = 0.0;
            if let Some(policy) = self.comm {
                let corrupted = any_partner
                    && self
                        .faults
                        .as_ref()
                        .is_some_and(|f| f.corrupt_halo(r, step));
                if corrupted {
                    // The payload arrives damaged: the CRC-32 trailer of the
                    // framed digest disagrees, and one backoff + retransmit
                    // round answers it (if this rank still has budget).
                    let mut frame = frame_ghost_payload(&ghost_digest(r, step, recv));
                    let mid = frame.len() / 2;
                    frame[mid] ^= 0x01;
                    debug_assert!(
                        verify_ghost_payload(&frame).is_err(),
                        "flipped byte must fail the CRC check"
                    );
                    self.recorder.count(lane, "fault_halo_corrupt", 1.0);
                    self.recorder.count(lane, "comm_corrupt", 1.0);
                    let have_budget = self.budget_used[r] < policy.max_rank_retries;
                    let mut attempts = 0;
                    let mut lost = 0.0;
                    if have_budget {
                        self.budget_used[r] += 1;
                        attempts = 1;
                        lost = policy.backoff_seconds(r, step, 1) + link.transfer(recv);
                        self.recorder.count(lane, "comm_retry", 1.0);
                    } else {
                        self.recorder.count(lane, "comm_budget_exhausted", 1.0);
                    }
                    penalty += lost;
                    self.comm_events.push(CommHealthEvent {
                        step,
                        rank: r,
                        peer: None,
                        exchange: CommExchange::Halo,
                        status: CommStatus::Corrupt,
                        attempts,
                        seconds_lost: lost,
                        recovered: have_budget,
                    });
                } else if any_partner {
                    // Healthy policed exchange: the frame verifies.
                    let frame = frame_ghost_payload(&ghost_digest(r, step, recv));
                    debug_assert!(verify_ghost_payload(&frame).is_ok());
                    self.recorder.count(lane, "comm_exchange_ok", 1.0);
                }
                if let Some(p) = undetected_crash {
                    // Silent peer: pay the deadline, spend the remaining
                    // retry budget (each retry = backoff + another full
                    // deadline), then declare the peer failed.
                    self.recorder.count(lane, "comm_timeout", 1.0);
                    let mut lost = policy.timeout_seconds;
                    let mut attempts = 0;
                    while self.budget_used[r] < policy.max_rank_retries {
                        self.budget_used[r] += 1;
                        attempts += 1;
                        lost += policy.backoff_seconds(r, step, attempts) + policy.timeout_seconds;
                        self.recorder.count(lane, "comm_retry", 1.0);
                    }
                    self.recorder.count(lane, "comm_budget_exhausted", 1.0);
                    self.detected.insert(p);
                    penalty += lost;
                    self.comm_events.push(CommHealthEvent {
                        step,
                        rank: r,
                        peer: Some(p),
                        exchange: CommExchange::Halo,
                        status: CommStatus::TimedOut,
                        attempts,
                        seconds_lost: lost,
                        recovered: false,
                    });
                }
            }
            let rank = &mut self.ranks[r];
            if wait + xfer + penalty > 0.0 {
                // Enclosing task span; the MPI spans below nest inside it.
                self.recorder.record_span_at(
                    lane,
                    "task",
                    "Comm",
                    clocks[r] * US,
                    (wait + xfer + penalty) * US,
                );
            }
            rank.clock = sync_to + xfer + penalty;
            if wait > 0.0 {
                self.recorder
                    .record_span_at(lane, "mpi", "MPI_Wait", clocks[r] * US, wait * US);
                rank.mpi.add(MpiFunction::Wait, wait);
                rank.mpi.add_skew(wait);
                rank.tasks.add(TaskKind::Comm, wait);
            }
            if xfer > 0.0 {
                self.recorder
                    .record_span_at(lane, "mpi", "MPI_Sendrecv", sync_to * US, xfer * US);
                rank.mpi.add(MpiFunction::Sendrecv, xfer);
                rank.tasks.add(TaskKind::Comm, xfer);
            }
            if penalty > 0.0 {
                // Deadline waits, backoffs, and retransmissions surface as
                // MPI_Waitany — the retry row of the MPI table.
                self.recorder.record_span_at(
                    lane,
                    "mpi",
                    "MPI_Waitany",
                    (sync_to + xfer) * US,
                    penalty * US,
                );
                rank.mpi.add(MpiFunction::Waitany, penalty);
                rank.tasks.add(TaskKind::Comm, penalty);
            }
        }
    }

    /// Models an `MPI_Allreduce` of `bytes` per rank: a full synchronization
    /// (skew → `MPI_Wait`) followed by a `log2(P)`-stage butterfly.
    ///
    /// The reduction time is attributed to `task` (thermo reductions are
    /// `Output`, FFT norms are `Kspace`, ...).
    pub fn allreduce(&mut self, bytes: f64, link: LinkModel, task: TaskKind) {
        let dead: BTreeSet<usize> = self.crashed.union(&self.detected).copied().collect();
        let survivors = self.nranks() - dead.len();
        if survivors == 0 {
            return;
        }
        let max_clock = self
            .ranks
            .iter()
            .enumerate()
            .filter(|(r, _)| !dead.contains(r))
            .map(|(_, rank)| rank.clock)
            .fold(0.0, f64::max);
        let stages = (survivors as f64).log2().ceil().max(1.0);
        let cost = stages * link.transfer(bytes);
        let rec = self.recorder.clone();
        let step = self.current_step;
        let mut events = Vec::new();
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            if dead.contains(&r) {
                continue;
            }
            let lane = Self::lane(r);
            let wait = max_clock - rank.clock;
            if let Some(policy) = self.comm {
                if wait > policy.timeout_seconds {
                    // Classified, not retried: the slow peer did answer the
                    // collective, just past the deadline.
                    rec.count(lane, "comm_timeout", 1.0);
                    events.push(CommHealthEvent {
                        step,
                        rank: r,
                        peer: None,
                        exchange: CommExchange::Allreduce,
                        status: CommStatus::TimedOut,
                        attempts: 0,
                        seconds_lost: wait,
                        recovered: true,
                    });
                }
            }
            rec.record_span_at(
                lane,
                "task",
                task.label(),
                rank.clock * US,
                (wait.max(0.0) + cost) * US,
            );
            if wait > 0.0 {
                rec.record_span_at(lane, "mpi", "MPI_Wait", rank.clock * US, wait * US);
                rank.mpi.add(MpiFunction::Wait, wait);
                rank.mpi.add_skew(wait);
                rank.tasks.add(task, wait);
            }
            rec.record_span_at(lane, "mpi", "MPI_Allreduce", max_clock * US, cost * US);
            rank.clock = max_clock + cost;
            rank.mpi.add(MpiFunction::Allreduce, cost);
            rank.tasks.add(task, cost);
        }
        self.comm_events.extend(events);
    }

    /// Models the all-to-all transposes of a distributed 3D FFT: each rank
    /// sends `bytes_per_rank` to every other rank, `rounds` times. Transfer
    /// time is `MPI_Send`, synchronization skew is `MPI_Wait`; everything is
    /// attributed to `Kspace`.
    pub fn fft_transpose(&mut self, bytes_per_rank: f64, rounds: usize, link: LinkModel) {
        let dead: BTreeSet<usize> = self.crashed.union(&self.detected).copied().collect();
        let survivors = self.nranks() - dead.len();
        if survivors <= 1 {
            return;
        }
        let max_clock = self
            .ranks
            .iter()
            .enumerate()
            .filter(|(r, _)| !dead.contains(r))
            .map(|(_, rank)| rank.clock)
            .fold(0.0, f64::max);
        let p = survivors as f64;
        // Each round: (P-1) messages pipelined; model as latency·(P-1) plus
        // the full volume over the shared link.
        let per_round = (p - 1.0) * link.latency + (p - 1.0) * bytes_per_rank / link.bandwidth;
        let cost = rounds as f64 * per_round;
        let rec = self.recorder.clone();
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            if dead.contains(&r) {
                continue;
            }
            let lane = Self::lane(r);
            let wait = max_clock - rank.clock;
            rec.record_span_at(
                lane,
                "task",
                TaskKind::Kspace.label(),
                rank.clock * US,
                (wait.max(0.0) + cost) * US,
            );
            if wait > 0.0 {
                rec.record_span_at(lane, "mpi", "MPI_Wait", rank.clock * US, wait * US);
                rank.mpi.add(MpiFunction::Wait, wait);
                rank.mpi.add_skew(wait);
                rank.tasks.add(TaskKind::Kspace, wait);
            }
            rec.record_span_at(lane, "mpi", "MPI_Send", max_clock * US, cost * US);
            rank.clock = max_clock + cost;
            rank.mpi.add(MpiFunction::Send, cost);
            rank.tasks.add(TaskKind::Kspace, cost);
        }
    }

    /// The latest rank clock.
    pub fn max_clock(&self) -> f64 {
        self.ranks.iter().map(|r| r.clock).fold(0.0, f64::max)
    }

    /// The earliest rank clock.
    pub fn min_clock(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| r.clock)
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean rank clock.
    pub fn mean_clock(&self) -> f64 {
        self.ranks.iter().map(|r| r.clock).sum::<f64>() / self.nranks() as f64
    }

    /// Task ledger of rank `r`.
    pub fn task_ledger(&self, r: usize) -> &TaskLedger {
        &self.ranks[r].tasks
    }

    /// MPI ledger of rank `r`.
    pub fn mpi_ledger(&self, r: usize) -> &MpiLedger {
        &self.ranks[r].mpi
    }

    /// Task ledger averaged across ranks.
    pub fn mean_task_ledger(&self) -> TaskLedger {
        let mut sum = TaskLedger::new();
        for r in &self.ranks {
            sum.merge(&r.tasks);
        }
        let p = self.nranks() as f64;
        let mut mean = TaskLedger::new();
        for (t, s) in sum.iter() {
            mean.add(t, s / p);
        }
        mean
    }

    /// MPI ledger averaged across ranks.
    pub fn mean_mpi_ledger(&self) -> MpiLedger {
        let mut sum = MpiLedger::new();
        for r in &self.ranks {
            sum.merge(&r.mpi);
        }
        let p = self.nranks() as f64;
        let mut mean = MpiLedger::new();
        for (f, s) in sum.iter() {
            mean.add(f, s / p);
        }
        mean.add_skew(sum.skew_seconds() / p);
        mean
    }

    /// Percentage of mean total time spent inside MPI functions
    /// (the paper's Figure 4, top).
    pub fn mpi_time_percent(&self) -> f64 {
        let total = self.mean_clock();
        if total > 0.0 {
            100.0 * self.mean_mpi_ledger().total() / total
        } else {
            0.0
        }
    }

    /// Percentage of mean total time that is skew-induced waiting
    /// (the paper's "MPI imbalance", Figure 4 bottom).
    pub fn mpi_imbalance_percent(&self) -> f64 {
        let total = self.mean_clock();
        if total > 0.0 {
            100.0 * self.mean_mpi_ledger().skew_seconds() / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINK: LinkModel = LinkModel {
        latency: 1e-6,
        bandwidth: 10e9,
    };

    #[test]
    fn compute_advances_one_clock() {
        let mut c = VirtualCluster::new(4);
        c.compute(2, TaskKind::Pair, 1.5);
        assert_eq!(c.max_clock(), 1.5);
        assert_eq!(c.min_clock(), 0.0);
        assert_eq!(c.task_ledger(2).seconds(TaskKind::Pair), 1.5);
    }

    #[test]
    fn balanced_halo_exchange_has_no_wait() {
        let mut c = VirtualCluster::new(4);
        for r in 0..4 {
            c.compute(r, TaskKind::Pair, 1.0);
        }
        let partners = vec![vec![1], vec![0], vec![3], vec![2]];
        c.halo_exchange(&partners, &[1000.0; 4], LINK);
        for r in 0..4 {
            assert_eq!(c.mpi_ledger(r).seconds(MpiFunction::Wait), 0.0);
            assert!(c.mpi_ledger(r).seconds(MpiFunction::Sendrecv) > 0.0);
        }
        assert!((c.max_clock() - c.min_clock()).abs() < 1e-15);
    }

    #[test]
    fn skewed_compute_creates_wait_on_the_fast_rank() {
        let mut c = VirtualCluster::new(2);
        c.compute(0, TaskKind::Pair, 2.0);
        c.compute(1, TaskKind::Pair, 1.0);
        c.halo_exchange(&[vec![1], vec![0]], &[100.0; 2], LINK);
        assert_eq!(c.mpi_ledger(0).seconds(MpiFunction::Wait), 0.0);
        assert!((c.mpi_ledger(1).seconds(MpiFunction::Wait) - 1.0).abs() < 1e-12);
        assert!((c.mpi_ledger(1).skew_seconds() - 1.0).abs() < 1e-12);
        assert!(c.mpi_imbalance_percent() > 0.0);
    }

    #[test]
    fn allreduce_synchronizes_everyone() {
        let mut c = VirtualCluster::new(8);
        for r in 0..8 {
            c.compute(r, TaskKind::Pair, r as f64 * 0.1);
        }
        c.allreduce(64.0, LINK, TaskKind::Output);
        assert!((c.max_clock() - c.min_clock()).abs() < 1e-15);
        // Slowest rank waited zero; fastest waited the spread.
        assert_eq!(c.mpi_ledger(7).seconds(MpiFunction::Wait), 0.0);
        assert!((c.mpi_ledger(0).seconds(MpiFunction::Wait) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn fft_transpose_cost_scales_with_ranks() {
        let cost = |p: usize| {
            let mut c = VirtualCluster::new(p);
            c.fft_transpose(1e6, 2, LINK);
            c.max_clock()
        };
        assert_eq!(cost(1), 0.0);
        assert!(cost(16) > cost(4));
    }

    #[test]
    fn mean_ledgers_average_over_ranks() {
        let mut c = VirtualCluster::new(2);
        c.compute(0, TaskKind::Pair, 4.0);
        c.compute(1, TaskKind::Pair, 2.0);
        let mean = c.mean_task_ledger();
        assert!((mean.seconds(TaskKind::Pair) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn init_cost_grows_with_rank_count() {
        let mut small = VirtualCluster::new(4);
        small.mpi_init(0.1, 0.01);
        let mut big = VirtualCluster::new(64);
        big.mpi_init(0.1, 0.01);
        assert!(
            big.mpi_ledger(0).seconds(MpiFunction::Init)
                > small.mpi_ledger(0).seconds(MpiFunction::Init)
        );
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = VirtualCluster::new(0);
    }

    /// Fault plan for tests: rank 1 stalls at step 3, runs 2x slow at step
    /// 5, drops its halo at step 7, and receives a duplicate at step 9.
    struct TestFaults;

    impl ClusterFaults for TestFaults {
        fn compute_scale(&self, rank: usize, step: u64) -> f64 {
            if rank == 1 && step == 5 {
                2.0
            } else {
                1.0
            }
        }
        fn stall_seconds(&self, rank: usize, step: u64) -> f64 {
            if rank == 1 && step == 3 {
                0.25
            } else {
                0.0
            }
        }
        fn drop_halo(&self, rank: usize, step: u64) -> bool {
            rank == 1 && step == 7
        }
        fn duplicate_halo(&self, rank: usize, step: u64) -> bool {
            rank == 1 && step == 9
        }
    }

    #[test]
    fn step_tracking_names_the_bounding_rank_and_task() {
        let rec = Recorder::default();
        let mut c = VirtualCluster::new(3);
        c.enable_step_tracking();
        c.set_recorder(rec.clone());
        // Step 0: rank 2 does the most Pair work and bounds the step.
        c.begin_step(0);
        for r in 0..3 {
            c.compute(r, TaskKind::Pair, 1.0 + r as f64);
        }
        // Step 1: rank 0 dominates with Kspace.
        c.begin_step(1);
        c.compute(0, TaskKind::Kspace, 5.0);
        c.compute(1, TaskKind::Pair, 0.5);
        c.finish_step_tracking();

        let path = c.critical_path();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].step, 0);
        assert_eq!(path[0].rank, 2);
        assert_eq!(path[0].task, TaskKind::Pair);
        assert!((path[0].seconds - 3.0).abs() < 1e-12, "frontier advance");
        assert!((path[0].task_seconds - 3.0).abs() < 1e-12);
        assert_eq!(path[1].rank, 0);
        assert_eq!(path[1].task, TaskKind::Kspace);
        // Frontier moved from 3.0 (rank 2) to 6.0 (rank 0's clock 1+5).
        assert!((path[1].seconds - 3.0).abs() < 1e-12);

        // The critical lane carries one span per step at simulated time.
        let lane = c.critical_lane();
        let spans: Vec<_> = rec
            .events()
            .into_iter()
            .filter(|e| e.lane == lane)
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "Pair");
        assert_eq!(spans[1].name, "Kspace");
        assert_eq!(spans[0].cat, "critical");
        let snap = rec.snapshot();
        assert_eq!(
            snap.lanes.get(&lane).map(String::as_str),
            Some("critical_path")
        );
    }

    #[test]
    fn step_tracking_sees_through_synchronization() {
        // An allreduce equalizes every clock, so clock comparison would
        // hand the step to rank 0; the slow rank must still be named.
        let mut c = VirtualCluster::new(4);
        c.enable_step_tracking();
        for step in 0..3 {
            c.begin_step(step);
            for r in 0..4 {
                let cost = if r == 2 { 4.0 } else { 1.0 };
                c.compute(r, TaskKind::Pair, cost);
            }
            c.allreduce(64.0, LINK, TaskKind::Output);
            assert!((c.max_clock() - c.min_clock()).abs() < 1e-12);
        }
        c.finish_step_tracking();
        let path = c.critical_path();
        assert_eq!(path.len(), 3);
        for s in path {
            assert_eq!(s.rank, 2, "slow rank bounds every synchronized step");
            assert_eq!(s.task, TaskKind::Pair);
        }
    }

    #[test]
    fn step_tracking_ties_go_to_the_lowest_rank() {
        let mut c = VirtualCluster::new(4);
        c.enable_step_tracking();
        c.begin_step(0);
        for r in 0..4 {
            c.compute(r, TaskKind::Neigh, 2.0);
        }
        c.finish_step_tracking();
        assert_eq!(c.critical_path()[0].rank, 0);
        assert_eq!(c.critical_path()[0].task, TaskKind::Neigh);
    }

    #[test]
    fn untracked_cluster_keeps_no_per_step_records() {
        let mut c = VirtualCluster::new(2);
        c.begin_step(0);
        c.compute(0, TaskKind::Pair, 1.0);
        c.finish_step_tracking();
        assert!(c.critical_path().is_empty());
    }

    #[test]
    fn rank_snapshots_match_ledger_accessors() {
        let mut c = VirtualCluster::new(2);
        c.compute(0, TaskKind::Pair, 2.0);
        c.compute(1, TaskKind::Bond, 1.0);
        let tasks = c.rank_task_ledgers();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].seconds(TaskKind::Pair), 2.0);
        assert_eq!(tasks[1].seconds(TaskKind::Bond), 1.0);
        assert_eq!(c.rank_clocks(), vec![2.0, 1.0]);
        assert_eq!(c.rank_mpi_ledgers().len(), 2);
    }

    #[test]
    fn rank_stall_advances_clock_and_skews_partners() {
        let rec = Recorder::default();
        let mut c = VirtualCluster::new(2);
        c.set_recorder(rec.clone());
        c.set_faults(Arc::new(TestFaults));
        c.begin_step(3);
        assert_eq!(c.current_step(), 3);
        // Rank 1 stalled 0.25 s before doing any work.
        assert!((c.max_clock() - 0.25).abs() < 1e-15);
        assert_eq!(c.min_clock(), 0.0);
        assert_eq!(rec.counter_value("fault_rank_stall"), Some(1.0));
        // Equal compute + halo exchange: the stall surfaces as rank 0 skew.
        for r in 0..2 {
            c.compute(r, TaskKind::Pair, 1.0);
        }
        c.halo_exchange(&[vec![1], vec![0]], &[100.0; 2], LINK);
        assert!((c.mpi_ledger(0).skew_seconds() - 0.25).abs() < 1e-12);
        assert_eq!(c.mpi_ledger(1).skew_seconds(), 0.0);
    }

    #[test]
    fn compute_scale_slows_the_faulted_rank_only() {
        let rec = Recorder::default();
        let mut c = VirtualCluster::new(2);
        c.set_recorder(rec.clone());
        c.set_faults(Arc::new(TestFaults));
        c.begin_step(5);
        c.compute(0, TaskKind::Pair, 1.0);
        c.compute(1, TaskKind::Pair, 1.0);
        assert_eq!(c.task_ledger(0).seconds(TaskKind::Pair), 1.0);
        assert_eq!(c.task_ledger(1).seconds(TaskKind::Pair), 2.0);
        assert_eq!(rec.counter_value("fault_rank_slow"), Some(1.0));
        // Off-schedule steps are unperturbed.
        c.begin_step(6);
        c.compute(1, TaskKind::Pair, 1.0);
        assert_eq!(c.task_ledger(1).seconds(TaskKind::Pair), 3.0);
    }

    #[test]
    fn halo_drop_and_duplicate_cost_extra_transfer() {
        let baseline = {
            let mut c = VirtualCluster::new(2);
            c.halo_exchange(&[vec![1], vec![0]], &[1e6; 2], LINK);
            (c.mpi_ledger(1).total(), c.mpi_ledger(0).total())
        };
        let rec = Recorder::default();
        let mut c = VirtualCluster::new(2);
        c.set_recorder(rec.clone());
        c.set_faults(Arc::new(TestFaults));
        c.begin_step(7); // rank 1 drops its inbound halo
        c.halo_exchange(&[vec![1], vec![0]], &[1e6; 2], LINK);
        assert!(c.mpi_ledger(1).total() > baseline.0);
        assert_eq!(c.mpi_ledger(0).seconds(MpiFunction::Sendrecv), baseline.1);
        assert_eq!(rec.counter_value("fault_halo_drop"), Some(1.0));
        let after_drop = c.mpi_ledger(1).total();
        c.begin_step(9); // rank 1 receives a duplicate
        c.halo_exchange(&[vec![1], vec![0]], &[1e6; 2], LINK);
        assert!(c.mpi_ledger(1).total() - after_drop > baseline.0);
        assert_eq!(rec.counter_value("fault_halo_dup"), Some(1.0));
    }

    /// Comm-fault plan: rank 1 fail-stops at step 4; rank 0's inbound halo
    /// is corrupted at step 2.
    struct CommFaults;

    impl ClusterFaults for CommFaults {
        fn crash_rank(&self, rank: usize, step: u64) -> bool {
            rank == 1 && step >= 4
        }
        fn corrupt_halo(&self, rank: usize, step: u64) -> bool {
            rank == 0 && step == 2
        }
    }

    const RING: [&[usize]; 4] = [&[1, 3], &[0, 2], &[1, 3], &[0, 2]];

    fn ring_partners() -> Vec<Vec<usize>> {
        RING.iter().map(|p| p.to_vec()).collect()
    }

    fn run_comm_steps(c: &mut VirtualCluster, steps: u64) {
        let partners = ring_partners();
        for step in 0..steps {
            c.begin_step(step);
            for r in 0..c.nranks() {
                c.compute(r, TaskKind::Pair, 0.01);
            }
            c.halo_exchange(&partners, &[1e5; 4], LINK);
        }
    }

    #[test]
    fn corrupt_halo_is_detected_and_retried() {
        let rec = Recorder::default();
        let mut c = VirtualCluster::new(4);
        c.set_recorder(rec.clone());
        c.set_faults(Arc::new(CommFaults));
        c.set_comm_policy(CommPolicy::default());
        run_comm_steps(&mut c, 4);
        let corrupt: Vec<_> = c
            .comm_events()
            .iter()
            .filter(|e| e.status == CommStatus::Corrupt)
            .collect();
        assert_eq!(corrupt.len(), 1);
        assert_eq!(corrupt[0].rank, 0);
        assert_eq!(corrupt[0].step, 2);
        assert_eq!(corrupt[0].attempts, 1);
        assert!(corrupt[0].recovered, "one retry heals a corrupt payload");
        assert!(corrupt[0].seconds_lost > 0.0);
        assert_eq!(c.retries_spent(0), 1);
        assert_eq!(rec.counter_value("comm_corrupt"), Some(1.0));
        assert_eq!(rec.counter_value("fault_halo_corrupt"), Some(1.0));
        assert_eq!(rec.counter_value("comm_retry"), Some(1.0));
        assert!(rec.counter_value("comm_exchange_ok").unwrap_or(0.0) > 0.0);
        // The retry surfaces on the MPI_Waitany row.
        assert!(c.mpi_ledger(0).seconds(MpiFunction::Waitany) > 0.0);
    }

    #[test]
    fn crashed_rank_is_detected_declared_failed_and_excluded() {
        let rec = Recorder::default();
        let mut c = VirtualCluster::new(4);
        c.set_recorder(rec.clone());
        c.set_faults(Arc::new(CommFaults));
        c.set_comm_policy(CommPolicy::default());
        run_comm_steps(&mut c, 8);
        assert_eq!(c.crashed_ranks(), vec![1]);
        assert_eq!(c.failed_ranks(), vec![1], "silence exhausts the budget");
        let timeouts: Vec<_> = c
            .comm_events()
            .iter()
            .filter(|e| e.status == CommStatus::TimedOut && e.peer == Some(1))
            .collect();
        assert_eq!(timeouts.len(), 1, "first adjacent rank declares it");
        assert!(!timeouts[0].recovered);
        assert!(timeouts[0].attempts >= 1);
        assert_eq!(rec.counter_value("fault_rank_crash"), Some(1.0));
        assert_eq!(rec.counter_value("comm_budget_exhausted"), Some(1.0));
        // The crashed rank's clock froze at the step-4 frontier; the
        // survivors kept marching.
        let clocks = c.rank_clocks();
        assert!(clocks[0] > clocks[1] && clocks[2] > clocks[1]);
        // Survivors keep exchanging after the shrink (no partner waits on
        // rank 1 once it is declared failed).
        let before = c.rank_clocks();
        c.begin_step(8);
        c.halo_exchange(&ring_partners(), &[1e5; 4], LINK);
        let after = c.rank_clocks();
        assert_eq!(after[1], before[1], "dead rank stays frozen");
        assert!(after[0] > before[0] && after[2] > before[2]);
    }

    #[test]
    fn policed_healthy_run_matches_unpoliced_clocks() {
        let mut plain = VirtualCluster::new(4);
        let mut policed = VirtualCluster::new(4);
        policed.set_comm_policy(CommPolicy::default());
        run_comm_steps(&mut plain, 6);
        run_comm_steps(&mut policed, 6);
        plain.allreduce(128.0, LINK, TaskKind::Output);
        policed.allreduce(128.0, LINK, TaskKind::Output);
        assert_eq!(plain.rank_clocks(), policed.rank_clocks());
        assert!(policed.comm_events().is_empty(), "healthy run, no events");
    }

    #[test]
    fn comm_detection_is_bitwise_reproducible() {
        let run = || {
            let mut c = VirtualCluster::new(4);
            c.set_faults(Arc::new(CommFaults));
            c.set_comm_policy(CommPolicy {
                seed: 2022,
                ..CommPolicy::default()
            });
            run_comm_steps(&mut c, 8);
            (c.rank_clocks(), c.comm_events().to_vec())
        };
        let (clocks_a, events_a) = run();
        let (clocks_b, events_b) = run();
        assert_eq!(clocks_a, clocks_b);
        assert_eq!(events_a, events_b);
    }

    #[test]
    fn allreduce_excludes_failed_ranks_and_classifies_stragglers() {
        let mut c = VirtualCluster::new(4);
        c.set_faults(Arc::new(CommFaults));
        c.set_comm_policy(CommPolicy {
            timeout_seconds: 0.001,
            ..CommPolicy::default()
        });
        run_comm_steps(&mut c, 8); // rank 1 crashed + declared failed
        c.compute(0, TaskKind::Pair, 0.5); // straggler past the deadline
        let before = c.rank_clocks();
        c.allreduce(128.0, LINK, TaskKind::Output);
        let after = c.rank_clocks();
        assert_eq!(after[1], before[1], "dead rank skips the collective");
        // Survivors synchronized to the straggler's frontier.
        assert!((after[0] - after[2]).abs() < 1e-15);
        assert!(c
            .comm_events()
            .iter()
            .any(|e| e.exchange == CommExchange::Allreduce
                && e.status == CommStatus::TimedOut
                && e.recovered));
    }

    #[test]
    fn recorder_gets_per_rank_lanes_at_simulated_time() {
        let rec = Recorder::default();
        let mut c = VirtualCluster::new(2);
        c.set_recorder(rec.clone());
        c.mpi_init(0.1, 0.0);
        c.compute(0, TaskKind::Pair, 2.0);
        c.compute(1, TaskKind::Pair, 1.0);
        c.halo_exchange(&[vec![1], vec![0]], &[100.0; 2], LINK);

        let events = rec.events();
        // Ranks 0 and 1 map to lanes 1 and 2; the engine lane 0 is unused.
        let lanes: std::collections::HashSet<u32> = events.iter().map(|e| e.lane).collect();
        assert_eq!(lanes, [1u32, 2].into_iter().collect());
        // The skewed rank 1 waited; its MPI_Wait span starts at its own
        // simulated clock (0.1 init + 1.0 compute = 1.1 s → 1.1e6 µs).
        let wait = events
            .iter()
            .find(|e| e.name == "MPI_Wait")
            .expect("skew produces an MPI_Wait span");
        assert_eq!(wait.lane, 2);
        assert!((wait.ts_us - 1.1e6).abs() < 1.0, "ts {}", wait.ts_us);
        assert!((wait.dur_us - 1.0e6).abs() < 1.0, "dur {}", wait.dur_us);
        // Comm task spans and MPI_Sendrecv spans are both present.
        assert!(events.iter().any(|e| e.cat == "task" && e.name == "Comm"));
        assert!(events.iter().any(|e| e.name == "MPI_Sendrecv"));
        assert!(events.iter().any(|e| e.name == "MPI_Init"));
        // Ledger bookkeeping is unchanged by tracing.
        assert!((c.mpi_ledger(1).skew_seconds() - 1.0).abs() < 1e-12);
    }
}
