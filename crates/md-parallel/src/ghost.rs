//! Ghost-atom construction for the spatial decomposition.
//!
//! Each rank owns the atoms inside its subdomain and keeps *ghost copies* of
//! every atom within the interaction cutoff of its subdomain surface (from
//! neighboring subdomains, possibly through periodic images). The test suite
//! proves that pair forces computed per-rank over owned + ghost atoms equal
//! the single-process result — the correctness contract behind the paper's
//! MPI parallelization.

use crate::decomposition::Decomposition;
use md_core::{Vec3, V3};

/// Ghost sets of one rank.
#[derive(Debug, Clone, Default)]
pub struct RankAtoms {
    /// Global indices of atoms this rank owns.
    pub owned: Vec<usize>,
    /// Ghost copies: `(global index, position)` where the position has been
    /// shifted to the periodic image nearest this subdomain.
    pub ghosts: Vec<(usize, V3)>,
}

/// The full owned/ghost partition for every rank.
#[derive(Debug, Clone)]
pub struct GhostExchange {
    ranks: Vec<RankAtoms>,
    cutoff: f64,
}

/// Maximum per-axis candidate subdomains (cutoff spans at most a few cells).
const MAX_AXIS: usize = 12;

/// Per-axis candidate subdomain indices (with the periodic shift that maps
/// the atom into that subdomain's frame), allocation-free.
fn axis_candidates(
    coord: f64,
    lo: f64,
    len: f64,
    n: usize,
    periodic: bool,
    cutoff: f64,
) -> ([(usize, f64); MAX_AXIS], usize) {
    let s = len / n as f64;
    let mut out = [(0usize, 0.0f64); MAX_AXIS];
    let mut count = 0usize;
    let i_lo = ((coord - cutoff - lo) / s).floor() as i64;
    let i_hi = ((coord + cutoff - lo) / s).floor() as i64;
    for i in i_lo..=i_hi {
        if count == MAX_AXIS {
            break; // cutoff wraps the axis more than once; halo saturated
        }
        if periodic {
            let w = i.rem_euclid(n as i64) as usize;
            // Shift that maps the atom next to subdomain w.
            let shift = -((i - w as i64) as f64) / n as f64 * len;
            let dup = out[..count]
                .iter()
                .any(|&(idx, sh)| idx == w && (sh - shift).abs() < 1e-9);
            if !dup {
                out[count] = (w, shift);
                count += 1;
            }
        } else if i >= 0 && i < n as i64 {
            out[count] = (i as usize, 0.0);
            count += 1;
        }
    }
    (out, count)
}

impl GhostExchange {
    /// Builds owned/ghost sets for every rank of `d` at the given cutoff.
    ///
    /// O(N · k) where `k` is the (small) number of subdomains within the
    /// cutoff of an atom.
    pub fn build(d: &Decomposition, x: &[V3], cutoff: f64) -> Self {
        let bx = d.sim_box();
        let grid = d.grid();
        let l = bx.lengths();
        let lo = bx.lo();
        let mut ranks = vec![RankAtoms::default(); d.nranks()];
        for (gi, &p) in x.iter().enumerate() {
            let owner = d.rank_of_position(p);
            ranks[owner].owned.push(gi);
            let (cx, nx) = axis_candidates(p.x, lo.x, l.x, grid.px, bx.is_periodic(0), cutoff);
            let (cy, ny) = axis_candidates(p.y, lo.y, l.y, grid.py, bx.is_periodic(1), cutoff);
            let (cz, nz) = axis_candidates(p.z, lo.z, l.z, grid.pz, bx.is_periodic(2), cutoff);
            for &(ix, sx) in &cx[..nx] {
                for &(iy, sy) in &cy[..ny] {
                    for &(iz, sz) in &cz[..nz] {
                        let r = grid.rank_of(ix, iy, iz);
                        let shifted = p + Vec3::new(sx, sy, sz);
                        if r == owner && sx == 0.0 && sy == 0.0 && sz == 0.0 {
                            continue; // the owned copy itself
                        }
                        ranks[r].ghosts.push((gi, shifted));
                    }
                }
            }
        }
        GhostExchange { ranks, cutoff }
    }

    /// Counts owned and ghost atoms per rank without materializing the ghost
    /// copies (O(N·k), allocation-free inner loop) — the census fast path.
    pub fn count(d: &Decomposition, x: &[V3], cutoff: f64) -> (Vec<usize>, Vec<usize>) {
        let bx = d.sim_box();
        let grid = d.grid();
        let l = bx.lengths();
        let lo = bx.lo();
        let mut owned = vec![0usize; d.nranks()];
        let mut ghosts = vec![0usize; d.nranks()];
        for &p in x {
            let owner = d.rank_of_position(p);
            owned[owner] += 1;
            let (cx, nx) = axis_candidates(p.x, lo.x, l.x, grid.px, bx.is_periodic(0), cutoff);
            let (cy, ny) = axis_candidates(p.y, lo.y, l.y, grid.py, bx.is_periodic(1), cutoff);
            let (cz, nz) = axis_candidates(p.z, lo.z, l.z, grid.pz, bx.is_periodic(2), cutoff);
            for &(ix, sx) in &cx[..nx] {
                for &(iy, sy) in &cy[..ny] {
                    for &(iz, sz) in &cz[..nz] {
                        let r = grid.rank_of(ix, iy, iz);
                        if r == owner && sx == 0.0 && sy == 0.0 && sz == 0.0 {
                            continue;
                        }
                        ghosts[r] += 1;
                    }
                }
            }
        }
        (owned, ghosts)
    }

    /// The owned/ghost sets of rank `r`.
    pub fn rank(&self, r: usize) -> &RankAtoms {
        &self.ranks[r]
    }

    /// Rank count.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Cutoff used at construction.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Total ghost copies across all ranks (the halo communication volume).
    pub fn total_ghosts(&self) -> usize {
        self.ranks.iter().map(|r| r.ghosts.len()).sum()
    }

    /// Ghost copies per rank.
    pub fn ghost_counts(&self) -> Vec<usize> {
        self.ranks.iter().map(|r| r.ghosts.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::SimBox;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_positions(n: usize, l: f64, seed: u64) -> Vec<V3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                )
            })
            .collect()
    }

    #[test]
    fn owned_sets_partition_the_atoms() {
        let bx = SimBox::cubic(12.0);
        let d = Decomposition::new(bx, 8).unwrap();
        let x = random_positions(400, 12.0, 1);
        let g = GhostExchange::build(&d, &x, 1.5);
        let total: usize = (0..8).map(|r| g.rank(r).owned.len()).sum();
        assert_eq!(total, 400);
        let mut seen = vec![false; 400];
        for r in 0..8 {
            for &i in &g.rank(r).owned {
                assert!(!seen[i], "atom {i} owned twice");
                seen[i] = true;
            }
        }
    }

    #[test]
    fn ghosts_are_exactly_the_atoms_near_the_subdomain() {
        let bx = SimBox::cubic(12.0);
        let d = Decomposition::new(bx, 8).unwrap();
        let x = random_positions(300, 12.0, 2);
        let cutoff = 1.4;
        let g = GhostExchange::build(&d, &x, cutoff);
        for r in 0..8 {
            let (lo, hi) = d.subdomain(r);
            // Reference: atom j is a ghost of r iff some periodic image of j
            // lies within `cutoff` of the subdomain brick and is not owned.
            let mut want = std::collections::BTreeSet::new();
            let l = bx.lengths();
            for (j, &p) in x.iter().enumerate() {
                for sx in [-1.0, 0.0, 1.0] {
                    for sy in [-1.0, 0.0, 1.0] {
                        for sz in [-1.0, 0.0, 1.0] {
                            let im = p + Vec3::new(sx * l.x, sy * l.y, sz * l.z);
                            let inside_ext = (0..3)
                                .all(|dd| im[dd] >= lo[dd] - cutoff && im[dd] <= hi[dd] + cutoff);
                            let owned_here =
                                sx == 0.0 && sy == 0.0 && sz == 0.0 && d.rank_of_position(p) == r;
                            if inside_ext && !owned_here {
                                want.insert((j, (sx as i64, sy as i64, sz as i64)));
                            }
                        }
                    }
                }
            }
            let got: std::collections::BTreeSet<_> = g
                .rank(r)
                .ghosts
                .iter()
                .map(|&(j, pos)| {
                    let delta = pos - x[j];
                    (
                        j,
                        (
                            (delta.x / l.x).round() as i64,
                            (delta.y / l.y).round() as i64,
                            (delta.z / l.z).round() as i64,
                        ),
                    )
                })
                .collect();
            assert_eq!(got, want, "rank {r}");
        }
    }

    #[test]
    fn ghost_positions_are_near_the_subdomain() {
        let bx = SimBox::cubic(10.0);
        let d = Decomposition::new(bx, 27).unwrap();
        let x = random_positions(500, 10.0, 3);
        let cutoff = 1.2;
        let g = GhostExchange::build(&d, &x, cutoff);
        for r in 0..27 {
            let (lo, hi) = d.subdomain(r);
            for &(_, p) in &g.rank(r).ghosts {
                for dd in 0..3 {
                    assert!(p[dd] >= lo[dd] - cutoff - 1e-9 && p[dd] <= hi[dd] + cutoff + 1e-9);
                }
            }
        }
    }

    #[test]
    fn more_ranks_means_more_total_ghosts() {
        let bx = SimBox::cubic(16.0);
        let x = random_positions(2000, 16.0, 4);
        let g2 = GhostExchange::build(&Decomposition::new(bx, 2).unwrap(), &x, 1.0);
        let g16 = GhostExchange::build(&Decomposition::new(bx, 16).unwrap(), &x, 1.0);
        assert!(g16.total_ghosts() > g2.total_ghosts());
    }
}
