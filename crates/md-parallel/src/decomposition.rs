//! LAMMPS-style 3D spatial decomposition of the simulation box.
//!
//! The box is split into a `px × py × pz` brick grid with `px·py·pz = P`,
//! choosing the factorization that minimizes total subdomain surface area
//! (which minimizes ghost-exchange volume), exactly as LAMMPS `procs2box`
//! does for orthogonal boxes.

use md_core::{CoreError, Result, SimBox, V3};

/// A processor-grid factorization `px × py × pz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ProcGrid {
    /// Ranks along x.
    pub px: usize,
    /// Ranks along y.
    pub py: usize,
    /// Ranks along z.
    pub pz: usize,
}

impl ProcGrid {
    /// Total rank count.
    pub fn count(&self) -> usize {
        self.px * self.py * self.pz
    }

    /// Rank id of grid cell `(ix, iy, iz)`.
    pub fn rank_of(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (iz * self.py + iy) * self.px + ix
    }

    /// Grid cell of rank `r`.
    pub fn coords_of(&self, r: usize) -> (usize, usize, usize) {
        let ix = r % self.px;
        let iy = (r / self.px) % self.py;
        let iz = r / (self.px * self.py);
        (ix, iy, iz)
    }

    /// Chooses the factorization of `p` minimizing subdomain surface area
    /// for a box with the given extents.
    ///
    /// # Errors
    ///
    /// Returns an error if `p == 0`.
    pub fn choose(p: usize, lengths: V3) -> Result<Self> {
        if p == 0 {
            return Err(CoreError::InvalidParameter {
                name: "ranks",
                reason: "rank count must be positive".to_string(),
            });
        }
        let mut best: Option<(f64, ProcGrid)> = None;
        for px in 1..=p {
            if !p.is_multiple_of(px) {
                continue;
            }
            let rem = p / px;
            for py in 1..=rem {
                if !rem.is_multiple_of(py) {
                    continue;
                }
                let pz = rem / py;
                let (sx, sy, sz) = (
                    lengths.x / px as f64,
                    lengths.y / py as f64,
                    lengths.z / pz as f64,
                );
                // Surface area of one subdomain brick.
                let surf = 2.0 * (sx * sy + sy * sz + sx * sz);
                let grid = ProcGrid { px, py, pz };
                if best.is_none_or(|(s, _)| surf < s) {
                    best = Some((surf, grid));
                }
            }
        }
        Ok(best.expect("p >= 1 always yields a factorization").1)
    }
}

impl std::fmt::Display for ProcGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.px, self.py, self.pz)
    }
}

/// A concrete decomposition of a box across a processor grid.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Decomposition {
    bx: SimBox,
    grid: ProcGrid,
}

impl Decomposition {
    /// Decomposes `bx` across `p` ranks with the best-surface factorization.
    ///
    /// # Errors
    ///
    /// Returns an error if `p == 0`.
    pub fn new(bx: SimBox, p: usize) -> Result<Self> {
        let grid = ProcGrid::choose(p, bx.lengths())?;
        Ok(Decomposition { bx, grid })
    }

    /// The processor grid.
    pub fn grid(&self) -> ProcGrid {
        self.grid
    }

    /// The decomposed box.
    pub fn sim_box(&self) -> &SimBox {
        &self.bx
    }

    /// Rank count.
    pub fn nranks(&self) -> usize {
        self.grid.count()
    }

    /// The owning rank of position `x` (positions outside the box are
    /// wrapped by fractional-coordinate clamping, so ghosts resolve too).
    pub fn rank_of_position(&self, x: V3) -> usize {
        let f = self.bx.fractional(x);
        let cell = |frac: f64, n: usize| -> usize {
            let w = frac.rem_euclid(1.0);
            ((w * n as f64) as usize).min(n - 1)
        };
        self.grid.rank_of(
            cell(f.x, self.grid.px),
            cell(f.y, self.grid.py),
            cell(f.z, self.grid.pz),
        )
    }

    /// Subdomain bounds `(lo, hi)` of rank `r`.
    pub fn subdomain(&self, r: usize) -> (V3, V3) {
        let (ix, iy, iz) = self.grid.coords_of(r);
        let l = self.bx.lengths();
        let lo = self.bx.lo();
        let s = V3::new(
            l.x / self.grid.px as f64,
            l.y / self.grid.py as f64,
            l.z / self.grid.pz as f64,
        );
        let sub_lo = V3::new(
            lo.x + ix as f64 * s.x,
            lo.y + iy as f64 * s.y,
            lo.z + iz as f64 * s.z,
        );
        (sub_lo, sub_lo + s)
    }

    /// The six face-neighbor ranks of `r` (−x, +x, −y, +y, −z, +z), with
    /// periodic wrap-around. On non-periodic axes at the boundary the rank
    /// itself is returned (self-exchange carries no data).
    pub fn face_neighbors(&self, r: usize) -> [usize; 6] {
        let (ix, iy, iz) = self.grid.coords_of(r);
        let wrap = |i: i64, n: usize, axis: usize| -> Option<usize> {
            if self.bx.is_periodic(axis) {
                Some(i.rem_euclid(n as i64) as usize)
            } else if i < 0 || i >= n as i64 {
                None
            } else {
                Some(i as usize)
            }
        };
        let mut out = [r; 6];
        let coords = [ix as i64, iy as i64, iz as i64];
        let dims = [self.grid.px, self.grid.py, self.grid.pz];
        for axis in 0..3 {
            for (slot, delta) in [(2 * axis, -1i64), (2 * axis + 1, 1i64)] {
                let mut c = coords;
                c[axis] += delta;
                if let Some(w) = wrap(c[axis], dims[axis], axis) {
                    let mut u = [ix, iy, iz];
                    u[axis] = w;
                    out[slot] = self.grid.rank_of(u[0], u[1], u[2]);
                }
            }
        }
        out
    }

    /// Counts owned atoms per rank (O(N)).
    pub fn count_owned(&self, x: &[V3]) -> Vec<usize> {
        let mut counts = vec![0usize; self.nranks()];
        for &p in x {
            counts[self.rank_of_position(p)] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::Vec3;

    #[test]
    fn grid_choice_prefers_cubic_subdomains() {
        let g = ProcGrid::choose(8, Vec3::splat(10.0)).unwrap();
        assert_eq!((g.px, g.py, g.pz), (2, 2, 2));
        let g = ProcGrid::choose(64, Vec3::splat(10.0)).unwrap();
        assert_eq!((g.px, g.py, g.pz), (4, 4, 4));
    }

    #[test]
    fn grid_choice_follows_box_anisotropy() {
        // A box twice as long in x should get more ranks along x.
        let g = ProcGrid::choose(2, Vec3::new(20.0, 10.0, 10.0)).unwrap();
        assert_eq!((g.px, g.py, g.pz), (2, 1, 1));
    }

    #[test]
    fn rank_coords_roundtrip() {
        let g = ProcGrid {
            px: 3,
            py: 4,
            pz: 5,
        };
        for r in 0..g.count() {
            let (x, y, z) = g.coords_of(r);
            assert_eq!(g.rank_of(x, y, z), r);
        }
    }

    #[test]
    fn every_position_maps_to_exactly_one_rank() {
        let bx = SimBox::cubic(10.0);
        let d = Decomposition::new(bx, 8).unwrap();
        let mut counts = vec![0usize; 8];
        for ix in 0..10 {
            for iy in 0..10 {
                for iz in 0..10 {
                    let p = Vec3::new(ix as f64 + 0.5, iy as f64 + 0.5, iz as f64 + 0.5);
                    counts[d.rank_of_position(p)] += 1;
                }
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        assert!(counts.iter().all(|&c| c == 125), "{counts:?}");
    }

    #[test]
    fn subdomains_partition_the_box() {
        let bx = SimBox::orthogonal(8.0, 4.0, 2.0);
        let d = Decomposition::new(bx, 16).unwrap();
        let vol_total: f64 = (0..16)
            .map(|r| {
                let (lo, hi) = d.subdomain(r);
                (hi.x - lo.x) * (hi.y - lo.y) * (hi.z - lo.z)
            })
            .sum();
        assert!((vol_total - bx.volume()).abs() < 1e-9);
        // An interior point maps to the rank whose subdomain contains it.
        for r in 0..16 {
            let (lo, hi) = d.subdomain(r);
            let mid = (lo + hi) * 0.5;
            assert_eq!(d.rank_of_position(mid), r);
        }
    }

    #[test]
    fn face_neighbors_wrap_periodically() {
        let bx = SimBox::cubic(10.0);
        let d = Decomposition::new(bx, 8).unwrap(); // 2x2x2
        let nb = d.face_neighbors(0);
        // In a 2-wide periodic grid, -x and +x neighbors coincide.
        assert_eq!(nb[0], nb[1]);
        assert_ne!(nb[0], 0);
    }

    #[test]
    fn nonperiodic_boundary_has_self_neighbor() {
        let bx = SimBox::cubic(10.0).with_periodicity(true, true, false);
        let d = Decomposition::new(bx, 8).unwrap();
        // Rank at z=0 has itself as its -z neighbor (no exchange).
        let r = d.grid().rank_of(0, 0, 0);
        assert_eq!(d.face_neighbors(r)[4], r);
    }

    #[test]
    fn count_owned_is_conserved() {
        let bx = SimBox::cubic(10.0);
        let d = Decomposition::new(bx, 27).unwrap();
        let x: Vec<V3> = (0..500)
            .map(|i| {
                let t = i as f64;
                Vec3::new((t * 0.617) % 10.0, (t * 0.379) % 10.0, (t * 0.211) % 10.0)
            })
            .collect();
        let counts = d.count_owned(&x);
        assert_eq!(counts.iter().sum::<usize>(), 500);
    }

    #[test]
    fn rejects_zero_ranks() {
        assert!(Decomposition::new(SimBox::cubic(1.0), 0).is_err());
    }
}
