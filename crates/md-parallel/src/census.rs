//! The workload census: exact per-rank load statistics measured from the
//! real particle positions of a benchmark system.
//!
//! The performance models in `md-model` consume these counts to derive
//! per-rank task times; the load *skew* measured here is what turns into the
//! MPI imbalance of the paper's Figure 4.

use crate::decomposition::Decomposition;
use crate::ghost::GhostExchange;
use md_core::V3;

/// Fractional busy-time excess over the mean above which the slowest rank
/// is named a repartitioning suspect. Shared with md-insight's
/// `ImbalanceReport` suspect-rank rule, so the rank the analysis layer
/// blames is exactly the rank the census re-splits around.
pub const SUSPECT_EXCESS_FRACTION: f64 = 0.05;

/// Names the rank whose busy time exceeds the mean by more than
/// [`SUSPECT_EXCESS_FRACTION`], if any — the feedback signal that triggers
/// an imbalance-aware re-split of the box.
pub fn suspect_rank(busy: &[f64]) -> Option<usize> {
    if busy.len() < 2 {
        return None;
    }
    let mean = busy.iter().sum::<f64>() / busy.len() as f64;
    if mean <= 0.0 {
        return None;
    }
    let (max_rank, max_busy) = busy.iter().copied().enumerate().fold(
        (0, f64::MIN),
        |acc, (r, b)| if b > acc.1 { (r, b) } else { acc },
    );
    ((max_busy - mean) / mean > SUSPECT_EXCESS_FRACTION).then_some(max_rank)
}

/// Re-plans per-rank loads around measured busy times: each rank's
/// effective per-atom rate is `busy / owned`, and atoms are reassigned in
/// inverse proportion to that rate (largest-remainder rounding, so the
/// total is conserved and the result is deterministic). Ghost counts are
/// scaled with each rank's owned-atom ratio. This models the diffusive
/// re-split a production MD stack performs when one rank straggles.
pub fn replan_loads(loads: &[RankLoad], busy: &[f64]) -> Vec<RankLoad> {
    assert_eq!(loads.len(), busy.len(), "one busy time per rank");
    let natoms: usize = loads.iter().map(|l| l.owned).sum();
    if natoms == 0 || loads.is_empty() {
        return loads.to_vec();
    }
    // Inverse effective rate: ranks that got more done per atom deserve
    // more atoms. A rank with no atoms (or no busy time) inherits the mean
    // rate so it re-enters the split neutrally.
    let rates: Vec<f64> = loads
        .iter()
        .zip(busy)
        .map(|(l, &b)| {
            if l.owned > 0 && b > 0.0 {
                b / l.owned as f64
            } else {
                f64::NAN
            }
        })
        .collect();
    let known: Vec<f64> = rates.iter().copied().filter(|r| r.is_finite()).collect();
    if known.is_empty() {
        return loads.to_vec();
    }
    let mean_rate = known.iter().sum::<f64>() / known.len() as f64;
    let weights: Vec<f64> = rates
        .iter()
        .map(|&r| 1.0 / if r.is_finite() { r } else { mean_rate })
        .collect();
    let total_w: f64 = weights.iter().sum();
    // Largest-remainder apportionment of `natoms` over `weights`.
    let ideal: Vec<f64> = weights
        .iter()
        .map(|w| natoms as f64 * w / total_w)
        .collect();
    let mut owned: Vec<usize> = ideal.iter().map(|v| v.floor() as usize).collect();
    let mut leftover = natoms - owned.iter().sum::<usize>();
    let mut order: Vec<usize> = (0..owned.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = ideal[a] - ideal[a].floor();
        let fb = ideal[b] - ideal[b].floor();
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    for &r in &order {
        if leftover == 0 {
            break;
        }
        owned[r] += 1;
        leftover -= 1;
    }
    loads
        .iter()
        .zip(&owned)
        .map(|(l, &new_owned)| {
            let ghosts = if l.owned > 0 {
                ((l.ghosts as f64) * new_owned as f64 / l.owned as f64).round() as usize
            } else {
                l.ghosts
            };
            RankLoad {
                owned: new_owned,
                ghosts,
            }
        })
        .collect()
}

/// Load of a single rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankLoad {
    /// Atoms this rank owns.
    pub owned: usize,
    /// Ghost copies this rank keeps (≈ halo exchange volume).
    pub ghosts: usize,
}

/// Per-rank loads for one decomposition of one system.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WorkloadCensus {
    loads: Vec<RankLoad>,
    natoms: usize,
    ghost_cutoff: f64,
}

impl WorkloadCensus {
    /// Measures the census from real positions: owned atoms per rank (O(N))
    /// and ghost counts within `ghost_cutoff` of each subdomain (O(N·k)),
    /// without materializing ghost copies.
    pub fn measure(d: &Decomposition, x: &[V3], ghost_cutoff: f64) -> Self {
        let (owned, ghosts) = GhostExchange::count(d, x, ghost_cutoff);
        let loads = owned
            .into_iter()
            .zip(ghosts)
            .map(|(owned, ghosts)| RankLoad { owned, ghosts })
            .collect();
        WorkloadCensus {
            loads,
            natoms: x.len(),
            ghost_cutoff,
        }
    }

    /// Builds a census from already-known counts (used by the analytic
    /// uniform-density path for very large systems).
    pub fn from_loads(loads: Vec<RankLoad>, natoms: usize, ghost_cutoff: f64) -> Self {
        WorkloadCensus {
            loads,
            natoms,
            ghost_cutoff,
        }
    }

    /// Per-rank loads.
    pub fn loads(&self) -> &[RankLoad] {
        &self.loads
    }

    /// Rank count.
    pub fn nranks(&self) -> usize {
        self.loads.len()
    }

    /// Total atoms in the system.
    pub fn natoms(&self) -> usize {
        self.natoms
    }

    /// Ghost cutoff used for the halo.
    pub fn ghost_cutoff(&self) -> f64 {
        self.ghost_cutoff
    }

    /// Largest owned-atom count.
    pub fn max_owned(&self) -> usize {
        self.loads.iter().map(|l| l.owned).max().unwrap_or(0)
    }

    /// Mean owned-atom count.
    pub fn mean_owned(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.natoms as f64 / self.loads.len() as f64
        }
    }

    /// Load imbalance factor `max / mean` (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_owned();
        if mean > 0.0 {
            self.max_owned() as f64 / mean
        } else {
            1.0
        }
    }

    /// Mean ghost count per rank.
    pub fn mean_ghosts(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.loads.iter().map(|l| l.ghosts).sum::<usize>() as f64 / self.loads.len() as f64
        }
    }

    /// Surface-to-volume ratio proxy: mean ghosts per owned atom. This is
    /// the quantity the paper invokes to explain why communication dominates
    /// for small systems at high rank counts.
    pub fn ghost_ratio(&self) -> f64 {
        let mean = self.mean_owned();
        if mean > 0.0 {
            self.mean_ghosts() / mean
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::{SimBox, Vec3};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform(n: usize, l: f64, seed: u64) -> Vec<V3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                )
            })
            .collect()
    }

    #[test]
    fn uniform_system_is_nearly_balanced() {
        let bx = SimBox::cubic(20.0);
        let d = Decomposition::new(bx, 8).unwrap();
        let x = uniform(8000, 20.0, 1);
        let c = WorkloadCensus::measure(&d, &x, 2.0);
        assert_eq!(c.loads().iter().map(|l| l.owned).sum::<usize>(), 8000);
        assert!(c.imbalance() < 1.15, "imbalance {}", c.imbalance());
    }

    #[test]
    fn layered_system_is_imbalanced() {
        // All atoms in the bottom half: the top-half ranks own nothing.
        let bx = SimBox::cubic(20.0);
        let d = Decomposition::new(bx, 8).unwrap();
        let mut x = uniform(4000, 20.0, 2);
        for p in &mut x {
            p.z *= 0.5;
        }
        let c = WorkloadCensus::measure(&d, &x, 2.0);
        assert!(c.imbalance() > 1.5, "imbalance {}", c.imbalance());
    }

    #[test]
    fn ghost_ratio_grows_with_rank_count() {
        let bx = SimBox::cubic(20.0);
        let x = uniform(8000, 20.0, 3);
        let r8 =
            WorkloadCensus::measure(&Decomposition::new(bx, 8).unwrap(), &x, 2.0).ghost_ratio();
        let r64 =
            WorkloadCensus::measure(&Decomposition::new(bx, 64).unwrap(), &x, 2.0).ghost_ratio();
        assert!(r64 > r8, "{r64} vs {r8}");
    }

    #[test]
    fn suspect_rank_names_the_straggler() {
        assert_eq!(suspect_rank(&[1.0, 1.0, 4.0, 1.0]), Some(2));
        assert_eq!(suspect_rank(&[1.0, 1.0, 1.0, 1.0]), None, "balanced");
        assert_eq!(suspect_rank(&[1.0]), None, "single rank");
        assert_eq!(suspect_rank(&[0.0, 0.0]), None, "no work yet");
    }

    #[test]
    fn replan_conserves_atoms_and_feeds_the_straggler_less() {
        let loads = vec![
            RankLoad {
                owned: 1000,
                ghosts: 200,
            };
            4
        ];
        // Rank 2 runs 4x slower per atom.
        let busy = [1.0, 1.0, 4.0, 1.0];
        let new = replan_loads(&loads, &busy);
        assert_eq!(new.iter().map(|l| l.owned).sum::<usize>(), 4000);
        assert!(
            new[2].owned < loads[2].owned / 2,
            "straggler kept {} atoms",
            new[2].owned
        );
        assert!(new[0].owned > 1000 && new[1].owned > 1000 && new[3].owned > 1000);
        assert!(new[2].ghosts < loads[2].ghosts, "ghosts scale with owned");
        // Deterministic: same inputs, same plan.
        assert_eq!(new, replan_loads(&loads, &busy));
    }

    #[test]
    fn replan_balanced_input_is_a_fixed_point() {
        let loads = vec![
            RankLoad {
                owned: 500,
                ghosts: 90,
            };
            8
        ];
        let busy = [2.0; 8];
        assert_eq!(replan_loads(&loads, &busy), loads);
    }

    #[test]
    fn single_rank_census_keeps_ghosts_from_periodic_images() {
        // Even one rank sees its own periodic images as ghosts when the
        // cutoff reaches across the boundary.
        let bx = SimBox::cubic(10.0);
        let d = Decomposition::new(bx, 1).unwrap();
        let x = vec![Vec3::new(0.5, 5.0, 5.0)];
        let c = WorkloadCensus::measure(&d, &x, 1.0);
        assert_eq!(c.loads()[0].owned, 1);
        assert!(c.loads()[0].ghosts >= 1, "periodic self-image is a ghost");
    }
}
