//! The workload census: exact per-rank load statistics measured from the
//! real particle positions of a benchmark system.
//!
//! The performance models in `md-model` consume these counts to derive
//! per-rank task times; the load *skew* measured here is what turns into the
//! MPI imbalance of the paper's Figure 4.

use crate::decomposition::Decomposition;
use crate::ghost::GhostExchange;
use md_core::V3;

/// Load of a single rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankLoad {
    /// Atoms this rank owns.
    pub owned: usize,
    /// Ghost copies this rank keeps (≈ halo exchange volume).
    pub ghosts: usize,
}

/// Per-rank loads for one decomposition of one system.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WorkloadCensus {
    loads: Vec<RankLoad>,
    natoms: usize,
    ghost_cutoff: f64,
}

impl WorkloadCensus {
    /// Measures the census from real positions: owned atoms per rank (O(N))
    /// and ghost counts within `ghost_cutoff` of each subdomain (O(N·k)),
    /// without materializing ghost copies.
    pub fn measure(d: &Decomposition, x: &[V3], ghost_cutoff: f64) -> Self {
        let (owned, ghosts) = GhostExchange::count(d, x, ghost_cutoff);
        let loads = owned
            .into_iter()
            .zip(ghosts)
            .map(|(owned, ghosts)| RankLoad { owned, ghosts })
            .collect();
        WorkloadCensus {
            loads,
            natoms: x.len(),
            ghost_cutoff,
        }
    }

    /// Builds a census from already-known counts (used by the analytic
    /// uniform-density path for very large systems).
    pub fn from_loads(loads: Vec<RankLoad>, natoms: usize, ghost_cutoff: f64) -> Self {
        WorkloadCensus {
            loads,
            natoms,
            ghost_cutoff,
        }
    }

    /// Per-rank loads.
    pub fn loads(&self) -> &[RankLoad] {
        &self.loads
    }

    /// Rank count.
    pub fn nranks(&self) -> usize {
        self.loads.len()
    }

    /// Total atoms in the system.
    pub fn natoms(&self) -> usize {
        self.natoms
    }

    /// Ghost cutoff used for the halo.
    pub fn ghost_cutoff(&self) -> f64 {
        self.ghost_cutoff
    }

    /// Largest owned-atom count.
    pub fn max_owned(&self) -> usize {
        self.loads.iter().map(|l| l.owned).max().unwrap_or(0)
    }

    /// Mean owned-atom count.
    pub fn mean_owned(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.natoms as f64 / self.loads.len() as f64
        }
    }

    /// Load imbalance factor `max / mean` (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_owned();
        if mean > 0.0 {
            self.max_owned() as f64 / mean
        } else {
            1.0
        }
    }

    /// Mean ghost count per rank.
    pub fn mean_ghosts(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.loads.iter().map(|l| l.ghosts).sum::<usize>() as f64 / self.loads.len() as f64
        }
    }

    /// Surface-to-volume ratio proxy: mean ghosts per owned atom. This is
    /// the quantity the paper invokes to explain why communication dominates
    /// for small systems at high rank counts.
    pub fn ghost_ratio(&self) -> f64 {
        let mean = self.mean_owned();
        if mean > 0.0 {
            self.mean_ghosts() / mean
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::{SimBox, Vec3};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform(n: usize, l: f64, seed: u64) -> Vec<V3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                )
            })
            .collect()
    }

    #[test]
    fn uniform_system_is_nearly_balanced() {
        let bx = SimBox::cubic(20.0);
        let d = Decomposition::new(bx, 8).unwrap();
        let x = uniform(8000, 20.0, 1);
        let c = WorkloadCensus::measure(&d, &x, 2.0);
        assert_eq!(c.loads().iter().map(|l| l.owned).sum::<usize>(), 8000);
        assert!(c.imbalance() < 1.15, "imbalance {}", c.imbalance());
    }

    #[test]
    fn layered_system_is_imbalanced() {
        // All atoms in the bottom half: the top-half ranks own nothing.
        let bx = SimBox::cubic(20.0);
        let d = Decomposition::new(bx, 8).unwrap();
        let mut x = uniform(4000, 20.0, 2);
        for p in &mut x {
            p.z *= 0.5;
        }
        let c = WorkloadCensus::measure(&d, &x, 2.0);
        assert!(c.imbalance() > 1.5, "imbalance {}", c.imbalance());
    }

    #[test]
    fn ghost_ratio_grows_with_rank_count() {
        let bx = SimBox::cubic(20.0);
        let x = uniform(8000, 20.0, 3);
        let r8 =
            WorkloadCensus::measure(&Decomposition::new(bx, 8).unwrap(), &x, 2.0).ghost_ratio();
        let r64 =
            WorkloadCensus::measure(&Decomposition::new(bx, 64).unwrap(), &x, 2.0).ghost_ratio();
        assert!(r64 > r8, "{r64} vs {r8}");
    }

    #[test]
    fn single_rank_census_keeps_ghosts_from_periodic_images() {
        // Even one rank sees its own periodic images as ghosts when the
        // cutoff reaches across the boundary.
        let bx = SimBox::cubic(10.0);
        let d = Decomposition::new(bx, 1).unwrap();
        let x = vec![Vec3::new(0.5, 5.0, 5.0)];
        let c = WorkloadCensus::measure(&d, &x, 1.0);
        assert_eq!(c.loads()[0].owned, 1);
        assert!(c.loads()[0].ghosts >= 1, "periodic self-image is a ghost");
    }
}
