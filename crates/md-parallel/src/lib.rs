//! # md-parallel — the virtual cluster substrate
//!
//! The paper characterizes LAMMPS' MPI parallelization: a 3D spatial
//! decomposition of the simulation box, ghost-atom halo exchange each
//! timestep, and global reductions (plus all-to-all transposes inside the
//! 3D FFT). This crate rebuilds that machinery twice over:
//!
//! * **Real decomposition** — [`Decomposition`] partitions a box into a
//!   LAMMPS-style processor grid, [`ghost`] constructs actual ghost-atom
//!   copies, and the test suite proves decomposed forces equal the
//!   single-process result.
//! * **Virtual execution** — [`VirtualCluster`] runs MPI ranks on *virtual
//!   clocks*: per-rank compute advances a rank's clock, halo exchanges and
//!   allreduces synchronize clocks through a latency/bandwidth link model,
//!   and every second is attributed to a task ([`md_core::TaskKind`]) and an
//!   MPI function ([`MpiFunction`]) ledger. The host machine's core count is
//!   irrelevant — this is how a 64-rank Xeon node is characterized on a
//!   1-core box (see DESIGN.md).
//!
//! [`WorkloadCensus`] bridges the two: it measures, from the *real* particle
//! positions of a benchmark system, exactly how many owned atoms, ghost
//! atoms, and interaction pairs every rank of a `P`-way decomposition gets.

pub mod census;
pub mod cluster;
pub mod comm;
pub mod decomposition;
pub mod ghost;
pub mod mpi;

pub use census::{replan_loads, suspect_rank, RankLoad, WorkloadCensus, SUSPECT_EXCESS_FRACTION};
pub use cluster::{ClusterFaults, CriticalStep, LinkModel, VirtualCluster};
pub use comm::{
    frame_ghost_payload, ghost_digest, verify_ghost_payload, CommExchange, CommHealthEvent,
    CommPolicy, CommStatus,
};
pub use decomposition::{Decomposition, ProcGrid};
pub use ghost::GhostExchange;
pub use mpi::{MpiFunction, MpiLedger};
