//! Communication health: per-exchange classification, CRC framing of ghost
//! payloads, and the deterministic retry/backoff policy.
//!
//! The virtual cluster's halo exchanges and allreduces are classified
//! against a per-exchange deadline ([`CommPolicy::timeout_seconds`]) and a
//! CRC-32 integrity check of the framed ghost payload (via
//! [`md_core::wire`]). Anything that is not [`CommStatus::Ok`] surfaces as
//! a typed [`CommHealthEvent`] and a `comm_*` counter, and is retried under
//! a seeded, capped exponential backoff — a pure function of
//! `(seed, rank, step, attempt)`, so a faulted run is bitwise reproducible
//! given the same fault plan.
//!
//! This is the detection half of the self-healing story: exhausting a
//! rank's retry budget marks the peer failed, and the resilience layer
//! (md-resilience) answers with a degraded-mode shrink over N−1 ranks.

use md_core::wire::{crc32, Reader, Writer};
use md_core::CoreError;

/// Classification of one communication exchange on one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CommStatus {
    /// Payload arrived within the deadline and passed the CRC check.
    Ok,
    /// The peer did not answer within [`CommPolicy::timeout_seconds`].
    TimedOut,
    /// The framed payload failed its CRC-32 integrity check.
    Corrupt,
}

impl CommStatus {
    /// Lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CommStatus::Ok => "ok",
            CommStatus::TimedOut => "timed-out",
            CommStatus::Corrupt => "corrupt",
        }
    }
}

/// Which collective the event classifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CommExchange {
    /// Paired `MPI_Sendrecv` halo exchange.
    Halo,
    /// Butterfly `MPI_Allreduce`.
    Allreduce,
}

impl CommExchange {
    /// Lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CommExchange::Halo => "halo",
            CommExchange::Allreduce => "allreduce",
        }
    }
}

/// One classified unhealthy exchange (healthy exchanges only bump the
/// `comm_exchange_ok` counter; materializing an event per rank per step
/// would swamp the run).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CommHealthEvent {
    /// Timestep the exchange belonged to.
    pub step: u64,
    /// Rank that observed the problem.
    pub rank: usize,
    /// Peer the problem was attributed to, when identifiable (the crashed
    /// or corrupting rank).
    pub peer: Option<usize>,
    /// Which collective failed.
    pub exchange: CommExchange,
    /// How the exchange was classified.
    pub status: CommStatus,
    /// Retries spent on this exchange.
    pub attempts: u32,
    /// Extra simulated seconds the rank lost to deadline waits, backoff,
    /// and retransmission.
    pub seconds_lost: f64,
    /// Whether a retry eventually succeeded (`false` means the retry
    /// budget was exhausted and the peer was declared failed).
    pub recovered: bool,
}

/// Deterministic retry policy: per-exchange deadline, per-rank retry
/// budget, and a seeded, capped exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CommPolicy {
    /// Per-exchange deadline, seconds. An exchange whose peer has not
    /// answered by then is classified [`CommStatus::TimedOut`].
    pub timeout_seconds: f64,
    /// Retries one rank may spend across the whole run before a
    /// still-failing peer is declared failed.
    pub max_rank_retries: u32,
    /// First backoff interval, seconds.
    pub backoff_base: f64,
    /// Ceiling on a single backoff interval, seconds.
    pub backoff_cap: f64,
    /// Seed folded into the backoff jitter stream.
    pub seed: u64,
}

impl Default for CommPolicy {
    fn default() -> Self {
        CommPolicy {
            timeout_seconds: 0.05,
            max_rank_retries: 3,
            backoff_base: 1e-3,
            backoff_cap: 1.6e-2,
            seed: 0,
        }
    }
}

impl CommPolicy {
    /// The backoff before retry `attempt` (1-based) of rank `rank` at
    /// `step`: capped exponential `base · 2^(attempt−1)`, jittered ±50% by
    /// a splitmix64 stream of `(seed, rank, step, attempt)`. Pure and
    /// total, so identical inputs reproduce identical simulated clocks.
    pub fn backoff_seconds(&self, rank: usize, step: u64, attempt: u32) -> f64 {
        let exp = self.backoff_base * f64::from(1u32 << (attempt.saturating_sub(1)).min(20));
        let capped = exp.min(self.backoff_cap);
        let mut z = self
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add((rank as u64).wrapping_mul(0xbf58476d1ce4e5b9))
            .wrapping_add(step.wrapping_mul(0x94d049bb133111eb))
            .wrapping_add(u64::from(attempt));
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58476d1ce4e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        capped * (0.5 + unit)
    }
}

/// Magic tag framing a ghost payload on the wire.
const GHOST_FRAME_TAG: u32 = 0x4d44_4746; // "MDGF"

/// Frames a ghost payload for the wire: tag, length-prefixed bytes, CRC-32
/// trailer over everything before it.
pub fn frame_ghost_payload(payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(GHOST_FRAME_TAG);
    w.blob(payload);
    let crc = crc32(w.bytes());
    w.u32(crc);
    w.into_bytes()
}

/// Verifies a framed ghost payload and returns the payload bytes.
///
/// # Errors
///
/// Returns [`CoreError::CorruptState`] when the frame is truncated, the
/// tag is wrong, or the CRC-32 trailer disagrees with the content — the
/// detection path behind [`CommStatus::Corrupt`].
pub fn verify_ghost_payload(frame: &[u8]) -> Result<Vec<u8>, CoreError> {
    let corrupt = |why: &'static str| CoreError::CorruptState {
        what: "ghost payload frame",
        detail: why.to_string(),
    };
    if frame.len() < 4 {
        return Err(corrupt("frame shorter than its CRC trailer"));
    }
    let (body, trailer) = frame.split_at(frame.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    if crc32(body) != stored {
        return Err(corrupt("CRC-32 mismatch"));
    }
    let mut r = Reader::new(body, "ghost payload frame");
    if r.u32()? != GHOST_FRAME_TAG {
        return Err(corrupt("bad frame tag"));
    }
    let payload = r.blob()?.to_vec();
    r.expect_exhausted()?;
    Ok(payload)
}

/// Builds the deterministic synthetic ghost digest the virtual cluster
/// frames and CRC-checks on every policed halo exchange: the model has no
/// real ghost bytes, so a fixed-size digest of `(rank, step, volume)`
/// stands in for them. Small by construction so the detection hook stays
/// within the comm-overhead budget.
pub fn ghost_digest(rank: usize, step: u64, bytes: f64) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(rank);
    w.u64(step);
    w.f64(bytes);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let payload = ghost_digest(3, 41, 1.5e4);
        let frame = frame_ghost_payload(&payload);
        assert_eq!(verify_ghost_payload(&frame).unwrap(), payload);
    }

    #[test]
    fn any_corruption_is_detected() {
        let frame = frame_ghost_payload(&ghost_digest(1, 7, 640.0));
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert!(verify_ghost_payload(&bad).is_err(), "byte {i} undetected");
        }
        assert!(verify_ghost_payload(&frame[..3]).is_err(), "truncated");
    }

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let p = CommPolicy {
            seed: 2022,
            ..CommPolicy::default()
        };
        let a = p.backoff_seconds(3, 50, 1);
        assert_eq!(a, p.backoff_seconds(3, 50, 1), "pure function");
        assert_ne!(a, p.backoff_seconds(4, 50, 1), "rank enters the stream");
        assert_ne!(a, p.backoff_seconds(3, 51, 1), "step enters the stream");
        for attempt in 1..=12 {
            let b = p.backoff_seconds(0, 0, attempt);
            assert!(
                b > 0.0 && b <= 1.5 * p.backoff_cap,
                "attempt {attempt}: {b}"
            );
        }
        // The exponential envelope grows until the cap bites.
        assert!(p.backoff_seconds(0, 0, 4) > p.backoff_seconds(0, 0, 1) / 2.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CommStatus::TimedOut.label(), "timed-out");
        assert_eq!(CommStatus::Corrupt.label(), "corrupt");
        assert_eq!(CommExchange::Halo.label(), "halo");
        assert_eq!(CommExchange::Allreduce.label(), "allreduce");
    }
}
