//! MPI-function taxonomy and time ledger, mirroring the functions the paper's
//! Figures 5 and 12 break the MPI overhead into.

/// The MPI functions the characterization distinguishes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum MpiFunction {
    /// `MPI_Allreduce` — global reductions (thermo output, FFT norms).
    Allreduce,
    /// `MPI_Init` — context creation, once per rank per run.
    Init,
    /// `MPI_Send` — eager point-to-point sends (FFT transposes).
    Send,
    /// `MPI_Sendrecv` — paired halo exchanges.
    Sendrecv,
    /// `MPI_Wait` — completion of nonblocking operations (skew shows here).
    Wait,
    /// `MPI_Waitany` — completion of one of several requests.
    Waitany,
    /// Everything else (`MPI_Barrier`, `MPI_Bcast`, ...).
    Others,
}

impl MpiFunction {
    /// All functions, in the order the paper's legends list them.
    pub const ALL: [MpiFunction; 7] = [
        MpiFunction::Allreduce,
        MpiFunction::Init,
        MpiFunction::Send,
        MpiFunction::Sendrecv,
        MpiFunction::Wait,
        MpiFunction::Waitany,
        MpiFunction::Others,
    ];

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            MpiFunction::Allreduce => "MPI_Allreduce",
            MpiFunction::Init => "MPI_Init",
            MpiFunction::Send => "MPI_Send",
            MpiFunction::Sendrecv => "MPI_Sendrecv",
            MpiFunction::Wait => "MPI_Wait",
            MpiFunction::Waitany => "MPI_Waitany",
            MpiFunction::Others => "others",
        }
    }

    fn index(self) -> usize {
        MpiFunction::ALL
            .iter()
            .position(|&f| f == self)
            .expect("function in ALL")
    }
}

impl std::fmt::Display for MpiFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Seconds spent inside each MPI function.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MpiLedger {
    seconds: [f64; 7],
    /// Seconds of the total that are pure waiting on other ranks (the
    /// paper's "MPI imbalance").
    wait_due_to_skew: f64,
}

impl MpiLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        MpiLedger::default()
    }

    /// Adds time to a function.
    pub fn add(&mut self, func: MpiFunction, seconds: f64) {
        self.seconds[func.index()] += seconds;
    }

    /// Adds skew-wait time (also counted in the function it occurred in —
    /// call both `add` and `add_skew`).
    pub fn add_skew(&mut self, seconds: f64) {
        self.wait_due_to_skew += seconds;
    }

    /// Time in one function.
    pub fn seconds(&self, func: MpiFunction) -> f64 {
        self.seconds[func.index()]
    }

    /// Total MPI time.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Time waiting purely because of load skew.
    pub fn skew_seconds(&self) -> f64 {
        self.wait_due_to_skew
    }

    /// Share of a function in total MPI time (0..=100).
    pub fn percent(&self, func: MpiFunction) -> f64 {
        let t = self.total();
        if t > 0.0 {
            100.0 * self.seconds(func) / t
        } else {
            0.0
        }
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &MpiLedger) {
        for i in 0..7 {
            self.seconds[i] += other.seconds[i];
        }
        self.wait_due_to_skew += other.wait_due_to_skew;
    }

    /// `(function, seconds)` pairs in legend order.
    pub fn iter(&self) -> impl Iterator<Item = (MpiFunction, f64)> + '_ {
        MpiFunction::ALL.iter().map(move |&f| (f, self.seconds(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let mut l = MpiLedger::new();
        l.add(MpiFunction::Init, 2.0);
        l.add(MpiFunction::Wait, 1.0);
        l.add_skew(0.75);
        assert_eq!(l.total(), 3.0);
        assert!((l.percent(MpiFunction::Init) - 200.0 / 3.0).abs() < 1e-12);
        assert_eq!(l.skew_seconds(), 0.75);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = MpiLedger::new();
        a.add(MpiFunction::Send, 1.0);
        let mut b = MpiLedger::new();
        b.add(MpiFunction::Send, 2.0);
        b.add_skew(0.5);
        a.merge(&b);
        assert_eq!(a.seconds(MpiFunction::Send), 3.0);
        assert_eq!(a.skew_seconds(), 0.5);
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(MpiFunction::Allreduce.label(), "MPI_Allreduce");
        assert_eq!(MpiFunction::Others.label(), "others");
        let set: std::collections::HashSet<_> =
            MpiFunction::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(set.len(), 7);
    }
}
