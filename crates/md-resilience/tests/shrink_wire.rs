//! Property-based tests for the [`ShrinkReport`] wire format: arbitrary
//! reports round-trip bitwise, and every single-byte corruption of the
//! encoded blob is rejected as `CorruptState` rather than misdecoded.

use md_resilience::ShrinkReport;
use proptest::prelude::*;

fn arb_report() -> impl Strategy<Value = ShrinkReport> {
    (
        (0u64..1_000_000, 0u64..1_000_000, 0usize..64, 2usize..64),
        (0u32..16, 0.0..10.0f64, 0.0..10.0f64),
    )
        .prop_map(
            |((step, rollback_step, failed_rank, ranks_before), (retries, before, after))| {
                ShrinkReport {
                    step,
                    rollback_step,
                    failed_rank,
                    ranks_before,
                    ranks_after: ranks_before - 1,
                    retries_spent: retries,
                    imbalance_before: before,
                    imbalance_after: after,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode → decode is the identity for any report.
    #[test]
    fn shrink_report_round_trips(report in arb_report()) {
        let blob = report.encode();
        let back = ShrinkReport::decode(&blob).expect("clean blob decodes");
        prop_assert_eq!(back, report);
    }

    /// Flipping any single byte of the blob is rejected.
    #[test]
    fn any_single_byte_flip_is_rejected(
        report in arb_report(),
        pos_seed in 0usize..1_000_000,
        flip in 1u8..=255,
    ) {
        let mut blob = report.encode();
        let pos = pos_seed % blob.len();
        blob[pos] ^= flip;
        let err = ShrinkReport::decode(&blob).expect_err("corruption must be caught");
        prop_assert!(
            err.to_string().contains("shrink report"),
            "error must name the artifact: {}",
            err
        );
    }

    /// Truncation anywhere is rejected.
    #[test]
    fn truncation_is_rejected(report in arb_report(), cut_seed in 0usize..1_000_000) {
        let blob = report.encode();
        let cut = cut_seed % blob.len();
        prop_assert!(ShrinkReport::decode(&blob[..cut]).is_err());
    }
}
