//! # md-resilience — fault tolerance for the verlette engine
//!
//! The paper's characterization assumes healthy hardware; long MD campaigns
//! on commodity platforms do not get that luxury. This crate adds the four
//! robustness pillars the harness drives:
//!
//! * **Checkpoint/restart** ([`checkpoint`]) — versioned, CRC-checksummed
//!   snapshots of the full [`md_core::Simulation`] dynamic state, written
//!   atomically (temp-file + rename). A run restored from a checkpoint
//!   continues **bitwise identically** to one that was never interrupted
//!   (deterministic mode, any thread count) — `tests/resilience_roundtrip.rs`
//!   locks this in for all five decks.
//! * **Numerical watchdog** ([`watchdog`]) — a per-step health monitor
//!   (non-finite forces/positions, runaway displacement, energy-drift
//!   budget, escaped atoms, temperature spikes) that raises typed
//!   [`watchdog::HealthEvent`]s and md-observe counters instead of letting
//!   the engine run off a numerical cliff.
//! * **Recovery policies** ([`recovery`]) — on a health violation, roll the
//!   simulation back to the last in-memory snapshot and retry under an
//!   escalating mitigation ladder (rebuild neighbor lists → shrink the
//!   timestep → tighten the k-space accuracy target), aborting with a
//!   structured [`recovery::FailureReport`] once the ladder is exhausted.
//! * **Fault injection** ([`faults`]) — a deterministic, parseable
//!   [`faults::FaultPlan`] that perturbs the virtual cluster (rank stalls,
//!   slowdowns, dropped/duplicated/corrupted halo messages, fail-stop rank
//!   crashes) and the real engine (force bit-flips), so the watchdog and
//!   recovery paths are exercised on demand (`run_deck --faults ...`).
//!
//! A fifth pillar rides on the four: the **degraded-mode shrink**. A
//! `rank-crash` fault fail-stops a virtual rank; the comm-health layer in
//! md-parallel detects the silence (deadline timeouts, retry budget), and
//! [`recovery::ResilientRunner::with_cluster`] answers by rolling back to
//! the last checkpoint and re-decomposing over N−1 ranks, emitting a
//! structured [`recovery::ShrinkReport`].

pub mod checkpoint;
pub mod faults;
pub mod recovery;
pub mod watchdog;

pub use checkpoint::{Checkpoint, CheckpointHeader, CheckpointManager};
pub use faults::{EngineFault, FaultPlan};
pub use recovery::{
    FailureReport, Mitigation, RecoveryPolicy, ResilientRunner, RunSummary, ShrinkReport,
};
pub use watchdog::{HealthEvent, Watchdog, WatchdogConfig};

use std::path::PathBuf;

/// Errors raised by the resilience layer.
#[derive(Debug)]
pub enum ResilienceError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// An engine-level error (corrupt state, invalid parameter, ...).
    Core(md_core::CoreError),
    /// The recovery ladder was exhausted without a clean retry.
    Unrecoverable(Box<FailureReport>),
}

impl std::fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilienceError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            ResilienceError::Core(e) => write!(f, "{e}"),
            ResilienceError::Unrecoverable(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for ResilienceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResilienceError::Io { source, .. } => Some(source),
            ResilienceError::Core(e) => Some(e),
            ResilienceError::Unrecoverable(_) => None,
        }
    }
}

impl From<md_core::CoreError> for ResilienceError {
    fn from(e: md_core::CoreError) -> Self {
        ResilienceError::Core(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ResilienceError>;
