//! Deterministic fault injection: a parseable schedule of cluster and
//! engine faults.
//!
//! ## Fault-spec grammar
//!
//! A plan is a comma-separated list of events:
//!
//! ```text
//! rank-stall:<rank>@<step>            transient stall (0.25 s) on one rank
//! rank-slow:<rank>x<factor>@<step>    compute slowdown from <step> onward
//! halo-drop:<rank>@<step>             halo message to <rank> lost once
//! halo-dup:<rank>@<step>              halo payload delivered twice
//! halo-corrupt:<rank>@<step>          halo payload corrupted in flight once
//! rank-crash:<rank>@<step>            fail-stop: the rank dies at <step>
//! force-flip:<atom>@<step>            exponent bit-flip in one force value
//! ```
//!
//! Example: `rank-stall:2@50,force-flip:17@80`.
//!
//! Cluster faults perturb the [`md_parallel::VirtualCluster`] timing model
//! (the paper's Fig. 4/5 imbalance mechanism, on demand); they never touch
//! physics. The `force-flip` engine fault corrupts one force component in
//! the *real* engine — the watchdog must catch it and the recovery ladder
//! must roll it back. Engine faults are consumed once: after a rollback the
//! retry proceeds past the injection step cleanly, modeling a transient
//! soft error rather than a stuck-at fault.

use crate::{ResilienceError, Result};
use md_core::{CoreError, Simulation};
use md_parallel::ClusterFaults;

/// Stall duration applied by `rank-stall` events.
pub const STALL_SECONDS: f64 = 0.25;

/// Mask saturating the exponent field of an `f64`: the corrupted value is
/// ±Inf (zero mantissa) or NaN — guaranteed non-finite, the worst-case
/// single-word corruption a force array can absorb.
const EXPONENT_SATURATE: u64 = 0x7FF0_0000_0000_0000;

/// A transient single-bit-pattern corruption of one atom's force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineFault {
    /// Atom whose force is corrupted.
    pub atom: usize,
    /// Step *before* which the corruption lands (it is consumed by that
    /// step's initial integration).
    pub step: u64,
}

impl EngineFault {
    /// Applies the bit-flip to the simulation's current force array.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the atom index is out of
    /// range.
    pub fn inject(&self, sim: &mut Simulation) -> Result<()> {
        let n = sim.atoms().len();
        if self.atom >= n {
            return Err(ResilienceError::Core(CoreError::InvalidParameter {
                name: "force-flip atom",
                reason: format!("atom {} out of range (deck has {n} atoms)", self.atom),
            }));
        }
        let f = &mut sim.atoms_mut().f_mut()[self.atom];
        f.x = f64::from_bits(f.x.to_bits() | EXPONENT_SATURATE);
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct RankEvent {
    rank: usize,
    step: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct SlowEvent {
    rank: usize,
    factor: f64,
    from_step: u64,
}

/// A parsed, deterministic fault schedule.
///
/// Implements [`ClusterFaults`] for the timing-model faults; engine faults
/// are exposed via [`FaultPlan::engine_faults`] for the resilient runner to
/// inject (and consume) itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    stalls: Vec<RankEvent>,
    slows: Vec<SlowEvent>,
    halo_drops: Vec<RankEvent>,
    halo_dups: Vec<RankEvent>,
    halo_corrupts: Vec<RankEvent>,
    crashes: Vec<RankEvent>,
    engine: Vec<EngineFault>,
}

impl FaultPlan {
    /// Parses the comma-separated fault-spec grammar (see module docs).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] describing the offending
    /// event on any grammar violation.
    pub fn parse(spec: &str) -> Result<Self> {
        let bad = |event: &str, why: &str| {
            ResilienceError::Core(CoreError::InvalidParameter {
                name: "faults",
                reason: format!("bad fault event {event:?}: {why}"),
            })
        };
        let mut plan = FaultPlan::default();
        for event in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, rest) = event
                .split_once(':')
                .ok_or_else(|| bad(event, "expected `kind:args`"))?;
            let (target, step) = rest
                .split_once('@')
                .ok_or_else(|| bad(event, "expected `...@<step>`"))?;
            let step: u64 = step
                .parse()
                .map_err(|_| bad(event, "step must be an unsigned integer"))?;
            match kind {
                "rank-stall" | "halo-drop" | "halo-dup" | "halo-corrupt" | "rank-crash" => {
                    let rank: usize = target
                        .parse()
                        .map_err(|_| bad(event, "rank must be an unsigned integer"))?;
                    let ev = RankEvent { rank, step };
                    match kind {
                        "rank-stall" => plan.stalls.push(ev),
                        "halo-drop" => plan.halo_drops.push(ev),
                        "halo-corrupt" => plan.halo_corrupts.push(ev),
                        "rank-crash" => plan.crashes.push(ev),
                        _ => plan.halo_dups.push(ev),
                    }
                }
                "rank-slow" => {
                    let (rank, factor) = target
                        .split_once('x')
                        .ok_or_else(|| bad(event, "expected `<rank>x<factor>`"))?;
                    let rank: usize = rank
                        .parse()
                        .map_err(|_| bad(event, "rank must be an unsigned integer"))?;
                    let factor: f64 = factor
                        .parse()
                        .map_err(|_| bad(event, "factor must be a number"))?;
                    if !(factor.is_finite() && factor > 0.0) {
                        return Err(bad(event, "factor must be positive and finite"));
                    }
                    plan.slows.push(SlowEvent {
                        rank,
                        factor,
                        from_step: step,
                    });
                }
                "force-flip" => {
                    let atom: usize = target
                        .parse()
                        .map_err(|_| bad(event, "atom must be an unsigned integer"))?;
                    plan.engine.push(EngineFault { atom, step });
                }
                _ => {
                    return Err(bad(
                        event,
                        "unknown kind (rank-stall, rank-slow, halo-drop, halo-dup, \
                         halo-corrupt, rank-crash, force-flip)",
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Engine-side faults (force bit-flips), in spec order.
    pub fn engine_faults(&self) -> &[EngineFault] {
        &self.engine
    }

    /// Scheduled fail-stop events as `(rank, step)` pairs, in spec order.
    /// The resilient runner walks these to drive the degraded-mode shrink.
    pub fn crashes(&self) -> Vec<(usize, u64)> {
        self.crashes.iter().map(|e| (e.rank, e.step)).collect()
    }

    /// Whether the plan contains comm-health faults (crashes or in-flight
    /// corruption) that the detection layer must be armed for.
    pub fn has_comm_faults(&self) -> bool {
        !(self.crashes.is_empty() && self.halo_corrupts.is_empty())
    }

    /// Whether the plan perturbs the virtual-cluster timing model at all
    /// (if not, there is no reason to attach it to a model run).
    pub fn has_cluster_faults(&self) -> bool {
        !(self.stalls.is_empty()
            && self.slows.is_empty()
            && self.halo_drops.is_empty()
            && self.halo_dups.is_empty()
            && self.halo_corrupts.is_empty()
            && self.crashes.is_empty())
    }

    /// Whether the plan is entirely empty.
    pub fn is_empty(&self) -> bool {
        !self.has_cluster_faults() && self.engine.is_empty()
    }

    /// The latest step any cluster fault fires at (slowdowns count their
    /// start step), for sizing a modeled run that must cover the schedule.
    pub fn max_cluster_step(&self) -> Option<u64> {
        self.stalls
            .iter()
            .chain(&self.halo_drops)
            .chain(&self.halo_dups)
            .chain(&self.halo_corrupts)
            .chain(&self.crashes)
            .map(|e| e.step)
            .chain(self.slows.iter().map(|s| s.from_step))
            .max()
    }
}

impl ClusterFaults for FaultPlan {
    fn compute_scale(&self, rank: usize, step: u64) -> f64 {
        // Slowdowns persist from their start step (throttling does not heal
        // itself); multiple matching events compound.
        self.slows
            .iter()
            .filter(|s| s.rank == rank && step >= s.from_step)
            .map(|s| s.factor)
            .product()
    }

    fn stall_seconds(&self, rank: usize, step: u64) -> f64 {
        self.stalls
            .iter()
            .filter(|s| s.rank == rank && s.step == step)
            .map(|_| STALL_SECONDS)
            .sum()
    }

    fn drop_halo(&self, rank: usize, step: u64) -> bool {
        self.halo_drops
            .iter()
            .any(|e| e.rank == rank && e.step == step)
    }

    fn duplicate_halo(&self, rank: usize, step: u64) -> bool {
        self.halo_dups
            .iter()
            .any(|e| e.rank == rank && e.step == step)
    }

    fn crash_rank(&self, rank: usize, step: u64) -> bool {
        // Fail-stop is permanent: dead ranks stay dead.
        self.crashes
            .iter()
            .any(|e| e.rank == rank && step >= e.step)
    }

    fn corrupt_halo(&self, rank: usize, step: u64) -> bool {
        self.halo_corrupts
            .iter()
            .any(|e| e.rank == rank && e.step == step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::Threads;
    use md_workloads::{build_deck_with, Benchmark};

    #[test]
    fn parses_every_kind() {
        let plan = FaultPlan::parse(
            "rank-stall:2@50, rank-slow:1x2.5@10, halo-drop:0@7, halo-dup:3@9, force-flip:17@80",
        )
        .unwrap();
        assert_eq!(plan.stall_seconds(2, 50), STALL_SECONDS);
        assert_eq!(plan.stall_seconds(2, 51), 0.0);
        assert_eq!(plan.stall_seconds(1, 50), 0.0);
        assert_eq!(plan.compute_scale(1, 9), 1.0);
        assert_eq!(plan.compute_scale(1, 10), 2.5);
        assert_eq!(plan.compute_scale(1, 99), 2.5, "slowdowns persist");
        assert!(plan.drop_halo(0, 7) && !plan.drop_halo(0, 8));
        assert!(plan.duplicate_halo(3, 9) && !plan.duplicate_halo(2, 9));
        assert_eq!(plan.engine_faults(), &[EngineFault { atom: 17, step: 80 }]);
        assert!(plan.has_cluster_faults() && !plan.is_empty());
    }

    #[test]
    fn empty_and_whitespace_specs_are_healthy() {
        for spec in ["", "  ", " , "] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert!(plan.is_empty(), "{spec:?}");
        }
    }

    #[test]
    fn bad_grammar_is_a_typed_error() {
        for spec in [
            "rank-stall",
            "rank-stall:2",
            "rank-stall:x@5",
            "rank-slow:1@10",
            "rank-slow:1x-2@10",
            "rank-slow:1xinfx@10",
            "force-flip:a@80",
            "halo-drop:1@",
            "gamma-ray:1@2",
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(
                matches!(
                    err,
                    ResilienceError::Core(CoreError::InvalidParameter { name: "faults", .. })
                ),
                "{spec:?} -> {err}"
            );
        }
    }

    #[test]
    fn parses_comm_fault_kinds() {
        let plan = FaultPlan::parse("rank-crash:3@15, halo-corrupt:2@8").unwrap();
        assert!(plan.has_comm_faults() && plan.has_cluster_faults());
        assert_eq!(plan.crashes(), vec![(3, 15)]);
        assert!(!plan.crash_rank(3, 14), "alive before the crash step");
        assert!(
            plan.crash_rank(3, 15) && plan.crash_rank(3, 99),
            "fail-stop"
        );
        assert!(!plan.crash_rank(2, 15));
        assert!(plan.corrupt_halo(2, 8) && !plan.corrupt_halo(2, 9));
        assert_eq!(plan.max_cluster_step(), Some(15));

        let healthy = FaultPlan::parse("rank-stall:2@50").unwrap();
        assert!(!healthy.has_comm_faults());
    }

    #[test]
    fn compounding_slowdowns_multiply() {
        let plan = FaultPlan::parse("rank-slow:1x2@10,rank-slow:1x3@20").unwrap();
        assert_eq!(plan.compute_scale(1, 15), 2.0);
        assert_eq!(plan.compute_scale(1, 25), 6.0);
    }

    #[test]
    fn force_flip_injects_nonfinite_exponent() {
        let mut deck = build_deck_with(Benchmark::Lj, 1, 3, Threads::deterministic(1)).unwrap();
        deck.simulation.step().unwrap();
        let before = deck.simulation.atoms().f()[5].x;
        assert!(before.is_finite() && before != 0.0);
        let fault = EngineFault { atom: 5, step: 1 };
        fault.inject(&mut deck.simulation).unwrap();
        let after = deck.simulation.atoms().f()[5].x;
        assert!(
            !after.is_finite(),
            "exponent flip of a normal is non-finite"
        );

        let oob = EngineFault {
            atom: usize::MAX,
            step: 1,
        };
        assert!(oob.inject(&mut deck.simulation).is_err());
    }
}
