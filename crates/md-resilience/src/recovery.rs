//! Rollback-and-retry recovery driving the watchdog and checkpoints.
//!
//! The [`ResilientRunner`] advances a deck step by step, snapshotting the
//! full dynamic state in memory at a configurable cadence. When the
//! watchdog reports a violation (or the engine's own step errors), the
//! runner rolls the simulation back to the last healthy snapshot and
//! retries under an escalating mitigation ladder:
//!
//! 1. **Rebuild the neighbor list** — clears a stale-list artifact and
//!    perturbs the summation schedule past a transient corruption.
//! 2. **Shrink the timestep** (× `dt_backoff`) — buys integration headroom
//!    when the blow-up is a genuine stiffness/stability problem.
//! 3. **Tighten the k-space accuracy** — for long-range decks whose drift
//!    traces back to mesh error (a no-op notch elsewhere).
//!
//! Retries are bounded by [`RecoveryPolicy::max_retries`]; exhaustion
//! aborts with a structured [`FailureReport`] carried inside
//! [`ResilienceError::Unrecoverable`]. A clean stretch of steps resets the
//! ladder, so isolated transients pay one rung each rather than marching
//! the run toward abort.

use crate::checkpoint::CheckpointManager;
use crate::faults::FaultPlan;
use crate::watchdog::{HealthEvent, Watchdog};
use crate::{ResilienceError, Result};
use md_workloads::Deck;

/// Knobs for the rollback-and-retry driver.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Total rollbacks allowed before the run aborts with a
    /// [`FailureReport`].
    pub max_retries: u32,
    /// In-memory snapshot cadence in steps (also the rollback granularity).
    pub snapshot_every: u64,
    /// Timestep multiplier applied by the shrink-timestep rung.
    pub dt_backoff: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 4,
            snapshot_every: 10,
            dt_backoff: 0.5,
        }
    }
}

/// One rung of the mitigation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mitigation {
    /// Force a neighbor-list rebuild at the rolled-back positions.
    RebuildNeighbors,
    /// Multiply the timestep by [`RecoveryPolicy::dt_backoff`].
    ShrinkTimestep,
    /// Tighten the long-range solver's accuracy target one notch.
    TightenKspace,
}

/// Ladder order: cheap and reversible first.
const LADDER: [Mitigation; 3] = [
    Mitigation::RebuildNeighbors,
    Mitigation::ShrinkTimestep,
    Mitigation::TightenKspace,
];

impl std::fmt::Display for Mitigation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Mitigation::RebuildNeighbors => "rebuild-neighbors",
            Mitigation::ShrinkTimestep => "shrink-timestep",
            Mitigation::TightenKspace => "tighten-kspace",
        })
    }
}

/// Structured description of an unrecoverable run.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Step index at which the final violation was observed.
    pub step: u64,
    /// The violations observed at that step.
    pub events: Vec<HealthEvent>,
    /// Mitigations applied before giving up, in order.
    pub mitigations: Vec<Mitigation>,
    /// Rollbacks performed before giving up.
    pub rollbacks: u32,
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecoverable at step {} after {} rollback(s)",
            self.step, self.rollbacks
        )?;
        if !self.mitigations.is_empty() {
            write!(f, " (tried:")?;
            for m in &self.mitigations {
                write!(f, " {m}")?;
            }
            write!(f, ")")?;
        }
        write!(f, ": ")?;
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{ev}")?;
        }
        Ok(())
    }
}

/// What a resilient run did, for callers and the harness to report.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Steps actually advanced (net of rollbacks).
    pub steps_run: u64,
    /// Health events observed (including those recovered from).
    pub violations: u64,
    /// Rollbacks performed.
    pub rollbacks: u32,
    /// Mitigations applied, in order.
    pub mitigations: Vec<Mitigation>,
    /// Disk checkpoints written.
    pub checkpoints_written: u64,
}

impl RunSummary {
    /// Whether the run hit violations and still completed.
    pub fn recovered(&self) -> bool {
        self.violations > 0
    }
}

/// The rollback-and-retry driver. Owns the watchdog, the fault plan's
/// engine-side schedule, the in-memory snapshot, and (optionally) a disk
/// [`CheckpointManager`].
pub struct ResilientRunner {
    policy: RecoveryPolicy,
    watchdog: Watchdog,
    plan: FaultPlan,
    /// Consumed-once flags, one per `plan.engine_faults()` entry.
    consumed: Vec<bool>,
    /// Last healthy `(step, state)` snapshot.
    snapshot: Option<(u64, Vec<u8>)>,
    checkpoints: Option<(CheckpointManager, u64)>,
}

impl ResilientRunner {
    /// Creates a runner. `plan`'s engine faults will be injected (once
    /// each) at their scheduled steps; pass `FaultPlan::default()` for a
    /// healthy run.
    pub fn new(policy: RecoveryPolicy, watchdog: Watchdog, plan: FaultPlan) -> Self {
        let consumed = vec![false; plan.engine_faults().len()];
        ResilientRunner {
            policy,
            watchdog,
            plan,
            consumed,
            snapshot: None,
            checkpoints: None,
        }
    }

    /// Also write disk checkpoints through `manager` (at its own cadence),
    /// stamping them with `seed` as the deck-recipe seed.
    pub fn with_checkpoints(mut self, manager: CheckpointManager, seed: u64) -> Self {
        self.checkpoints = Some((manager, seed));
        self
    }

    /// The watchdog (e.g. to read `events_seen` after a run).
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// Advances `deck` by `nsteps` net steps, recovering from violations
    /// per the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::Unrecoverable`] when the retry budget is
    /// exhausted, and propagates checkpoint I/O or rollback-restore
    /// failures directly.
    pub fn run(&mut self, deck: &mut Deck, nsteps: u64) -> Result<RunSummary> {
        let start = deck.simulation.step_index();
        let target = start + nsteps;
        let mut summary = RunSummary::default();
        // Ladder position; resets after a clean snapshot interval.
        let mut escalation: usize = 0;

        self.snapshot = Some((start, deck.simulation.save_state()));

        while deck.simulation.step_index() < target {
            let step = deck.simulation.step_index();

            // Inject engine faults due before this step (consumed once).
            for (i, fault) in self.plan.engine_faults().iter().enumerate() {
                if fault.step == step && !self.consumed[i] {
                    self.consumed[i] = true;
                    fault.inject(&mut deck.simulation)?;
                }
            }

            let mut events = match deck.simulation.step() {
                Ok(()) => self.watchdog.check(&deck.simulation),
                Err(e) => vec![HealthEvent::StepFailed {
                    message: e.to_string(),
                }],
            };
            // A step error is also mirrored to the health counters.
            if let Some(HealthEvent::StepFailed { .. }) = events.first() {
                let ev = &events[0];
                deck.simulation.recorder().count(0, ev.counter(), 1.0);
            }

            if events.is_empty() {
                let step = deck.simulation.step_index();
                if self.policy.snapshot_every > 0 && step.is_multiple_of(self.policy.snapshot_every)
                {
                    self.snapshot = Some((step, deck.simulation.save_state()));
                    // A full clean interval: the transient is behind us.
                    escalation = 0;
                    if let Some((mgr, seed)) = &self.checkpoints {
                        if mgr.due(step) {
                            mgr.save(deck, *seed)?;
                            summary.checkpoints_written += 1;
                        }
                    }
                }
                continue;
            }

            summary.violations += events.len() as u64;
            if summary.rollbacks >= self.policy.max_retries || escalation >= LADDER.len() {
                return Err(ResilienceError::Unrecoverable(Box::new(FailureReport {
                    step: deck.simulation.step_index(),
                    events: std::mem::take(&mut events),
                    mitigations: summary.mitigations.clone(),
                    rollbacks: summary.rollbacks,
                })));
            }

            // Roll back to the last healthy snapshot and escalate.
            let (snap_step, state) = self
                .snapshot
                .as_ref()
                .expect("snapshot taken before stepping");
            deck.simulation.load_state(state)?;
            debug_assert_eq!(deck.simulation.step_index(), *snap_step);
            self.watchdog.reset_reference();
            summary.rollbacks += 1;
            deck.simulation
                .recorder()
                .count(0, "recovery_rollback", 1.0);

            let rung = LADDER[escalation];
            escalation += 1;
            match rung {
                Mitigation::RebuildNeighbors => deck.simulation.force_neighbor_rebuild()?,
                Mitigation::ShrinkTimestep => {
                    let dt = deck.simulation.dt() * self.policy.dt_backoff;
                    deck.simulation.set_dt(dt)?;
                }
                Mitigation::TightenKspace => {
                    // Decks without a long-range solver burn the rung as a
                    // plain retry; the next escalation aborts.
                    let _ = deck.simulation.tighten_kspace()?;
                }
            }
            summary.mitigations.push(rung);
            deck.simulation
                .recorder()
                .count(0, "recovery_mitigation", 1.0);
        }

        summary.steps_run = deck.simulation.step_index() - start;
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::WatchdogConfig;
    use md_core::Threads;
    use md_workloads::{build_deck_with, Benchmark};

    fn lj(seed: u64) -> Deck {
        build_deck_with(Benchmark::Lj, 1, seed, Threads::deterministic(1)).unwrap()
    }

    fn fingerprint(deck: &Deck) -> Vec<u64> {
        deck.simulation
            .atoms()
            .x()
            .iter()
            .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
            .collect()
    }

    #[test]
    fn healthy_run_matches_plain_run_bitwise() {
        let mut plain = lj(5);
        plain.simulation.run(20).unwrap();

        let mut guarded = lj(5);
        let mut runner = ResilientRunner::new(
            RecoveryPolicy::default(),
            Watchdog::new(WatchdogConfig::default()),
            FaultPlan::default(),
        );
        let summary = runner.run(&mut guarded, 20).unwrap();
        assert_eq!(summary.steps_run, 20);
        assert_eq!(summary.violations, 0);
        assert!(!summary.recovered());
        assert_eq!(fingerprint(&plain), fingerprint(&guarded));
    }

    #[test]
    fn recovers_from_injected_force_flip() {
        let mut deck = lj(5);
        let plan = FaultPlan::parse("force-flip:3@7").unwrap();
        let mut runner = ResilientRunner::new(
            RecoveryPolicy {
                snapshot_every: 5,
                ..RecoveryPolicy::default()
            },
            Watchdog::new(WatchdogConfig::default()),
            plan,
        );
        let summary = runner.run(&mut deck, 20).unwrap();
        assert_eq!(summary.steps_run, 20, "run completes without help");
        assert!(summary.violations > 0, "the flip was detected");
        assert!(summary.rollbacks >= 1, "and rolled back");
        assert!(summary.recovered());
        assert_eq!(deck.simulation.step_index(), 20);
        // The post-recovery state is healthy.
        assert!(deck
            .simulation
            .atoms()
            .f()
            .iter()
            .all(|f| { f.x.is_finite() && f.y.is_finite() && f.z.is_finite() }));
    }

    #[test]
    fn retry_budget_exhaustion_is_a_structured_failure() {
        let mut deck = lj(5);
        // Flips on consecutive steps outnumber a 1-retry budget.
        let plan = FaultPlan::parse("force-flip:1@3,force-flip:2@4").unwrap();
        let mut runner = ResilientRunner::new(
            RecoveryPolicy {
                max_retries: 1,
                snapshot_every: 50,
                ..RecoveryPolicy::default()
            },
            Watchdog::new(WatchdogConfig::default()),
            plan,
        );
        let err = runner.run(&mut deck, 20).unwrap_err();
        match err {
            ResilienceError::Unrecoverable(report) => {
                assert_eq!(report.rollbacks, 1);
                assert!(!report.events.is_empty());
                let text = report.to_string();
                assert!(text.contains("unrecoverable"), "{text}");
                assert!(text.contains("rebuild-neighbors"), "{text}");
            }
            other => panic!("expected Unrecoverable, got {other}"),
        }
    }

    #[test]
    fn ladder_escalates_in_order() {
        let mut deck = lj(5);
        // Three faults, each caught and rolled back: the ladder should walk
        // rebuild -> shrink -> tighten before any reset.
        let plan = FaultPlan::parse("force-flip:1@3,force-flip:2@4,force-flip:3@5").unwrap();
        let mut runner = ResilientRunner::new(
            RecoveryPolicy {
                max_retries: 10,
                snapshot_every: 50, // no clean-interval reset inside the burst
                ..RecoveryPolicy::default()
            },
            Watchdog::new(WatchdogConfig::default()),
            plan,
        );
        let summary = runner.run(&mut deck, 20).unwrap();
        assert_eq!(
            summary.mitigations,
            vec![
                Mitigation::RebuildNeighbors,
                Mitigation::ShrinkTimestep,
                Mitigation::TightenKspace,
            ]
        );
        assert_eq!(summary.rollbacks, 3);
        assert_eq!(deck.simulation.step_index(), 20);
    }

    #[test]
    fn disk_checkpoints_are_written_at_cadence() {
        let dir = std::env::temp_dir().join(format!("mdres_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mgr = CheckpointManager::new(&dir, 10, 0).unwrap();
        let mut deck = lj(5);
        let mut runner = ResilientRunner::new(
            RecoveryPolicy {
                snapshot_every: 5,
                ..RecoveryPolicy::default()
            },
            Watchdog::new(WatchdogConfig::default()),
            FaultPlan::default(),
        )
        .with_checkpoints(mgr, 5);
        let summary = runner.run(&mut deck, 20).unwrap();
        assert_eq!(summary.checkpoints_written, 2, "steps 10 and 20");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
