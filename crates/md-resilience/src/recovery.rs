//! Rollback-and-retry recovery driving the watchdog and checkpoints.
//!
//! The [`ResilientRunner`] advances a deck step by step, snapshotting the
//! full dynamic state in memory at a configurable cadence. When the
//! watchdog reports a violation (or the engine's own step errors), the
//! runner rolls the simulation back to the last healthy snapshot and
//! retries under an escalating mitigation ladder:
//!
//! 1. **Rebuild the neighbor list** — clears a stale-list artifact and
//!    perturbs the summation schedule past a transient corruption.
//! 2. **Shrink the timestep** (× `dt_backoff`) — buys integration headroom
//!    when the blow-up is a genuine stiffness/stability problem.
//! 3. **Tighten the k-space accuracy** — for long-range decks whose drift
//!    traces back to mesh error (a no-op notch elsewhere).
//!
//! Retries are bounded by [`RecoveryPolicy::max_retries`]; exhaustion
//! aborts with a structured [`FailureReport`] carried inside
//! [`ResilienceError::Unrecoverable`]. A clean stretch of steps resets the
//! ladder, so isolated transients pay one rung each rather than marching
//! the run toward abort.
//!
//! A fourth, final rung exists outside the escalation ladder: the
//! **degraded-mode shrink**. When the fault plan fail-stops a rank
//! (`rank-crash`) and the runner is armed via
//! [`ResilientRunner::with_cluster`], the run rolls back to the last
//! healthy snapshot, re-decomposes the box over one fewer rank, and
//! continues on the survivors, emitting a structured [`ShrinkReport`].
//! The shrink touches no physics knob, so the post-shrink trajectory is
//! bitwise identical to a crash-free run.

use crate::checkpoint::CheckpointManager;
use crate::faults::FaultPlan;
use crate::watchdog::{HealthEvent, Watchdog};
use crate::{ResilienceError, Result};
use md_core::wire::{crc32, Reader, Writer};
use md_core::CoreError;
use md_parallel::{Decomposition, WorkloadCensus};
use md_workloads::Deck;

/// Knobs for the rollback-and-retry driver.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Total rollbacks allowed before the run aborts with a
    /// [`FailureReport`].
    pub max_retries: u32,
    /// In-memory snapshot cadence in steps (also the rollback granularity).
    pub snapshot_every: u64,
    /// Timestep multiplier applied by the shrink-timestep rung.
    pub dt_backoff: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 4,
            snapshot_every: 10,
            dt_backoff: 0.5,
        }
    }
}

/// One rung of the mitigation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mitigation {
    /// Force a neighbor-list rebuild at the rolled-back positions.
    RebuildNeighbors,
    /// Multiply the timestep by [`RecoveryPolicy::dt_backoff`].
    ShrinkTimestep,
    /// Tighten the long-range solver's accuracy target one notch.
    TightenKspace,
    /// Re-decompose over one fewer rank after a fail-stop crash (the final
    /// rung, driven by `rank-crash` events rather than the ladder).
    ShrinkCluster,
}

/// Ladder order: cheap and reversible first.
const LADDER: [Mitigation; 3] = [
    Mitigation::RebuildNeighbors,
    Mitigation::ShrinkTimestep,
    Mitigation::TightenKspace,
];

impl std::fmt::Display for Mitigation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Mitigation::RebuildNeighbors => "rebuild-neighbors",
            Mitigation::ShrinkTimestep => "shrink-timestep",
            Mitigation::TightenKspace => "tighten-kspace",
            Mitigation::ShrinkCluster => "shrink-cluster",
        })
    }
}

/// Structured description of an unrecoverable run.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Step index at which the final violation was observed.
    pub step: u64,
    /// The violations observed at that step.
    pub events: Vec<HealthEvent>,
    /// Mitigations applied before giving up, in order.
    pub mitigations: Vec<Mitigation>,
    /// Rollbacks performed before giving up.
    pub rollbacks: u32,
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecoverable at step {} after {} rollback(s)",
            self.step, self.rollbacks
        )?;
        if !self.mitigations.is_empty() {
            write!(f, " (tried:")?;
            for m in &self.mitigations {
                write!(f, " {m}")?;
            }
            write!(f, ")")?;
        }
        write!(f, ": ")?;
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{ev}")?;
        }
        Ok(())
    }
}

/// Magic tag framing a wire-encoded [`ShrinkReport`].
const SHRINK_TAG: u32 = 0x4d44_5352; // "MDSR"

/// Wire format version of [`ShrinkReport::encode`].
const SHRINK_VERSION: u32 = 1;

/// Structured record of one degraded-mode shrink: which rank died, where
/// the run rolled back to, and how the decomposition's modeled imbalance
/// changed when the box was re-split over the survivors.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkReport {
    /// Step the crash was scheduled at.
    pub step: u64,
    /// Snapshot step the run rolled back to before re-decomposing.
    pub rollback_step: u64,
    /// The fail-stopped rank.
    pub failed_rank: usize,
    /// Rank count before the shrink.
    pub ranks_before: usize,
    /// Rank count after the shrink.
    pub ranks_after: usize,
    /// Comm retry budget peers spent detecting the silence.
    pub retries_spent: u32,
    /// Census imbalance (`max/mean` owned atoms) of the pre-shrink
    /// decomposition, measured at the rolled-back positions.
    pub imbalance_before: f64,
    /// Census imbalance of the shrunken decomposition.
    pub imbalance_after: f64,
}

impl ShrinkReport {
    /// Measures the before/after decomposition census at the deck's current
    /// (rolled-back) positions and fills in the report.
    fn measure(
        deck: &Deck,
        step: u64,
        rollback_step: u64,
        failed_rank: usize,
        ranks_before: usize,
        retries_spent: u32,
    ) -> Result<Self> {
        let bx = *deck.simulation.sim_box();
        let x = deck.simulation.atoms().x();
        // Owned-atom imbalance only; a zero ghost cutoff keeps the census
        // O(N) on the recovery path.
        let before = WorkloadCensus::measure(&Decomposition::new(bx, ranks_before)?, x, 0.0);
        let after = WorkloadCensus::measure(&Decomposition::new(bx, ranks_before - 1)?, x, 0.0);
        Ok(ShrinkReport {
            step,
            rollback_step,
            failed_rank,
            ranks_before,
            ranks_after: ranks_before - 1,
            retries_spent,
            imbalance_before: before.imbalance(),
            imbalance_after: after.imbalance(),
        })
    }

    /// Serializes the report (tagged, versioned, CRC-32 trailer).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(SHRINK_TAG);
        w.u32(SHRINK_VERSION);
        w.u64(self.step);
        w.u64(self.rollback_step);
        w.usize(self.failed_rank);
        w.usize(self.ranks_before);
        w.usize(self.ranks_after);
        w.u32(self.retries_spent);
        w.f64(self.imbalance_before);
        w.f64(self.imbalance_after);
        let crc = crc32(w.bytes());
        w.u32(crc);
        w.into_bytes()
    }

    /// Deserializes a report produced by [`ShrinkReport::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptState`] on truncation, a bad tag or
    /// version, or a CRC-32 mismatch.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let corrupt = |detail: String| {
            ResilienceError::Core(CoreError::CorruptState {
                what: "shrink report",
                detail,
            })
        };
        if data.len() < 4 {
            return Err(corrupt("shorter than the CRC trailer".into()));
        }
        let (body, trailer) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
        if crc32(body) != stored {
            return Err(corrupt("CRC-32 mismatch".into()));
        }
        let mut r = Reader::new(body, "shrink report");
        if r.u32()? != SHRINK_TAG {
            return Err(corrupt("bad tag".into()));
        }
        let version = r.u32()?;
        if version != SHRINK_VERSION {
            return Err(corrupt(format!("unsupported version {version}")));
        }
        let report = ShrinkReport {
            step: r.u64()?,
            rollback_step: r.u64()?,
            failed_rank: r.usize()?,
            ranks_before: r.usize()?,
            ranks_after: r.usize()?,
            retries_spent: r.u32()?,
            imbalance_before: r.f64()?,
            imbalance_after: r.f64()?,
        };
        r.expect_exhausted()?;
        Ok(report)
    }
}

impl std::fmt::Display for ShrinkReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} failed at step {}; rolled back to step {} and re-decomposed over {} ranks \
             (imbalance {:.3} -> {:.3})",
            self.failed_rank,
            self.step,
            self.rollback_step,
            self.ranks_after,
            self.imbalance_before,
            self.imbalance_after
        )
    }
}

/// What a resilient run did, for callers and the harness to report.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Steps actually advanced (net of rollbacks).
    pub steps_run: u64,
    /// Health events observed (including those recovered from).
    pub violations: u64,
    /// Rollbacks performed.
    pub rollbacks: u32,
    /// Mitigations applied, in order.
    pub mitigations: Vec<Mitigation>,
    /// Disk checkpoints written.
    pub checkpoints_written: u64,
    /// Degraded-mode shrinks performed, in order.
    pub shrinks: Vec<ShrinkReport>,
}

impl RunSummary {
    /// Whether the run hit violations and still completed.
    pub fn recovered(&self) -> bool {
        self.violations > 0
    }
}

/// The rollback-and-retry driver. Owns the watchdog, the fault plan's
/// engine-side schedule, the in-memory snapshot, and (optionally) a disk
/// [`CheckpointManager`].
pub struct ResilientRunner {
    policy: RecoveryPolicy,
    watchdog: Watchdog,
    plan: FaultPlan,
    /// Consumed-once flags, one per `plan.engine_faults()` entry.
    consumed: Vec<bool>,
    /// Last healthy `(step, state)` snapshot.
    snapshot: Option<(u64, Vec<u8>)>,
    checkpoints: Option<(CheckpointManager, u64)>,
    /// Surviving virtual-cluster rank count, when the degraded-mode shrink
    /// is armed via [`ResilientRunner::with_cluster`].
    cluster_ranks: Option<usize>,
    /// Comm retry budget recorded in each [`ShrinkReport`].
    max_rank_retries: u32,
    /// Handled-once flags, one per `plan.crashes()` entry.
    crash_handled: Vec<bool>,
}

impl ResilientRunner {
    /// Creates a runner. `plan`'s engine faults will be injected (once
    /// each) at their scheduled steps; pass `FaultPlan::default()` for a
    /// healthy run.
    pub fn new(policy: RecoveryPolicy, watchdog: Watchdog, plan: FaultPlan) -> Self {
        let consumed = vec![false; plan.engine_faults().len()];
        let crash_handled = vec![false; plan.crashes().len()];
        ResilientRunner {
            policy,
            watchdog,
            plan,
            consumed,
            snapshot: None,
            checkpoints: None,
            cluster_ranks: None,
            max_rank_retries: 3,
            crash_handled,
        }
    }

    /// Arms the degraded-mode shrink: the virtual cluster starts with
    /// `ranks` ranks, and each `rank-crash` fault in the plan rolls the run
    /// back to the last snapshot and re-decomposes over one fewer rank.
    /// `max_rank_retries` is the comm retry budget peers spend detecting
    /// the silence, recorded in each [`ShrinkReport`].
    pub fn with_cluster(mut self, ranks: usize, max_rank_retries: u32) -> Self {
        self.cluster_ranks = Some(ranks);
        self.max_rank_retries = max_rank_retries;
        self
    }

    /// Also write disk checkpoints through `manager` (at its own cadence),
    /// stamping them with `seed` as the deck-recipe seed.
    pub fn with_checkpoints(mut self, manager: CheckpointManager, seed: u64) -> Self {
        self.checkpoints = Some((manager, seed));
        self
    }

    /// The watchdog (e.g. to read `events_seen` after a run).
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// Advances `deck` by `nsteps` net steps, recovering from violations
    /// per the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::Unrecoverable`] when the retry budget is
    /// exhausted, and propagates checkpoint I/O or rollback-restore
    /// failures directly.
    pub fn run(&mut self, deck: &mut Deck, nsteps: u64) -> Result<RunSummary> {
        let start = deck.simulation.step_index();
        let target = start + nsteps;
        let mut summary = RunSummary::default();
        // Ladder position; resets after a clean snapshot interval.
        let mut escalation: usize = 0;

        self.snapshot = Some((start, deck.simulation.save_state()));

        while deck.simulation.step_index() < target {
            let step = deck.simulation.step_index();

            // Fail-stop crashes due at or before this step trigger the
            // final rung: roll back and shrink the cluster (handled once
            // per event; ignored when the shrink is not armed).
            let crashes = self.plan.crashes();
            for i in 0..crashes.len() {
                let (rank, crash_step) = crashes[i];
                if crash_step > step || self.crash_handled[i] {
                    continue;
                }
                self.crash_handled[i] = true;
                let Some(ranks_now) = self.cluster_ranks else {
                    continue;
                };
                let event = HealthEvent::RankFailed {
                    rank,
                    retries: self.max_rank_retries,
                };
                deck.simulation.recorder().count(0, event.counter(), 1.0);
                summary.violations += 1;
                if ranks_now <= 1 || summary.rollbacks >= self.policy.max_retries {
                    return Err(ResilienceError::Unrecoverable(Box::new(FailureReport {
                        step,
                        events: vec![event],
                        mitigations: summary.mitigations.clone(),
                        rollbacks: summary.rollbacks,
                    })));
                }
                // Roll back to the last healthy snapshot; the survivors
                // replay the lost steps, so the post-shrink trajectory is
                // bitwise the crash-free one (no physics knob moves).
                let (snap_step, state) = self
                    .snapshot
                    .as_ref()
                    .expect("snapshot taken before stepping");
                let snap_step = *snap_step;
                deck.simulation.load_state(state)?;
                self.watchdog.reset_reference();
                summary.rollbacks += 1;
                let rec = deck.simulation.recorder();
                rec.count(0, "recovery_rollback", 1.0);
                rec.count(0, "recovery_mitigation", 1.0);
                rec.count(0, "recovery_shrink", 1.0);
                let report = ShrinkReport::measure(
                    deck,
                    crash_step,
                    snap_step,
                    rank,
                    ranks_now,
                    self.max_rank_retries,
                )?;
                self.cluster_ranks = Some(ranks_now - 1);
                summary.mitigations.push(Mitigation::ShrinkCluster);
                summary.shrinks.push(report);
            }
            // The rollback may have rewound past `step`; re-read it.
            let step = deck.simulation.step_index();

            // Inject engine faults due before this step (consumed once).
            for (i, fault) in self.plan.engine_faults().iter().enumerate() {
                if fault.step == step && !self.consumed[i] {
                    self.consumed[i] = true;
                    fault.inject(&mut deck.simulation)?;
                }
            }

            let mut events = match deck.simulation.step() {
                Ok(()) => self.watchdog.check(&deck.simulation),
                Err(e) => vec![HealthEvent::StepFailed {
                    message: e.to_string(),
                }],
            };
            // A step error is also mirrored to the health counters.
            if let Some(HealthEvent::StepFailed { .. }) = events.first() {
                let ev = &events[0];
                deck.simulation.recorder().count(0, ev.counter(), 1.0);
            }

            if events.is_empty() {
                let step = deck.simulation.step_index();
                if self.policy.snapshot_every > 0 && step.is_multiple_of(self.policy.snapshot_every)
                {
                    self.snapshot = Some((step, deck.simulation.save_state()));
                    // A full clean interval: the transient is behind us.
                    escalation = 0;
                    if let Some((mgr, seed)) = &self.checkpoints {
                        if mgr.due(step) {
                            mgr.save(deck, *seed)?;
                            summary.checkpoints_written += 1;
                        }
                    }
                }
                continue;
            }

            summary.violations += events.len() as u64;
            if summary.rollbacks >= self.policy.max_retries || escalation >= LADDER.len() {
                return Err(ResilienceError::Unrecoverable(Box::new(FailureReport {
                    step: deck.simulation.step_index(),
                    events: std::mem::take(&mut events),
                    mitigations: summary.mitigations.clone(),
                    rollbacks: summary.rollbacks,
                })));
            }

            // Roll back to the last healthy snapshot and escalate.
            let (snap_step, state) = self
                .snapshot
                .as_ref()
                .expect("snapshot taken before stepping");
            deck.simulation.load_state(state)?;
            debug_assert_eq!(deck.simulation.step_index(), *snap_step);
            self.watchdog.reset_reference();
            summary.rollbacks += 1;
            deck.simulation
                .recorder()
                .count(0, "recovery_rollback", 1.0);

            let rung = LADDER[escalation];
            escalation += 1;
            match rung {
                Mitigation::RebuildNeighbors => deck.simulation.force_neighbor_rebuild()?,
                Mitigation::ShrinkTimestep => {
                    let dt = deck.simulation.dt() * self.policy.dt_backoff;
                    deck.simulation.set_dt(dt)?;
                }
                Mitigation::TightenKspace => {
                    // Decks without a long-range solver burn the rung as a
                    // plain retry; the next escalation aborts.
                    let _ = deck.simulation.tighten_kspace()?;
                }
                // Driven by rank-crash events above, never by the ladder.
                Mitigation::ShrinkCluster => unreachable!("not a ladder rung"),
            }
            summary.mitigations.push(rung);
            deck.simulation
                .recorder()
                .count(0, "recovery_mitigation", 1.0);
        }

        summary.steps_run = deck.simulation.step_index() - start;
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::WatchdogConfig;
    use md_core::Threads;
    use md_workloads::{build_deck_with, Benchmark};

    fn lj(seed: u64) -> Deck {
        build_deck_with(Benchmark::Lj, 1, seed, Threads::deterministic(1)).unwrap()
    }

    fn fingerprint(deck: &Deck) -> Vec<u64> {
        deck.simulation
            .atoms()
            .x()
            .iter()
            .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
            .collect()
    }

    #[test]
    fn healthy_run_matches_plain_run_bitwise() {
        let mut plain = lj(5);
        plain.simulation.run(20).unwrap();

        let mut guarded = lj(5);
        let mut runner = ResilientRunner::new(
            RecoveryPolicy::default(),
            Watchdog::new(WatchdogConfig::default()),
            FaultPlan::default(),
        );
        let summary = runner.run(&mut guarded, 20).unwrap();
        assert_eq!(summary.steps_run, 20);
        assert_eq!(summary.violations, 0);
        assert!(!summary.recovered());
        assert_eq!(fingerprint(&plain), fingerprint(&guarded));
    }

    #[test]
    fn recovers_from_injected_force_flip() {
        let mut deck = lj(5);
        let plan = FaultPlan::parse("force-flip:3@7").unwrap();
        let mut runner = ResilientRunner::new(
            RecoveryPolicy {
                snapshot_every: 5,
                ..RecoveryPolicy::default()
            },
            Watchdog::new(WatchdogConfig::default()),
            plan,
        );
        let summary = runner.run(&mut deck, 20).unwrap();
        assert_eq!(summary.steps_run, 20, "run completes without help");
        assert!(summary.violations > 0, "the flip was detected");
        assert!(summary.rollbacks >= 1, "and rolled back");
        assert!(summary.recovered());
        assert_eq!(deck.simulation.step_index(), 20);
        // The post-recovery state is healthy.
        assert!(deck
            .simulation
            .atoms()
            .f()
            .iter()
            .all(|f| { f.x.is_finite() && f.y.is_finite() && f.z.is_finite() }));
    }

    #[test]
    fn retry_budget_exhaustion_is_a_structured_failure() {
        let mut deck = lj(5);
        // Flips on consecutive steps outnumber a 1-retry budget.
        let plan = FaultPlan::parse("force-flip:1@3,force-flip:2@4").unwrap();
        let mut runner = ResilientRunner::new(
            RecoveryPolicy {
                max_retries: 1,
                snapshot_every: 50,
                ..RecoveryPolicy::default()
            },
            Watchdog::new(WatchdogConfig::default()),
            plan,
        );
        let err = runner.run(&mut deck, 20).unwrap_err();
        match err {
            ResilienceError::Unrecoverable(report) => {
                assert_eq!(report.rollbacks, 1);
                assert!(!report.events.is_empty());
                let text = report.to_string();
                assert!(text.contains("unrecoverable"), "{text}");
                assert!(text.contains("rebuild-neighbors"), "{text}");
            }
            other => panic!("expected Unrecoverable, got {other}"),
        }
    }

    #[test]
    fn ladder_escalates_in_order() {
        let mut deck = lj(5);
        // Three faults, each caught and rolled back: the ladder should walk
        // rebuild -> shrink -> tighten before any reset.
        let plan = FaultPlan::parse("force-flip:1@3,force-flip:2@4,force-flip:3@5").unwrap();
        let mut runner = ResilientRunner::new(
            RecoveryPolicy {
                max_retries: 10,
                snapshot_every: 50, // no clean-interval reset inside the burst
                ..RecoveryPolicy::default()
            },
            Watchdog::new(WatchdogConfig::default()),
            plan,
        );
        let summary = runner.run(&mut deck, 20).unwrap();
        assert_eq!(
            summary.mitigations,
            vec![
                Mitigation::RebuildNeighbors,
                Mitigation::ShrinkTimestep,
                Mitigation::TightenKspace,
            ]
        );
        assert_eq!(summary.rollbacks, 3);
        assert_eq!(deck.simulation.step_index(), 20);
    }

    #[test]
    fn rank_crash_shrinks_and_matches_clean_trajectory_bitwise() {
        let mut clean = lj(5);
        clean.simulation.run(20).unwrap();

        let mut deck = lj(5);
        let plan = FaultPlan::parse("rank-crash:1@7").unwrap();
        let mut runner = ResilientRunner::new(
            RecoveryPolicy {
                snapshot_every: 5,
                ..RecoveryPolicy::default()
            },
            Watchdog::new(WatchdogConfig::default()),
            plan,
        )
        .with_cluster(8, 3);
        let summary = runner.run(&mut deck, 20).unwrap();
        assert_eq!(summary.steps_run, 20);
        assert_eq!(summary.rollbacks, 1);
        assert_eq!(summary.mitigations, vec![Mitigation::ShrinkCluster]);
        assert_eq!(summary.shrinks.len(), 1);
        let report = &summary.shrinks[0];
        assert_eq!(report.failed_rank, 1);
        assert_eq!(report.step, 7);
        assert_eq!(report.rollback_step, 5, "last snapshot before the crash");
        assert_eq!(report.ranks_before, 8);
        assert_eq!(report.ranks_after, 7);
        assert_eq!(report.retries_spent, 3);
        assert!(report.imbalance_before >= 1.0 && report.imbalance_after >= 1.0);
        // The shrink touches no physics knob: the post-shrink trajectory is
        // bitwise the crash-free one.
        assert_eq!(fingerprint(&clean), fingerprint(&deck));
        // And the shrink is deterministic across two identical runs.
        let mut again = lj(5);
        let mut runner2 = ResilientRunner::new(
            RecoveryPolicy {
                snapshot_every: 5,
                ..RecoveryPolicy::default()
            },
            Watchdog::new(WatchdogConfig::default()),
            FaultPlan::parse("rank-crash:1@7").unwrap(),
        )
        .with_cluster(8, 3);
        let summary2 = runner2.run(&mut again, 20).unwrap();
        assert_eq!(summary.shrinks, summary2.shrinks);
        assert_eq!(fingerprint(&deck), fingerprint(&again));
    }

    #[test]
    fn crash_with_one_rank_left_is_a_structured_failure() {
        let mut deck = lj(5);
        let plan = FaultPlan::parse("rank-crash:1@5,rank-crash:0@9").unwrap();
        let mut runner = ResilientRunner::new(
            RecoveryPolicy {
                snapshot_every: 5,
                ..RecoveryPolicy::default()
            },
            Watchdog::new(WatchdogConfig::default()),
            plan,
        )
        .with_cluster(2, 3);
        let err = runner.run(&mut deck, 20).unwrap_err();
        match err {
            ResilienceError::Unrecoverable(report) => {
                assert!(matches!(
                    report.events[..],
                    [HealthEvent::RankFailed { rank: 0, .. }]
                ));
                assert_eq!(report.mitigations, vec![Mitigation::ShrinkCluster]);
                let text = report.to_string();
                assert!(text.contains("declared failed"), "{text}");
                assert!(text.contains("shrink-cluster"), "{text}");
            }
            other => panic!("expected Unrecoverable, got {other}"),
        }
    }

    #[test]
    fn crashes_without_an_armed_cluster_are_ignored() {
        let mut deck = lj(5);
        let plan = FaultPlan::parse("rank-crash:1@7").unwrap();
        let mut runner = ResilientRunner::new(
            RecoveryPolicy::default(),
            Watchdog::new(WatchdogConfig::default()),
            plan,
        );
        let summary = runner.run(&mut deck, 20).unwrap();
        assert_eq!(summary.rollbacks, 0);
        assert!(summary.shrinks.is_empty());
    }

    #[test]
    fn shrink_report_round_trips_and_rejects_corruption() {
        let report = ShrinkReport {
            step: 42,
            rollback_step: 40,
            failed_rank: 3,
            ranks_before: 8,
            ranks_after: 7,
            retries_spent: 3,
            imbalance_before: 1.25,
            imbalance_after: 1.125,
        };
        let bytes = report.encode();
        assert_eq!(ShrinkReport::decode(&bytes).unwrap(), report);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(ShrinkReport::decode(&bad).is_err(), "byte {i} undetected");
        }
        assert!(ShrinkReport::decode(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn disk_checkpoints_are_written_at_cadence() {
        let dir = std::env::temp_dir().join(format!("mdres_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mgr = CheckpointManager::new(&dir, 10, 0).unwrap();
        let mut deck = lj(5);
        let mut runner = ResilientRunner::new(
            RecoveryPolicy {
                snapshot_every: 5,
                ..RecoveryPolicy::default()
            },
            Watchdog::new(WatchdogConfig::default()),
            FaultPlan::default(),
        )
        .with_checkpoints(mgr, 5);
        let summary = runner.run(&mut deck, 20).unwrap();
        assert_eq!(summary.checkpoints_written, 2, "steps 10 and 20");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
