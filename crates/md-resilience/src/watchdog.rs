//! Per-step numerical health monitoring.
//!
//! The watchdog inspects a [`Simulation`] after each step and raises typed
//! [`HealthEvent`]s instead of letting a numerical blow-up silently corrupt
//! a long campaign (or panic deep inside a kernel). Every check is an O(N)
//! scan over per-atom arrays or an O(1) scalar comparison, so the monitor
//! costs a small fraction of a force evaluation; `bench_resilience` guards
//! that fraction.
//!
//! Events are also mirrored into the simulation's md-observe recorder as
//! `health_*` counters and instant markers, so a trace of a faulted run
//! shows exactly when and where the watchdog fired.

use md_core::{Simulation, V3};

/// Lane used for watchdog counters/markers (the engine's own lane).
const ENGINE_LANE: u32 = 0;

/// Thresholds for the health checks. All checks can be disabled
/// individually; non-finite detection stays on unconditionally because a
/// NaN anywhere invalidates everything downstream.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Maximum per-check displacement of any atom, as a multiple of the
    /// neighbor-list skin. A healthy step moves atoms a small fraction of
    /// the skin; a multiple of it in one step means the integrator is
    /// launching atoms. Skipped when the deck has no neighbor list.
    pub displacement_skin_factor: f64,
    /// Budget on the relative energy drift reported by the engine's thermo
    /// sampling. `None` disables the check (e.g. thermostatted decks where
    /// energy is not conserved by construction).
    pub energy_drift_budget: Option<f64>,
    /// Temperature ceiling as a multiple of the first observed temperature.
    /// `None` disables the check.
    pub temperature_spike_factor: Option<f64>,
    /// How far outside the box (in units of the largest box edge) an atom
    /// may sit along a *non-periodic* axis before it counts as escaped.
    /// Periodic axes wrap and cannot escape. `None` disables the check.
    pub escape_margin: Option<f64>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            displacement_skin_factor: 10.0,
            energy_drift_budget: Some(0.05),
            temperature_spike_factor: Some(100.0),
            escape_margin: Some(1.0),
        }
    }
}

/// A detected health violation.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthEvent {
    /// An atom's force has a NaN or infinite component.
    NonFiniteForce {
        /// Offending atom index.
        atom: usize,
    },
    /// An atom's position or velocity has a NaN or infinite component.
    NonFiniteState {
        /// Offending atom index.
        atom: usize,
    },
    /// An atom moved further in one check interval than the configured
    /// multiple of the neighbor skin.
    DisplacementSpike {
        /// Offending atom index.
        atom: usize,
        /// Min-image distance moved since the previous check.
        distance: f64,
        /// The configured limit it exceeded.
        limit: f64,
    },
    /// Relative energy drift exceeded the budget.
    EnergyDrift {
        /// Observed relative drift.
        drift: f64,
        /// Configured budget.
        budget: f64,
    },
    /// Instantaneous temperature exceeded the spike ceiling.
    TemperatureSpike {
        /// Observed temperature.
        temperature: f64,
        /// Ceiling it exceeded.
        ceiling: f64,
    },
    /// An atom left the box along a non-periodic axis by more than the
    /// escape margin.
    EscapedAtom {
        /// Offending atom index.
        atom: usize,
    },
    /// The engine's own step returned an error (SHAKE divergence, neighbor
    /// rebuild failure). Synthesized by the recovery driver, not by
    /// [`Watchdog::check`].
    StepFailed {
        /// The engine error, rendered.
        message: String,
    },
    /// A virtual-cluster rank was declared failed after its peers exhausted
    /// their comm retry budget. Synthesized by the recovery driver when the
    /// degraded-mode shrink runs out of ranks or rollbacks.
    RankFailed {
        /// The rank declared failed.
        rank: usize,
        /// Retries spent before the declaration.
        retries: u32,
    },
}

impl HealthEvent {
    /// Counter name under which this event class is recorded.
    pub fn counter(&self) -> &'static str {
        match self {
            HealthEvent::NonFiniteForce { .. } => "health_nonfinite_force",
            HealthEvent::NonFiniteState { .. } => "health_nonfinite_state",
            HealthEvent::DisplacementSpike { .. } => "health_displacement_spike",
            HealthEvent::EnergyDrift { .. } => "health_energy_drift",
            HealthEvent::TemperatureSpike { .. } => "health_temperature_spike",
            HealthEvent::EscapedAtom { .. } => "health_escaped_atom",
            HealthEvent::StepFailed { .. } => "health_step_error",
            HealthEvent::RankFailed { .. } => "health_rank_failed",
        }
    }
}

impl std::fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthEvent::NonFiniteForce { atom } => {
                write!(f, "non-finite force on atom {atom}")
            }
            HealthEvent::NonFiniteState { atom } => {
                write!(f, "non-finite position/velocity on atom {atom}")
            }
            HealthEvent::DisplacementSpike {
                atom,
                distance,
                limit,
            } => write!(
                f,
                "atom {atom} moved {distance:.3e} in one check (limit {limit:.3e})"
            ),
            HealthEvent::EnergyDrift { drift, budget } => {
                write!(f, "energy drift {drift:.3e} exceeds budget {budget:.3e}")
            }
            HealthEvent::TemperatureSpike {
                temperature,
                ceiling,
            } => write!(
                f,
                "temperature {temperature:.3e} exceeds ceiling {ceiling:.3e}"
            ),
            HealthEvent::EscapedAtom { atom } => {
                write!(f, "atom {atom} escaped the simulation box")
            }
            HealthEvent::StepFailed { message } => write!(f, "engine step failed: {message}"),
            HealthEvent::RankFailed { rank, retries } => {
                write!(
                    f,
                    "rank {rank} declared failed after {retries} exhausted retries"
                )
            }
        }
    }
}

/// The per-step health monitor. Holds the previous check's positions (for
/// the displacement test) and the temperature baseline.
#[derive(Debug, Clone)]
pub struct Watchdog {
    config: WatchdogConfig,
    prev_x: Vec<V3>,
    baseline_temperature: Option<f64>,
    /// How many events each counter class has accumulated (mirrors the
    /// md-observe counters, available even with a disabled recorder).
    events_seen: u64,
}

impl Watchdog {
    /// Creates a watchdog with the given thresholds.
    pub fn new(config: WatchdogConfig) -> Self {
        Watchdog {
            config,
            prev_x: Vec::new(),
            baseline_temperature: None,
            events_seen: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// Total events raised over this watchdog's lifetime.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Clears position/baseline memory. Call after a rollback so the next
    /// displacement check does not compare against post-fault positions.
    pub fn reset_reference(&mut self) {
        self.prev_x.clear();
        self.baseline_temperature = None;
    }

    /// Inspects `sim` and returns every violation found (empty when
    /// healthy). Events are mirrored to the simulation's recorder as
    /// `health_*` counters plus a `health` instant marker per event class.
    pub fn check(&mut self, sim: &Simulation) -> Vec<HealthEvent> {
        let mut events = Vec::new();
        let atoms = sim.atoms();
        let x = atoms.x();
        let v = atoms.v();
        let f = atoms.f();
        let bx = sim.sim_box();

        // Non-finite forces / state: always on. Report the first offender
        // of each class — one NaN makes every later index meaningless.
        if let Some(atom) = f.iter().position(|fi| !is_finite(*fi)) {
            events.push(HealthEvent::NonFiniteForce { atom });
        }
        if let Some(atom) = x
            .iter()
            .zip(v)
            .position(|(xi, vi)| !is_finite(*xi) || !is_finite(*vi))
        {
            events.push(HealthEvent::NonFiniteState { atom });
        }

        // Displacement since the previous check, min-image so periodic
        // wrapping does not read as a jump.
        if let Some(nl) = sim.neighbor_list() {
            let limit = self.config.displacement_skin_factor * nl.skin();
            if limit > 0.0 && self.prev_x.len() == x.len() {
                let mut worst: Option<(usize, f64)> = None;
                for (i, (now, before)) in x.iter().zip(&self.prev_x).enumerate() {
                    let d = bx.min_image(*now, *before).norm();
                    if d > limit && worst.is_none_or(|(_, w)| d > w) {
                        worst = Some((i, d));
                    }
                }
                if let Some((atom, distance)) = worst {
                    events.push(HealthEvent::DisplacementSpike {
                        atom,
                        distance,
                        limit,
                    });
                }
            }
            self.prev_x.clear();
            self.prev_x.extend_from_slice(x);
        }

        // Energy drift (engine-maintained; zero until thermo sampling with
        // an enabled recorder has run).
        if let Some(budget) = self.config.energy_drift_budget {
            let drift = sim.last_energy_drift();
            if drift.is_nan() || drift > budget {
                events.push(HealthEvent::EnergyDrift { drift, budget });
            }
        }

        // Temperature spike relative to the first healthy sample.
        if let Some(factor) = self.config.temperature_spike_factor {
            let t = md_core::temperature(atoms, sim.units());
            if t.is_finite() {
                let baseline = *self.baseline_temperature.get_or_insert(t);
                let ceiling = factor * baseline.max(f64::MIN_POSITIVE);
                if t > ceiling {
                    events.push(HealthEvent::TemperatureSpike {
                        temperature: t,
                        ceiling,
                    });
                }
            }
        }

        // Escapes along non-periodic axes.
        if let Some(margin) = self.config.escape_margin {
            let lengths = bx.lengths();
            let slack = margin * lengths.x.max(lengths.y).max(lengths.z);
            let (lo, hi) = (bx.lo(), bx.hi());
            let open = [!bx.is_periodic(0), !bx.is_periodic(1), !bx.is_periodic(2)];
            if open.iter().any(|&o| o) {
                if let Some(atom) = x.iter().position(|xi| {
                    let out = |p: f64, lo: f64, hi: f64| p < lo - slack || p > hi + slack;
                    (open[0] && out(xi.x, lo.x, hi.x) && xi.x.is_finite())
                        || (open[1] && out(xi.y, lo.y, hi.y) && xi.y.is_finite())
                        || (open[2] && out(xi.z, lo.z, hi.z) && xi.z.is_finite())
                }) {
                    events.push(HealthEvent::EscapedAtom { atom });
                }
            }
        }

        let recorder = sim.recorder();
        for ev in &events {
            recorder.count(ENGINE_LANE, ev.counter(), 1.0);
            recorder.instant(ENGINE_LANE, "health", ev.counter());
        }
        self.events_seen += events.len() as u64;
        events
    }
}

fn is_finite(v: V3) -> bool {
    v.x.is_finite() && v.y.is_finite() && v.z.is_finite()
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::Threads;
    use md_workloads::{build_deck_with, Benchmark};

    fn lj() -> md_workloads::Deck {
        build_deck_with(Benchmark::Lj, 1, 11, Threads::deterministic(1)).unwrap()
    }

    #[test]
    fn healthy_run_raises_nothing() {
        let mut deck = lj();
        let mut dog = Watchdog::new(WatchdogConfig::default());
        for _ in 0..10 {
            deck.simulation.step().unwrap();
            let events = dog.check(&deck.simulation);
            assert!(events.is_empty(), "unexpected events: {events:?}");
        }
        assert_eq!(dog.events_seen(), 0);
    }

    #[test]
    fn nan_force_is_caught() {
        let mut deck = lj();
        deck.simulation.step().unwrap();
        deck.simulation.atoms_mut().f_mut()[3].x = f64::NAN;
        let mut dog = Watchdog::new(WatchdogConfig::default());
        let events = dog.check(&deck.simulation);
        assert!(events
            .iter()
            .any(|e| matches!(e, HealthEvent::NonFiniteForce { atom: 3 })));
    }

    #[test]
    fn nan_velocity_is_caught_as_state() {
        let mut deck = lj();
        deck.simulation.step().unwrap();
        deck.simulation.atoms_mut().v_mut()[0].z = f64::INFINITY;
        let mut dog = Watchdog::new(WatchdogConfig::default());
        let events = dog.check(&deck.simulation);
        assert!(events
            .iter()
            .any(|e| matches!(e, HealthEvent::NonFiniteState { atom: 0 })));
    }

    #[test]
    fn displacement_spike_is_caught() {
        let mut deck = lj();
        deck.simulation.step().unwrap();
        let mut dog = Watchdog::new(WatchdogConfig::default());
        assert!(dog.check(&deck.simulation).is_empty(), "prime reference");
        // Teleport one atom a third of the box: far beyond 10x skin, but
        // within min-image range so the distance is measured faithfully.
        let jump = deck.simulation.sim_box().lengths().x / 3.0;
        deck.simulation.atoms_mut().x_mut()[7].x += jump;
        let events = dog.check(&deck.simulation);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, HealthEvent::DisplacementSpike { atom: 7, .. })),
            "events: {events:?}"
        );
    }

    #[test]
    fn temperature_spike_is_caught() {
        let mut deck = lj();
        deck.simulation.step().unwrap();
        let mut dog = Watchdog::new(WatchdogConfig::default());
        assert!(dog.check(&deck.simulation).is_empty(), "prime baseline");
        for v in deck.simulation.atoms_mut().v_mut() {
            *v *= 1000.0;
        }
        let events = dog.check(&deck.simulation);
        assert!(events
            .iter()
            .any(|e| matches!(e, HealthEvent::TemperatureSpike { .. })));
    }

    #[test]
    fn rollback_reset_clears_displacement_reference() {
        let mut deck = lj();
        deck.simulation.step().unwrap();
        let mut dog = Watchdog::new(WatchdogConfig::default());
        dog.check(&deck.simulation);
        dog.reset_reference();
        // Teleporting after a reset must NOT fire: the reference is gone.
        let jump = deck.simulation.sim_box().lengths().x / 3.0;
        deck.simulation.atoms_mut().x_mut()[7].x += jump;
        let events = dog.check(&deck.simulation);
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, HealthEvent::DisplacementSpike { .. })),
            "events: {events:?}"
        );
    }
}
