//! Versioned, checksummed checkpoint files with atomic writes.
//!
//! ## File format (`.mdchk`)
//!
//! ```text
//! magic     8 bytes   "VRLCHKP\0"
//! body      wire-encoded:
//!   version   u32     format revision (currently 1)
//!   header            deck recipe: benchmark name, scale, seed, threads,
//!                     deterministic flag, step index
//!   state     blob    Simulation::save_state payload
//! crc       u32-le    CRC-32 (IEEE) over the body
//! ```
//!
//! Everything after the magic is little-endian via [`md_core::wire`]. The
//! header stores the *recipe*, not the static data: restore rebuilds the
//! deck from `(benchmark, scale, seed, threads)` — which regenerates
//! topology, masses, charges, and force-field parameters bit-for-bit — and
//! then overlays the dynamic state blob. Files are written to a `.tmp`
//! sibling, fsynced, and renamed into place, so a crash mid-write never
//! corrupts the latest good checkpoint.

use crate::{ResilienceError, Result};
use md_core::wire::{self, Reader, Writer};
use md_core::{CoreError, Threads};
use md_workloads::{build_deck_with, Benchmark, Deck};
use std::fs;
use std::path::{Path, PathBuf};

/// File magic ("VeRLette CHecKPoint").
pub const MAGIC: &[u8; 8] = b"VRLCHKP\0";

/// Current format revision.
pub const VERSION: u32 = 1;

/// Filename extension for checkpoint files.
pub const EXTENSION: &str = "mdchk";

/// The deck recipe + step index stored in every checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Benchmark identity.
    pub benchmark: Benchmark,
    /// Replication factor.
    pub scale: usize,
    /// Deck construction seed.
    pub seed: u64,
    /// Thread-team configuration the run used.
    pub threads: Threads,
    /// Step index the state was captured at.
    pub step: u64,
}

impl CheckpointHeader {
    /// Captures the recipe of `deck` (threads taken from its simulation) at
    /// its current step.
    pub fn of(deck: &Deck, seed: u64) -> Self {
        CheckpointHeader {
            benchmark: deck.benchmark,
            scale: deck.scale,
            seed,
            threads: deck.simulation.threads(),
            step: deck.simulation.step_index(),
        }
    }

    fn write(&self, w: &mut Writer) {
        w.str(self.benchmark.name());
        w.usize(self.scale);
        w.u64(self.seed);
        w.usize(self.threads.count);
        w.bool(self.threads.deterministic);
        w.u64(self.step);
    }

    fn read(r: &mut Reader<'_>) -> Result<Self> {
        let name = r.str()?;
        let benchmark = Benchmark::parse(&name).map_err(|_| {
            ResilienceError::Core(CoreError::CorruptState {
                what: "checkpoint",
                detail: format!("unknown benchmark `{name}`"),
            })
        })?;
        Ok(CheckpointHeader {
            benchmark,
            scale: r.usize()?,
            seed: r.u64()?,
            threads: Threads {
                count: r.usize()?,
                deterministic: r.bool()?,
            },
            step: r.u64()?,
        })
    }
}

/// A decoded checkpoint: recipe plus the opaque dynamic-state blob.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Deck recipe and capture step.
    pub header: CheckpointHeader,
    /// [`Simulation::save_state`] payload.
    pub state: Vec<u8>,
}

impl Checkpoint {
    /// Captures `deck`'s current state under its recipe.
    pub fn capture(deck: &Deck, seed: u64) -> Self {
        Checkpoint {
            header: CheckpointHeader::of(deck, seed),
            state: deck.simulation.save_state(),
        }
    }

    /// Encodes the checkpoint into the on-disk byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Writer::new();
        body.u32(VERSION);
        self.header.write(&mut body);
        body.blob(&self.state);
        let body = body.into_bytes();
        let mut out = Vec::with_capacity(MAGIC.len() + body.len() + 4);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&body);
        out.extend_from_slice(&wire::crc32(&body).to_le_bytes());
        out
    }

    /// Decodes and integrity-checks the on-disk byte format.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptState`] (wrapped) on a bad magic,
    /// unsupported version, checksum mismatch, truncation, or trailing
    /// bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let corrupt = |detail: String| {
            ResilienceError::Core(CoreError::CorruptState {
                what: "checkpoint",
                detail,
            })
        };
        if bytes.len() < MAGIC.len() + 4 {
            return Err(corrupt(format!("file too short ({} bytes)", bytes.len())));
        }
        let (magic, rest) = bytes.split_at(MAGIC.len());
        if magic != MAGIC {
            return Err(corrupt("bad magic; not a verlette checkpoint".to_string()));
        }
        let (body, crc_bytes) = rest.split_at(rest.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let actual = wire::crc32(body);
        if stored != actual {
            return Err(corrupt(format!(
                "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        let mut r = Reader::new(body, "checkpoint");
        let version = r.u32()?;
        if version != VERSION {
            return Err(corrupt(format!(
                "unsupported format version {version} (this build reads {VERSION})"
            )));
        }
        let header = CheckpointHeader::read(&mut r)?;
        let state = r.blob()?.to_vec();
        r.expect_exhausted()?;
        Ok(Checkpoint { header, state })
    }

    /// Writes the checkpoint atomically: encode to `<path>.tmp`, fsync,
    /// rename over `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::Io`] on filesystem failures.
    pub fn write_to(&self, path: &Path) -> Result<()> {
        let io = |source| ResilienceError::Io {
            path: path.to_path_buf(),
            source,
        };
        let tmp = path.with_extension(format!("{EXTENSION}.tmp"));
        {
            use std::io::Write as _;
            let mut f = fs::File::create(&tmp).map_err(io)?;
            f.write_all(&self.encode()).map_err(io)?;
            f.sync_all().map_err(io)?;
        }
        fs::rename(&tmp, path).map_err(io)
    }

    /// Reads and decodes a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::Io`] on read failures and
    /// [`CoreError::CorruptState`] (wrapped) on format violations.
    pub fn read_from(path: &Path) -> Result<Self> {
        let bytes = fs::read(path).map_err(|source| ResilienceError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        Checkpoint::decode(&bytes)
    }

    /// Rebuilds the deck from the stored recipe and overlays the dynamic
    /// state, yielding a simulation that continues bitwise-identically to
    /// the checkpointed run.
    ///
    /// # Errors
    ///
    /// Propagates deck-construction failures and state-blob corruption.
    pub fn restore(&self) -> Result<Deck> {
        let h = &self.header;
        let mut deck = build_deck_with(h.benchmark, h.scale, h.seed, h.threads)?;
        deck.simulation.load_state(&self.state)?;
        Ok(deck)
    }
}

/// Cadence + retention policy over a checkpoint directory.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    dir: PathBuf,
    every: u64,
    retain: usize,
}

impl CheckpointManager {
    /// Creates the manager, creating `dir` if needed. `every` is the step
    /// cadence (0 disables periodic saves); `retain` keeps the newest K
    /// files (0 keeps everything).
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::Io`] if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>, every: u64, retain: usize) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| ResilienceError::Io {
            path: dir.clone(),
            source,
        })?;
        Ok(CheckpointManager { dir, every, retain })
    }

    /// Step cadence (0 = disabled).
    pub fn every(&self) -> u64 {
        self.every
    }

    /// The checkpoint path for `step`.
    pub fn path_for(&self, step: u64) -> PathBuf {
        self.dir.join(format!("ckpt_{step:010}.{EXTENSION}"))
    }

    /// Whether the cadence fires at `step`.
    pub fn due(&self, step: u64) -> bool {
        self.every > 0 && step > 0 && step.is_multiple_of(self.every)
    }

    /// Saves `deck` at its current step and prunes old files per the
    /// retention policy. Returns the path written.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::Io`] on filesystem failures.
    pub fn save(&self, deck: &Deck, seed: u64) -> Result<PathBuf> {
        let ckpt = Checkpoint::capture(deck, seed);
        let path = self.path_for(ckpt.header.step);
        ckpt.write_to(&path)?;
        self.prune()?;
        Ok(path)
    }

    /// The newest checkpoint in the directory, if any (by step index, which
    /// the zero-padded filenames make lexicographic).
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::Io`] if the directory cannot be listed.
    pub fn latest(&self) -> Result<Option<PathBuf>> {
        Ok(self.list()?.into_iter().next_back())
    }

    /// All checkpoint files, oldest first.
    fn list(&self) -> Result<Vec<PathBuf>> {
        let entries = fs::read_dir(&self.dir).map_err(|source| ResilienceError::Io {
            path: self.dir.clone(),
            source,
        })?;
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|e| e == EXTENSION)
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("ckpt_"))
            })
            .collect();
        files.sort();
        Ok(files)
    }

    fn prune(&self) -> Result<()> {
        if self.retain == 0 {
            return Ok(());
        }
        let files = self.list()?;
        if files.len() > self.retain {
            for old in &files[..files.len() - self.retain] {
                fs::remove_file(old).map_err(|source| ResilienceError::Io {
                    path: old.clone(),
                    source,
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mdchk_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut deck = build_deck_with(Benchmark::Lj, 1, 7, Threads::deterministic(1)).unwrap();
        deck.simulation.run(5).unwrap();
        let ckpt = Checkpoint::capture(&deck, 7);
        let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded.header, ckpt.header);
        assert_eq!(decoded.state, ckpt.state);
        assert_eq!(decoded.header.step, 5);
    }

    #[test]
    fn corruption_is_detected() {
        let deck = build_deck_with(Benchmark::Lj, 1, 7, Threads::deterministic(1)).unwrap();
        let good = Checkpoint::capture(&deck, 7).encode();
        // Flip one payload bit: checksum must catch it.
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(Checkpoint::decode(&bad).is_err());
        // Truncation at any point must fail, never panic.
        for cut in [0, 4, MAGIC.len(), MAGIC.len() + 3, good.len() - 1] {
            assert!(Checkpoint::decode(&good[..cut]).is_err(), "cut {cut}");
        }
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(Checkpoint::decode(&bad).is_err());
        // Trailing garbage (checksum shifts).
        let mut bad = good;
        bad.push(0);
        assert!(Checkpoint::decode(&bad).is_err());
    }

    #[test]
    fn manager_prunes_and_finds_latest() {
        let dir = tmpdir("prune");
        let mgr = CheckpointManager::new(&dir, 2, 2).unwrap();
        assert!(mgr.latest().unwrap().is_none());
        let mut deck = build_deck_with(Benchmark::Lj, 1, 7, Threads::deterministic(1)).unwrap();
        for _ in 0..3 {
            deck.simulation.run(2).unwrap();
            assert!(mgr.due(deck.simulation.step_index()));
            mgr.save(&deck, 7).unwrap();
        }
        let files = mgr.list().unwrap();
        assert_eq!(files.len(), 2, "retention keeps the newest 2");
        assert_eq!(mgr.latest().unwrap().unwrap(), mgr.path_for(6));
        assert!(!mgr.due(3));
        assert!(!mgr.due(0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let dir = tmpdir("atomic");
        let mgr = CheckpointManager::new(&dir, 1, 0).unwrap();
        let mut deck = build_deck_with(Benchmark::Lj, 1, 7, Threads::deterministic(1)).unwrap();
        deck.simulation.run(1).unwrap();
        let path = mgr.save(&deck, 7).unwrap();
        assert!(path.exists());
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let restored = Checkpoint::read_from(&path).unwrap();
        assert_eq!(restored.header.step, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
