//! # md-bench — shared fixtures for the Criterion benchmark targets
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `bench_figures` — one Criterion benchmark per paper figure (3–16),
//!   timing the full regeneration of that figure's data series;
//! * `bench_tables` — Tables 1–3;
//! * `bench_ablations` — the design-choice ablations from DESIGN.md §6
//!   (skin distance, cell vs O(N²) neighbor build, Newton halving, Ewald vs
//!   PPPM, kernel precision, memory layout);
//! * `bench_engine` — engine micro-benchmarks (pair kernel, neighbor build,
//!   FFT, SHAKE).

use md_core::{AtomStore, SimBox, UnitSystem, Vec3, V3};

/// A reproducible random gas at a given reduced density (benchmark fixture).
pub fn random_gas(n: usize, density: f64, seed: u64) -> (SimBox, Vec<V3>) {
    let l = (n as f64 / density).cbrt();
    let bx = SimBox::cubic(l);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    let x = (0..n)
        .map(|_| Vec3::new(next() * l, next() * l, next() * l))
        .collect();
    (bx, x)
}

/// An [`AtomStore`] over the random gas, single type, unit mass,
/// Maxwell-Boltzmann velocities at T* = 1.
pub fn gas_atoms(n: usize, density: f64, seed: u64) -> (SimBox, AtomStore) {
    let (bx, x) = random_gas(n, density, seed);
    let mut atoms = AtomStore::with_capacity(n);
    for p in x {
        atoms.push(p, Vec3::zero(), 0);
    }
    atoms.set_masses(vec![1.0]);
    md_core::compute::seed_velocities(&mut atoms, &UnitSystem::lj(), 1.0, seed);
    (bx, atoms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_reproducible() {
        let (_, a) = random_gas(100, 0.8, 7);
        let (_, b) = random_gas(100, 0.8, 7);
        assert_eq!(a, b);
        let (bx, atoms) = gas_atoms(50, 0.5, 3);
        assert_eq!(atoms.len(), 50);
        assert!(atoms.x().iter().all(|p| bx.contains(*p)));
    }
}
