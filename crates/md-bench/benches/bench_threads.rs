//! Shared-memory threading guard: the `Threaded` hot kernels must actually
//! pay for themselves. On a host with at least 4 hardware threads the
//! 4-thread EAM deck must spend at most 0.6× the serial pair+neighbor time,
//! and deterministic mode (fixed 16-chunk reduction order) must cost at most
//! 10% over fast mode. Hosts with fewer hardware threads measure and report
//! but skip the ratio assertions (there is nothing to win on one core).
//!
//! Results are also written to `BENCH_threads.json` at the workspace root so
//! runs can be compared across hosts.

use criterion::{criterion_group, criterion_main, Criterion};
use md_core::{TaskKind, Threads};
use std::time::Duration;

/// 4-thread pair+neigh time must be at most this fraction of serial.
const SPEEDUP_THRESHOLD: f64 = 0.6;

/// Deterministic mode must cost at most this factor over fast mode.
const DET_OVERHEAD_THRESHOLD: f64 = 1.10;

/// Steps per timed window.
const STEPS: u64 = 10;

struct Measurement {
    /// Seconds of Pair + Neigh work per step.
    pair_neigh: f64,
    /// Wall seconds per step.
    wall: f64,
}

fn measure(threads: Threads) -> Measurement {
    let mut deck = md_workloads::build_deck_with(md_workloads::Benchmark::Eam, 1, 3, threads)
        .expect("deck builds");
    deck.simulation.run(3).expect("warmup");
    let report = deck.simulation.run(STEPS).expect("timed window");
    let ledger = &report.ledger;
    Measurement {
        pair_neigh: (ledger.seconds(TaskKind::Pair) + ledger.seconds(TaskKind::Neigh))
            / STEPS as f64,
        wall: report.wall_seconds / STEPS as f64,
    }
}

fn guard_thread_speedup(c: &mut Criterion) {
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let serial = measure(Threads::serial());
    let fast4 = measure(Threads::fast(4));
    let det4 = measure(Threads::deterministic(4));
    let speedup_ratio = fast4.pair_neigh / serial.pair_neigh.max(1e-12);
    let det_ratio = det4.pair_neigh / fast4.pair_neigh.max(1e-12);
    println!(
        "bench_threads: eam pair+neigh per step — serial {:.1} ms, 4-thread {:.1} ms \
         (ratio {speedup_ratio:.3}), deterministic {:.1} ms (x{det_ratio:.3} over fast); \
         host has {host_threads} hardware threads",
        serial.pair_neigh * 1e3,
        fast4.pair_neigh * 1e3,
        det4.pair_neigh * 1e3,
    );

    // A reader of the JSON must be able to tell a passing guard from one
    // that never ran: record *why* the assertions were skipped, not just a
    // bare `"asserted": false`.
    let asserted = host_threads >= 4;
    let skip_reason = if asserted {
        String::new()
    } else {
        format!("host has {host_threads} hardware thread(s); ratio assertions need >= 4")
    };
    let json = format!(
        "{{\n  \"benchmark\": \"eam\",\n  \"steps\": {STEPS},\n  \
         \"host_threads\": {host_threads},\n  \
         \"serial_pair_neigh_s\": {:.6e},\n  \"fast4_pair_neigh_s\": {:.6e},\n  \
         \"det4_pair_neigh_s\": {:.6e},\n  \"serial_wall_s\": {:.6e},\n  \
         \"fast4_wall_s\": {:.6e},\n  \"det4_wall_s\": {:.6e},\n  \
         \"speedup_ratio\": {speedup_ratio:.4},\n  \"det_overhead_ratio\": {det_ratio:.4},\n  \
         \"speedup_threshold\": {SPEEDUP_THRESHOLD},\n  \
         \"det_overhead_threshold\": {DET_OVERHEAD_THRESHOLD},\n  \
         \"asserted\": {asserted},\n  \"skip_reason\": \"{skip_reason}\"\n}}\n",
        serial.pair_neigh, fast4.pair_neigh, det4.pair_neigh, serial.wall, fast4.wall, det4.wall,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_threads.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("bench_threads: wrote {out}"),
        Err(e) => println!("bench_threads: cannot write {out}: {e}"),
    }

    if host_threads >= 4 {
        assert!(
            speedup_ratio <= SPEEDUP_THRESHOLD,
            "4-thread EAM pair+neigh at {speedup_ratio:.3}x serial (budget {SPEEDUP_THRESHOLD}x)"
        );
        assert!(
            det_ratio <= DET_OVERHEAD_THRESHOLD,
            "deterministic mode at {det_ratio:.3}x fast mode (budget {DET_OVERHEAD_THRESHOLD}x)"
        );
    } else {
        eprintln!(
            "bench_threads: WARNING: speedup assertions SKIPPED — {skip_reason}; \
             the numbers above are informational only"
        );
    }

    // Criterion records per-mode step times so regressions show in reports.
    let mut group = c.benchmark_group("threads_eam_step");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(400));
    for (label, threads) in [
        ("serial", Threads::serial()),
        ("fast4", Threads::fast(4)),
        ("det4", Threads::deterministic(4)),
    ] {
        group.bench_function(label, |b| {
            let mut deck =
                md_workloads::build_deck_with(md_workloads::Benchmark::Eam, 1, 3, threads)
                    .expect("deck builds");
            deck.simulation.run(3).expect("warmup");
            b.iter(|| deck.simulation.run(1).expect("step runs").steps)
        });
    }
    group.finish();

    // The neighbor build threads independently of the pair style: time one
    // forced rebuild per mode via wall clock on the LJ deck.
    let mut group = c.benchmark_group("threads_lj_step");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    for (label, threads) in [("serial", Threads::serial()), ("fast4", Threads::fast(4))] {
        group.bench_function(label, |b| {
            let mut deck =
                md_workloads::build_deck_with(md_workloads::Benchmark::Lj, 1, 3, threads)
                    .expect("deck builds");
            deck.simulation.run(3).expect("warmup");
            b.iter(|| deck.simulation.run(1).expect("step runs").steps)
        });
    }
    group.finish();
}

criterion_group!(benches, guard_thread_speedup);
criterion_main!(benches);
