//! md-observe overhead guard: the instrumentation hooks are compiled into
//! every `Simulation::step`, so a *disabled* recorder must be effectively
//! free. This target measures (a) the raw cost of one disabled hook, (b) an
//! enabled span for contrast, and (c) full deck steps with the recorder
//! disabled vs enabled — and asserts that the disabled hooks account for at
//! most 2% of a measured step.

use criterion::{criterion_group, criterion_main, Criterion};
use md_observe::{ObserveConfig, Recorder};
use std::time::{Duration, Instant};

/// Upper bound on instrumentation call sites executed per engine step
/// (Pair + Bond + Kspace + 5 PPPM sub-spans + 2×Modify + Neigh + Output +
/// counters/gauges/histograms in `record_step_sample`).
const HOOKS_PER_STEP: u64 = 24;

/// Tolerated disabled-instrumentation share of one step.
const MAX_OVERHEAD_FRACTION: f64 = 0.02;

fn time_per_iter(iters: u64, mut body: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        body();
    }
    t0.elapsed() / iters.max(1) as u32
}

fn bench_hooks(c: &mut Criterion) {
    let mut group = c.benchmark_group("observe_hook");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    let off = Recorder::disabled();
    group.bench_function("disabled_record_span", |b| {
        b.iter(|| {
            let t0 = Instant::now();
            off.record_span(0, "task", "Pair", t0, 1e-6);
            off.is_enabled()
        })
    });
    let on = Recorder::new(ObserveConfig {
        enabled: true,
        ..ObserveConfig::default()
    });
    group.bench_function("enabled_record_span", |b| {
        b.iter(|| {
            let t0 = Instant::now();
            on.record_span(0, "task", "Pair", t0, 1e-6);
            on.event_count()
        })
    });
    group.finish();
}

fn bench_deck_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("observe_deck_step");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(400));
    for (label, recorder) in [
        ("lj_disabled", Recorder::disabled()),
        (
            "lj_enabled",
            Recorder::new(ObserveConfig {
                enabled: true,
                ..ObserveConfig::default()
            }),
        ),
    ] {
        group.bench_function(label, |b| {
            let mut deck =
                md_workloads::build_deck(md_workloads::Benchmark::Lj, 1, 3).expect("deck builds");
            deck.simulation.set_recorder(recorder.clone());
            deck.simulation.run(5).expect("warmup");
            b.iter(|| deck.simulation.run(1).expect("step runs").steps)
        });
    }
    group.finish();
}

/// Hard guard: `HOOKS_PER_STEP` disabled hook calls must cost at most
/// `MAX_OVERHEAD_FRACTION` of one measured engine step. Runs as a benchmark
/// so `cargo bench --bench bench_observe` fails loudly on a regression
/// (e.g. someone putting an allocation ahead of the enabled check).
fn guard_disabled_overhead(c: &mut Criterion) {
    let off = Recorder::disabled();
    let hook = time_per_iter(4_000_000, || {
        let t0 = Instant::now();
        off.record_span(0, "task", "Pair", t0, 1e-6);
    });

    let mut deck =
        md_workloads::build_deck(md_workloads::Benchmark::Lj, 1, 3).expect("deck builds");
    deck.simulation.set_recorder(off.clone());
    deck.simulation.run(5).expect("warmup");
    let step = time_per_iter(30, || {
        deck.simulation.run(1).expect("step runs");
    });

    let overhead = hook.as_secs_f64() * HOOKS_PER_STEP as f64;
    let fraction = overhead / step.as_secs_f64().max(1e-12);
    println!(
        "observe_guard: disabled hook {:.1} ns x {HOOKS_PER_STEP} = {:.2} us \
         vs step {:.1} us ({:.4}% of step)",
        hook.as_secs_f64() * 1e9,
        overhead * 1e6,
        step.as_secs_f64() * 1e6,
        fraction * 100.0
    );
    assert!(
        fraction <= MAX_OVERHEAD_FRACTION,
        "disabled md-observe hooks cost {:.3}% of a step (budget {:.0}%)",
        fraction * 100.0,
        MAX_OVERHEAD_FRACTION * 100.0
    );
    // Keep the group non-empty so the report shows the guard ran.
    let mut group = c.benchmark_group("observe_guard");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("hook_x24_disabled", |b| {
        b.iter(|| {
            for _ in 0..HOOKS_PER_STEP {
                let t0 = Instant::now();
                off.record_span(0, "task", "Pair", t0, 1e-6);
            }
            off.is_enabled()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hooks,
    bench_deck_steps,
    guard_disabled_overhead
);
criterion_main!(benches);
