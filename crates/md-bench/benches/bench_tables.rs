//! Criterion benchmarks for the paper's Tables 1–3.

use criterion::{criterion_group, criterion_main, Criterion};
use md_harness::{tables, ExperimentContext, Fidelity};
use std::sync::OnceLock;
use std::time::Duration;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| {
        let ctx = ExperimentContext::new(Fidelity::Quick);
        let _ = tables::table2(&ctx); // warm the measured profiles
        ctx
    })
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    group.bench_function("table1", |b| b.iter(tables::table1));
    group.bench_function("table2", |b| {
        b.iter(|| tables::table2(ctx()).expect("table2 succeeds"))
    });
    group.bench_function("table3", |b| b.iter(tables::table3));
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
