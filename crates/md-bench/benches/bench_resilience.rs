//! md-resilience overhead guard: a run that is merely *prepared* to recover
//! — watchdog checks every step, checkpointing disabled or not due — must
//! cost at most 2% over a bare run (the same bar md-observe holds its
//! disabled hooks to). Separately measures the real prices you pay when
//! resilience does fire: a full in-memory snapshot (`save_state`) and a
//! checkpoint encode, reported (and amortized at the default snapshot
//! cadence) in the JSON but not guarded — snapshot cadence is a knob the
//! operator trades against recovery granularity.
//!
//! Results are also written to `BENCH_resilience.json` at the workspace
//! root so runs can be compared across hosts.

use criterion::{criterion_group, criterion_main, Criterion};
use md_core::{TaskKind, Threads};
use md_parallel::{CommPolicy, LinkModel, VirtualCluster};
use md_resilience::{Checkpoint, Watchdog, WatchdogConfig};
use md_workloads::{build_deck_with, Benchmark};
use std::time::{Duration, Instant};

/// Tolerated checkpoint-disabled resilience overhead (the watchdog check
/// that runs every step) as a fraction of one engine step.
const MAX_OVERHEAD_FRACTION: f64 = 0.02;

/// Default snapshot cadence the amortized guard assumes (matches
/// `RecoveryPolicy::default().snapshot_every`).
const SNAPSHOT_EVERY: f64 = 10.0;

fn time_per_iter(iters: u64, mut body: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        body();
    }
    t0.elapsed() / iters.max(1) as u32
}

/// Wall-clock cost of ten modeled cluster steps (compute + halo exchange
/// across an 8-rank ring), with or without the comm-health policing layer
/// armed. The difference is the detection hook's real price: deadline
/// bookkeeping plus a CRC over a framed ghost payload per exchange.
fn model_halo_steps(policed: bool) -> Duration {
    let link = LinkModel {
        latency: 1.5e-6,
        bandwidth: 11.0e9,
    };
    let partners: Vec<Vec<usize>> = (0..8).map(|r| vec![(r + 1) % 8, (r + 7) % 8]).collect();
    let bytes = vec![1.0e5; 8];
    time_per_iter(50, || {
        let mut cluster = VirtualCluster::new(8);
        if policed {
            cluster.set_comm_policy(CommPolicy::default());
        }
        for step in 0..10 {
            cluster.begin_step(step);
            for r in 0..8 {
                cluster.compute(r, TaskKind::Pair, 1.0e-3);
            }
            cluster.halo_exchange(&partners, &bytes, link);
        }
        std::hint::black_box(cluster.max_clock());
    })
}

fn guard_resilience_overhead(c: &mut Criterion) {
    let mut deck = build_deck_with(Benchmark::Lj, 1, 3, Threads::serial()).expect("deck builds");
    deck.simulation.run(5).expect("warmup");

    // Bare step cost.
    let step = time_per_iter(30, || {
        deck.simulation.run(1).expect("step runs");
    });

    // Per-step watchdog check (every threshold class enabled).
    let mut dog = Watchdog::new(WatchdogConfig::default());
    dog.check(&deck.simulation); // prime the displacement reference
    let check = time_per_iter(50, || {
        let events = dog.check(&deck.simulation);
        assert!(events.is_empty(), "healthy deck: {events:?}");
    });

    // Snapshot and checkpoint-encode costs (paid only at cadence).
    let save = time_per_iter(20, || {
        std::hint::black_box(deck.simulation.save_state());
    });
    let encode = time_per_iter(20, || {
        std::hint::black_box(Checkpoint::capture(&deck, 3).encode());
    });

    // Comm-health detection hook: policed minus unpoliced modeled halo
    // steps, per step, guarded against the same engine-step budget.
    let unpoliced = model_halo_steps(false);
    let policed = model_halo_steps(true);
    let comm_hook_per_step = (policed.as_secs_f64() - unpoliced.as_secs_f64()).max(0.0) / 10.0;
    let comm_fraction = comm_hook_per_step / step.as_secs_f64().max(1e-12);

    let fraction = check.as_secs_f64() / step.as_secs_f64().max(1e-12);
    let amortized =
        (check.as_secs_f64() + save.as_secs_f64() / SNAPSHOT_EVERY) / step.as_secs_f64().max(1e-12);
    println!(
        "resilience_guard: step {:.1} us, watchdog check {:.1} us ({:.3}% of a step, \
         budget {:.0}%), snapshot {:.1} us, checkpoint encode {:.1} us \
         (snapshotting every {SNAPSHOT_EVERY} steps would add {:.3}% total, unguarded)",
        step.as_secs_f64() * 1e6,
        check.as_secs_f64() * 1e6,
        fraction * 100.0,
        MAX_OVERHEAD_FRACTION * 100.0,
        save.as_secs_f64() * 1e6,
        encode.as_secs_f64() * 1e6,
        amortized * 100.0,
    );
    println!(
        "comm_guard: policed modeled step {:.2} us vs unpoliced {:.2} us — detection \
         hook {:.3} us/step ({:.3}% of an engine step, budget {:.0}%)",
        policed.as_secs_f64() * 1e5,
        unpoliced.as_secs_f64() * 1e5,
        comm_hook_per_step * 1e6,
        comm_fraction * 100.0,
        MAX_OVERHEAD_FRACTION * 100.0,
    );

    let json = format!(
        "{{\n  \"benchmark\": \"lj\",\n  \"step_s\": {:.6e},\n  \
         \"watchdog_check_s\": {:.6e},\n  \"save_state_s\": {:.6e},\n  \
         \"checkpoint_encode_s\": {:.6e},\n  \"snapshot_every\": {SNAPSHOT_EVERY},\n  \
         \"watchdog_overhead_fraction\": {fraction:.6},\n  \
         \"snapshotting_overhead_fraction\": {amortized:.6},\n  \
         \"comm_hook_s_per_step\": {comm_hook_per_step:.6e},\n  \
         \"comm_overhead_fraction\": {comm_fraction:.6},\n  \
         \"overhead_budget\": {MAX_OVERHEAD_FRACTION}\n}}\n",
        step.as_secs_f64(),
        check.as_secs_f64(),
        save.as_secs_f64(),
        encode.as_secs_f64(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_resilience.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("bench_resilience: wrote {out}"),
        Err(e) => println!("bench_resilience: cannot write {out}: {e}"),
    }

    assert!(
        fraction <= MAX_OVERHEAD_FRACTION,
        "checkpoint-disabled resilience overhead (watchdog check) {:.3}% of a step \
         (budget {:.0}%)",
        fraction * 100.0,
        MAX_OVERHEAD_FRACTION * 100.0
    );
    assert!(
        comm_fraction <= MAX_OVERHEAD_FRACTION,
        "comm-health detection hook costs {:.3}% of an engine step (budget {:.0}%)",
        comm_fraction * 100.0,
        MAX_OVERHEAD_FRACTION * 100.0
    );

    // Criterion entries so regressions show in reports.
    let mut group = c.benchmark_group("resilience");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    group.bench_function("watchdog_check", |b| {
        b.iter(|| dog.check(&deck.simulation).len())
    });
    group.bench_function("save_state", |b| {
        b.iter(|| deck.simulation.save_state().len())
    });
    group.bench_function("checkpoint_encode", |b| {
        b.iter(|| Checkpoint::capture(&deck, 3).encode().len())
    });
    group.finish();
}

criterion_group!(benches, guard_resilience_overhead);
criterion_main!(benches);
