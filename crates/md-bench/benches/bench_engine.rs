//! Engine micro-benchmarks: the hot kernels of a timestep in isolation
//! (pair force, neighbor build, 3D FFT, SHAKE, full deck step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use md_bench::gas_atoms;
use md_core::constraint::{Shake, ShakeParams};
use md_core::neighbor::{NeighborList, NeighborListKind};
use md_core::{PairStyle, PairSystem, SimBox, UnitSystem, Vec3};
use md_kspace::fft::{Direction, Fft3d};
use md_kspace::Complex;
use md_potentials::{LjCut, SuttonChenEam};
use std::time::Duration;

fn bench_pair_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_kernel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    let (bx, atoms) = gas_atoms(8000, 0.8442, 1);
    let units = UnitSystem::lj();
    let mut nl = NeighborList::new(2.5, 0.3, NeighborListKind::Half);
    nl.build(atoms.x(), &bx).expect("in-range cutoff");
    let sys = |dt: f64| PairSystem {
        bx: &bx,
        x: atoms.x(),
        v: atoms.v(),
        kinds: atoms.kinds(),
        charge: atoms.charges(),
        radius: atoms.radii(),
        mass_by_type: atoms.masses_by_type(),
        units: &units,
        dt,
    };
    group.bench_function("lj_cut_8k", |b| {
        let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).expect("valid");
        b.iter(|| {
            let mut f = vec![Vec3::zero(); atoms.len()];
            lj.compute(&sys(0.005), &nl, &mut f);
            f
        })
    });
    group.bench_function("eam_8k", |b| {
        let mut eam = SuttonChenEam::copper();
        // Reuse the same geometry; EAM's 4.95 cutoff fits the gas box.
        let mut nl2 = NeighborList::new(2.5, 0.3, NeighborListKind::Half);
        nl2.build(atoms.x(), &bx).expect("in-range cutoff");
        b.iter(|| {
            let mut f = vec![Vec3::zero(); atoms.len()];
            eam.compute(&sys(0.005), &nl2, &mut f);
            f
        })
    });
    group.finish();
}

fn bench_neighbor_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    for n in [4000usize, 16000] {
        let (bx, atoms) = gas_atoms(n, 0.8442, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut nl = NeighborList::new(2.5, 0.3, NeighborListKind::Half);
                nl.build(atoms.x(), &bx).expect("in-range cutoff");
                nl.len()
            })
        });
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft3d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    for dim in [16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            let mut fft = Fft3d::new(dim, dim, dim).expect("power of two");
            let mut data = vec![Complex::new(1.0, 0.0); fft.len()];
            b.iter(|| {
                fft.transform(&mut data, Direction::Forward).expect("sized");
                fft.transform(&mut data, Direction::Inverse).expect("sized");
            })
        });
    }
    group.finish();
}

fn bench_shake(c: &mut Criterion) {
    let mut group = c.benchmark_group("shake");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    // 1000 rigid waters slightly perturbed.
    let bx = SimBox::cubic(100.0);
    let mut atoms = md_core::AtomStore::new();
    let mut constraints = Vec::new();
    for m in 0..1000u32 {
        let o = atoms.len() as u32;
        let cx = 3.0 * (m % 30) as f64 + 1.5;
        let cy = 3.0 * ((m / 30) % 30) as f64 + 1.5;
        let cz = 3.0 * (m / 900) as f64 + 1.5;
        atoms.push(Vec3::new(cx, cy, cz), Vec3::zero(), 0);
        atoms.push(Vec3::new(cx + 0.99, cy, cz), Vec3::zero(), 1);
        atoms.push(Vec3::new(cx - 0.3, cy + 0.93, cz), Vec3::zero(), 1);
        constraints.push(ShakeParams {
            i: o,
            j: o + 1,
            length: 0.9572,
        });
        constraints.push(ShakeParams {
            i: o,
            j: o + 2,
            length: 0.9572,
        });
        constraints.push(ShakeParams {
            i: o + 1,
            j: o + 2,
            length: 1.5139,
        });
    }
    atoms.set_masses(vec![16.0, 1.0]);
    group.bench_function("water_1k", |b| {
        b.iter_batched(
            || (atoms.clone(), Shake::new(constraints.clone(), 1e-6, 100)),
            |(mut atoms, mut shake)| {
                shake.apply(&mut atoms, &bx, 0.002).expect("converges");
                atoms
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_deck_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("deck_step");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500));
    for bench in [md_workloads::Benchmark::Lj, md_workloads::Benchmark::Chain] {
        group.bench_function(bench.name(), |b| {
            let mut deck = md_workloads::build_deck(bench, 1, 3).expect("deck builds");
            deck.simulation.run(5).expect("warmup");
            b.iter(|| deck.simulation.run(1).expect("step runs").steps)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pair_kernels,
    bench_neighbor_build,
    bench_fft,
    bench_shake,
    bench_deck_step
);
criterion_main!(benches);
