//! Ablation benchmarks for the design choices DESIGN.md §6 calls out:
//! skin distance, cell-list vs O(N²) neighbor build, Newton's-third-law
//! halving, PPPM vs Ewald at equal accuracy, kernel precision, and memory
//! layout (spatially sorted vs shuffled atom order).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use md_bench::{gas_atoms, random_gas};
use md_core::neighbor::{brute_force_pairs, NeighborList, NeighborListKind};
use md_core::{KspaceStyle, PairStyle, PairSystem, PrecisionMode, Simulation, UnitSystem, Vec3};
use md_kspace::{Ewald, Pppm};
use md_potentials::LjCut;
use std::time::Duration;

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    g
}

/// Larger skins rebuild less often but compute more pairs per step: the
/// classic Verlet-list trade-off behind Table 2's per-deck skin choices.
fn ablation_skin(c: &mut Criterion) {
    let mut group = quick(c, "ablation_skin");
    for skin in [0.05, 0.15, 0.3, 0.6] {
        group.bench_with_input(BenchmarkId::from_parameter(skin), &skin, |b, &skin| {
            b.iter_batched(
                || {
                    // A proper melt start (fcc lattice + Maxwell-Boltzmann
                    // velocities): random placements at liquid density have
                    // overlapping cores and blow up under dynamics.
                    let (bx, x) = md_workloads::lattice::fcc(
                        10,
                        10,
                        10,
                        md_workloads::lattice::fcc_lattice_constant(0.8442),
                    );
                    let mut atoms = md_core::AtomStore::with_capacity(x.len());
                    for p in x {
                        atoms.push(p, Vec3::zero(), 0);
                    }
                    atoms.set_masses(vec![1.0]);
                    md_core::compute::seed_velocities(&mut atoms, &UnitSystem::lj(), 1.44, 9);
                    Simulation::builder(bx, atoms, UnitSystem::lj())
                        .pair(Box::new(
                            LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).expect("valid"),
                        ))
                        .skin(skin)
                        .dt(0.005)
                        .build()
                        .expect("deck builds")
                },
                |mut sim| {
                    sim.run(20).expect("steps run");
                    sim
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Cell-binned O(N) neighbor construction vs the O(N²) reference.
fn ablation_neighbor(c: &mut Criterion) {
    let mut group = quick(c, "ablation_neighbor");
    let (bx, x) = random_gas(3000, 0.8442, 4);
    group.bench_function("cell_list", |b| {
        b.iter(|| {
            let mut nl = NeighborList::new(2.5, 0.3, NeighborListKind::Half);
            nl.build(&x, &bx).expect("in-range cutoff");
            nl.len()
        })
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| brute_force_pairs(&x, &bx, 2.8).len())
    });
    group.finish();
}

/// Newton's third law: half lists visit each pair once; full lists twice
/// (what the granular style pays, per the paper's Section 3).
fn ablation_newton(c: &mut Criterion) {
    let mut group = quick(c, "ablation_newton");
    let (bx, atoms) = gas_atoms(8000, 0.8442, 5);
    let units = UnitSystem::lj();
    for (label, kind) in [
        ("half_newton_on", NeighborListKind::Half),
        ("full_newton_off", NeighborListKind::Full),
    ] {
        let mut nl = NeighborList::new(2.5, 0.3, kind);
        nl.build(atoms.x(), &bx).expect("in-range cutoff");
        group.bench_function(label, |b| {
            let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).expect("valid");
            b.iter(|| {
                let sys = PairSystem {
                    bx: &bx,
                    x: atoms.x(),
                    v: atoms.v(),
                    kinds: atoms.kinds(),
                    charge: atoms.charges(),
                    radius: atoms.radii(),
                    mass_by_type: atoms.masses_by_type(),
                    units: &units,
                    dt: 0.005,
                };
                let mut f = vec![Vec3::zero(); atoms.len()];
                lj.compute(&sys, &nl, &mut f);
                f
            })
        });
    }
    group.finish();
}

/// PPPM (FFT, O(N log N)) vs Ewald (O(N·K)) at the same accuracy target.
fn ablation_kspace(c: &mut Criterion) {
    let mut group = quick(c, "ablation_kspace");
    let (bx, x) = random_gas(512, 0.05, 8);
    let q: Vec<f64> = (0..x.len())
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    let cutoff = 0.45 * bx.min_periodic_extent();
    group.bench_function("ewald", |b| {
        let mut solver = Ewald::new(cutoff, 1e-4);
        solver.setup(&bx, &q).expect("charged system");
        b.iter(|| {
            let mut f = vec![Vec3::zero(); x.len()];
            solver.compute(&bx, &x, &q, &mut f);
            f
        })
    });
    group.bench_function("pppm", |b| {
        let mut solver = Pppm::new(cutoff, 1e-4, 5);
        solver.setup(&bx, &q).expect("charged system");
        b.iter(|| {
            let mut f = vec![Vec3::zero(); x.len()];
            solver.compute(&bx, &x, &q, &mut f);
            f
        })
    });
    group.finish();
}

/// Real single/mixed/double pair-kernel code paths (paper Section 8).
fn ablation_precision(c: &mut Criterion) {
    let mut group = quick(c, "ablation_precision");
    let (bx, atoms) = gas_atoms(8000, 0.8442, 6);
    let units = UnitSystem::lj();
    let mut nl = NeighborList::new(2.5, 0.3, NeighborListKind::Half);
    nl.build(atoms.x(), &bx).expect("in-range cutoff");
    for mode in PrecisionMode::ALL {
        group.bench_function(mode.label(), |b| {
            let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).expect("valid");
            lj.set_precision(mode);
            b.iter(|| {
                let sys = PairSystem {
                    bx: &bx,
                    x: atoms.x(),
                    v: atoms.v(),
                    kinds: atoms.kinds(),
                    charge: atoms.charges(),
                    radius: atoms.radii(),
                    mass_by_type: atoms.masses_by_type(),
                    units: &units,
                    dt: 0.005,
                };
                let mut f = vec![Vec3::zero(); atoms.len()];
                lj.compute(&sys, &nl, &mut f);
                f
            })
        });
    }
    group.finish();
}

/// Memory layout: spatially ordered atoms stream the cache; a shuffled
/// order defeats it (why LAMMPS sorts atoms by bin).
fn ablation_layout(c: &mut Criterion) {
    let mut group = quick(c, "ablation_layout");
    let units = UnitSystem::lj();
    let make = |shuffle: bool| {
        let (bx, mut atoms) = gas_atoms(8000, 0.8442, 12);
        if shuffle {
            // Deterministic Fisher-Yates over the atom order.
            let n = atoms.len();
            let mut order: Vec<usize> = (0..n).collect();
            let mut state = 0x12345678u64;
            for i in (1..n).rev() {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let j = (state.wrapping_mul(0x2545F4914F6CDD1D) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let mut shuffled = md_core::AtomStore::with_capacity(n);
            for &i in &order {
                shuffled.push(atoms.x()[i], atoms.v()[i], 0);
            }
            shuffled.set_masses(vec![1.0]);
            atoms = shuffled;
        } else {
            // Spatial sort by cell index (z-major), LAMMPS `atom_modify sort`.
            let n = atoms.len();
            let mut order: Vec<usize> = (0..n).collect();
            let xs: Vec<_> = atoms.x().to_vec();
            order.sort_by_key(|&i| {
                let f = bx.fractional(xs[i]);
                let c = |v: f64| (v.clamp(0.0, 1.0 - 1e-12) * 16.0) as u32;
                (c(f.z), c(f.y), c(f.x))
            });
            let mut sorted = md_core::AtomStore::with_capacity(n);
            for &i in &order {
                sorted.push(atoms.x()[i], atoms.v()[i], 0);
            }
            sorted.set_masses(vec![1.0]);
            atoms = sorted;
        }
        let mut nl = NeighborList::new(2.5, 0.3, NeighborListKind::Half);
        nl.build(atoms.x(), &bx).expect("in-range cutoff");
        (bx, atoms, nl)
    };
    for (label, shuffle) in [("spatially_sorted", false), ("shuffled", true)] {
        let (bx, atoms, nl) = make(shuffle);
        group.bench_function(label, |b| {
            let mut lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], 2.5).expect("valid");
            b.iter(|| {
                let sys = PairSystem {
                    bx: &bx,
                    x: atoms.x(),
                    v: atoms.v(),
                    kinds: atoms.kinds(),
                    charge: atoms.charges(),
                    radius: atoms.radii(),
                    mass_by_type: atoms.masses_by_type(),
                    units: &units,
                    dt: 0.005,
                };
                let mut f = vec![Vec3::zero(); atoms.len()];
                lj.compute(&sys, &nl, &mut f);
                f
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_skin,
    ablation_neighbor,
    ablation_newton,
    ablation_kspace,
    ablation_precision,
    ablation_layout
);
criterion_main!(benches);
