//! One Criterion benchmark per paper figure: each times the regeneration of
//! that figure's full data series (at quick fidelity so the suite finishes
//! in minutes; run the `figures` binary for the full-size sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use md_harness::{figures, ExperimentContext, Fidelity};
use std::sync::OnceLock;
use std::time::Duration;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| {
        let ctx = ExperimentContext::new(Fidelity::Quick);
        // Warm every cache (profiles, systems, censuses) so the benchmark
        // measures figure regeneration, not first-run deck construction.
        for (_, gen) in figures::GENERATORS {
            let _ = gen(&ctx);
        }
        ctx
    })
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    for (id, gen) in figures::GENERATORS {
        group.bench_function(id, |b| {
            b.iter(|| {
                let fig = gen(ctx()).expect("figure generation succeeds");
                assert!(!fig.table.is_empty());
                fig
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
