//! md-insight overhead guard: analysis happens *after* the run, so with
//! analysis disabled (no recorder, no rank stats) the per-step cost added
//! by the insight machinery must stay within 2% of a plain engine step.
//! The analyzer itself is also timed — amortized per modeled step — and
//! reported (not asserted; it runs off the hot path). Results land in
//! `BENCH_insight.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use md_harness::insight;
use md_model::{CpuModel, CpuRunOptions, WorkloadProfile};
use md_observe::{ObserveConfig, Recorder};
use std::time::{Duration, Instant};

/// Tolerated analysis-disabled share of one engine step.
const MAX_OVERHEAD_FRACTION: f64 = 0.02;

/// Upper bound on instrumentation call sites executed per engine step (the
/// only per-step surface the insight path touches; analysis itself runs
/// after the run).
const HOOKS_PER_STEP: u64 = 24;

/// Modeled steps the analyzer cost is amortized over.
const ANALYZE_SIM_STEPS: u64 = 60;

fn time_per_iter(iters: u64, mut body: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        body();
    }
    t0.elapsed() / iters.max(1) as u32
}

/// Hard guard: with analysis disabled the insight path adds nothing per
/// step beyond the disabled-recorder hooks, so `HOOKS_PER_STEP` disabled
/// hook calls must cost at most `MAX_OVERHEAD_FRACTION` of a measured step
/// (the same methodology as `bench_observe`, robust on noisy hosts).
fn guard_disabled_overhead(c: &mut Criterion) {
    let off = Recorder::disabled();
    let hook = time_per_iter(4_000_000, || {
        let t0 = Instant::now();
        off.record_span(0, "task", "Pair", t0, 1e-6);
    });

    let mut deck =
        md_workloads::build_deck(md_workloads::Benchmark::Lj, 1, 3).expect("deck builds");
    deck.simulation.set_recorder(off.clone());
    deck.simulation.run(5).expect("warmup");
    let step = time_per_iter(30, || {
        deck.simulation.run(1).expect("step runs");
    });

    let overhead = hook.as_secs_f64() * HOOKS_PER_STEP as f64;
    let fraction = overhead / step.as_secs_f64().max(1e-12);

    // Analyzer cost, amortized per modeled step (off the hot path). The
    // recorder honours MD_OBSERVE_STEPS so the guard can be probed with
    // retained-sample mode off.
    let mut observe_cfg = ObserveConfig::from_env();
    observe_cfg.enabled = true;
    let retained_samples = observe_cfg.step_capacity > 0;
    let recorder = Recorder::new(observe_cfg);
    let profile = WorkloadProfile::measure(md_workloads::Benchmark::Lj, 10, 1).expect("profile");
    let (bx, x) =
        md_workloads::build_positions(md_workloads::Benchmark::Lj, 1, 1).expect("positions");
    let mut model = CpuModel::new();
    model.set_recorder(recorder.clone());
    let opts = CpuRunOptions {
        ranks: 8,
        sim_steps: ANALYZE_SIM_STEPS,
        thermo_every: 10,
        collect_rank_stats: true,
        ..CpuRunOptions::default()
    };
    let result = model.simulate(&profile, &bx, &x, &opts).expect("simulate");
    let analyze = time_per_iter(20, || {
        let report = insight::analyze(&result, &recorder);
        std::hint::black_box(report.findings.len());
    });
    let analyze_per_step = analyze.as_secs_f64() / ANALYZE_SIM_STEPS as f64;

    println!(
        "insight_guard: disabled hook {:.1} ns x {HOOKS_PER_STEP} = {:.2} us \
         vs step {:.1} us ({:.4}% of step, budget {:.0}%); analyze() {:.1} us \
         total = {:.3} us per modeled step (off hot path, informational)",
        hook.as_secs_f64() * 1e9,
        overhead * 1e6,
        step.as_secs_f64() * 1e6,
        fraction * 100.0,
        MAX_OVERHEAD_FRACTION * 100.0,
        analyze.as_secs_f64() * 1e6,
        analyze_per_step * 1e6,
    );

    // A reader of the JSON must be able to tell a passing guard from one
    // that never ran (same schema as `bench_threads`): record *why* the
    // assertion was skipped, not just a bare `"asserted": false`. With
    // retained-sample mode off (`MD_OBSERVE_STEPS=0`) the analyzer sees no
    // step samples, so the guarded path is not the production one and the
    // overhead assertion would vouch for a configuration nobody ships.
    let asserted = retained_samples;
    let skip_reason = if asserted {
        String::new()
    } else {
        "retained-sample mode is off (MD_OBSERVE_STEPS=0); the analyzer ran without \
         step samples, so the overhead budget is not representative"
            .to_string()
    };
    // Cross-run trend store state: how many runs the committed per-deck
    // history carries, and whether a >10% step-cost drift bisects to a
    // specific run — recorded so the JSON carries the longitudinal view
    // next to the per-run guard.
    let baselines = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../baselines"));
    let history = md_insight::trend::load_history(baselines, "lj").unwrap_or_default();
    let trend_runs = history.len();
    let trend_bisect = md_insight::trend::bisect_regression(&history, "step_seconds.total", 0.10)
        .map(|(i, e)| format!("run {} (commit {})", i, e.commit))
        .unwrap_or_else(|| "none".to_string());
    println!(
        "trend: {trend_runs} historical lj run(s) in {}, >10% step-cost drift: {trend_bisect}",
        baselines.display()
    );

    let json = format!(
        "{{\n  \"benchmark\": \"lj\",\n  \
         \"disabled_hook_s\": {:.6e},\n  \"hooks_per_step\": {HOOKS_PER_STEP},\n  \
         \"step_s\": {:.6e},\n  \"overhead_fraction\": {fraction:.6},\n  \
         \"max_overhead_fraction\": {MAX_OVERHEAD_FRACTION},\n  \
         \"analyze_total_s\": {:.6e},\n  \"analyze_per_model_step_s\": {:.6e},\n  \
         \"model_sim_steps\": {ANALYZE_SIM_STEPS},\n  \
         \"trend_runs\": {trend_runs},\n  \"trend_bisect\": \"{trend_bisect}\",\n  \
         \"asserted\": {asserted},\n  \"skip_reason\": \"{skip_reason}\"\n}}\n",
        hook.as_secs_f64(),
        step.as_secs_f64(),
        analyze.as_secs_f64(),
        analyze_per_step,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_insight.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("bench_insight: wrote {out}"),
        Err(e) => println!("bench_insight: cannot write {out}: {e}"),
    }

    if asserted {
        assert!(
            fraction <= MAX_OVERHEAD_FRACTION,
            "analysis-disabled per-step overhead {:.3}% exceeds the {:.0}% budget",
            fraction * 100.0,
            MAX_OVERHEAD_FRACTION * 100.0
        );
    } else {
        eprintln!(
            "bench_insight: WARNING: overhead assertion SKIPPED — {skip_reason}; \
             the numbers above are informational only"
        );
    }

    // Keep the Criterion report non-empty so the guard visibly ran.
    let mut group = c.benchmark_group("insight_guard");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("analyze_model_run", |b| {
        b.iter(|| insight::analyze(&result, &recorder).findings.len())
    });
    group.finish();
}

criterion_group!(benches, guard_disabled_overhead);
criterion_main!(benches);
