//! Multi-node scale-out extension of the CPU model.
//!
//! The paper deliberately scopes to a single node, citing that multi-node
//! strong scaling "rapidly becomes inefficient (e.g., 33% parallel
//! efficiency for LJ on Haswell with 64 nodes)" (Section 4.1). This module
//! extends the virtual cluster with an inter-node interconnect so that claim
//! can be checked against the same workload machinery — the "orthogonal
//! scale-out behavior" the paper leaves to prior work.

use crate::calib;
use crate::cpu::{CpuModel, CpuRunOptions};
use crate::workload::WorkloadProfile;
use md_core::{Result, SimBox};
use md_parallel::LinkModel;

/// An inter-node interconnect description.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Interconnect {
    /// Per-message latency across nodes (seconds).
    pub latency: f64,
    /// Per-node injection bandwidth (bytes/second).
    pub bandwidth: f64,
}

impl Interconnect {
    /// A 100 Gb/s HDR-class fabric with ~2 µs MPI latency.
    pub const fn hdr100() -> Interconnect {
        Interconnect {
            latency: 2.0e-6,
            bandwidth: 12.5e9,
        }
    }

    /// A 10 Gb/s Ethernet cloud fabric with ~20 µs latency.
    pub const fn ethernet10() -> Interconnect {
        Interconnect {
            latency: 20.0e-6,
            bandwidth: 1.25e9,
        }
    }
}

/// Result of one multi-node modeled run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MultiNodeResult {
    /// Nodes used.
    pub nodes: usize,
    /// Total MPI ranks (nodes × 64).
    pub total_ranks: usize,
    /// Timesteps per second.
    pub ts_per_sec: f64,
    /// Parallel efficiency vs. one *node* (not one rank).
    pub node_parallel_efficiency: f64,
    /// Share of the step spent on inter-node communication.
    pub internode_comm_percent: f64,
}

/// Multi-node strong-scaling model: the single-node CPU model plus an
/// inter-node halo/allreduce surcharge.
#[derive(Debug, Clone)]
pub struct MultiNodeModel {
    cpu: CpuModel,
    fabric: Interconnect,
}

impl MultiNodeModel {
    /// Creates the model over a given fabric.
    pub fn new(fabric: Interconnect) -> Self {
        MultiNodeModel {
            cpu: CpuModel::new(),
            fabric,
        }
    }

    /// Strong-scales `profile` across `nodes` full CPU-instance nodes
    /// (64 ranks each).
    ///
    /// The intra-node behaviour comes from the per-node share of the system
    /// run through the single-node model; the inter-node surcharge covers
    /// the surface halo between node subdomains and the global reductions.
    ///
    /// # Errors
    ///
    /// Propagates decomposition/model failures.
    pub fn simulate(
        &self,
        profile: &WorkloadProfile,
        bx: &SimBox,
        positions: &[md_core::V3],
        nodes: usize,
        baseline: Option<&MultiNodeResult>,
    ) -> Result<MultiNodeResult> {
        // Single-node pass over the whole system at 64 ranks gives the
        // intra-node step time for the node's 1/nodes share of atoms: with
        // near-ideal intra-node weak behaviour we scale the per-step compute
        // by 1/nodes (strong scaling splits the box across nodes first).
        let opts = CpuRunOptions {
            ranks: 64,
            ..CpuRunOptions::default()
        };
        let single = self.cpu.simulate(profile, bx, positions, &opts)?;
        let intra_step = single.step_seconds / nodes as f64;

        // Inter-node halo: each node exchanges its subdomain surface shell.
        // Surface per node shrinks as (V/nodes)^(2/3).
        let volume = bx.volume();
        let node_volume = volume / nodes as f64;
        let density = profile.natoms as f64 / volume;
        let shell_atoms = 6.0 * node_volume.powf(2.0 / 3.0) * profile.ghost_cutoff * density;
        let bytes = shell_atoms
            * (calib::FORWARD_BYTES_PER_GHOST
                + if profile.newton {
                    calib::REVERSE_BYTES_PER_GHOST
                } else {
                    0.0
                });
        let link = LinkModel {
            latency: self.fabric.latency,
            bandwidth: self.fabric.bandwidth,
        };
        let mut inter = if nodes > 1 { link.transfer(bytes) } else { 0.0 };
        // Global reductions & (for kspace decks) FFT all-to-all across nodes.
        if nodes > 1 {
            inter += (nodes as f64).log2().ceil() * link.transfer(128.0);
            if let Some(ks) = profile.kspace {
                let grid_bytes = ks.grid_points as f64 * 16.0 / nodes as f64;
                inter += 2.0 * link.transfer(grid_bytes);
            }
        }

        let step = intra_step + inter;
        let ts_per_sec = 1.0 / step;
        let node_eff = match baseline {
            Some(b) => ts_per_sec / (b.ts_per_sec * nodes as f64),
            None => 1.0,
        };
        Ok(MultiNodeResult {
            nodes,
            total_ranks: nodes * 64,
            ts_per_sec,
            node_parallel_efficiency: node_eff,
            internode_comm_percent: 100.0 * inter / step,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_workloads::{build_positions, Benchmark};

    fn lj_sweep(fabric: Interconnect) -> Vec<MultiNodeResult> {
        let profile = WorkloadProfile::measure(Benchmark::Lj, 20, 1).unwrap();
        let (bx, x) = build_positions(Benchmark::Lj, 1, 1).unwrap();
        let model = MultiNodeModel::new(fabric);
        let one = model.simulate(&profile, &bx, &x, 1, None).unwrap();
        [1usize, 4, 16, 64]
            .into_iter()
            .map(|n| model.simulate(&profile, &bx, &x, n, Some(&one)).unwrap())
            .collect()
    }

    #[test]
    fn strong_scaling_degrades_with_node_count() {
        let sweep = lj_sweep(Interconnect::hdr100());
        // Throughput rises, efficiency falls monotonically.
        for w in sweep.windows(2) {
            assert!(w[1].ts_per_sec > w[0].ts_per_sec);
            assert!(w[1].node_parallel_efficiency <= w[0].node_parallel_efficiency + 1e-12);
        }
        // The paper's Section 4.1 citation: ~33% at 64 nodes for a 32k-atom
        // class LJ run; we require the same "rapidly inefficient" regime.
        let at64 = sweep.last().unwrap();
        assert!(
            at64.node_parallel_efficiency < 0.6,
            "64-node efficiency {:.2} should be well below 1",
            at64.node_parallel_efficiency
        );
        assert!(at64.internode_comm_percent > 20.0);
    }

    #[test]
    fn slower_fabric_is_strictly_worse() {
        let hdr = lj_sweep(Interconnect::hdr100());
        let eth = lj_sweep(Interconnect::ethernet10());
        for (a, b) in hdr.iter().zip(&eth).skip(1) {
            assert!(
                a.ts_per_sec > b.ts_per_sec,
                "{} vs {}",
                a.ts_per_sec,
                b.ts_per_sec
            );
        }
    }
}
