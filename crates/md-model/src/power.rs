//! Power and energy-efficiency model (the paper samples `powerstat` and
//! `nvidia-smi` at 0.5 s).
//!
//! Node power = platform floor + per-socket idle + dynamic power scaled by
//! the active-core fraction and the benchmark's measured core utilization
//! (paper Section 5.2). GPU devices add idle + utilization-scaled dynamic
//! power. Energy efficiency is TS/s per watt (Figures 6 and 9, middle).

use crate::calib;
use crate::instance::Instance;
use md_workloads::Benchmark;

/// CPU-instance node power at `ranks` active cores running `benchmark`.
pub fn cpu_node_watts(benchmark: Benchmark, ranks: usize) -> f64 {
    let inst = Instance::cpu_instance();
    let util = calib::cpu_core_utilization(benchmark);
    let cores_per_socket = inst.cpu.cores;
    // Ranks fill socket 0 first (paper: KMP_AFFINITY pinning).
    let socket0 = ranks.min(cores_per_socket);
    let socket1 = ranks.saturating_sub(cores_per_socket).min(cores_per_socket);
    let dynamic_w = inst.cpu.tdp_w - calib::SOCKET_IDLE_W;
    let mut watts = calib::PLATFORM_IDLE_W + inst.sockets as f64 * calib::SOCKET_IDLE_W;
    for active in [socket0, socket1] {
        watts += dynamic_w * (active as f64 / cores_per_socket as f64) * util;
    }
    watts
}

/// GPU-instance node power with `gpus` devices at the given device
/// utilization and `host_ranks` active host cores.
pub fn gpu_node_watts(
    benchmark: Benchmark,
    gpus: usize,
    device_utilization: f64,
    host_ranks: usize,
) -> f64 {
    let inst = Instance::gpu_instance();
    let gpu = inst.gpu.expect("gpu instance has devices");
    let util_host = calib::cpu_core_utilization(benchmark).min(1.0);
    let cores = inst.total_cores();
    let host_dynamic = (inst.cpu.tdp_w - calib::SOCKET_IDLE_W) * inst.sockets as f64;
    let mut watts = calib::PLATFORM_IDLE_W + inst.sockets as f64 * calib::SOCKET_IDLE_W;
    watts += host_dynamic * (host_ranks.min(cores) as f64 / cores as f64) * util_host;
    // All 8 devices idle on the node; the used ones add dynamic power.
    watts += inst.gpus as f64 * calib::GPU_IDLE_W;
    watts += gpus as f64 * (gpu.tdp_w - calib::GPU_IDLE_W) * device_utilization.clamp(0.0, 1.0);
    watts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_ranks_draw_more_power() {
        let w1 = cpu_node_watts(Benchmark::Lj, 1);
        let w32 = cpu_node_watts(Benchmark::Lj, 32);
        let w64 = cpu_node_watts(Benchmark::Lj, 64);
        assert!(w1 < w32 && w32 < w64);
        // Full node stays under platform + 2×TDP.
        assert!(w64 < calib::PLATFORM_IDLE_W + 2.0 * 250.0);
    }

    #[test]
    fn chute_draws_less_than_rhodo_at_full_node() {
        // Lower core utilization -> lower power (paper Section 5.2).
        assert!(cpu_node_watts(Benchmark::Chute, 64) < cpu_node_watts(Benchmark::Rhodo, 64));
    }

    #[test]
    fn gpu_power_scales_with_devices_and_utilization() {
        let w1 = gpu_node_watts(Benchmark::Lj, 1, 0.3, 6);
        let w8 = gpu_node_watts(Benchmark::Lj, 8, 0.3, 48);
        assert!(w8 > w1);
        let w8_busy = gpu_node_watts(Benchmark::Lj, 8, 0.9, 48);
        assert!(w8_busy > w8);
        // Bounded by the node maximum.
        assert!(w8_busy < 80.0 + 2.0 * 165.0 + 8.0 * 300.0);
    }
}
