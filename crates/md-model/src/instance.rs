//! The two evaluation platforms of the paper's Table 3.

/// CPU specification (one socket).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CpuSpec {
    /// Marketing name.
    pub model: &'static str,
    /// Physical cores per socket.
    pub cores: usize,
    /// Hardware threads per socket.
    pub threads: usize,
    /// Base frequency (GHz).
    pub freq_ghz: f64,
    /// Turbo frequency (GHz).
    pub turbo_ghz: f64,
    /// L1 data cache per core (KiB).
    pub l1_kib: usize,
    /// L2 cache per core (KiB).
    pub l2_kib: usize,
    /// Shared L3 (MiB, per socket).
    pub l3_mib: f64,
    /// Process node (nm).
    pub tech_nm: usize,
    /// Thermal design power (W, per socket).
    pub tdp_w: f64,
}

/// GPU specification (one device).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub model: &'static str,
    /// Streaming multiprocessors.
    pub sms: usize,
    /// Global memory (GiB HBM).
    pub memory_gib: usize,
    /// Shared L2 (MiB).
    pub l2_mib: f64,
    /// L1 per SM (KiB).
    pub l1_kib: usize,
    /// Core frequency (GHz).
    pub freq_ghz: f64,
    /// Process node (nm).
    pub tech_nm: usize,
    /// Thermal design power (W).
    pub tdp_w: f64,
    /// FP32 peak (TFLOP/s).
    pub fp32_tflops: f64,
    /// FP64:FP32 throughput ratio.
    pub fp64_ratio: f64,
}

/// A full evaluation instance (Table 3 column).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Instance {
    /// Instance label ("CPU Inst." / "GPU Inst.").
    pub name: &'static str,
    /// Host CPU, per socket.
    pub cpu: CpuSpec,
    /// Sockets.
    pub sockets: usize,
    /// Host DRAM (GiB).
    pub memory_gib: usize,
    /// Accelerators, if any.
    pub gpu: Option<GpuSpec>,
    /// Number of accelerator devices.
    pub gpus: usize,
}

impl Instance {
    /// The paper's CPU instance: dual-socket Intel Xeon Platinum 8358.
    pub const fn cpu_instance() -> Instance {
        Instance {
            name: "CPU Inst.",
            cpu: CpuSpec {
                model: "Intel Xeon Platinum 8358",
                cores: 32,
                threads: 64,
                freq_ghz: 2.6,
                turbo_ghz: 3.4,
                l1_kib: 64,
                l2_kib: 1024,
                l3_mib: 48.0,
                tech_nm: 10,
                tdp_w: 250.0,
            },
            sockets: 2,
            memory_gib: 1024,
            gpu: None,
            gpus: 0,
        }
    }

    /// The paper's GPU instance: dual Xeon 8167M host with 8× NVIDIA V100.
    pub const fn gpu_instance() -> Instance {
        Instance {
            name: "GPU Inst.",
            cpu: CpuSpec {
                model: "Intel Xeon Platinum 8167M",
                cores: 26,
                threads: 52,
                freq_ghz: 2.0,
                turbo_ghz: 2.4,
                l1_kib: 32,
                l2_kib: 1024,
                l3_mib: 35.75,
                tech_nm: 14,
                tdp_w: 165.0,
            },
            sockets: 2,
            memory_gib: 768,
            gpu: Some(GpuSpec {
                model: "NVIDIA V100",
                sms: 84,
                memory_gib: 16,
                l2_mib: 6.0,
                l1_kib: 128,
                freq_ghz: 1.35,
                tech_nm: 12,
                tdp_w: 300.0,
                fp32_tflops: 14.0,
                fp64_ratio: 0.5,
            }),
            gpus: 8,
        }
    }

    /// Total physical cores across sockets.
    pub fn total_cores(&self) -> usize {
        self.cpu.cores * self.sockets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_cpu_instance() {
        let i = Instance::cpu_instance();
        assert_eq!(i.total_cores(), 64);
        assert_eq!(i.sockets, 2);
        assert_eq!(i.memory_gib, 1024);
        assert!(i.gpu.is_none());
    }

    #[test]
    fn table3_gpu_instance() {
        let i = Instance::gpu_instance();
        assert_eq!(i.gpus, 8);
        assert_eq!(i.total_cores(), 52);
        let g = i.gpu.expect("has a GPU");
        assert_eq!(g.sms, 84);
        assert_eq!(g.memory_gib, 16);
        assert_eq!(g.tdp_w, 300.0);
    }
}
