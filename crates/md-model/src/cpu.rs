//! The CPU-instance model: a virtual dual-socket Xeon 8358 node running a
//! LAMMPS-style timestep over MPI ranks.
//!
//! The model executes the paper's Figure-1 timestep on a
//! [`VirtualCluster`]: every rank gets per-task compute times derived from
//! its *measured* share of the workload (owned atoms, ghost atoms from the
//! real decomposition census), communication synchronizes the virtual
//! clocks, and the resulting ledgers regenerate the CPU figures (3–6, 10–12,
//! 14–15).

use crate::calib;
use crate::workload::WorkloadProfile;
use md_core::{PrecisionMode, TaskKind, TaskLedger};
use md_core::{Result, SimBox};
use md_parallel::{Decomposition, MpiLedger, VirtualCluster, WorkloadCensus};
use md_workloads::Benchmark;

/// Options of one modeled run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CpuRunOptions {
    /// MPI ranks (= physical cores used; the paper pins one rank per core).
    pub ranks: usize,
    /// Timesteps the modeled experiment runs (the paper uses 10k for the
    /// MPI profiling figures).
    pub steps: u64,
    /// Pairwise floating-point strategy.
    pub precision: PrecisionMode,
    /// Thermo output cadence.
    pub thermo_every: u64,
    /// Steps actually simulated on virtual clocks; ledgers are scaled up to
    /// `steps` (they are periodic after warm-up).
    pub sim_steps: u64,
    /// Whether to keep per-rank ledgers and per-step critical-path records
    /// in the result (md-insight's inputs; off by default because the
    /// figure sweeps run thousands of models and only need the means).
    #[serde(default)]
    pub collect_rank_stats: bool,
    /// Imbalance-aware repartitioning cadence in steps (`0` disables it).
    /// Every `repartition_every` steps the model measures each rank's busy
    /// time over the window, asks the census for a suspect rank, and if one
    /// is named re-splits the owned-atom loads in inverse proportion to the
    /// measured per-atom rates.
    #[serde(default)]
    pub repartition_every: u64,
}

impl Default for CpuRunOptions {
    fn default() -> Self {
        CpuRunOptions {
            ranks: 1,
            steps: 10_000,
            precision: PrecisionMode::Mixed,
            thermo_every: 100,
            sim_steps: 120,
            collect_rank_stats: false,
            repartition_every: 0,
        }
    }
}

/// One imbalance-aware re-split of the modeled decomposition: which rank
/// the census named as the straggler, how many atoms moved, and how the
/// windowed compute `%varavg` changed across the re-split.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RepartitionEvent {
    /// Step the re-split happened at (a window boundary).
    pub step: u64,
    /// The straggler named by `md_parallel::suspect_rank`.
    pub suspect_rank: usize,
    /// Owned atoms that changed ranks.
    pub moved_atoms: usize,
    /// Windowed compute `%varavg` (`100·(max−mean)/mean` of per-rank busy
    /// seconds) over the window *before* the re-split.
    pub varavg_before_percent: f64,
    /// Windowed compute `%varavg` over the window *after* the re-split.
    pub varavg_after_percent: f64,
}

/// Result of one modeled run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CpuRunResult {
    /// Benchmark identity.
    pub benchmark: Benchmark,
    /// Size label (k atoms).
    pub size_k: usize,
    /// Ranks used.
    pub ranks: usize,
    /// Modeled timesteps per second (the paper's TS/s).
    pub ts_per_sec: f64,
    /// Seconds per timestep (steady state, slowest rank).
    pub step_seconds: f64,
    /// Total modeled wall time (init + steps).
    pub total_seconds: f64,
    /// Mean per-task ledger over the whole run (seconds).
    pub tasks: TaskLedger,
    /// Mean per-MPI-function ledger (seconds).
    pub mpi: MpiLedger,
    /// MPI share of total time (Figure 4, top).
    pub mpi_time_percent: f64,
    /// Skew-wait share of total time (Figure 4, bottom).
    pub mpi_imbalance_percent: f64,
    /// Modeled node power draw (W).
    pub watts: f64,
    /// Energy efficiency (TS/s/W, Figure 6 middle).
    pub ts_per_sec_per_watt: f64,
    /// Per-rank task ledgers over the *simulated* window (`sim_steps`
    /// steps, unscaled — md-insight compares shares across ranks, not
    /// absolutes). Empty unless [`CpuRunOptions::collect_rank_stats`].
    #[serde(default)]
    pub rank_tasks: Vec<TaskLedger>,
    /// Per-rank MPI ledgers over the simulated window (unscaled). Empty
    /// unless [`CpuRunOptions::collect_rank_stats`].
    #[serde(default)]
    pub rank_mpi: Vec<MpiLedger>,
    /// Per-rank virtual clocks at the end of the simulated window. Empty
    /// unless [`CpuRunOptions::collect_rank_stats`].
    #[serde(default)]
    pub rank_clocks: Vec<f64>,
    /// Per-step critical-path records over the simulated window. Empty
    /// unless [`CpuRunOptions::collect_rank_stats`].
    #[serde(default)]
    pub critical_path: Vec<md_parallel::CriticalStep>,
    /// Classified unhealthy exchanges from the comm-health layer. Empty
    /// unless a policy was attached via [`CpuModel::set_comm_policy`].
    #[serde(default)]
    pub comm_events: Vec<md_parallel::CommHealthEvent>,
    /// Ranks the comm-health layer declared failed (retry budget exhausted
    /// on a silent peer).
    #[serde(default)]
    pub failed_ranks: Vec<usize>,
    /// Imbalance-aware re-splits performed on the
    /// [`CpuRunOptions::repartition_every`] cadence.
    #[serde(default)]
    pub repartitions: Vec<RepartitionEvent>,
}

impl CpuRunResult {
    /// Parallel efficiency vs. a 1-rank result: `P_n / (P_1 · n)`.
    pub fn parallel_efficiency(&self, single: &CpuRunResult) -> f64 {
        self.ts_per_sec / (single.ts_per_sec * self.ranks as f64)
    }
}

/// Deterministic per-(rank, step) jitter in `[-1, 1]` (splitmix64). Shared
/// with the GPU model's traced schedule so both instances perturb their
/// virtual clocks from the same stream.
pub(crate) fn jitter(rank: usize, step: u64) -> f64 {
    let mut z = (rank as u64)
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(step.wrapping_mul(0xbf58476d1ce4e5b9))
        .wrapping_add(0x94d049bb133111eb);
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58476d1ce4e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Windowed compute imbalance in LAMMPS `%varavg` terms:
/// `100·(max−mean)/mean` over per-rank busy seconds.
fn varavg_percent(busy: &[f64]) -> f64 {
    if busy.is_empty() {
        return 0.0;
    }
    let mean = busy.iter().sum::<f64>() / busy.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let max = busy.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    100.0 * (max - mean) / mean
}

/// The CPU-instance performance model.
#[derive(Clone, Default)]
pub struct CpuModel {
    recorder: Option<md_observe::Recorder>,
    faults: Option<std::sync::Arc<dyn md_parallel::ClusterFaults>>,
    comm: Option<md_parallel::CommPolicy>,
}

impl std::fmt::Debug for CpuModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuModel")
            .field("recorder", &self.recorder)
            .field("faults", &self.faults.is_some())
            .field("comm", &self.comm)
            .finish()
    }
}

impl CpuModel {
    /// Creates the model (all parameters live in [`crate::calib`]).
    pub fn new() -> Self {
        CpuModel::default()
    }

    /// Attaches an observability recorder: every modeled run hands it to
    /// its [`VirtualCluster`], producing one trace lane per rank with
    /// per-task and per-MPI-function spans at simulated timestamps.
    pub fn set_recorder(&mut self, recorder: md_observe::Recorder) {
        self.recorder = Some(recorder);
    }

    /// Attaches a fault model: every modeled run hands it to its
    /// [`VirtualCluster`], so rank slowdowns, stalls, and halo faults
    /// perturb the simulated clocks (and surface as imbalance).
    pub fn set_faults(&mut self, faults: std::sync::Arc<dyn md_parallel::ClusterFaults>) {
        self.faults = Some(faults);
    }

    /// Arms the comm-health layer: every modeled run's cluster polices its
    /// halo exchanges and allreduces under `policy` (deadline timeouts,
    /// payload CRC checks, seeded retry backoff), and the classified
    /// [`md_parallel::CommHealthEvent`]s surface in the result.
    pub fn set_comm_policy(&mut self, policy: md_parallel::CommPolicy) {
        self.comm = Some(policy);
    }

    /// Runs the model for `profile` decomposed over real positions.
    ///
    /// `positions` must be the particle positions of the profile's system at
    /// the profile's scale (used for the exact per-rank census).
    ///
    /// # Errors
    ///
    /// Propagates decomposition failures.
    pub fn simulate(
        &self,
        profile: &WorkloadProfile,
        bx: &SimBox,
        positions: &[md_core::V3],
        opts: &CpuRunOptions,
    ) -> Result<CpuRunResult> {
        let decomp = Decomposition::new(*bx, opts.ranks)?;
        let census = WorkloadCensus::measure(&decomp, positions, profile.ghost_cutoff);
        self.simulate_with_census(profile, &decomp, &census, opts)
    }

    /// Runs the model with an already-measured census (lets callers sweep
    /// options without re-counting ghosts).
    ///
    /// # Errors
    ///
    /// Returns an error if the census rank count disagrees with the options.
    pub fn simulate_with_census(
        &self,
        profile: &WorkloadProfile,
        decomp: &Decomposition,
        census: &WorkloadCensus,
        opts: &CpuRunOptions,
    ) -> Result<CpuRunResult> {
        let p = opts.ranks;
        if census.nranks() != p {
            return Err(md_core::CoreError::LengthMismatch {
                what: "census ranks",
                expected: p,
                found: census.nranks(),
            });
        }
        let bench = profile.benchmark;
        let mut cluster = VirtualCluster::new(p);
        if let Some(rec) = &self.recorder {
            cluster.set_recorder(rec.clone());
        }
        if let Some(faults) = &self.faults {
            cluster.set_faults(faults.clone());
        }
        if let Some(policy) = self.comm {
            cluster.set_comm_policy(policy);
        }
        if opts.collect_rank_stats {
            cluster.enable_step_tracking();
            if let Some(rec) = &self.recorder {
                // Re-announce lanes so the critical_path lane gets named
                // even when the recorder was attached first.
                cluster.set_recorder(rec.clone());
            }
        }
        cluster.mpi_init(
            calib::MPI_INIT_BASE_SECONDS,
            calib::MPI_INIT_PER_RANK_SECONDS,
        );
        let init_clock = cluster.max_clock();

        // Per-rank static cost inputs.
        let precision_factor = calib::cpu_precision_factor(opts.precision);
        let pair_rate = calib::cpu_pair_seconds(bench) * precision_factor;
        let per_atom_pairs = if profile.newton {
            profile.stored_neighbors / 2.0
        } else {
            profile.stored_neighbors
        };
        let jitter_amp = calib::cpu_jitter_amplitude(bench);
        let fix_cost = calib::cpu_fix_seconds(bench);
        let npt = matches!(bench, Benchmark::Rhodo);
        let kspace = profile.kspace;
        let mut loads = census.loads().to_vec();
        let partners: Vec<Vec<usize>> = (0..p).map(|r| decomp.face_neighbors(r).to_vec()).collect();

        // Imbalance-aware repartitioning state: per-rank busy seconds at the
        // last window boundary, plus the re-split whose "after" window is
        // still being measured.
        let rank_busy = |c: &VirtualCluster| -> Vec<f64> {
            (0..p)
                .map(|r| {
                    let t = c.task_ledger(r);
                    (t.total() - t.seconds(TaskKind::Comm) - t.seconds(TaskKind::Other)).max(0.0)
                })
                .collect()
        };
        let mut repartitions: Vec<RepartitionEvent> = Vec::new();
        let mut pending: Option<RepartitionEvent> = None;
        let mut window_base: Vec<f64> = if opts.repartition_every > 0 {
            vec![0.0; p]
        } else {
            Vec::new()
        };

        for step in 0..opts.sim_steps {
            if opts.repartition_every > 0 && step > 0 && step % opts.repartition_every == 0 {
                let busy_now = rank_busy(&cluster);
                let window: Vec<f64> = busy_now
                    .iter()
                    .zip(&window_base)
                    .map(|(now, base)| now - base)
                    .collect();
                let varavg = varavg_percent(&window);
                if let Some(mut ev) = pending.take() {
                    ev.varavg_after_percent = varavg;
                    repartitions.push(ev);
                }
                if let Some(suspect) = md_parallel::suspect_rank(&window) {
                    let new_loads = md_parallel::replan_loads(&loads, &window);
                    let moved: usize = loads
                        .iter()
                        .zip(&new_loads)
                        .map(|(old, new)| old.owned.abs_diff(new.owned))
                        .sum::<usize>()
                        / 2;
                    if moved > 0 {
                        loads = new_loads;
                        pending = Some(RepartitionEvent {
                            step,
                            suspect_rank: suspect,
                            moved_atoms: moved,
                            varavg_before_percent: varavg,
                            varavg_after_percent: varavg,
                        });
                        if let Some(rec) = &self.recorder {
                            rec.count(0, "imbalance_repartitions", 1.0);
                        }
                    }
                }
                window_base = busy_now;
            }
            cluster.begin_step(step);
            for (r, load) in loads.iter().enumerate() {
                let owned = load.owned as f64;
                let jit = 1.0 + jitter_amp * jitter(r, step);

                // V: pairwise forces.
                cluster.compute(r, TaskKind::Pair, pair_rate * per_atom_pairs * owned * jit);

                // III: neighbor maintenance (amortized over the rebuild
                // cadence; rebuild steps also touch the ghosts).
                let neigh_per_build = (calib::CPU_NEIGH_CANDIDATE_SECONDS
                    * calib::NEIGH_SEARCH_FACTOR
                    * profile.stored_neighbors
                    * (owned + load.ghosts as f64)
                    + calib::CPU_NEIGH_BIN_SECONDS * (owned + load.ghosts as f64))
                    * precision_factor;
                cluster.compute(
                    r,
                    TaskKind::Neigh,
                    neigh_per_build / profile.rebuild_interval * jit,
                );

                // VII: bonded forces.
                if profile.bonded_per_atom > 0.0 {
                    cluster.compute(
                        r,
                        TaskKind::Bond,
                        calib::CPU_BOND_SECONDS * profile.bonded_per_atom * owned,
                    );
                }

                // II + fixes: integration, thermostats, SHAKE, NPT.
                let mut modify = calib::CPU_INTEGRATE_SECONDS * owned
                    + fix_cost * owned
                    + calib::CPU_SHAKE_SECONDS * profile.constraints_per_atom * owned;
                if npt {
                    modify += calib::CPU_NPT_SECONDS * owned;
                }
                cluster.compute(r, TaskKind::Modify, modify);

                // VI: k-space mesh work (assignment + interpolation) and the
                // rank's FFT share.
                if let Some(ks) = kspace {
                    let weights = (ks.order * ks.order * ks.order) as f64;
                    let mesh = calib::CPU_MESH_SECONDS * 2.0 * weights * owned * precision_factor;
                    let g = ks.grid_points as f64;
                    let fft = calib::CPU_FFT_SECONDS * 4.0 * g * g.log2() / p as f64;
                    cluster.compute(r, TaskKind::Kspace, mesh + fft);
                }

                // IV: ghost pack/unpack (Comm work outside MPI).
                if p > 1 {
                    cluster.compute(
                        r,
                        TaskKind::Comm,
                        calib::CPU_PACK_SECONDS * load.ghosts as f64,
                    );
                }
            }

            // K-space all-to-all transposes (Figure 12: MPI_Send grows with
            // tighter thresholds).
            if let Some(ks) = kspace {
                if p > 1 {
                    let bytes_per_rank = ks.grid_points as f64 * 16.0 / p as f64;
                    cluster.fft_transpose(bytes_per_rank, 2, calib::CPU_LINK);
                }
            }

            // Halo exchange: forward positions (+ reverse forces with Newton).
            if p > 1 {
                let bytes: Vec<f64> = loads
                    .iter()
                    .map(|l| {
                        l.ghosts as f64
                            * (calib::FORWARD_BYTES_PER_GHOST
                                + if profile.newton {
                                    calib::REVERSE_BYTES_PER_GHOST
                                } else {
                                    0.0
                                })
                    })
                    .collect();
                cluster.halo_exchange(&partners, &bytes, calib::CPU_LINK);
            }

            // VIII: thermodynamic output.
            if opts.thermo_every > 0 && (step + 1) % opts.thermo_every == 0 {
                for (r, load) in loads.iter().enumerate() {
                    cluster.compute(
                        r,
                        TaskKind::Output,
                        calib::CPU_OUTPUT_SECONDS * load.owned as f64,
                    );
                }
                if p > 1 {
                    cluster.allreduce(128.0, calib::CPU_LINK, TaskKind::Output);
                }
            }
        }

        // Close the re-split still waiting on its "after" window with the
        // partial window that ends the run.
        if let Some(mut ev) = pending.take() {
            let busy_now = rank_busy(&cluster);
            let window: Vec<f64> = busy_now
                .iter()
                .zip(&window_base)
                .map(|(now, base)| now - base)
                .collect();
            ev.varavg_after_percent = varavg_percent(&window);
            repartitions.push(ev);
        }

        cluster.finish_step_tracking();

        // Scale the periodic per-step ledgers from sim_steps to steps.
        let scale = opts.steps as f64 / opts.sim_steps as f64;
        let step_seconds = (cluster.max_clock() - init_clock) / opts.sim_steps as f64;
        let total_seconds = init_clock + step_seconds * opts.steps as f64;
        let mut tasks = TaskLedger::new();
        for (t, s) in cluster.mean_task_ledger().iter() {
            // Init time sits in Other and must not be scaled.
            let s = if t == TaskKind::Other {
                s
            } else {
                (s - 0.0) * scale
            };
            tasks.add(t, s);
        }
        let mut mpi = MpiLedger::new();
        let mean = cluster.mean_mpi_ledger();
        for (f, s) in mean.iter() {
            let s = if f == md_parallel::MpiFunction::Init {
                s
            } else {
                s * scale
            };
            mpi.add(f, s);
        }
        mpi.add_skew(mean.skew_seconds() * scale);

        let ts_per_sec = if step_seconds > 0.0 {
            1.0 / step_seconds
        } else {
            0.0
        };
        let watts = crate::power::cpu_node_watts(bench, p);
        let mpi_total = mpi.total();
        let (rank_tasks, rank_mpi, rank_clocks, critical_path) = if opts.collect_rank_stats {
            (
                cluster.rank_task_ledgers(),
                cluster.rank_mpi_ledgers(),
                cluster.rank_clocks(),
                cluster.critical_path().to_vec(),
            )
        } else {
            (Vec::new(), Vec::new(), Vec::new(), Vec::new())
        };
        Ok(CpuRunResult {
            benchmark: bench,
            size_k: profile.natoms / 1000,
            ranks: p,
            ts_per_sec,
            step_seconds,
            total_seconds,
            tasks,
            mpi,
            mpi_time_percent: 100.0 * mpi_total / total_seconds,
            mpi_imbalance_percent: 100.0 * mean.skew_seconds() * scale / total_seconds,
            watts,
            ts_per_sec_per_watt: ts_per_sec / watts,
            rank_tasks,
            rank_mpi,
            rank_clocks,
            critical_path,
            comm_events: cluster.take_comm_events(),
            failed_ranks: cluster.failed_ranks(),
            repartitions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_workloads::build_positions;

    fn run(bench: Benchmark, scale: usize, ranks: usize) -> CpuRunResult {
        let profile = WorkloadProfile::measure(bench, 40, 1)
            .unwrap()
            .at_scale(scale)
            .unwrap();
        let (bx, x) = build_positions(bench, scale, 1).unwrap();
        let model = CpuModel::new();
        let opts = CpuRunOptions {
            ranks,
            sim_steps: 60,
            ..CpuRunOptions::default()
        };
        model.simulate(&profile, &bx, &x, &opts).unwrap()
    }

    #[test]
    fn lj_pair_dominates_at_one_rank() {
        let r = run(Benchmark::Lj, 1, 1);
        assert!(
            r.tasks.percent(TaskKind::Pair) > 60.0,
            "Pair share {:.1}%",
            r.tasks.percent(TaskKind::Pair)
        );
    }

    #[test]
    fn chain_spends_less_in_pair_than_lj() {
        let lj = run(Benchmark::Lj, 1, 1);
        let chain = run(Benchmark::Chain, 1, 1);
        assert!(
            chain.tasks.percent(TaskKind::Pair) < lj.tasks.percent(TaskKind::Pair),
            "chain {:.1}% vs lj {:.1}%",
            chain.tasks.percent(TaskKind::Pair),
            lj.tasks.percent(TaskKind::Pair)
        );
    }

    #[test]
    fn scaling_improves_throughput() {
        let r1 = run(Benchmark::Lj, 1, 1);
        let r16 = run(Benchmark::Lj, 1, 16);
        assert!(r16.ts_per_sec > 6.0 * r1.ts_per_sec);
        let eff = r16.parallel_efficiency(&r1);
        assert!(eff > 0.4 && eff <= 1.05, "efficiency {eff}");
    }

    #[test]
    fn comm_share_grows_with_ranks_for_small_systems() {
        let r4 = run(Benchmark::Lj, 1, 4);
        let r64 = run(Benchmark::Lj, 1, 64);
        assert!(
            r64.tasks.percent(TaskKind::Comm) > r4.tasks.percent(TaskKind::Comm),
            "{:.1}% vs {:.1}%",
            r64.tasks.percent(TaskKind::Comm),
            r4.tasks.percent(TaskKind::Comm)
        );
    }

    #[test]
    fn chute_is_most_imbalanced() {
        let chute = run(Benchmark::Chute, 1, 16);
        let lj = run(Benchmark::Lj, 1, 16);
        assert!(
            chute.mpi_imbalance_percent > lj.mpi_imbalance_percent,
            "chute {:.2}% vs lj {:.2}%",
            chute.mpi_imbalance_percent,
            lj.mpi_imbalance_percent
        );
    }

    #[test]
    fn rank_stats_are_opt_in_and_cover_the_window() {
        let profile = WorkloadProfile::measure(Benchmark::Lj, 40, 1).unwrap();
        let (bx, x) = build_positions(Benchmark::Lj, 1, 1).unwrap();
        let model = CpuModel::new();
        let base = CpuRunOptions {
            ranks: 8,
            sim_steps: 30,
            ..CpuRunOptions::default()
        };
        let lean = model.simulate(&profile, &bx, &x, &base).unwrap();
        assert!(lean.rank_tasks.is_empty() && lean.critical_path.is_empty());

        let opts = CpuRunOptions {
            collect_rank_stats: true,
            ..base
        };
        let full = model.simulate(&profile, &bx, &x, &opts).unwrap();
        assert_eq!(full.rank_tasks.len(), 8);
        assert_eq!(full.rank_mpi.len(), 8);
        assert_eq!(full.rank_clocks.len(), 8);
        assert_eq!(full.critical_path.len(), 30, "one record per sim step");
        for cs in &full.critical_path {
            assert!(cs.rank < 8);
            assert!(cs.seconds >= 0.0);
        }
        // Collecting stats must not change the modeled numbers.
        assert_eq!(full.ts_per_sec, lean.ts_per_sec);
        assert_eq!(full.tasks, lean.tasks);
    }

    #[test]
    fn repartition_strictly_decreases_windowed_varavg() {
        struct SlowRank3;
        impl md_parallel::ClusterFaults for SlowRank3 {
            fn compute_scale(&self, rank: usize, _step: u64) -> f64 {
                if rank == 3 {
                    4.0
                } else {
                    1.0
                }
            }
        }
        let profile = WorkloadProfile::measure(Benchmark::Lj, 40, 1).unwrap();
        let (bx, x) = build_positions(Benchmark::Lj, 1, 1).unwrap();
        let mut model = CpuModel::new();
        model.set_faults(std::sync::Arc::new(SlowRank3));
        let opts = CpuRunOptions {
            ranks: 8,
            sim_steps: 60,
            repartition_every: 20,
            ..CpuRunOptions::default()
        };
        let r = model.simulate(&profile, &bx, &x, &opts).unwrap();
        assert!(
            !r.repartitions.is_empty(),
            "a 4x-slow rank must trigger a re-split"
        );
        for ev in &r.repartitions {
            assert_eq!(ev.suspect_rank, 3, "census must name the slow rank");
            assert!(ev.moved_atoms > 0);
            assert!(
                ev.varavg_after_percent < ev.varavg_before_percent,
                "re-split at step {} must shrink %varavg ({:.2} -> {:.2})",
                ev.step,
                ev.varavg_before_percent,
                ev.varavg_after_percent
            );
        }
        // Identical runs classify and re-split identically.
        let again = model.simulate(&profile, &bx, &x, &opts).unwrap();
        assert_eq!(r.repartitions, again.repartitions);
        assert_eq!(r.ts_per_sec, again.ts_per_sec);
    }

    #[test]
    fn repartition_and_comm_stay_inert_by_default() {
        let profile = WorkloadProfile::measure(Benchmark::Lj, 40, 1).unwrap();
        let (bx, x) = build_positions(Benchmark::Lj, 1, 1).unwrap();
        let model = CpuModel::new();
        let opts = CpuRunOptions {
            ranks: 8,
            sim_steps: 30,
            ..CpuRunOptions::default()
        };
        let r = model.simulate(&profile, &bx, &x, &opts).unwrap();
        assert!(r.repartitions.is_empty());
        assert!(r.comm_events.is_empty());
        assert!(r.failed_ranks.is_empty());
        // A balanced run on the repartition cadence is a fixed point: no
        // suspect, no re-split, identical modeled numbers.
        let cadenced = CpuRunOptions {
            repartition_every: 10,
            ..opts
        };
        let c = model.simulate(&profile, &bx, &x, &cadenced).unwrap();
        assert!(c.repartitions.is_empty(), "balanced run must not re-split");
        assert_eq!(c.ts_per_sec, r.ts_per_sec);
        assert_eq!(c.tasks, r.tasks);
    }

    #[test]
    fn comm_policy_surfaces_crash_detection() {
        struct Crash2;
        impl md_parallel::ClusterFaults for Crash2 {
            fn crash_rank(&self, rank: usize, step: u64) -> bool {
                rank == 2 && step >= 10
            }
        }
        let profile = WorkloadProfile::measure(Benchmark::Lj, 40, 1).unwrap();
        let (bx, x) = build_positions(Benchmark::Lj, 1, 1).unwrap();
        let mut model = CpuModel::new();
        model.set_faults(std::sync::Arc::new(Crash2));
        model.set_comm_policy(md_parallel::CommPolicy {
            seed: 2022,
            ..md_parallel::CommPolicy::default()
        });
        let opts = CpuRunOptions {
            ranks: 8,
            sim_steps: 30,
            ..CpuRunOptions::default()
        };
        let r = model.simulate(&profile, &bx, &x, &opts).unwrap();
        assert_eq!(r.failed_ranks, vec![2], "silent rank must be declared");
        assert!(
            r.comm_events
                .iter()
                .any(|e| e.peer == Some(2) && e.status == md_parallel::CommStatus::TimedOut),
            "detection must classify the silence as a halo timeout"
        );
    }

    #[test]
    fn double_precision_is_slower() {
        let profile = WorkloadProfile::measure(Benchmark::Lj, 40, 1).unwrap();
        let (bx, x) = build_positions(Benchmark::Lj, 1, 1).unwrap();
        let model = CpuModel::new();
        let mk = |precision| CpuRunOptions {
            ranks: 8,
            precision,
            sim_steps: 40,
            ..CpuRunOptions::default()
        };
        let s = model
            .simulate(&profile, &bx, &x, &mk(PrecisionMode::Single))
            .unwrap();
        let d = model
            .simulate(&profile, &bx, &x, &mk(PrecisionMode::Double))
            .unwrap();
        assert!(s.ts_per_sec > d.ts_per_sec);
    }
}
