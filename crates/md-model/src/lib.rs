//! # md-model — calibrated instance models of the paper's two platforms
//!
//! The paper measures LAMMPS on a dual-socket Xeon 8358 node and an 8×V100
//! node. This crate reproduces those measurements *in silico*:
//!
//! * [`Instance`] — the Table 3 platform descriptions;
//! * [`WorkloadProfile`] — per-benchmark operation counts **measured** from
//!   real engine runs of the 32k decks and scaled analytically;
//! * [`CpuModel`] — virtual-clock execution of the LAMMPS timestep across
//!   MPI ranks with the exact per-rank atom/ghost census (Figures 3–6,
//!   10–12, 14–15);
//! * [`GpuModel`] — the GPU package's offload schedule (kernels, PCIe
//!   traffic, device time-multiplexing; Figures 7–9, 13, 16);
//! * [`power`] — the `powerstat`/`nvidia-smi` energy model.
//!
//! All tunable constants live in [`calib`] with their calibration rationale;
//! see DESIGN.md for the anchor numbers from the paper's prose.

pub mod calib;
pub mod cpu;
pub mod gpu;
pub mod instance;
pub mod multinode;
pub mod power;
pub mod workload;

pub use cpu::{CpuModel, CpuRunOptions, CpuRunResult, RepartitionEvent};
pub use gpu::{
    GpuModel, GpuRunOptions, GpuRunResult, GpuSegment, GpuStepSchedule, GpuTimeline, GpuTracedRun,
    KernelKind, KernelLedger, DEVICE_LANE_BASE, GPU_HOST_LANE,
};
pub use instance::{CpuSpec, GpuSpec, Instance};
pub use multinode::{Interconnect, MultiNodeModel, MultiNodeResult};
pub use workload::{KspaceWork, WorkloadProfile};
