//! The GPU-instance model: 8× V100 with the LAMMPS GPU package's offload
//! structure.
//!
//! Per the reference package (paper Section 6): each MPI rank owns a
//! subdomain and offloads neighbor build, pair forces, and (for Rhodopsin)
//! the PPPM mesh kernels to its assigned device; several ranks time-multiplex
//! one device; positions go host→device and forces device→host every step;
//! fixes (SHAKE!), bonded forces, the FFT, and MPI communication stay on the
//! host. This is exactly the data-movement-bound structure whose breakdown
//! the paper's Figures 7–9 and 13 characterize.
//!
//! Two views of the same model:
//!
//! * [`GpuModel::simulate`] — the closed-form steady-state means (ledgers,
//!   TS/s, utilization) that regenerate the figures;
//! * [`GpuModel::simulate_traced`] — the same per-rank costs laid out as an
//!   explicit step-by-step offload schedule ([`GpuTimeline`]): every kernel
//!   and PCIe copy gets a start time and duration on its device, host
//!   segments close each step, and (with a recorder attached) every device
//!   gets its own md-observe trace lane at simulated time. md-insight's
//!   per-device attribution and host↔device critical path consume this.

use crate::calib;
use crate::workload::WorkloadProfile;
use md_core::{PrecisionMode, Result, SimBox, TaskKind, TaskLedger};
use md_observe::Recorder;
use md_parallel::{Decomposition, RankLoad, WorkloadCensus};
use md_workloads::Benchmark;

/// GPU kernels and data-movement primitives of the paper's Figure 8 legend.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum KernelKind {
    /// `[CUDA memcpy DtoH]`.
    MemcpyDtoH,
    /// `[CUDA memcpy HtoD]`.
    MemcpyHtoD,
    /// `[CUDA memset]`.
    Memset,
    /// `calc_neigh_list_cell`.
    CalcNeighListCell,
    /// `k_lj_fast`.
    KLjFast,
    /// `kernel_info`.
    KernelInfo,
    /// `kernel_special`.
    KernelSpecial,
    /// `kernel_zero`.
    KernelZero,
    /// `transpose`.
    Transpose,
    /// `k_eam_fast`.
    KEamFast,
    /// `k_energy_fast`.
    KEnergyFast,
    /// `interp`.
    Interp,
    /// `k_charmm_long`.
    KCharmmLong,
    /// `make_rho`.
    MakeRho,
    /// `particle_map`.
    ParticleMap,
}

impl KernelKind {
    /// All kernels in the paper's legend order.
    pub const ALL: [KernelKind; 15] = [
        KernelKind::MemcpyDtoH,
        KernelKind::MemcpyHtoD,
        KernelKind::Memset,
        KernelKind::CalcNeighListCell,
        KernelKind::KLjFast,
        KernelKind::KernelInfo,
        KernelKind::KernelSpecial,
        KernelKind::KernelZero,
        KernelKind::Transpose,
        KernelKind::KEamFast,
        KernelKind::KEnergyFast,
        KernelKind::Interp,
        KernelKind::KCharmmLong,
        KernelKind::MakeRho,
        KernelKind::ParticleMap,
    ];

    /// Legend label matching the paper's Figure 8.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::MemcpyDtoH => "[CUDA memcpy DtoH]",
            KernelKind::MemcpyHtoD => "[CUDA memcpy HtoD]",
            KernelKind::Memset => "[CUDA memset]",
            KernelKind::CalcNeighListCell => "calc_neigh_list_cell",
            KernelKind::KLjFast => "k_lj_fast",
            KernelKind::KernelInfo => "kernel_info",
            KernelKind::KernelSpecial => "kernel_special",
            KernelKind::KernelZero => "kernel_zero",
            KernelKind::Transpose => "transpose",
            KernelKind::KEamFast => "k_eam_fast",
            KernelKind::KEnergyFast => "k_energy_fast",
            KernelKind::Interp => "interp",
            KernelKind::KCharmmLong => "k_charmm_long",
            KernelKind::MakeRho => "make_rho",
            KernelKind::ParticleMap => "particle_map",
        }
    }

    /// Whether this is a PCIe copy (the HtoD/DtoH halves of the paper's
    /// memcpy-domination finding; `[CUDA memset]` is device-local and does
    /// not count).
    pub fn is_memcpy(self) -> bool {
        matches!(self, KernelKind::MemcpyDtoH | KernelKind::MemcpyHtoD)
    }

    fn index(self) -> usize {
        KernelKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("in ALL")
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Seconds of device activity per kernel (one device, one step).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelLedger {
    seconds: [f64; 15],
}

impl KernelLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        KernelLedger::default()
    }

    /// Adds time to a kernel.
    pub fn add(&mut self, kind: KernelKind, seconds: f64) {
        self.seconds[kind.index()] += seconds;
    }

    /// Time of one kernel.
    pub fn seconds(&self, kind: KernelKind) -> f64 {
        self.seconds[kind.index()]
    }

    /// Total device-activity time.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Share of one kernel (0..=100).
    pub fn percent(&self, kind: KernelKind) -> f64 {
        let t = self.total();
        if t > 0.0 {
            100.0 * self.seconds(kind) / t
        } else {
            0.0
        }
    }

    /// `(kernel, seconds)` pairs in legend order.
    pub fn iter(&self) -> impl Iterator<Item = (KernelKind, f64)> + '_ {
        KernelKind::ALL.iter().map(move |&k| (k, self.seconds(k)))
    }
}

/// Options of one modeled GPU run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GpuRunOptions {
    /// Devices used (1, 2, 4, 6, 8 in the paper).
    pub gpus: usize,
    /// Pair-kernel floating-point strategy (a compile flag in LAMMPS).
    pub precision: PrecisionMode,
}

impl Default for GpuRunOptions {
    fn default() -> Self {
        GpuRunOptions {
            gpus: 1,
            precision: PrecisionMode::Mixed,
        }
    }
}

/// Result of one modeled GPU run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GpuRunResult {
    /// Benchmark identity.
    pub benchmark: Benchmark,
    /// Size label (k atoms).
    pub size_k: usize,
    /// Devices used.
    pub gpus: usize,
    /// Host MPI ranks driving the devices.
    pub host_ranks: usize,
    /// Timesteps per second.
    pub ts_per_sec: f64,
    /// Seconds per timestep.
    pub step_seconds: f64,
    /// Mean per-task ledger (one step).
    pub tasks: TaskLedger,
    /// Device-activity ledger (one device, one step).
    pub kernels: KernelLedger,
    /// Mean device utilization (busy / step).
    pub device_utilization: f64,
    /// Node power (W).
    pub watts: f64,
    /// Energy efficiency (TS/s/W).
    pub ts_per_sec_per_watt: f64,
}

impl GpuRunResult {
    /// Parallel efficiency vs. a 1-device result.
    pub fn parallel_efficiency(&self, single: &GpuRunResult) -> f64 {
        self.ts_per_sec / (single.ts_per_sec * self.gpus as f64)
    }
}

// ---------------------------------------------------------------------------
// The traced offload schedule (device lanes, md-insight's input)
// ---------------------------------------------------------------------------

/// First md-observe trace lane used for modeled devices: device `d` records
/// on lane `DEVICE_LANE_BASE + d`, named `"gpu d"`. Far above the virtual
/// cluster's rank lanes (1..=nranks, plus its critical-path lane) so the two
/// models can share one recorder without colliding.
pub const DEVICE_LANE_BASE: u32 = 1024;

/// Lane carrying the GPU model's per-step host segments (`"gpu host"`):
/// integration, fixes, bonded forces, host FFT, MPI — everything the GPU
/// package leaves on the CPU.
pub const GPU_HOST_LANE: u32 = DEVICE_LANE_BASE - 1;

/// Simulated seconds → trace microseconds.
const US: f64 = 1e6;

/// One scheduled device operation (kernel or PCIe copy) of the traced
/// offload schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSegment {
    /// Device executing the operation.
    pub device: usize,
    /// Host rank that enqueued it.
    pub rank: usize,
    /// Kernel or copy kind.
    pub kind: KernelKind,
    /// Absolute simulated start time, seconds.
    pub start_seconds: f64,
    /// Duration, seconds.
    pub seconds: f64,
    /// PCIe payload bytes (memcpys only; 0 for kernels).
    pub bytes: u64,
}

/// One step of the traced offload schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuStepSchedule {
    /// Step index.
    pub step: u64,
    /// Absolute simulated start of the step, seconds.
    pub start_seconds: f64,
    /// The step's host segment: starts when the busiest device round
    /// retires, lasts until the slowest host rank finishes.
    pub host_seconds: f64,
    /// The busiest device's round (device side of the step), seconds.
    pub device_seconds: f64,
    /// Per-device busy time this step, seconds.
    pub device_busy: Vec<f64>,
    /// Host→device payload scheduled this step, bytes.
    pub htod_bytes: u64,
    /// Device→host payload scheduled this step, bytes.
    pub dtoh_bytes: u64,
    /// Device operations in schedule order (devices interleaved, each
    /// device's operations contiguous in time).
    pub segments: Vec<GpuSegment>,
}

impl GpuStepSchedule {
    /// The step's duration: busiest device round plus host segment.
    pub fn seconds(&self) -> f64 {
        self.device_seconds + self.host_seconds
    }
}

/// The step-by-step offload schedule of a traced GPU-model run: what
/// md-insight's [`DeviceBreakdown`] and host↔device critical path consume,
/// and what the recorder's device lanes visualize.
///
/// [`DeviceBreakdown`]: https://docs.rs/md-insight
#[derive(Debug, Clone, PartialEq)]
pub struct GpuTimeline {
    /// Benchmark identity.
    pub benchmark: Benchmark,
    /// Devices.
    pub gpus: usize,
    /// Host ranks driving them.
    pub host_ranks: usize,
    /// Per-step schedules, in step order.
    pub steps: Vec<GpuStepSchedule>,
}

impl GpuTimeline {
    /// Total simulated wall time of the traced window, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.steps.iter().map(GpuStepSchedule::seconds).sum()
    }
}

/// A traced GPU-model run: the closed-form result plus the schedule that
/// realizes it.
#[derive(Debug, Clone)]
pub struct GpuTracedRun {
    /// The closed-form steady-state result (identical to
    /// [`GpuModel::simulate`] on the same inputs).
    pub result: GpuRunResult,
    /// The per-step offload schedule.
    pub timeline: GpuTimeline,
}

/// One scheduled device operation: `(kind, seconds, payload bytes)`.
type DeviceOp = (KernelKind, f64, u64);

/// Everything one rank schedules in one steady-state step: individual
/// device-op durations and host-side task costs. One source of truth shared
/// by the closed-form ledger path and the traced schedule path, so the two
/// stay in exact agreement.
struct GpuRankCost {
    zero: f64,
    /// Total pair-kernel time (split 0.62/0.38 for EAM at the use site).
    pair: f64,
    neigh: f64,
    info: f64,
    transpose: f64,
    memset: f64,
    /// `kernel_special` (Rhodo only; 0 otherwise).
    special: f64,
    htod_atoms: f64,
    dtoh_atoms: f64,
    htod_atom_bytes: u64,
    dtoh_atom_bytes: u64,
    /// PPPM device kernels (0 without k-space).
    map: f64,
    rho: f64,
    interp: f64,
    mesh_dtoh: f64,
    mesh_htod: f64,
    mesh_dtoh_bytes: u64,
    mesh_htod_bytes: u64,
    host_modify: f64,
    host_bond: f64,
    host_comm: f64,
    host_kspace: f64,
    host_output: f64,
}

impl GpuRankCost {
    /// Host-side seconds of this rank's step.
    fn host_total(&self) -> f64 {
        self.host_modify + self.host_bond + self.host_comm + self.host_kspace + self.host_output
    }

    /// Device operations in schedule order — positions in, build/compute,
    /// PPPM mesh round-trip, forces out: `(kind, seconds, bytes)`.
    fn device_ops(&self, bench: Benchmark) -> Vec<DeviceOp> {
        let mut ops = Vec::with_capacity(14);
        ops.push((
            KernelKind::MemcpyHtoD,
            self.htod_atoms,
            self.htod_atom_bytes,
        ));
        ops.push((KernelKind::KernelZero, self.zero, 0));
        ops.push((KernelKind::CalcNeighListCell, self.neigh, 0));
        match bench {
            Benchmark::Eam => {
                ops.push((KernelKind::KEamFast, 0.62 * self.pair, 0));
                ops.push((KernelKind::KEnergyFast, 0.38 * self.pair, 0));
            }
            Benchmark::Rhodo => ops.push((KernelKind::KCharmmLong, self.pair, 0)),
            _ => ops.push((KernelKind::KLjFast, self.pair, 0)),
        }
        ops.push((KernelKind::KernelInfo, self.info, 0));
        ops.push((KernelKind::Transpose, self.transpose, 0));
        ops.push((KernelKind::Memset, self.memset, 0));
        if self.special > 0.0 {
            ops.push((KernelKind::KernelSpecial, self.special, 0));
        }
        if self.map > 0.0 {
            ops.push((KernelKind::ParticleMap, self.map, 0));
            ops.push((KernelKind::MakeRho, self.rho, 0));
            ops.push((KernelKind::MemcpyDtoH, self.mesh_dtoh, self.mesh_dtoh_bytes));
            ops.push((KernelKind::MemcpyHtoD, self.mesh_htod, self.mesh_htod_bytes));
            ops.push((KernelKind::Interp, self.interp, 0));
        }
        ops.push((
            KernelKind::MemcpyDtoH,
            self.dtoh_atoms,
            self.dtoh_atom_bytes,
        ));
        ops
    }
}

/// Computes one rank's steady-state step costs (the body of the paper's
/// Figure-8 schedule). Every expression matches the calibrated model
/// exactly; both simulation paths consume these values.
#[allow(clippy::too_many_arguments)]
fn gpu_rank_cost(
    profile: &WorkloadProfile,
    bench: Benchmark,
    load: &RankLoad,
    ranks: usize,
    pair_rate: f64,
    atom_bytes_factor: f64,
    per_atom_pairs: f64,
) -> GpuRankCost {
    let launch = calib::GPU_KERNEL_LAUNCH_SECONDS;
    let hk = calib::GPU_HOUSEKEEPING_SECONDS;
    let owned = load.owned as f64;
    let nall = owned + load.ghosts as f64;

    let zero = launch + hk * nall;
    let pair = launch + pair_rate * per_atom_pairs * owned;
    let neigh = (launch
        + calib::GPU_NEIGH_CANDIDATE_SECONDS
            * calib::NEIGH_SEARCH_FACTOR
            * profile.stored_neighbors
            * nall)
        / profile.rebuild_interval;
    let info = launch + hk * owned * 0.2;
    let transpose = launch + hk * nall * 0.5;
    let memset = launch + hk * nall * 0.3;
    let special = if bench == Benchmark::Rhodo {
        launch + hk * nall
    } else {
        0.0
    };

    // -- atom-data movement --
    let htod_atoms = calib::PCIE_LATENCY * calib::PCIE_TRANSFERS_PER_STEP / 2.0
        + nall * calib::HTOD_BYTES_PER_ATOM * atom_bytes_factor / calib::PCIE_BANDWIDTH;
    let dtoh_atoms = calib::PCIE_LATENCY * calib::PCIE_TRANSFERS_PER_STEP / 2.0
        + owned * calib::DTOH_BYTES_PER_ATOM * atom_bytes_factor / calib::PCIE_BANDWIDTH;
    let htod_atom_bytes = (nall * calib::HTOD_BYTES_PER_ATOM * atom_bytes_factor) as u64;
    let dtoh_atom_bytes = (owned * calib::DTOH_BYTES_PER_ATOM * atom_bytes_factor) as u64;

    // -- PPPM mesh on the device, FFT on the host --
    let (mut map, mut rho, mut interp) = (0.0, 0.0, 0.0);
    let (mut mesh_dtoh, mut mesh_htod) = (0.0, 0.0);
    let (mut mesh_dtoh_bytes, mut mesh_htod_bytes) = (0u64, 0u64);
    let mut host_kspace = 0.0;
    if let Some(ks) = profile.kspace {
        let weights = (ks.order * ks.order * ks.order) as f64;
        map = launch + 0.1e-9 * owned;
        rho = launch + calib::GPU_MESH_SECONDS * weights * owned;
        interp = launch + calib::GPU_MESH_SECONDS * weights * owned;

        // Mesh bricks cross PCIe as strided slab copies: the charge
        // density goes out, three field components come back (the
        // HtoD growth of Section 7). Each z-plane pays a DMA setup.
        let g_per_rank = ks.grid_points as f64 / ranks as f64;
        let planes = ks.grid[2] as f64 * calib::PCIE_MESH_PLANE_LATENCY;
        mesh_dtoh = g_per_rank * 4.0 / calib::PCIE_MESH_BANDWIDTH + planes;
        mesh_htod = g_per_rank * 3.0 * 4.0 / calib::PCIE_MESH_BANDWIDTH + 3.0 * planes;
        mesh_dtoh_bytes = (g_per_rank * 4.0) as u64;
        mesh_htod_bytes = (g_per_rank * 3.0 * 4.0) as u64;

        // Host FFT share.
        let g = ks.grid_points as f64;
        host_kspace =
            calib::CPU_FFT_SECONDS * calib::GPU_HOST_SLOWDOWN * 4.0 * g * g.log2() / ranks as f64;
    }

    // -- host work --
    let slow = calib::GPU_HOST_SLOWDOWN;
    let mut host_modify = calib::CPU_INTEGRATE_SECONDS * slow * owned
        + calib::CPU_SHAKE_SECONDS * slow * profile.constraints_per_atom * owned;
    if bench == Benchmark::Rhodo {
        host_modify += calib::CPU_NPT_SECONDS * slow * owned;
    }
    host_modify += calib::cpu_fix_seconds(bench) * slow * owned;
    let host_bond = calib::CPU_BOND_SECONDS * slow * profile.bonded_per_atom * owned;
    let host_comm = if ranks > 1 {
        calib::CPU_PACK_SECONDS * slow * load.ghosts as f64
            + calib::CPU_LINK.transfer(
                load.ghosts as f64
                    * (calib::FORWARD_BYTES_PER_GHOST + calib::REVERSE_BYTES_PER_GHOST),
            )
    } else {
        0.0
    };
    let host_output = calib::CPU_OUTPUT_SECONDS * slow * owned / 100.0;

    GpuRankCost {
        zero,
        pair,
        neigh,
        info,
        transpose,
        memset,
        special,
        htod_atoms,
        dtoh_atoms,
        htod_atom_bytes,
        dtoh_atom_bytes,
        map,
        rho,
        interp,
        mesh_dtoh,
        mesh_htod,
        mesh_dtoh_bytes,
        mesh_htod_bytes,
        host_modify,
        host_bond,
        host_comm,
        host_kspace,
        host_output,
    }
}

/// The GPU-instance performance model.
#[derive(Debug, Clone, Default)]
pub struct GpuModel {
    recorder: Option<Recorder>,
}

impl GpuModel {
    /// Creates the model.
    pub fn new() -> Self {
        GpuModel::default()
    }

    /// Attaches an observability recorder: traced runs
    /// ([`GpuModel::simulate_traced`]) then emit one lane per device
    /// (`"gpu 0"`, `"gpu 1"`, ...) with kernel and memcpy spans at
    /// simulated time, a `"gpu host"` lane with the per-step host segments,
    /// and cumulative `gpu_pcie_htod_bytes` / `gpu_pcie_dtoh_bytes`
    /// counters.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Runs the model over real positions.
    ///
    /// # Errors
    ///
    /// Returns an error if the benchmark is unsupported by the GPU package
    /// (Chute) or decomposition fails.
    pub fn simulate(
        &self,
        profile: &WorkloadProfile,
        bx: &SimBox,
        positions: &[md_core::V3],
        opts: &GpuRunOptions,
    ) -> Result<GpuRunResult> {
        let ranks = (calib::RANKS_PER_GPU * opts.gpus).min(calib::MAX_GPU_HOST_RANKS);
        let decomp = Decomposition::new(*bx, ranks)?;
        let census = WorkloadCensus::measure(&decomp, positions, profile.ghost_cutoff);
        self.simulate_with_census(profile, &census, opts)
    }

    /// Runs the model and lays the per-rank costs out as an explicit
    /// offload schedule over `sim_steps` steps: per-device trace lanes (if
    /// a recorder is attached), a [`GpuTimeline`] for md-insight, and the
    /// untouched closed-form result. Kernel and copy durations carry a
    /// deterministic per-(rank, step) jitter
    /// ([`calib::GPU_JITTER_AMPLITUDE`]) so the traced critical path can
    /// move between devices; the closed-form means are computed without it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GpuModel::simulate`].
    pub fn simulate_traced(
        &self,
        profile: &WorkloadProfile,
        bx: &SimBox,
        positions: &[md_core::V3],
        opts: &GpuRunOptions,
        sim_steps: u64,
    ) -> Result<GpuTracedRun> {
        let ranks = (calib::RANKS_PER_GPU * opts.gpus).min(calib::MAX_GPU_HOST_RANKS);
        let decomp = Decomposition::new(*bx, ranks)?;
        let census = WorkloadCensus::measure(&decomp, positions, profile.ghost_cutoff);
        let result = self.simulate_with_census(profile, &census, opts)?;
        let timeline = self.trace_schedule(profile, &census, opts, sim_steps);
        Ok(GpuTracedRun { result, timeline })
    }

    /// Runs the model with an already-measured census over
    /// `min(6·gpus, 48)` host ranks.
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported benchmarks or a census/rank mismatch.
    pub fn simulate_with_census(
        &self,
        profile: &WorkloadProfile,
        census: &WorkloadCensus,
        opts: &GpuRunOptions,
    ) -> Result<GpuRunResult> {
        let bench = profile.benchmark;
        if !bench.gpu_supported() {
            return Err(md_core::CoreError::InvalidParameter {
                name: "benchmark",
                reason: format!("the reference GPU package lacks the {} pair style", bench),
            });
        }
        let ranks = (calib::RANKS_PER_GPU * opts.gpus).min(calib::MAX_GPU_HOST_RANKS);
        if census.nranks() != ranks {
            return Err(md_core::CoreError::LengthMismatch {
                what: "census ranks",
                expected: ranks,
                found: census.nranks(),
            });
        }
        let ranks_per_gpu = ranks / opts.gpus;
        let pair_rate =
            calib::gpu_pair_seconds(bench) * calib::gpu_precision_factor(opts.precision);
        // fp64 atom data is twice as wide on the PCIe link; the FFT mesh
        // stays fp32 (the paper's build uses -DFFT_SINGLE).
        let atom_bytes_factor = opts.precision.compute_width() as f64 / 4.0;
        let per_atom_pairs = profile.stored_neighbors / 2.0; // GPU package: half lists
        let loads = census.loads();

        let mut kernels = KernelLedger::new();
        let mut tasks = TaskLedger::new();
        let mut max_host = 0.0f64;
        let mut device_busy = vec![0.0f64; opts.gpus];
        // Device Kspace/Pair/Neigh attribution accumulators.
        let mut dev_pair = 0.0;
        let mut dev_neigh = 0.0;
        let mut dev_kspace = 0.0;

        for (r, load) in loads.iter().enumerate() {
            let device = r / ranks_per_gpu;
            let c = gpu_rank_cost(
                profile,
                bench,
                load,
                ranks,
                pair_rate,
                atom_bytes_factor,
                per_atom_pairs,
            );

            // -- device kernels --
            let mut dev = 0.0;
            kernels.add(KernelKind::KernelZero, c.zero);
            dev += c.zero;

            match bench {
                Benchmark::Eam => {
                    kernels.add(KernelKind::KEamFast, 0.62 * c.pair);
                    kernels.add(KernelKind::KEnergyFast, 0.38 * c.pair);
                }
                Benchmark::Rhodo => kernels.add(KernelKind::KCharmmLong, c.pair),
                _ => kernels.add(KernelKind::KLjFast, c.pair),
            }
            dev += c.pair;
            dev_pair += c.pair;

            kernels.add(KernelKind::CalcNeighListCell, c.neigh);
            dev += c.neigh;
            dev_neigh += c.neigh;

            kernels.add(KernelKind::KernelInfo, c.info);
            kernels.add(KernelKind::Transpose, c.transpose);
            kernels.add(KernelKind::Memset, c.memset);
            dev += c.info + c.transpose + c.memset;

            if bench == Benchmark::Rhodo {
                kernels.add(KernelKind::KernelSpecial, c.special);
                dev += c.special;
            }

            // -- atom-data movement --
            kernels.add(KernelKind::MemcpyHtoD, c.htod_atoms);
            kernels.add(KernelKind::MemcpyDtoH, c.dtoh_atoms);
            dev += c.htod_atoms + c.dtoh_atoms;
            dev_pair += c.htod_atoms + c.dtoh_atoms;

            // -- PPPM mesh on the device, FFT on the host --
            if profile.kspace.is_some() {
                kernels.add(KernelKind::ParticleMap, c.map);
                kernels.add(KernelKind::MakeRho, c.rho);
                kernels.add(KernelKind::Interp, c.interp);
                dev += c.map + c.rho + c.interp;
                dev_kspace += c.map + c.rho + c.interp;

                kernels.add(KernelKind::MemcpyDtoH, c.mesh_dtoh);
                kernels.add(KernelKind::MemcpyHtoD, c.mesh_htod);
                dev += c.mesh_dtoh + c.mesh_htod;
                dev_kspace += c.mesh_dtoh + c.mesh_htod;
            }

            device_busy[device] += dev;

            // -- host work --
            let host = c.host_modify + c.host_bond + c.host_comm + c.host_kspace + c.host_output;
            max_host = max_host.max(host);

            tasks.add(TaskKind::Modify, c.host_modify / ranks as f64);
            tasks.add(TaskKind::Bond, c.host_bond / ranks as f64);
            tasks.add(TaskKind::Comm, c.host_comm / ranks as f64);
            tasks.add(TaskKind::Kspace, c.host_kspace / ranks as f64);
            tasks.add(TaskKind::Output, c.host_output / ranks as f64);
        }

        // Device sharing: every rank waits for its device's full round.
        let max_device = device_busy.iter().copied().fold(0.0, f64::max);
        let step_seconds = max_host + max_device;

        // Attribute device time to tasks (mean per rank).
        let p = ranks as f64;
        tasks.add(TaskKind::Pair, dev_pair / p);
        tasks.add(TaskKind::Neigh, dev_neigh / p);
        tasks.add(TaskKind::Kspace, dev_kspace / p);
        let misc = kernels.seconds(KernelKind::KernelZero)
            + kernels.seconds(KernelKind::KernelInfo)
            + kernels.seconds(KernelKind::Transpose)
            + kernels.seconds(KernelKind::Memset)
            + kernels.seconds(KernelKind::KernelSpecial);
        tasks.add(TaskKind::Other, misc / p);

        // Utilization counts *compute kernels* only (the paper's nvidia-smi
        // utilization excludes pure DMA windows on average).
        let compute_kernel_time: f64 = KernelKind::ALL
            .iter()
            .filter(|k| {
                !matches!(
                    k,
                    KernelKind::MemcpyDtoH | KernelKind::MemcpyHtoD | KernelKind::Memset
                )
            })
            .map(|&k| kernels.seconds(k))
            .sum();
        let device_utilization =
            (compute_kernel_time / opts.gpus as f64 / step_seconds).clamp(0.0, 1.0);

        let ts_per_sec = 1.0 / step_seconds;
        let watts = crate::power::gpu_node_watts(bench, opts.gpus, device_utilization, ranks);
        Ok(GpuRunResult {
            benchmark: bench,
            size_k: profile.natoms / 1000,
            gpus: opts.gpus,
            host_ranks: ranks,
            ts_per_sec,
            step_seconds,
            tasks,
            kernels,
            device_utilization,
            watts,
            ts_per_sec_per_watt: ts_per_sec / watts,
        })
    }

    /// Lays the per-rank costs out as a step-by-step schedule: per device,
    /// its ranks' operation chains run back to back (the time-multiplexed
    /// round); the host segment closes the step once the busiest device
    /// retires. Spans land on the device lanes if a recorder is attached.
    fn trace_schedule(
        &self,
        profile: &WorkloadProfile,
        census: &WorkloadCensus,
        opts: &GpuRunOptions,
        sim_steps: u64,
    ) -> GpuTimeline {
        let bench = profile.benchmark;
        let ranks = census.nranks();
        let ranks_per_gpu = ranks / opts.gpus;
        let pair_rate =
            calib::gpu_pair_seconds(bench) * calib::gpu_precision_factor(opts.precision);
        let atom_bytes_factor = opts.precision.compute_width() as f64 / 4.0;
        let per_atom_pairs = profile.stored_neighbors / 2.0;

        let rank_ops: Vec<(Vec<DeviceOp>, f64)> = census
            .loads()
            .iter()
            .map(|load| {
                let c = gpu_rank_cost(
                    profile,
                    bench,
                    load,
                    ranks,
                    pair_rate,
                    atom_bytes_factor,
                    per_atom_pairs,
                );
                (c.device_ops(bench), c.host_total())
            })
            .collect();

        let rec = self.recorder.as_ref().filter(|r| r.is_enabled());
        if let Some(rec) = rec {
            rec.set_lane_name(GPU_HOST_LANE, "gpu host");
            for d in 0..opts.gpus {
                rec.set_lane_name(DEVICE_LANE_BASE + d as u32, format!("gpu {d}"));
            }
        }

        let mut clock = 0.0f64;
        let mut steps = Vec::with_capacity(sim_steps as usize);
        for step in 0..sim_steps {
            let mut segments = Vec::new();
            let mut device_busy = vec![0.0f64; opts.gpus];
            let mut htod_bytes = 0u64;
            let mut dtoh_bytes = 0u64;
            for (d, busy) in device_busy.iter_mut().enumerate() {
                let mut cursor = clock;
                for r in (d * ranks_per_gpu)..((d + 1) * ranks_per_gpu).min(ranks) {
                    let jit = 1.0 + calib::GPU_JITTER_AMPLITUDE * crate::cpu::jitter(r, step);
                    for &(kind, seconds, bytes) in &rank_ops[r].0 {
                        let dur = seconds * jit;
                        segments.push(GpuSegment {
                            device: d,
                            rank: r,
                            kind,
                            start_seconds: cursor,
                            seconds: dur,
                            bytes,
                        });
                        if let Some(rec) = rec {
                            rec.record_span_at(
                                DEVICE_LANE_BASE + d as u32,
                                "gpu",
                                kind.label(),
                                cursor * US,
                                dur * US,
                            );
                        }
                        match kind {
                            KernelKind::MemcpyHtoD => htod_bytes += bytes,
                            KernelKind::MemcpyDtoH => dtoh_bytes += bytes,
                            _ => {}
                        }
                        cursor += dur;
                    }
                }
                *busy = cursor - clock;
            }
            let device_seconds = device_busy.iter().copied().fold(0.0, f64::max);
            let host_start = clock + device_seconds;
            let mut host_seconds = 0.0f64;
            for (r, (_, host)) in rank_ops.iter().enumerate() {
                let jit = 1.0 + calib::GPU_JITTER_AMPLITUDE * crate::cpu::jitter(r, step);
                host_seconds = host_seconds.max(host * jit);
            }
            if let Some(rec) = rec {
                rec.record_span_at(
                    GPU_HOST_LANE,
                    "gpu_host",
                    "host",
                    host_start * US,
                    host_seconds * US,
                );
                rec.count(GPU_HOST_LANE, "gpu_pcie_htod_bytes", htod_bytes as f64);
                rec.count(GPU_HOST_LANE, "gpu_pcie_dtoh_bytes", dtoh_bytes as f64);
            }
            steps.push(GpuStepSchedule {
                step,
                start_seconds: clock,
                host_seconds,
                device_seconds,
                device_busy,
                htod_bytes,
                dtoh_bytes,
                segments,
            });
            clock = host_start + host_seconds;
        }
        GpuTimeline {
            benchmark: bench,
            gpus: opts.gpus,
            host_ranks: ranks,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_workloads::build_positions;

    fn run(bench: Benchmark, scale: usize, gpus: usize) -> GpuRunResult {
        let profile = WorkloadProfile::measure(bench, 40, 1)
            .unwrap()
            .at_scale(scale)
            .unwrap();
        let (bx, x) = build_positions(bench, scale, 1).unwrap();
        GpuModel::new()
            .simulate(
                &profile,
                &bx,
                &x,
                &GpuRunOptions {
                    gpus,
                    precision: PrecisionMode::Mixed,
                },
            )
            .unwrap()
    }

    fn traced(bench: Benchmark, gpus: usize, sim_steps: u64) -> GpuTracedRun {
        let profile = WorkloadProfile::measure(bench, 40, 1).unwrap();
        let (bx, x) = build_positions(bench, 1, 1).unwrap();
        GpuModel::new()
            .simulate_traced(
                &profile,
                &bx,
                &x,
                &GpuRunOptions {
                    gpus,
                    precision: PrecisionMode::Mixed,
                },
                sim_steps,
            )
            .unwrap()
    }

    #[test]
    fn chute_is_rejected() {
        let profile = WorkloadProfile::measure(Benchmark::Chute, 40, 1).unwrap();
        let (bx, x) = build_positions(Benchmark::Chute, 1, 1).unwrap();
        let err = GpuModel::new()
            .simulate(&profile, &bx, &x, &GpuRunOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("pair style"));
    }

    #[test]
    fn memcpy_dominates_device_activity() {
        // Paper Section 6.1: the majority of device-active time is memory
        // movement for most benchmarks.
        let r = run(Benchmark::Lj, 1, 1);
        let memcpy =
            r.kernels.percent(KernelKind::MemcpyHtoD) + r.kernels.percent(KernelKind::MemcpyDtoH);
        assert!(memcpy > 30.0, "memcpy share {memcpy:.1}%");
    }

    #[test]
    fn eam_splits_into_two_kernels() {
        let r = run(Benchmark::Eam, 1, 1);
        assert!(r.kernels.seconds(KernelKind::KEamFast) > 0.0);
        assert!(r.kernels.seconds(KernelKind::KEnergyFast) > 0.0);
        assert_eq!(r.kernels.seconds(KernelKind::KLjFast), 0.0);
    }

    #[test]
    fn multi_gpu_efficiency_is_poor() {
        let r1 = run(Benchmark::Lj, 1, 1);
        let r8 = run(Benchmark::Lj, 1, 8);
        let eff = r8.parallel_efficiency(&r1);
        assert!(
            eff < 0.7,
            "32k atoms on 8 GPUs should scale poorly, eff {eff:.2}"
        );
        assert!(
            r8.ts_per_sec >= r1.ts_per_sec * 0.8,
            "still no catastrophic slowdown"
        );
    }

    #[test]
    fn device_utilization_is_low() {
        let r = run(Benchmark::Lj, 2, 4);
        assert!(
            r.device_utilization < 0.7,
            "utilization {:.2} should reflect the data-movement bottleneck",
            r.device_utilization
        );
    }

    #[test]
    fn rhodo_moves_mesh_traffic() {
        let r = run(Benchmark::Rhodo, 1, 2);
        assert!(r.kernels.seconds(KernelKind::MakeRho) > 0.0);
        assert!(r.kernels.seconds(KernelKind::ParticleMap) > 0.0);
        assert!(r.kernels.seconds(KernelKind::Interp) > 0.0);
        assert!(r.tasks.seconds(TaskKind::Kspace) > 0.0);
    }

    #[test]
    fn double_precision_slows_lj_markedly() {
        // The paper's Figure 16 effect is clearest at the large size, where
        // kernel and transfer volumes dominate the per-rank latency floor.
        let profile = WorkloadProfile::measure(Benchmark::Lj, 40, 1)
            .unwrap()
            .at_scale(4)
            .unwrap();
        let (bx, x) = build_positions(Benchmark::Lj, 4, 1).unwrap();
        let model = GpuModel::new();
        let s = model
            .simulate(
                &profile,
                &bx,
                &x,
                &GpuRunOptions {
                    gpus: 8,
                    precision: PrecisionMode::Single,
                },
            )
            .unwrap();
        let d = model
            .simulate(
                &profile,
                &bx,
                &x,
                &GpuRunOptions {
                    gpus: 8,
                    precision: PrecisionMode::Double,
                },
            )
            .unwrap();
        let ratio = s.ts_per_sec / d.ts_per_sec;
        assert!(ratio > 1.12, "single/double ratio {ratio:.3}");
    }

    #[test]
    fn traced_run_reproduces_the_closed_form_result() {
        let plain = run(Benchmark::Lj, 1, 2);
        let t = traced(Benchmark::Lj, 2, 8);
        assert_eq!(t.result.step_seconds, plain.step_seconds);
        assert_eq!(t.result.kernels, plain.kernels);
        assert_eq!(t.timeline.steps.len(), 8);
        assert_eq!(t.timeline.gpus, 2);
        assert_eq!(t.timeline.host_ranks, 12);
    }

    #[test]
    fn schedule_is_contiguous_and_ordered_per_device() {
        let t = traced(Benchmark::Lj, 2, 4);
        for step in &t.timeline.steps {
            assert!(step.device_seconds > 0.0 && step.host_seconds > 0.0);
            assert_eq!(step.device_busy.len(), 2);
            for d in 0..2 {
                let segs: Vec<&GpuSegment> =
                    step.segments.iter().filter(|s| s.device == d).collect();
                assert!(!segs.is_empty());
                // Back-to-back: each segment starts where the previous ended.
                for w in segs.windows(2) {
                    assert!(
                        (w[1].start_seconds - (w[0].start_seconds + w[0].seconds)).abs() < 1e-12
                    );
                }
                // The first op a rank schedules is the position upload, the
                // last is the force download.
                assert_eq!(segs.first().unwrap().kind, KernelKind::MemcpyHtoD);
                assert_eq!(segs.last().unwrap().kind, KernelKind::MemcpyDtoH);
                let busy: f64 = segs.iter().map(|s| s.seconds).sum();
                assert!((busy - step.device_busy[d]).abs() < 1e-9 * busy.max(1.0));
            }
        }
        // Steps are contiguous in simulated time.
        for w in t.timeline.steps.windows(2) {
            assert!((w[1].start_seconds - (w[0].start_seconds + w[0].seconds())).abs() < 1e-12);
        }
    }

    #[test]
    fn traced_memcpys_carry_byte_counts() {
        let t = traced(Benchmark::Lj, 1, 2);
        for step in &t.timeline.steps {
            assert!(step.htod_bytes > 0 && step.dtoh_bytes > 0);
            for s in &step.segments {
                assert_eq!(s.kind.is_memcpy(), s.bytes > 0, "{:?}", s.kind);
            }
        }
    }

    #[test]
    fn recorder_gets_device_lanes_and_byte_counters() {
        let rec = Recorder::new(md_observe::ObserveConfig::default());
        let profile = WorkloadProfile::measure(Benchmark::Lj, 40, 1).unwrap();
        let (bx, x) = build_positions(Benchmark::Lj, 1, 1).unwrap();
        let mut model = GpuModel::new();
        model.set_recorder(rec.clone());
        let t = model
            .simulate_traced(&profile, &bx, &x, &GpuRunOptions::default(), 3)
            .unwrap();
        let snap = rec.snapshot();
        assert_eq!(
            snap.lanes.get(&DEVICE_LANE_BASE).map(String::as_str),
            Some("gpu 0")
        );
        assert_eq!(
            snap.lanes.get(&GPU_HOST_LANE).map(String::as_str),
            Some("gpu host")
        );
        let device_spans = snap
            .events
            .iter()
            .filter(|e| e.lane == DEVICE_LANE_BASE && e.cat == "gpu")
            .count();
        let expected: usize = t.timeline.steps.iter().map(|s| s.segments.len()).sum();
        assert_eq!(device_spans, expected);
        let htod: f64 = t.timeline.steps.iter().map(|s| s.htod_bytes as f64).sum();
        assert_eq!(snap.counters["gpu_pcie_htod_bytes"], htod);
        assert!(snap.counters["gpu_pcie_dtoh_bytes"] > 0.0);
    }
}
