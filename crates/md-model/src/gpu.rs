//! The GPU-instance model: 8× V100 with the LAMMPS GPU package's offload
//! structure.
//!
//! Per the reference package (paper Section 6): each MPI rank owns a
//! subdomain and offloads neighbor build, pair forces, and (for Rhodopsin)
//! the PPPM mesh kernels to its assigned device; several ranks time-multiplex
//! one device; positions go host→device and forces device→host every step;
//! fixes (SHAKE!), bonded forces, the FFT, and MPI communication stay on the
//! host. This is exactly the data-movement-bound structure whose breakdown
//! the paper's Figures 7–9 and 13 characterize.

use crate::calib;
use crate::workload::WorkloadProfile;
use md_core::{PrecisionMode, Result, SimBox, TaskKind, TaskLedger};
use md_parallel::{Decomposition, WorkloadCensus};
use md_workloads::Benchmark;

/// GPU kernels and data-movement primitives of the paper's Figure 8 legend.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum KernelKind {
    /// `[CUDA memcpy DtoH]`.
    MemcpyDtoH,
    /// `[CUDA memcpy HtoD]`.
    MemcpyHtoD,
    /// `[CUDA memset]`.
    Memset,
    /// `calc_neigh_list_cell`.
    CalcNeighListCell,
    /// `k_lj_fast`.
    KLjFast,
    /// `kernel_info`.
    KernelInfo,
    /// `kernel_special`.
    KernelSpecial,
    /// `kernel_zero`.
    KernelZero,
    /// `transpose`.
    Transpose,
    /// `k_eam_fast`.
    KEamFast,
    /// `k_energy_fast`.
    KEnergyFast,
    /// `interp`.
    Interp,
    /// `k_charmm_long`.
    KCharmmLong,
    /// `make_rho`.
    MakeRho,
    /// `particle_map`.
    ParticleMap,
}

impl KernelKind {
    /// All kernels in the paper's legend order.
    pub const ALL: [KernelKind; 15] = [
        KernelKind::MemcpyDtoH,
        KernelKind::MemcpyHtoD,
        KernelKind::Memset,
        KernelKind::CalcNeighListCell,
        KernelKind::KLjFast,
        KernelKind::KernelInfo,
        KernelKind::KernelSpecial,
        KernelKind::KernelZero,
        KernelKind::Transpose,
        KernelKind::KEamFast,
        KernelKind::KEnergyFast,
        KernelKind::Interp,
        KernelKind::KCharmmLong,
        KernelKind::MakeRho,
        KernelKind::ParticleMap,
    ];

    /// Legend label matching the paper's Figure 8.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::MemcpyDtoH => "[CUDA memcpy DtoH]",
            KernelKind::MemcpyHtoD => "[CUDA memcpy HtoD]",
            KernelKind::Memset => "[CUDA memset]",
            KernelKind::CalcNeighListCell => "calc_neigh_list_cell",
            KernelKind::KLjFast => "k_lj_fast",
            KernelKind::KernelInfo => "kernel_info",
            KernelKind::KernelSpecial => "kernel_special",
            KernelKind::KernelZero => "kernel_zero",
            KernelKind::Transpose => "transpose",
            KernelKind::KEamFast => "k_eam_fast",
            KernelKind::KEnergyFast => "k_energy_fast",
            KernelKind::Interp => "interp",
            KernelKind::KCharmmLong => "k_charmm_long",
            KernelKind::MakeRho => "make_rho",
            KernelKind::ParticleMap => "particle_map",
        }
    }

    fn index(self) -> usize {
        KernelKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("in ALL")
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Seconds of device activity per kernel (one device, one step).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelLedger {
    seconds: [f64; 15],
}

impl KernelLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        KernelLedger::default()
    }

    /// Adds time to a kernel.
    pub fn add(&mut self, kind: KernelKind, seconds: f64) {
        self.seconds[kind.index()] += seconds;
    }

    /// Time of one kernel.
    pub fn seconds(&self, kind: KernelKind) -> f64 {
        self.seconds[kind.index()]
    }

    /// Total device-activity time.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Share of one kernel (0..=100).
    pub fn percent(&self, kind: KernelKind) -> f64 {
        let t = self.total();
        if t > 0.0 {
            100.0 * self.seconds(kind) / t
        } else {
            0.0
        }
    }

    /// `(kernel, seconds)` pairs in legend order.
    pub fn iter(&self) -> impl Iterator<Item = (KernelKind, f64)> + '_ {
        KernelKind::ALL.iter().map(move |&k| (k, self.seconds(k)))
    }
}

/// Options of one modeled GPU run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GpuRunOptions {
    /// Devices used (1, 2, 4, 6, 8 in the paper).
    pub gpus: usize,
    /// Pair-kernel floating-point strategy (a compile flag in LAMMPS).
    pub precision: PrecisionMode,
}

impl Default for GpuRunOptions {
    fn default() -> Self {
        GpuRunOptions {
            gpus: 1,
            precision: PrecisionMode::Mixed,
        }
    }
}

/// Result of one modeled GPU run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GpuRunResult {
    /// Benchmark identity.
    pub benchmark: Benchmark,
    /// Size label (k atoms).
    pub size_k: usize,
    /// Devices used.
    pub gpus: usize,
    /// Host MPI ranks driving the devices.
    pub host_ranks: usize,
    /// Timesteps per second.
    pub ts_per_sec: f64,
    /// Seconds per timestep.
    pub step_seconds: f64,
    /// Mean per-task ledger (one step).
    pub tasks: TaskLedger,
    /// Device-activity ledger (one device, one step).
    pub kernels: KernelLedger,
    /// Mean device utilization (busy / step).
    pub device_utilization: f64,
    /// Node power (W).
    pub watts: f64,
    /// Energy efficiency (TS/s/W).
    pub ts_per_sec_per_watt: f64,
}

impl GpuRunResult {
    /// Parallel efficiency vs. a 1-device result.
    pub fn parallel_efficiency(&self, single: &GpuRunResult) -> f64 {
        self.ts_per_sec / (single.ts_per_sec * self.gpus as f64)
    }
}

/// The GPU-instance performance model.
#[derive(Debug, Clone, Default)]
pub struct GpuModel;

impl GpuModel {
    /// Creates the model.
    pub fn new() -> Self {
        GpuModel
    }

    /// Runs the model over real positions.
    ///
    /// # Errors
    ///
    /// Returns an error if the benchmark is unsupported by the GPU package
    /// (Chute) or decomposition fails.
    pub fn simulate(
        &self,
        profile: &WorkloadProfile,
        bx: &SimBox,
        positions: &[md_core::V3],
        opts: &GpuRunOptions,
    ) -> Result<GpuRunResult> {
        let ranks = (calib::RANKS_PER_GPU * opts.gpus).min(calib::MAX_GPU_HOST_RANKS);
        let decomp = Decomposition::new(*bx, ranks)?;
        let census = WorkloadCensus::measure(&decomp, positions, profile.ghost_cutoff);
        self.simulate_with_census(profile, &census, opts)
    }

    /// Runs the model with an already-measured census over
    /// `min(6·gpus, 48)` host ranks.
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported benchmarks or a census/rank mismatch.
    pub fn simulate_with_census(
        &self,
        profile: &WorkloadProfile,
        census: &WorkloadCensus,
        opts: &GpuRunOptions,
    ) -> Result<GpuRunResult> {
        let bench = profile.benchmark;
        if !bench.gpu_supported() {
            return Err(md_core::CoreError::InvalidParameter {
                name: "benchmark",
                reason: format!("the reference GPU package lacks the {} pair style", bench),
            });
        }
        let ranks = (calib::RANKS_PER_GPU * opts.gpus).min(calib::MAX_GPU_HOST_RANKS);
        if census.nranks() != ranks {
            return Err(md_core::CoreError::LengthMismatch {
                what: "census ranks",
                expected: ranks,
                found: census.nranks(),
            });
        }
        let ranks_per_gpu = ranks / opts.gpus;
        let pair_rate =
            calib::gpu_pair_seconds(bench) * calib::gpu_precision_factor(opts.precision);
        // fp64 atom data is twice as wide on the PCIe link; the FFT mesh
        // stays fp32 (the paper's build uses -DFFT_SINGLE).
        let atom_bytes_factor = opts.precision.compute_width() as f64 / 4.0;
        let per_atom_pairs = profile.stored_neighbors / 2.0; // GPU package: half lists
        let launch = calib::GPU_KERNEL_LAUNCH_SECONDS;
        let hk = calib::GPU_HOUSEKEEPING_SECONDS;
        let loads = census.loads();

        let mut kernels = KernelLedger::new();
        let mut tasks = TaskLedger::new();
        let mut max_host = 0.0f64;
        let mut device_busy = vec![0.0f64; opts.gpus];
        // Device Kspace/Pair/Neigh attribution accumulators.
        let mut dev_pair = 0.0;
        let mut dev_neigh = 0.0;
        let mut dev_kspace = 0.0;

        for (r, load) in loads.iter().enumerate() {
            let device = r / ranks_per_gpu;
            let owned = load.owned as f64;
            let nall = owned + load.ghosts as f64;

            // -- device kernels --
            let mut dev = 0.0;
            let zero = launch + hk * nall;
            kernels.add(KernelKind::KernelZero, zero);
            dev += zero;

            let pair_t = launch + pair_rate * per_atom_pairs * owned;
            match bench {
                Benchmark::Eam => {
                    kernels.add(KernelKind::KEamFast, 0.62 * pair_t);
                    kernels.add(KernelKind::KEnergyFast, 0.38 * pair_t);
                }
                Benchmark::Rhodo => kernels.add(KernelKind::KCharmmLong, pair_t),
                _ => kernels.add(KernelKind::KLjFast, pair_t),
            }
            dev += pair_t;
            dev_pair += pair_t;

            let neigh_t = (launch
                + calib::GPU_NEIGH_CANDIDATE_SECONDS
                    * calib::NEIGH_SEARCH_FACTOR
                    * profile.stored_neighbors
                    * nall)
                / profile.rebuild_interval;
            kernels.add(KernelKind::CalcNeighListCell, neigh_t);
            dev += neigh_t;
            dev_neigh += neigh_t;

            let info = launch + hk * owned * 0.2;
            kernels.add(KernelKind::KernelInfo, info);
            let transpose = launch + hk * nall * 0.5;
            kernels.add(KernelKind::Transpose, transpose);
            let memset = launch + hk * nall * 0.3;
            kernels.add(KernelKind::Memset, memset);
            dev += info + transpose + memset;

            if bench == Benchmark::Rhodo {
                let special = launch + hk * nall;
                kernels.add(KernelKind::KernelSpecial, special);
                dev += special;
            }

            // -- atom-data movement --
            let htod_atoms = calib::PCIE_LATENCY * calib::PCIE_TRANSFERS_PER_STEP / 2.0
                + nall * calib::HTOD_BYTES_PER_ATOM * atom_bytes_factor / calib::PCIE_BANDWIDTH;
            let dtoh_atoms = calib::PCIE_LATENCY * calib::PCIE_TRANSFERS_PER_STEP / 2.0
                + owned * calib::DTOH_BYTES_PER_ATOM * atom_bytes_factor / calib::PCIE_BANDWIDTH;
            kernels.add(KernelKind::MemcpyHtoD, htod_atoms);
            kernels.add(KernelKind::MemcpyDtoH, dtoh_atoms);
            dev += htod_atoms + dtoh_atoms;
            dev_pair += htod_atoms + dtoh_atoms;

            // -- PPPM mesh on the device, FFT on the host --
            let mut host_kspace = 0.0;
            if let Some(ks) = profile.kspace {
                let weights = (ks.order * ks.order * ks.order) as f64;
                let map = launch + 0.1e-9 * owned;
                let rho = launch + calib::GPU_MESH_SECONDS * weights * owned;
                let interp = launch + calib::GPU_MESH_SECONDS * weights * owned;
                kernels.add(KernelKind::ParticleMap, map);
                kernels.add(KernelKind::MakeRho, rho);
                kernels.add(KernelKind::Interp, interp);
                dev += map + rho + interp;
                dev_kspace += map + rho + interp;

                // Mesh bricks cross PCIe as strided slab copies: the charge
                // density goes out, three field components come back (the
                // HtoD growth of Section 7). Each z-plane pays a DMA setup.
                let g_per_rank = ks.grid_points as f64 / ranks as f64;
                let planes = ks.grid[2] as f64 * calib::PCIE_MESH_PLANE_LATENCY;
                let mesh_dtoh = g_per_rank * 4.0 / calib::PCIE_MESH_BANDWIDTH + planes;
                let mesh_htod = g_per_rank * 3.0 * 4.0 / calib::PCIE_MESH_BANDWIDTH + 3.0 * planes;
                kernels.add(KernelKind::MemcpyDtoH, mesh_dtoh);
                kernels.add(KernelKind::MemcpyHtoD, mesh_htod);
                dev += mesh_dtoh + mesh_htod;
                dev_kspace += mesh_dtoh + mesh_htod;

                // Host FFT share.
                let g = ks.grid_points as f64;
                host_kspace =
                    calib::CPU_FFT_SECONDS * calib::GPU_HOST_SLOWDOWN * 4.0 * g * g.log2()
                        / ranks as f64;
            }

            device_busy[device] += dev;

            // -- host work --
            let slow = calib::GPU_HOST_SLOWDOWN;
            let mut host_modify = calib::CPU_INTEGRATE_SECONDS * slow * owned
                + calib::CPU_SHAKE_SECONDS * slow * profile.constraints_per_atom * owned;
            if bench == Benchmark::Rhodo {
                host_modify += calib::CPU_NPT_SECONDS * slow * owned;
            }
            host_modify += calib::cpu_fix_seconds(bench) * slow * owned;
            let host_bond = calib::CPU_BOND_SECONDS * slow * profile.bonded_per_atom * owned;
            let host_comm = if ranks > 1 {
                calib::CPU_PACK_SECONDS * slow * load.ghosts as f64
                    + calib::CPU_LINK.transfer(
                        load.ghosts as f64
                            * (calib::FORWARD_BYTES_PER_GHOST + calib::REVERSE_BYTES_PER_GHOST),
                    )
            } else {
                0.0
            };
            let host_output = calib::CPU_OUTPUT_SECONDS * slow * owned / 100.0;
            let host = host_modify + host_bond + host_comm + host_kspace + host_output;
            max_host = max_host.max(host);

            tasks.add(TaskKind::Modify, host_modify / ranks as f64);
            tasks.add(TaskKind::Bond, host_bond / ranks as f64);
            tasks.add(TaskKind::Comm, host_comm / ranks as f64);
            tasks.add(TaskKind::Kspace, host_kspace / ranks as f64);
            tasks.add(TaskKind::Output, host_output / ranks as f64);
        }

        // Device sharing: every rank waits for its device's full round.
        let max_device = device_busy.iter().copied().fold(0.0, f64::max);
        let step_seconds = max_host + max_device;

        // Attribute device time to tasks (mean per rank).
        let p = ranks as f64;
        tasks.add(TaskKind::Pair, dev_pair / p);
        tasks.add(TaskKind::Neigh, dev_neigh / p);
        tasks.add(TaskKind::Kspace, dev_kspace / p);
        let misc = kernels.seconds(KernelKind::KernelZero)
            + kernels.seconds(KernelKind::KernelInfo)
            + kernels.seconds(KernelKind::Transpose)
            + kernels.seconds(KernelKind::Memset)
            + kernels.seconds(KernelKind::KernelSpecial);
        tasks.add(TaskKind::Other, misc / p);

        // Utilization counts *compute kernels* only (the paper's nvidia-smi
        // utilization excludes pure DMA windows on average).
        let compute_kernel_time: f64 = KernelKind::ALL
            .iter()
            .filter(|k| {
                !matches!(
                    k,
                    KernelKind::MemcpyDtoH | KernelKind::MemcpyHtoD | KernelKind::Memset
                )
            })
            .map(|&k| kernels.seconds(k))
            .sum();
        let device_utilization =
            (compute_kernel_time / opts.gpus as f64 / step_seconds).clamp(0.0, 1.0);

        let ts_per_sec = 1.0 / step_seconds;
        let watts = crate::power::gpu_node_watts(bench, opts.gpus, device_utilization, ranks);
        Ok(GpuRunResult {
            benchmark: bench,
            size_k: profile.natoms / 1000,
            gpus: opts.gpus,
            host_ranks: ranks,
            ts_per_sec,
            step_seconds,
            tasks,
            kernels,
            device_utilization,
            watts,
            ts_per_sec_per_watt: ts_per_sec / watts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_workloads::build_positions;

    fn run(bench: Benchmark, scale: usize, gpus: usize) -> GpuRunResult {
        let profile = WorkloadProfile::measure(bench, 40, 1)
            .unwrap()
            .at_scale(scale)
            .unwrap();
        let (bx, x) = build_positions(bench, scale, 1).unwrap();
        GpuModel::new()
            .simulate(
                &profile,
                &bx,
                &x,
                &GpuRunOptions {
                    gpus,
                    precision: PrecisionMode::Mixed,
                },
            )
            .unwrap()
    }

    #[test]
    fn chute_is_rejected() {
        let profile = WorkloadProfile::measure(Benchmark::Chute, 40, 1).unwrap();
        let (bx, x) = build_positions(Benchmark::Chute, 1, 1).unwrap();
        let err = GpuModel::new()
            .simulate(&profile, &bx, &x, &GpuRunOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("pair style"));
    }

    #[test]
    fn memcpy_dominates_device_activity() {
        // Paper Section 6.1: the majority of device-active time is memory
        // movement for most benchmarks.
        let r = run(Benchmark::Lj, 1, 1);
        let memcpy =
            r.kernels.percent(KernelKind::MemcpyHtoD) + r.kernels.percent(KernelKind::MemcpyDtoH);
        assert!(memcpy > 30.0, "memcpy share {memcpy:.1}%");
    }

    #[test]
    fn eam_splits_into_two_kernels() {
        let r = run(Benchmark::Eam, 1, 1);
        assert!(r.kernels.seconds(KernelKind::KEamFast) > 0.0);
        assert!(r.kernels.seconds(KernelKind::KEnergyFast) > 0.0);
        assert_eq!(r.kernels.seconds(KernelKind::KLjFast), 0.0);
    }

    #[test]
    fn multi_gpu_efficiency_is_poor() {
        let r1 = run(Benchmark::Lj, 1, 1);
        let r8 = run(Benchmark::Lj, 1, 8);
        let eff = r8.parallel_efficiency(&r1);
        assert!(
            eff < 0.7,
            "32k atoms on 8 GPUs should scale poorly, eff {eff:.2}"
        );
        assert!(
            r8.ts_per_sec >= r1.ts_per_sec * 0.8,
            "still no catastrophic slowdown"
        );
    }

    #[test]
    fn device_utilization_is_low() {
        let r = run(Benchmark::Lj, 2, 4);
        assert!(
            r.device_utilization < 0.7,
            "utilization {:.2} should reflect the data-movement bottleneck",
            r.device_utilization
        );
    }

    #[test]
    fn rhodo_moves_mesh_traffic() {
        let r = run(Benchmark::Rhodo, 1, 2);
        assert!(r.kernels.seconds(KernelKind::MakeRho) > 0.0);
        assert!(r.kernels.seconds(KernelKind::ParticleMap) > 0.0);
        assert!(r.kernels.seconds(KernelKind::Interp) > 0.0);
        assert!(r.tasks.seconds(TaskKind::Kspace) > 0.0);
    }

    #[test]
    fn double_precision_slows_lj_markedly() {
        // The paper's Figure 16 effect is clearest at the large size, where
        // kernel and transfer volumes dominate the per-rank latency floor.
        let profile = WorkloadProfile::measure(Benchmark::Lj, 40, 1)
            .unwrap()
            .at_scale(4)
            .unwrap();
        let (bx, x) = build_positions(Benchmark::Lj, 4, 1).unwrap();
        let model = GpuModel::new();
        let s = model
            .simulate(
                &profile,
                &bx,
                &x,
                &GpuRunOptions {
                    gpus: 8,
                    precision: PrecisionMode::Single,
                },
            )
            .unwrap();
        let d = model
            .simulate(
                &profile,
                &bx,
                &x,
                &GpuRunOptions {
                    gpus: 8,
                    precision: PrecisionMode::Double,
                },
            )
            .unwrap();
        let ratio = s.ts_per_sec / d.ts_per_sec;
        assert!(ratio > 1.12, "single/double ratio {ratio:.3}");
    }
}
