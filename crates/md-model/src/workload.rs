//! Workload profiles: the per-benchmark operation counts that feed the
//! instance models.
//!
//! A profile is **measured** from a real engine run of the 32k-atom deck
//! (neighbor density, rebuild cadence, bonded-term counts are intensive —
//! independent of system size at fixed density), then **scaled** analytically
//! to the paper's larger sizes. The k-space mesh is re-resolved at every
//! size and error threshold through the same accuracy machinery the solver
//! itself uses.

use md_core::{CoreError, Result};
use md_kspace::KspaceAccuracy;
use md_workloads::{atoms_at_scale, build_deck, Benchmark};

/// K-space work at one size/threshold.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KspaceWork {
    /// PPPM mesh.
    pub grid: [usize; 3],
    /// Total mesh points.
    pub grid_points: usize,
    /// Charge-assignment order.
    pub order: usize,
    /// Relative force-error threshold.
    pub relative_error: f64,
}

/// Operation counts of one benchmark at one size.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadProfile {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Replication factor (1..=4).
    pub scale: usize,
    /// Atom count.
    pub natoms: usize,
    /// Stored neighbors per atom (cutoff + skin shell).
    pub stored_neighbors: f64,
    /// Neighbors per atom within the bare cutoff (Table 2 convention).
    pub cutoff_neighbors: f64,
    /// Mean steps between neighbor-list rebuilds.
    pub rebuild_interval: f64,
    /// Bonds + angles + dihedrals per atom.
    pub bonded_per_atom: f64,
    /// SHAKE constraints per atom.
    pub constraints_per_atom: f64,
    /// Whether pairs are halved by Newton's third law.
    pub newton: bool,
    /// Interaction range for the halo (cutoff + skin).
    pub ghost_cutoff: f64,
    /// Box extents at this size.
    pub box_lengths: [f64; 3],
    /// Σq² (for k-space re-resolution), zero if chargeless.
    pub qsqsum: f64,
    /// K-space work, if the benchmark computes long-range forces.
    pub kspace: Option<KspaceWork>,
}

impl WorkloadProfile {
    /// Measures the 32k-atom profile by running `steps` real timesteps.
    ///
    /// # Errors
    ///
    /// Propagates deck construction or stepping failures.
    pub fn measure(benchmark: Benchmark, steps: u64, seed: u64) -> Result<Self> {
        let mut deck = build_deck(benchmark, 1, seed)?;
        // Warm up: the first steps off the generated lattice rebuild the
        // neighbor list atypically often and would bias the cadence.
        deck.simulation.run(10)?;
        let builds_before = deck
            .simulation
            .neighbor_list()
            .map_or(0, |n| n.stats().builds);
        deck.simulation.run(steps)?;
        let sim = &deck.simulation;
        let nl = sim
            .neighbor_list()
            .ok_or_else(|| CoreError::InvalidParameter {
                name: "profile",
                reason: "benchmark has no pair style".to_string(),
            })?;
        let stats = nl.stats();
        let rebuilds = (stats.builds - builds_before).max(1);
        let atoms = sim.atoms();
        let n = atoms.len();
        // Steady-state rebuild cadence: the measured count is biased low
        // while the generated lattice relaxes, so floor it with the
        // ballistic estimate (time for an RMS-speed atom to cross skin/2).
        let mean_speed = atoms.v().iter().map(|v| v.norm()).sum::<f64>() / n.max(1) as f64;
        let ballistic = if mean_speed > 0.0 {
            0.5 * nl.skin() / (mean_speed * sim.dt())
        } else {
            f64::INFINITY
        };
        let rebuild_interval = (steps as f64 / rebuilds as f64).max(ballistic).min(200.0);
        let bonded = atoms.bonds().len() + atoms.angles().len() + atoms.dihedrals().len();
        let bxl = sim.sim_box().lengths();
        let qsqsum: f64 = atoms.charges().iter().map(|q| q * q).sum();
        let kspace = if benchmark.has_kspace() {
            let acc = KspaceAccuracy::resolve(
                md_workloads::rhodo::CUT_COUL,
                md_workloads::rhodo::KSPACE_ERROR,
                n,
                qsqsum,
                [bxl.x, bxl.y, bxl.z],
                5,
            )?;
            Some(KspaceWork {
                grid: acc.grid,
                grid_points: acc.grid_points(),
                order: 5,
                relative_error: md_workloads::rhodo::KSPACE_ERROR,
            })
        } else {
            None
        };
        // SHAKE constraints: 3 per rigid water in the rhodo deck.
        let constraints_per_atom = if benchmark == Benchmark::Rhodo {
            // 3 constraints per 3-atom water; waters are 28800/32000 atoms.
            (3.0 * 9600.0) / 32_000.0
        } else {
            0.0
        };
        Ok(WorkloadProfile {
            benchmark,
            scale: 1,
            natoms: n,
            stored_neighbors: stats.neighbors_per_atom,
            cutoff_neighbors: stats.neighbors_within_cutoff,
            rebuild_interval,
            bonded_per_atom: bonded as f64 / n as f64,
            constraints_per_atom,
            newton: benchmark.newton_pairs(),
            ghost_cutoff: nl.cutoff() + nl.skin(),
            box_lengths: [bxl.x, bxl.y, bxl.z],
            qsqsum,
            kspace,
        })
    }

    /// Scales this (intensive) profile to another replication factor: atom
    /// counts and box extents grow, per-atom statistics stay, and the
    /// k-space mesh is re-resolved for the bigger box.
    ///
    /// # Errors
    ///
    /// Returns an error for scales outside 1..=4.
    pub fn at_scale(&self, scale: usize) -> Result<WorkloadProfile> {
        if !(1..=4).contains(&scale) {
            return Err(CoreError::InvalidParameter {
                name: "scale",
                reason: format!("replication factor {scale} outside 1..=4"),
            });
        }
        let f = scale as f64 / self.scale as f64;
        let mut out = self.clone();
        out.scale = scale;
        out.natoms = atoms_at_scale(scale);
        out.box_lengths = self.box_lengths.map(|l| l * f);
        out.qsqsum = self.qsqsum * f.powi(3);
        if let Some(ks) = self.kspace {
            out.kspace = Some(resolve_kspace(&out, ks.relative_error)?);
        }
        Ok(out)
    }

    /// Re-resolves the k-space work at a different error threshold
    /// (the paper's Section 7 sweep).
    ///
    /// # Errors
    ///
    /// Returns an error if the benchmark has no k-space or the threshold is
    /// invalid.
    pub fn with_kspace_error(&self, relative_error: f64) -> Result<WorkloadProfile> {
        if self.kspace.is_none() {
            return Err(CoreError::InvalidParameter {
                name: "kspace",
                reason: format!("{} has no long-range solver", self.benchmark),
            });
        }
        let mut out = self.clone();
        out.kspace = Some(resolve_kspace(&out, relative_error)?);
        Ok(out)
    }

    /// Pair interactions computed per timestep (Newton-halved where the
    /// style allows).
    pub fn pair_ops_per_step(&self) -> f64 {
        let per_atom = if self.newton {
            self.stored_neighbors / 2.0
        } else {
            self.stored_neighbors
        };
        self.natoms as f64 * per_atom
    }
}

fn resolve_kspace(profile: &WorkloadProfile, relative_error: f64) -> Result<KspaceWork> {
    let acc = KspaceAccuracy::resolve(
        md_workloads::rhodo::CUT_COUL,
        relative_error,
        profile.natoms,
        profile.qsqsum,
        profile.box_lengths,
        5,
    )?;
    Ok(KspaceWork {
        grid: acc.grid,
        grid_points: acc.grid_points(),
        order: 5,
        relative_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lj_profile_measures_table2_density() {
        let p = WorkloadProfile::measure(Benchmark::Lj, 10, 1).unwrap();
        assert_eq!(p.natoms, 32_000);
        assert!((45.0..=65.0).contains(&p.cutoff_neighbors));
        assert!(p.newton);
        assert!(p.kspace.is_none());
        assert!(p.rebuild_interval >= 1.0);
    }

    #[test]
    fn chain_profile_has_bonds() {
        let p = WorkloadProfile::measure(Benchmark::Chain, 10, 1).unwrap();
        assert!(p.bonded_per_atom > 0.9 && p.bonded_per_atom < 1.1);
    }

    #[test]
    fn scaling_is_intensive() {
        let p = WorkloadProfile::measure(Benchmark::Lj, 5, 1).unwrap();
        let p4 = p.at_scale(4).unwrap();
        assert_eq!(p4.natoms, 2_048_000);
        assert_eq!(p4.stored_neighbors, p.stored_neighbors);
        assert!((p4.box_lengths[0] / p.box_lengths[0] - 4.0).abs() < 1e-12);
        assert!(
            (p4.pair_ops_per_step() / p.pair_ops_per_step() - 64.0).abs() < 1e-9,
            "pair ops scale with volume"
        );
    }

    #[test]
    fn rhodo_kspace_grid_grows_with_size_and_threshold() {
        let p = WorkloadProfile::measure(Benchmark::Rhodo, 2, 1).unwrap();
        let ks1 = p.kspace.expect("rhodo has kspace");
        let p4 = p.at_scale(4).unwrap();
        let ks4 = p4.kspace.expect("still kspace");
        assert!(ks4.grid_points > ks1.grid_points);
        let tight = p.with_kspace_error(1e-7).unwrap().kspace.unwrap();
        assert!(tight.grid_points > ks1.grid_points);
    }

    #[test]
    fn chute_has_no_newton() {
        let p = WorkloadProfile::measure(Benchmark::Chute, 5, 1).unwrap();
        assert!(!p.newton);
        // Full lists: pair ops per atom equal the stored neighbor count.
        let per_atom = p.pair_ops_per_step() / p.natoms as f64;
        assert!((per_atom - p.stored_neighbors).abs() < 1e-9);
    }

    #[test]
    fn kspace_error_rejects_chargeless_benchmarks() {
        let p = WorkloadProfile::measure(Benchmark::Lj, 2, 1).unwrap();
        assert!(p.with_kspace_error(1e-5).is_err());
    }
}
