//! Calibration constants for the instance models.
//!
//! Every constant is a physical rate (seconds per operation, bytes per
//! element, watts) tuned so the model reproduces the anchor numbers the
//! paper reports in prose (DESIGN.md §4 lists them). The *shapes* of the
//! figures — who wins, where communication overtakes compute, how the error
//! threshold moves work between tasks — emerge from the operation counts,
//! not from these constants.

use md_core::PrecisionMode;
use md_parallel::LinkModel;
use md_workloads::Benchmark;

/// Per-benchmark CPU kernel rates (seconds per pair interaction).
///
/// EAM pays two passes over the neighbor list; the granular history style
/// pays hash-map bookkeeping per contact; CHARMM pays `erfc` per pair.
pub fn cpu_pair_seconds(benchmark: Benchmark) -> f64 {
    match benchmark {
        Benchmark::Lj => 5.6e-9,
        Benchmark::Chain => 7.0e-9,
        Benchmark::Eam => 9.0e-9,
        Benchmark::Chute => 8.0e-9,
        Benchmark::Rhodo => 5.5e-9,
    }
}

/// Per-atom Modify cost of the benchmark's fixes: Langevin pays a Gaussian
/// RNG per atom per step; the chute's gravity/wall/freeze trio is cheap.
pub fn cpu_fix_seconds(benchmark: Benchmark) -> f64 {
    match benchmark {
        Benchmark::Chain => 60.0e-9,
        Benchmark::Chute => 35.0e-9,
        _ => 0.0,
    }
}

/// Precision multiplier on the CPU pair kernel (paper Section 8: the INTEL
/// package computes in single/mixed/double).
pub fn cpu_precision_factor(mode: PrecisionMode) -> f64 {
    match mode {
        PrecisionMode::Single => 0.97,
        PrecisionMode::Mixed => 1.0,
        PrecisionMode::Double => 1.17,
    }
}

/// Neighbor-list construction: seconds per *candidate* pair examined; the
/// bin search examines ~2.5× the stored pairs.
pub const CPU_NEIGH_CANDIDATE_SECONDS: f64 = 1.4e-9;
/// Candidate-to-stored overcount of the 27-cell stencil.
pub const NEIGH_SEARCH_FACTOR: f64 = 2.5;
/// Per-atom binning cost per rebuild.
pub const CPU_NEIGH_BIN_SECONDS: f64 = 12.0e-9;

/// Seconds per bonded term (bond/angle/dihedral).
pub const CPU_BOND_SECONDS: f64 = 35.0e-9;

/// Integration cost per atom per step (velocity-Verlet halves + PBC).
pub const CPU_INTEGRATE_SECONDS: f64 = 14.0e-9;
/// SHAKE cost per constraint per step (a few sweeps).
pub const CPU_SHAKE_SECONDS: f64 = 60.0e-9;
/// Nose-Hoover NPT overhead per atom per step.
pub const CPU_NPT_SECONDS: f64 = 12.0e-9;

/// PPPM charge assignment + field interpolation, seconds per atom per
/// stencil weight (order³ weights, two passes).
pub const CPU_MESH_SECONDS: f64 = 1.5e-9;
/// FFT cost per point·log2(point), covering the 4 transforms per step plus
/// the memory-bound pack/transpose passes of a distributed 3D FFT.
pub const CPU_FFT_SECONDS: f64 = 2.0e-9;

/// Thermo/output cost per atom at an output step.
pub const CPU_OUTPUT_SECONDS: f64 = 4.0e-9;

/// Ghost pack/unpack cost per ghost atom per step (counted as Comm work,
/// outside MPI).
pub const CPU_PACK_SECONDS: f64 = 22.0e-9;
/// Bytes exchanged per ghost atom in the forward (position) communication.
pub const FORWARD_BYTES_PER_GHOST: f64 = 24.0;
/// Bytes per ghost atom in the reverse (force) communication (Newton on).
pub const REVERSE_BYTES_PER_GHOST: f64 = 24.0;

/// Intra-node MPI link (shared-memory transport).
pub const CPU_LINK: LinkModel = LinkModel {
    latency: 1.5e-6,
    bandwidth: 11.0e9,
};

/// `MPI_Init` cost: `base + per_rank · P` seconds on every rank (the paper
/// observes per-rank init time *growing* with the process count).
pub const MPI_INIT_BASE_SECONDS: f64 = 0.08;
/// See [`MPI_INIT_BASE_SECONDS`].
pub const MPI_INIT_PER_RANK_SECONDS: f64 = 0.012;

/// Per-benchmark multiplicative compute jitter amplitude: cache/TLB noise,
/// bursty rebuilds, and density fluctuations that the census cannot see.
/// This is what separates the imbalance ordering of Figure 4 (bottom):
/// chute ≫ chain > rhodo > lj ≈ eam.
pub fn cpu_jitter_amplitude(benchmark: Benchmark) -> f64 {
    match benchmark {
        Benchmark::Lj => 0.006,
        Benchmark::Eam => 0.005,
        Benchmark::Chain => 0.10,
        Benchmark::Chute => 0.12,
        Benchmark::Rhodo => 0.03,
    }
}

/// Mean physical-core utilization by benchmark (paper Section 5.2: chute
/// 24%, lj 48%, chain 56%, eam 63%, rhodo 83%) — drives the power model.
pub fn cpu_core_utilization(benchmark: Benchmark) -> f64 {
    match benchmark {
        Benchmark::Chute => 0.24,
        Benchmark::Lj => 0.48,
        Benchmark::Chain => 0.56,
        Benchmark::Eam => 0.63,
        Benchmark::Rhodo => 0.83,
    }
}

// ---------------------------------------------------------------------------
// GPU instance constants
// ---------------------------------------------------------------------------

/// MPI ranks sharing one device (the LAMMPS GPU guide recommends
/// oversubscription; the paper found ≤48 total ranks useful on 52 threads).
pub const RANKS_PER_GPU: usize = 6;
/// Upper bound on host ranks of the GPU instance.
pub const MAX_GPU_HOST_RANKS: usize = 48;

/// GPU pair-kernel rate (seconds per pair, fp32).
pub fn gpu_pair_seconds(benchmark: Benchmark) -> f64 {
    match benchmark {
        Benchmark::Lj => 0.07e-9,
        Benchmark::Chain => 0.12e-9,
        // Split into k_eam_fast + k_energy_fast, individually slower than
        // the charmm kernel (paper Section 6.1).
        Benchmark::Eam => 0.16e-9,
        Benchmark::Rhodo => 0.12e-9,
        Benchmark::Chute => f64::INFINITY, // unsupported (gran/hooke)
    }
}

/// fp64 slowdown of the pair kernels (V100 fp64 = fp32/2, plus register
/// pressure).
pub fn gpu_precision_factor(mode: PrecisionMode) -> f64 {
    match mode {
        PrecisionMode::Single => 0.93,
        PrecisionMode::Mixed => 1.0,
        PrecisionMode::Double => 1.9,
    }
}

/// GPU neighbor-build kernel rate (seconds per candidate pair).
pub const GPU_NEIGH_CANDIDATE_SECONDS: f64 = 0.10e-9;
/// GPU mesh kernels (make_rho / particle_map / interp), seconds per
/// atom-weight operation.
pub const GPU_MESH_SECONDS: f64 = 0.25e-9;
/// Fixed per-kernel launch overhead.
pub const GPU_KERNEL_LAUNCH_SECONDS: f64 = 8.0e-6;
/// Small bookkeeping kernels (zero/info/special/transpose) per atom.
pub const GPU_HOUSEKEEPING_SECONDS: f64 = 0.15e-9;

/// Effective PCIe 3.0 x16 bandwidth per transfer (fragmented transfers —
/// the paper observes the link is *under-utilized*).
pub const PCIE_BANDWIDTH: f64 = 12.0e9;
/// Effective PCIe bandwidth for PPPM mesh bricks: strided slab copies run
/// far below the link rate, which is what makes the tight-error-threshold
/// HtoD traffic "shadow all other CUDA calls" (paper Section 7).
pub const PCIE_MESH_BANDWIDTH: f64 = 0.3e9;
/// Per-z-plane DMA setup cost of the strided mesh-brick copies; with tight
/// error thresholds the plane count explodes and this term dominates.
pub const PCIE_MESH_PLANE_LATENCY: f64 = 5.0e-6;
/// Per-memcpy latency (driver + DMA setup).
pub const PCIE_LATENCY: f64 = 50.0e-6;
/// Host↔device transfers per rank per step (positions, forces, energies,
/// neighbor metadata, ...).
pub const PCIE_TRANSFERS_PER_STEP: f64 = 8.0;
/// Bytes per atom moved host→device each step (fp32 positions + type).
pub const HTOD_BYTES_PER_ATOM: f64 = 12.0;
/// Bytes per atom moved device→host each step (fp32 forces (+ energies)).
pub const DTOH_BYTES_PER_ATOM: f64 = 12.0;

/// Host CPU of the GPU instance is slower than the CPU instance
/// (2.0 vs 2.6 GHz base, older core): scale host-side costs.
pub const GPU_HOST_SLOWDOWN: f64 = 1.45;

/// Per-(rank, step) jitter amplitude of the traced GPU offload schedule:
/// kernel and copy durations wobble a few percent step to step (clock
/// boost, PCIe arbitration), which is what lets the traced critical path
/// move between devices without changing the closed-form means.
pub const GPU_JITTER_AMPLITUDE: f64 = 0.04;

// ---------------------------------------------------------------------------
// Power model (paper: powerstat / nvidia-smi at 0.5 s sampling)
// ---------------------------------------------------------------------------

/// Platform power floor (fans, DRAM, board) in watts.
pub const PLATFORM_IDLE_W: f64 = 80.0;
/// Idle power per CPU socket.
pub const SOCKET_IDLE_W: f64 = 45.0;
/// Idle power per GPU device.
pub const GPU_IDLE_W: f64 = 25.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_ordering_matches_paper() {
        // chute 24% < lj 48% < chain 56% < eam 63% < rhodo 83%.
        let u = cpu_core_utilization;
        assert!(u(Benchmark::Chute) < u(Benchmark::Lj));
        assert!(u(Benchmark::Lj) < u(Benchmark::Chain));
        assert!(u(Benchmark::Chain) < u(Benchmark::Eam));
        assert!(u(Benchmark::Eam) < u(Benchmark::Rhodo));
    }

    #[test]
    fn chute_has_no_gpu_kernel() {
        assert!(gpu_pair_seconds(Benchmark::Chute).is_infinite());
        assert!(gpu_pair_seconds(Benchmark::Lj).is_finite());
    }

    #[test]
    fn double_precision_costs_more() {
        assert!(
            cpu_precision_factor(PrecisionMode::Double)
                > cpu_precision_factor(PrecisionMode::Single)
        );
        assert!(gpu_precision_factor(PrecisionMode::Double) > 1.5);
    }

    #[test]
    fn jitter_ordering_drives_figure4() {
        let j = cpu_jitter_amplitude;
        assert!(j(Benchmark::Chute) > j(Benchmark::Chain));
        assert!(j(Benchmark::Chain) > j(Benchmark::Rhodo));
        assert!(j(Benchmark::Rhodo) > j(Benchmark::Lj));
    }
}
