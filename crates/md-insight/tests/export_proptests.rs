//! Property tests for the md-insight exporters: arbitrary valid
//! metric/stack sets must round-trip through the strict OpenMetrics and
//! folded-stack parsers (the hand-written cases in `export.rs` cover the
//! happy path; these cover the input space).

use std::collections::BTreeMap;

use md_insight::{folded_stacks, openmetrics, parse_folded, parse_openmetrics};
use md_observe::{ObserveConfig, Recorder, StepSample};
use proptest::collection::vec;
use proptest::prelude::*;

/// Gauge/counter names the generators draw from (registration requires
/// `&'static str` names, so the pool is static).
const GAUGE_NAMES: [&str; 6] = [
    "insight_findings",
    "imbalance_suspect_rank",
    "imbalance_worst_varavg_pct",
    "gpu_pcie_htod_bytes",
    "health_energy_drift",
    "fault_rank_slow",
];

/// Histogram names for `observe()`.
const HIST_NAMES: [&str; 3] = [
    "health_step_seconds",
    "insight_analyze_seconds",
    "recovery_rollback_seconds",
];

/// Span names for the folded-stack generator.
const SPAN_NAMES: [&str; 6] = ["step", "Pair", "Neigh", "Kspace", "Comm", "halo"];

/// The exporter's own value formatting: integers < 1e15 print as `{v:.1}`,
/// everything else as `{v:.9e}` (lossy) — so round-trip equality must be
/// checked against the *formatted* value, exactly as a reader of the file
/// would see it.
fn exported_value(v: f64) -> f64 {
    let text = if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:.9e}")
    };
    text.parse().expect("exporter output parses as f64")
}

/// Finite gauge values spanning magnitudes, signs, integers and fractions
/// (the vendored proptest has no `prop_oneof`, so pick via an index).
fn gauge_value() -> impl Strategy<Value = f64> {
    (0usize..4, -1.0e12..1.0e12f64, -1_000_000i64..1_000_000).prop_map(|(pick, wide, int)| {
        match pick {
            0 => wide,
            1 => int as f64,
            2 => wide * 1.0e-18,
            _ => 0.0,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary gauge/histogram/step-sample sets survive the strict
    /// OpenMetrics parser, and every exported value reads back exactly as
    /// formatted.
    #[test]
    fn openmetrics_round_trips_arbitrary_snapshots(
        gauges in vec((0..GAUGE_NAMES.len(), gauge_value()), 0..8),
        hist_obs in vec((0..HIST_NAMES.len(), 1.0e-6..10.0f64), 0..12),
        step_tasks in vec(vec(0.0..1.0f64, 8), 0..4),
    ) {
        let rec = Recorder::new(ObserveConfig::default());
        // Later writes to the same gauge overwrite earlier ones, matching
        // the exporter's one-sample-per-family output.
        let mut expected: BTreeMap<&str, f64> = BTreeMap::new();
        for &(i, v) in &gauges {
            rec.gauge(0, GAUGE_NAMES[i], v);
            expected.insert(GAUGE_NAMES[i], v);
        }
        for &(i, v) in &hist_obs {
            rec.observe(HIST_NAMES[i], v);
        }
        for tasks in &step_tasks {
            let mut sample = StepSample::default();
            for (slot, &v) in sample.task_seconds.iter_mut().zip(tasks) {
                *slot = v;
            }
            rec.push_step(sample);
        }
        let text = openmetrics(&rec.snapshot());
        let metrics = parse_openmetrics(&text);
        prop_assert!(metrics.is_ok(), "strict parse failed: {:?}", metrics.err());
        let metrics = metrics.unwrap();

        for (name, v) in expected {
            let family = format!("md_{name}");
            let got: Vec<f64> = metrics
                .iter()
                .filter(|m| m.name == family)
                .map(|m| m.value)
                .collect();
            prop_assert_eq!(got.len(), 1, "family {} sampled once", family);
            prop_assert_eq!(got[0], exported_value(v), "family {}", family);
        }
        // Per-task rows appear exactly when step samples were retained.
        let task_rows = metrics.iter().filter(|m| m.name == "md_task_seconds").count();
        if step_tasks.is_empty() {
            prop_assert_eq!(task_rows, 0);
        } else {
            prop_assert_eq!(task_rows, 8, "one row per task label");
        }
        // Histogram families export p50/p95/p99 + _count + _sum.
        for (i, name) in HIST_NAMES.iter().enumerate() {
            let n_obs = hist_obs.iter().filter(|&&(j, _)| j == i).count();
            let family = format!("md_{name}");
            let quantiles = metrics.iter().filter(|m| m.name == family).count();
            prop_assert_eq!(quantiles, if n_obs > 0 { 3 } else { 0 });
            if n_obs > 0 {
                let count = metrics
                    .iter()
                    .find(|m| m.name == format!("{family}_count"))
                    .expect("count sample");
                prop_assert_eq!(count.value, n_obs as f64);
            }
        }
    }

    /// Arbitrary span layouts survive the strict folded parser, and the
    /// emitted self-times never exceed the recorded wall time (integer-µs
    /// rounding can add at most one µs per emitted frame).
    #[test]
    fn folded_stacks_round_trip_arbitrary_span_sets(
        spans in vec(
            (0u32..3, 0..SPAN_NAMES.len(), 0.0..2_000.0f64, 0.5..300.0f64),
            1..24,
        ),
    ) {
        let rec = Recorder::new(ObserveConfig::default());
        rec.set_lane_name(0, "engine");
        let mut wall_us = 0.0;
        for &(lane, name, ts, dur) in &spans {
            rec.record_span_at(lane, "task", SPAN_NAMES[name], ts, dur);
            wall_us += dur;
        }
        let text = folded_stacks(&rec.snapshot());
        let parsed = parse_folded(&text);
        prop_assert!(parsed.is_ok(), "strict parse failed: {:?}", parsed.err());
        let parsed = parsed.unwrap();
        let total: u64 = parsed.iter().map(|&(_, c)| c).sum();
        prop_assert!(
            (total as f64) <= wall_us + parsed.len() as f64,
            "self-time {} µs exceeds wall {} µs",
            total,
            wall_us
        );
        for (frames, count) in &parsed {
            prop_assert!(!frames.is_empty());
            prop_assert!(*count > 0, "zero-sample lines are never emitted");
            prop_assert!(frames.iter().all(|f| !f.is_empty()));
        }
    }

    /// Parser identity: any well-formed folded file (frames from the
    /// exporter's alphabet, positive counts) parses back to exactly the
    /// stacks it encodes.
    #[test]
    fn folded_parser_is_the_inverse_of_the_line_format(
        lines in vec((vec(0..SPAN_NAMES.len(), 1..5), 1u64..1_000_000), 0..16),
    ) {
        let text: String = lines
            .iter()
            .map(|(frames, count)| {
                let path: Vec<&str> = frames.iter().map(|&i| SPAN_NAMES[i]).collect();
                format!("{} {count}\n", path.join(";"))
            })
            .collect();
        let parsed = parse_folded(&text);
        prop_assert!(parsed.is_ok());
        let parsed = parsed.unwrap();
        prop_assert_eq!(parsed.len(), lines.len());
        for ((frames, count), (want_idx, want_count)) in parsed.iter().zip(&lines) {
            let want: Vec<&str> = want_idx.iter().map(|&i| SPAN_NAMES[i]).collect();
            prop_assert_eq!(frames.iter().map(String::as_str).collect::<Vec<_>>(), want);
            prop_assert_eq!(count, want_count);
        }
    }
}
