//! Critical-path summarization over the virtual cluster's step records.
//!
//! [`md_parallel::VirtualCluster`] with step tracking enabled emits one
//! [`CriticalStep`] per timestep: the rank whose clock bounded the step
//! (the frontier), how far the frontier advanced, and that rank's dominant
//! task during the step. This module folds those records into a summary —
//! which rank/task chain the run actually waited on.
//!
//! [`DeviceCriticalPath`] extends the same question across the host↔device
//! boundary of the GPU model's traced offload schedule: each step's path
//! bounces host → HtoD copy → kernels → DtoH copy → host, and the bounding
//! segment is the single longest operation on that path — a PCIe copy for
//! the memcpy-dominated decks, a pair kernel for EAM (Figs. 7–9).

use md_core::TaskKind;
use md_model::gpu::{GpuSegment, GpuTimeline, KernelKind};
use md_parallel::CriticalStep;

/// Aggregated view of a run's critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathSummary {
    /// Steps covered.
    pub steps: usize,
    /// Total frontier advance, seconds (the run's simulated wall time over
    /// the tracked window).
    pub total_seconds: f64,
    /// Steps bounded by each rank, indexed by rank.
    pub rank_bound_steps: Vec<u64>,
    /// Critical-path seconds attributed to each rank.
    pub rank_bound_seconds: Vec<f64>,
    /// Critical-path seconds attributed to each task, [`TaskKind::ALL`]
    /// order (by the bounding rank's dominant task).
    pub task_bound_seconds: [f64; 8],
    /// Rank carrying the most critical-path time, with its seconds.
    pub top_rank: Option<(usize, f64)>,
    /// Task carrying the most critical-path time, with its seconds.
    pub top_task: Option<(TaskKind, f64)>,
}

impl CriticalPathSummary {
    /// Folds the per-step records. `nranks` sizes the per-rank vectors even
    /// when some ranks never bound a step.
    pub fn from_steps(steps: &[CriticalStep], nranks: usize) -> CriticalPathSummary {
        let width = steps
            .iter()
            .map(|s| s.rank + 1)
            .max()
            .unwrap_or(0)
            .max(nranks);
        let mut rank_bound_steps = vec![0u64; width];
        let mut rank_bound_seconds = vec![0.0f64; width];
        let mut task_bound_seconds = [0.0f64; 8];
        let mut total = 0.0;
        for s in steps {
            rank_bound_steps[s.rank] += 1;
            rank_bound_seconds[s.rank] += s.seconds;
            task_bound_seconds[s.task.index()] += s.seconds;
            total += s.seconds;
        }
        let top_rank = rank_bound_seconds
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite seconds"))
            .filter(|&(_, s)| s > 0.0);
        let top_task = TaskKind::ALL
            .iter()
            .map(|&t| (t, task_bound_seconds[t.index()]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite seconds"))
            .filter(|&(_, s)| s > 0.0);
        CriticalPathSummary {
            steps: steps.len(),
            total_seconds: total,
            rank_bound_steps,
            rank_bound_seconds,
            task_bound_seconds,
            top_rank,
            top_task,
        }
    }

    /// Renders a fixed-width summary table (rank rows, then task rows).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: {} steps, {:.6} s simulated\n",
            self.steps, self.total_seconds
        ));
        out.push_str("rank   bound-steps   bound-seconds   share\n");
        for (rank, (&n, &s)) in self
            .rank_bound_steps
            .iter()
            .zip(&self.rank_bound_seconds)
            .enumerate()
        {
            let share = if self.total_seconds > 0.0 {
                100.0 * s / self.total_seconds
            } else {
                0.0
            };
            out.push_str(&format!("{rank:<6} {n:>11} {s:>15.6} {share:>6.1}%\n"));
        }
        out.push_str("task     bound-seconds   share\n");
        for &task in TaskKind::ALL.iter() {
            let s = self.task_bound_seconds[task.index()];
            let share = if self.total_seconds > 0.0 {
                100.0 * s / self.total_seconds
            } else {
                0.0
            };
            out.push_str(&format!("{:<8} {s:>13.6} {share:>6.1}%\n", task.label()));
        }
        out
    }
}

/// Which side of the host↔device boundary bounds a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundSegment {
    /// The host segment (integration, fixes, FFT, MPI) is the largest
    /// share of the step's path.
    Host,
    /// PCIe copy time (HtoD + DtoH on the busiest device) is.
    Copy,
    /// Device compute-kernel time is.
    Kernel,
}

impl BoundSegment {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            BoundSegment::Host => "host",
            BoundSegment::Copy => "copy",
            BoundSegment::Kernel => "kernel",
        }
    }
}

/// One step's host↔device critical-path attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceStepBound {
    /// Step index.
    pub step: u64,
    /// The busiest device this step (the one the host waited for).
    pub device: usize,
    /// Host-segment seconds.
    pub host_seconds: f64,
    /// Busiest-device round seconds.
    pub device_seconds: f64,
    /// The class of path time (host / copy / kernel) that bounds the step.
    pub bound: BoundSegment,
    /// The longest op within the bounding class (None when the host
    /// segment bounds).
    pub kind: Option<KernelKind>,
    /// The bounding class's total duration, seconds.
    pub seconds: f64,
}

/// Critical path across the host↔device boundary of a traced GPU run: each
/// step's path is the busiest device's operation chain followed by the host
/// segment, and the step is attributed to the largest class of time on it
/// (total PCIe copy vs total kernel vs host segment). "Most steps are
/// copy-bound" is the analyzed form of the paper's memcpy-domination
/// finding.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCriticalPath {
    /// Per-step attribution, step order.
    pub steps: Vec<DeviceStepBound>,
    /// Steps bounded by the host segment.
    pub host_bound_steps: u64,
    /// Steps bounded by a PCIe copy.
    pub copy_bound_steps: u64,
    /// Steps bounded by a device kernel.
    pub kernel_bound_steps: u64,
    /// Most common bounding side (None for a zero-step run; copy/kernel
    /// over host on an exact tie — the device side is the finding).
    pub dominant: Option<BoundSegment>,
    /// Sum of the bounding operations' durations, seconds.
    pub bound_seconds: f64,
    /// Wall seconds of the whole window (device rounds + host segments).
    pub total_seconds: f64,
}

impl DeviceCriticalPath {
    /// Attributes each step of a traced offload schedule.
    pub fn from_timeline(timeline: &GpuTimeline) -> DeviceCriticalPath {
        let mut steps = Vec::with_capacity(timeline.steps.len());
        let mut host_bound_steps = 0u64;
        let mut copy_bound_steps = 0u64;
        let mut kernel_bound_steps = 0u64;
        let mut bound_seconds = 0.0;
        for step in &timeline.steps {
            let device = step
                .device_busy
                .iter()
                .copied()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite busy"))
                .map_or(0, |(d, _)| d);
            // The step's path: the busiest device's chain, then the host
            // segment. Individual copies interleave with kernels on the
            // chain, so the step is attributed to whichever *class* of
            // path time is largest — total copy seconds vs total kernel
            // seconds on the busiest device vs the host segment.
            let mut copy_seconds = 0.0;
            let mut kernel_seconds = 0.0;
            let mut longest_copy: Option<&_> = None;
            let mut longest_kernel: Option<&_> = None;
            for seg in step.segments.iter().filter(|s| s.device == device) {
                let (total, longest) = if seg.kind.is_memcpy() {
                    (&mut copy_seconds, &mut longest_copy)
                } else {
                    (&mut kernel_seconds, &mut longest_kernel)
                };
                *total += seg.seconds;
                if longest.is_none_or(|l: &GpuSegment| seg.seconds > l.seconds) {
                    *longest = Some(seg);
                }
            }
            // A device class wins ties against the host segment: the
            // device side is the interesting attribution.
            let (bound, kind, seconds) = if longest_copy.is_some()
                && copy_seconds >= step.host_seconds
                && copy_seconds >= kernel_seconds
            {
                (
                    BoundSegment::Copy,
                    longest_copy.map(|s| s.kind),
                    copy_seconds,
                )
            } else if longest_kernel.is_some() && kernel_seconds >= step.host_seconds {
                (
                    BoundSegment::Kernel,
                    longest_kernel.map(|s| s.kind),
                    kernel_seconds,
                )
            } else {
                (BoundSegment::Host, None, step.host_seconds)
            };
            match bound {
                BoundSegment::Host => host_bound_steps += 1,
                BoundSegment::Copy => copy_bound_steps += 1,
                BoundSegment::Kernel => kernel_bound_steps += 1,
            }
            bound_seconds += seconds;
            steps.push(DeviceStepBound {
                step: step.step,
                device,
                host_seconds: step.host_seconds,
                device_seconds: step.device_seconds,
                bound,
                kind,
                seconds,
            });
        }
        let dominant = [
            (BoundSegment::Copy, copy_bound_steps),
            (BoundSegment::Kernel, kernel_bound_steps),
            (BoundSegment::Host, host_bound_steps),
        ]
        .iter()
        .copied()
        .filter(|&(_, n)| n > 0)
        .max_by_key(|&(_, n)| n)
        .map(|(side, _)| side);
        DeviceCriticalPath {
            steps,
            host_bound_steps,
            copy_bound_steps,
            kernel_bound_steps,
            dominant,
            bound_seconds,
            total_seconds: timeline.total_seconds(),
        }
    }

    /// Renders the per-side tallies and the first few step attributions.
    pub fn render(&self) -> String {
        let total = self.steps.len();
        let mut out = format!(
            "host<->device critical path: {total} steps \
             (host-bound {}, copy-bound {}, kernel-bound {})\n",
            self.host_bound_steps, self.copy_bound_steps, self.kernel_bound_steps
        );
        for s in self.steps.iter().take(8) {
            out.push_str(&format!(
                "step {:>4}  gpu {}  bound by {:<6} {:<22} {:>12.6} s  (host {:.6} s, device {:.6} s)\n",
                s.step,
                s.device,
                s.bound.label(),
                s.kind.map_or("-", |k| k.label()),
                s.seconds,
                s.host_seconds,
                s.device_seconds
            ));
        }
        if total > 8 {
            out.push_str(&format!("... ({} more steps)\n", total - 8));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(step: u64, rank: usize, seconds: f64, task: TaskKind) -> CriticalStep {
        CriticalStep {
            step,
            rank,
            seconds,
            task,
            task_seconds: seconds,
        }
    }

    #[test]
    fn summary_attributes_steps_and_seconds() {
        let steps = vec![
            step(0, 1, 2.0, TaskKind::Pair),
            step(1, 1, 1.0, TaskKind::Pair),
            step(2, 0, 0.5, TaskKind::Kspace),
        ];
        let s = CriticalPathSummary::from_steps(&steps, 4);
        assert_eq!(s.steps, 3);
        assert!((s.total_seconds - 3.5).abs() < 1e-12);
        assert_eq!(s.rank_bound_steps, vec![1, 2, 0, 0]);
        assert!((s.rank_bound_seconds[1] - 3.0).abs() < 1e-12);
        assert_eq!(s.top_rank, Some((1, 3.0)));
        let (task, secs) = s.top_task.unwrap();
        assert_eq!(task, TaskKind::Pair);
        assert!((secs - 3.0).abs() < 1e-12);
        let render = s.render();
        assert!(render.contains("critical path: 3 steps"));
        assert!(render.contains("Pair"));
    }

    #[test]
    fn empty_input_yields_an_empty_summary() {
        let s = CriticalPathSummary::from_steps(&[], 2);
        assert_eq!(s.steps, 0);
        assert_eq!(s.total_seconds, 0.0);
        assert_eq!(s.rank_bound_steps, vec![0, 0]);
        assert_eq!(s.top_rank, None);
        assert_eq!(s.top_task, None);
    }

    #[test]
    fn zero_step_zero_rank_run_renders_without_panicking() {
        // The fully degenerate case: nothing tracked, no ranks known.
        let s = CriticalPathSummary::from_steps(&[], 0);
        assert_eq!(s.steps, 0);
        assert!(s.rank_bound_steps.is_empty());
        assert_eq!(s.top_rank, None);
        let rendered = s.render();
        assert!(rendered.contains("0 steps"));
    }

    #[test]
    fn single_rank_run_attributes_everything_to_rank_zero() {
        // A 1-rank run has a trivial critical path: rank 0 bounds every
        // step by definition.
        let steps: Vec<CriticalStep> = (0..5).map(|i| step(i, 0, 0.25, TaskKind::Pair)).collect();
        let s = CriticalPathSummary::from_steps(&steps, 1);
        assert_eq!(s.rank_bound_steps, vec![5]);
        assert_eq!(s.top_rank, Some((0, 1.25)));
        assert_eq!(s.top_task.unwrap().0, TaskKind::Pair);
        s.render();
    }

    #[test]
    fn all_ranks_tied_steps_produce_a_degenerate_but_sane_summary() {
        // Regression guard for the work-minus-skew tie-break: when every
        // rank's clock advances identically the cluster reports the lowest
        // rank, so the summary must attribute all steps to rank 0 and not
        // panic or invent spread.
        let steps: Vec<CriticalStep> = (0..4).map(|i| step(i, 0, 1.0, TaskKind::Pair)).collect();
        let s = CriticalPathSummary::from_steps(&steps, 4);
        assert_eq!(s.rank_bound_steps, vec![4, 0, 0, 0]);
        assert_eq!(s.rank_bound_seconds[1], 0.0);
        assert_eq!(s.top_rank, Some((0, 4.0)));
        assert!((s.total_seconds - 4.0).abs() < 1e-12);
        s.render();
    }

    mod device {
        use super::super::*;
        use md_model::gpu::{GpuSegment, GpuStepSchedule};
        use md_workloads::Benchmark;

        fn seg(device: usize, kind: KernelKind, start: f64, seconds: f64) -> GpuSegment {
            GpuSegment {
                device,
                rank: 0,
                kind,
                start_seconds: start,
                seconds,
                bytes: if kind.is_memcpy() { 64 } else { 0 },
            }
        }

        fn timeline(steps: Vec<GpuStepSchedule>, gpus: usize) -> GpuTimeline {
            GpuTimeline {
                benchmark: Benchmark::Lj,
                gpus,
                host_ranks: gpus,
                steps,
            }
        }

        #[test]
        fn copy_kernel_and_host_bound_steps_are_classified() {
            let mk = |step: u64, start: f64, segments: Vec<GpuSegment>, host: f64| {
                let device_seconds = segments.iter().map(|s| s.seconds).sum::<f64>();
                GpuStepSchedule {
                    step,
                    start_seconds: start,
                    host_seconds: host,
                    device_seconds,
                    device_busy: vec![device_seconds],
                    htod_bytes: 64,
                    dtoh_bytes: 64,
                    segments,
                }
            };
            let steps = vec![
                // Step 0: the HtoD copy (3 s) is the longest op.
                mk(
                    0,
                    0.0,
                    vec![
                        seg(0, KernelKind::MemcpyHtoD, 0.0, 3.0),
                        seg(0, KernelKind::KLjFast, 3.0, 1.0),
                    ],
                    1.0,
                ),
                // Step 1: the kernel (4 s) is.
                mk(
                    1,
                    5.0,
                    vec![
                        seg(0, KernelKind::MemcpyHtoD, 5.0, 1.0),
                        seg(0, KernelKind::KLjFast, 6.0, 4.0),
                    ],
                    1.0,
                ),
                // Step 2: the host segment (6 s) is.
                mk(
                    2,
                    11.0,
                    vec![seg(0, KernelKind::MemcpyHtoD, 11.0, 1.0)],
                    6.0,
                ),
            ];
            let cp = DeviceCriticalPath::from_timeline(&timeline(steps, 1));
            assert_eq!(cp.copy_bound_steps, 1);
            assert_eq!(cp.kernel_bound_steps, 1);
            assert_eq!(cp.host_bound_steps, 1);
            assert_eq!(cp.steps[0].bound, BoundSegment::Copy);
            assert_eq!(cp.steps[0].kind, Some(KernelKind::MemcpyHtoD));
            assert_eq!(cp.steps[1].bound, BoundSegment::Kernel);
            assert_eq!(cp.steps[2].bound, BoundSegment::Host);
            assert_eq!(cp.steps[2].kind, None);
            let rendered = cp.render();
            assert!(rendered.contains("copy-bound 1"));
            assert!(rendered.contains("[CUDA memcpy HtoD]"));
        }

        #[test]
        fn zero_step_timeline_is_degenerate_not_a_panic() {
            let cp = DeviceCriticalPath::from_timeline(&timeline(Vec::new(), 2));
            assert_eq!(cp.steps.len(), 0);
            assert_eq!(cp.dominant, None);
            assert_eq!(cp.total_seconds, 0.0);
            assert!(cp.render().contains("0 steps"));
        }

        #[test]
        fn busiest_device_is_the_attributed_one() {
            // Device 1 carries the longer round; the step's path must run
            // through it even though device 0 also has segments.
            let segments = vec![
                seg(0, KernelKind::KLjFast, 0.0, 1.0),
                seg(1, KernelKind::MemcpyHtoD, 0.0, 5.0),
            ];
            let steps = vec![GpuStepSchedule {
                step: 0,
                start_seconds: 0.0,
                host_seconds: 1.0,
                device_seconds: 5.0,
                device_busy: vec![1.0, 5.0],
                htod_bytes: 64,
                dtoh_bytes: 0,
                segments,
            }];
            let cp = DeviceCriticalPath::from_timeline(&timeline(steps, 2));
            assert_eq!(cp.steps[0].device, 1);
            assert_eq!(cp.steps[0].bound, BoundSegment::Copy);
            assert_eq!(cp.dominant, Some(BoundSegment::Copy));
        }
    }
}
