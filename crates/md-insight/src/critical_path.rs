//! Critical-path summarization over the virtual cluster's step records.
//!
//! [`md_parallel::VirtualCluster`] with step tracking enabled emits one
//! [`CriticalStep`] per timestep: the rank whose clock bounded the step
//! (the frontier), how far the frontier advanced, and that rank's dominant
//! task during the step. This module folds those records into a summary —
//! which rank/task chain the run actually waited on.

use md_core::TaskKind;
use md_parallel::CriticalStep;

/// Aggregated view of a run's critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathSummary {
    /// Steps covered.
    pub steps: usize,
    /// Total frontier advance, seconds (the run's simulated wall time over
    /// the tracked window).
    pub total_seconds: f64,
    /// Steps bounded by each rank, indexed by rank.
    pub rank_bound_steps: Vec<u64>,
    /// Critical-path seconds attributed to each rank.
    pub rank_bound_seconds: Vec<f64>,
    /// Critical-path seconds attributed to each task, [`TaskKind::ALL`]
    /// order (by the bounding rank's dominant task).
    pub task_bound_seconds: [f64; 8],
    /// Rank carrying the most critical-path time, with its seconds.
    pub top_rank: Option<(usize, f64)>,
    /// Task carrying the most critical-path time, with its seconds.
    pub top_task: Option<(TaskKind, f64)>,
}

impl CriticalPathSummary {
    /// Folds the per-step records. `nranks` sizes the per-rank vectors even
    /// when some ranks never bound a step.
    pub fn from_steps(steps: &[CriticalStep], nranks: usize) -> CriticalPathSummary {
        let width = steps
            .iter()
            .map(|s| s.rank + 1)
            .max()
            .unwrap_or(0)
            .max(nranks);
        let mut rank_bound_steps = vec![0u64; width];
        let mut rank_bound_seconds = vec![0.0f64; width];
        let mut task_bound_seconds = [0.0f64; 8];
        let mut total = 0.0;
        for s in steps {
            rank_bound_steps[s.rank] += 1;
            rank_bound_seconds[s.rank] += s.seconds;
            task_bound_seconds[s.task.index()] += s.seconds;
            total += s.seconds;
        }
        let top_rank = rank_bound_seconds
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite seconds"))
            .filter(|&(_, s)| s > 0.0);
        let top_task = TaskKind::ALL
            .iter()
            .map(|&t| (t, task_bound_seconds[t.index()]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite seconds"))
            .filter(|&(_, s)| s > 0.0);
        CriticalPathSummary {
            steps: steps.len(),
            total_seconds: total,
            rank_bound_steps,
            rank_bound_seconds,
            task_bound_seconds,
            top_rank,
            top_task,
        }
    }

    /// Renders a fixed-width summary table (rank rows, then task rows).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: {} steps, {:.6} s simulated\n",
            self.steps, self.total_seconds
        ));
        out.push_str("rank   bound-steps   bound-seconds   share\n");
        for (rank, (&n, &s)) in self
            .rank_bound_steps
            .iter()
            .zip(&self.rank_bound_seconds)
            .enumerate()
        {
            let share = if self.total_seconds > 0.0 {
                100.0 * s / self.total_seconds
            } else {
                0.0
            };
            out.push_str(&format!("{rank:<6} {n:>11} {s:>15.6} {share:>6.1}%\n"));
        }
        out.push_str("task     bound-seconds   share\n");
        for &task in TaskKind::ALL.iter() {
            let s = self.task_bound_seconds[task.index()];
            let share = if self.total_seconds > 0.0 {
                100.0 * s / self.total_seconds
            } else {
                0.0
            };
            out.push_str(&format!("{:<8} {s:>13.6} {share:>6.1}%\n", task.label()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(step: u64, rank: usize, seconds: f64, task: TaskKind) -> CriticalStep {
        CriticalStep {
            step,
            rank,
            seconds,
            task,
            task_seconds: seconds,
        }
    }

    #[test]
    fn summary_attributes_steps_and_seconds() {
        let steps = vec![
            step(0, 1, 2.0, TaskKind::Pair),
            step(1, 1, 1.0, TaskKind::Pair),
            step(2, 0, 0.5, TaskKind::Kspace),
        ];
        let s = CriticalPathSummary::from_steps(&steps, 4);
        assert_eq!(s.steps, 3);
        assert!((s.total_seconds - 3.5).abs() < 1e-12);
        assert_eq!(s.rank_bound_steps, vec![1, 2, 0, 0]);
        assert!((s.rank_bound_seconds[1] - 3.0).abs() < 1e-12);
        assert_eq!(s.top_rank, Some((1, 3.0)));
        let (task, secs) = s.top_task.unwrap();
        assert_eq!(task, TaskKind::Pair);
        assert!((secs - 3.0).abs() < 1e-12);
        let render = s.render();
        assert!(render.contains("critical path: 3 steps"));
        assert!(render.contains("Pair"));
    }

    #[test]
    fn empty_input_yields_an_empty_summary() {
        let s = CriticalPathSummary::from_steps(&[], 2);
        assert_eq!(s.steps, 0);
        assert_eq!(s.total_seconds, 0.0);
        assert_eq!(s.rank_bound_steps, vec![0, 0]);
        assert_eq!(s.top_rank, None);
        assert_eq!(s.top_task, None);
    }
}
