//! # md-insight — online bottleneck attribution and regression detection
//!
//! The paper's contribution is *analysis* of raw timings: per-task runtime
//! breakdowns (Fig. 3), per-MPI-function overhead and per-rank imbalance
//! (Figs. 4–5), scaling curves (Figs. 6–10). md-observe records those raw
//! shapes; this crate closes the loop by turning them into typed findings a
//! harness (or CI job) can assert on:
//!
//! - [`attribution`] — per-task bottleneck shares and dominant-task
//!   detection from step samples or ledgers; a LAMMPS-style `%varavg`
//!   load-imbalance metric per task across virtual ranks
//!   ([`ImbalanceReport`] names the suspect rank); per-MPI-function
//!   overhead tables ([`MpiTable`], the Figs. 4–5 view); per-device
//!   kernel/memcpy/idle decomposition of the GPU model's traced schedule
//!   ([`GpuAttribution`], the Figs. 7–9 view).
//! - [`critical_path`] — summarizes the virtual cluster's per-step
//!   [`md_parallel::CriticalStep`] records: which rank/task chain actually
//!   bounded the run ([`CriticalPathSummary`]); extends the same question
//!   across the host↔device boundary of the GPU model's traced offload
//!   schedule ([`DeviceCriticalPath`] — a step's path can bounce
//!   host → copy → kernel → copy → host).
//! - [`regression`] — EWMA/z-score comparison of per-deck per-task
//!   step-cost records against a stored [`Baseline`] (the `baselines/`
//!   directory), producing a structured [`RegressionReport`].
//! - [`trend`] — an append-only per-deck JSONL history of headline metrics
//!   tagged with commit/host/threads, with longitudinal summaries and a
//!   drift bisector ([`trend::bisect_regression`] names the run that first
//!   pushed a metric past tolerance).
//! - [`export`] — OpenMetrics text snapshots and folded-stack (flamegraph)
//!   output from an [`md_observe::ObserveSnapshot`], with strict parsers so
//!   tests can round-trip both formats.
//! - [`report`] — assembles everything into an [`InsightReport`] with a
//!   severity-ranked findings list and a human-readable rendering (the
//!   end-of-run characterization report `run_deck --insight` prints).
//!
//! md-insight consumes data *after* it is recorded: it adds zero per-step
//! work to the engine (the `bench_insight` guard holds the instrumentation
//! side to the same ≤ 2%-per-step budget as md-observe).

pub mod attribution;
pub mod critical_path;
pub mod export;
pub mod regression;
pub mod report;
pub mod trend;

pub use attribution::{
    Breakdown, DeviceBreakdown, GpuAttribution, ImbalanceReport, MpiRow, MpiTable,
    RepartitionSummary, TaskImbalance, TaskShare,
};
pub use critical_path::{BoundSegment, CriticalPathSummary, DeviceCriticalPath, DeviceStepBound};
pub use export::{folded_stacks, openmetrics, parse_folded, parse_openmetrics, OpenMetric};
pub use regression::{
    Baseline, MetricBaseline, MetricVerdict, RegressionConfig, RegressionReport, Verdict,
};
pub use report::{Finding, InsightReport, Severity};
pub use trend::{TrendEntry, TrendSummary};
