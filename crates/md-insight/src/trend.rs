//! Cross-run perf trend store: an append-only JSONL history per deck.
//!
//! [`regression`](crate::regression) answers "did *this* run drift from the
//! folded baseline?"; this module keeps the raw sequence so CI can answer
//! the longitudinal questions — how a metric moved across commits, and
//! *which* commit first pushed it past tolerance ([`bisect_regression`]).
//!
//! The store is one file per deck under the `baselines/` directory,
//! `<deck>.history.jsonl`, one [`TrendEntry`] per line. Entries carry
//! provenance (commit, host, thread count) but deliberately no timestamps:
//! the history must be byte-reproducible for a given sequence of runs.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use md_observe::json::{escape, Json};

/// One run's headline metrics, tagged with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendEntry {
    /// Commit the run was built from (`unknown` outside a checkout).
    pub commit: String,
    /// Host label the run executed on.
    pub host: String,
    /// Worker threads the engine used.
    pub threads: usize,
    /// Metric name → value, sorted for stable serialization.
    pub metrics: BTreeMap<String, f64>,
}

impl TrendEntry {
    /// Serializes the entry as a single JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"commit\": {}, ", escape(&self.commit)));
        out.push_str(&format!("\"host\": {}, ", escape(&self.host)));
        out.push_str(&format!("\"threads\": {}, ", self.threads));
        out.push_str("\"metrics\": {");
        let mut first = true;
        for (name, v) in &self.metrics {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("{}: {:.9e}", escape(name), v));
        }
        out.push_str("}}");
        out
    }

    /// Parses one [`TrendEntry::to_json_line`] line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn parse(line: &str) -> Result<TrendEntry, String> {
        let root = Json::parse(line)?;
        let text = |key: &str| {
            root.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing \"{key}\""))
        };
        let threads = root
            .get("threads")
            .and_then(Json::as_f64)
            .ok_or("missing \"threads\"")? as usize;
        let mut metrics = BTreeMap::new();
        match root.get("metrics") {
            Some(Json::Obj(m)) => {
                for (name, v) in m {
                    let v = v
                        .as_f64()
                        .ok_or_else(|| format!("metric {name:?} is not a number"))?;
                    metrics.insert(name.clone(), v);
                }
            }
            _ => return Err("missing \"metrics\" object".to_string()),
        }
        Ok(TrendEntry {
            commit: text("commit")?,
            host: text("host")?,
            threads,
            metrics,
        })
    }
}

/// `<dir>/<deck>.history.jsonl`.
pub fn history_path(dir: &Path, deck: &str) -> PathBuf {
    dir.join(format!("{deck}.history.jsonl"))
}

/// Appends one entry to the deck's history, creating directory and file on
/// first use.
///
/// # Errors
///
/// Returns the I/O error message with the path.
pub fn append_entry(dir: &Path, deck: &str, entry: &TrendEntry) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let path = history_path(dir, deck);
    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    writeln!(file, "{}", entry.to_json_line()).map_err(|e| format!("{}: {e}", path.display()))
}

/// Loads the deck's full history in append order. A missing file is an
/// empty history, not an error; a malformed line is an error naming its
/// line number.
///
/// # Errors
///
/// Returns the I/O or parse error message with the path.
pub fn load_history(dir: &Path, deck: &str) -> Result<Vec<TrendEntry>, String> {
    let path = history_path(dir, deck);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            TrendEntry::parse(l).map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))
        })
        .collect()
}

/// How one metric moved over a history window.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendSummary {
    /// The metric.
    pub metric: String,
    /// Entries that carry it.
    pub runs: usize,
    /// Oldest value.
    pub first: f64,
    /// Newest value.
    pub last: f64,
    /// Window minimum.
    pub min: f64,
    /// Window maximum.
    pub max: f64,
    /// `100 · (last − first) / first` (0 when first = 0).
    pub delta_percent: f64,
}

/// Summarizes `metric` over the history; `None` when no entry carries it.
pub fn summarize(history: &[TrendEntry], metric: &str) -> Option<TrendSummary> {
    let values: Vec<f64> = history
        .iter()
        .filter_map(|e| e.metrics.get(metric).copied())
        .collect();
    let (&first, &last) = (values.first()?, values.last()?);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(TrendSummary {
        metric: metric.to_string(),
        runs: values.len(),
        first,
        last,
        min,
        max,
        delta_percent: if first != 0.0 {
            100.0 * (last - first) / first
        } else {
            0.0
        },
    })
}

/// Finds the first entry whose `metric` deviates from the history's initial
/// value by more than `rel_tolerance` (e.g. `0.10` = 10%) — the commit that
/// introduced the drift. Entries without the metric are skipped.
pub fn bisect_regression<'a>(
    history: &'a [TrendEntry],
    metric: &str,
    rel_tolerance: f64,
) -> Option<(usize, &'a TrendEntry)> {
    let mut reference: Option<f64> = None;
    for (i, e) in history.iter().enumerate() {
        let Some(&v) = e.metrics.get(metric) else {
            continue;
        };
        match reference {
            None => reference = Some(v),
            Some(r) if r != 0.0 && ((v - r) / r).abs() > rel_tolerance => {
                return Some((i, e));
            }
            Some(_) => {}
        }
    }
    None
}

/// Renders the history of one metric as a commit-per-row table.
pub fn render(history: &[TrendEntry], metric: &str) -> String {
    let mut out = format!("trend: {metric} ({} run(s))\n", history.len());
    out.push_str("commit        host            threads        value\n");
    for e in history {
        let value = e
            .metrics
            .get(metric)
            .map_or("-".to_string(), |v| format!("{v:.6}"));
        let short: String = e.commit.chars().take(12).collect();
        out.push_str(&format!(
            "{:<13} {:<15} {:>7} {:>12}\n",
            short, e.host, e.threads, value
        ));
    }
    if let Some(s) = summarize(history, metric) {
        out.push_str(&format!(
            "first {:.6} -> last {:.6} ({:+.1}%), min {:.6}, max {:.6}\n",
            s.first, s.last, s.delta_percent, s.min, s.max
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(commit: &str, value: f64) -> TrendEntry {
        TrendEntry {
            commit: commit.to_string(),
            host: "ci".to_string(),
            threads: 4,
            metrics: BTreeMap::from([
                ("step_seconds".to_string(), value),
                ("ts_per_sec".to_string(), 1.0 / value),
            ]),
        }
    }

    #[test]
    fn entry_round_trips_through_the_jsonl_line() {
        let e = entry("abc123", 0.0025);
        let parsed = TrendEntry::parse(&e.to_json_line()).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn malformed_lines_are_rejected_with_the_field_name() {
        let err = TrendEntry::parse("{\"commit\": \"x\"}").unwrap_err();
        assert!(err.contains("threads"), "{err}");
    }

    #[test]
    fn append_then_load_preserves_order() {
        let dir = std::env::temp_dir().join(format!("md_trend_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for (c, v) in [("aaa", 1.0), ("bbb", 1.01), ("ccc", 1.5)] {
            append_entry(&dir, "lj", &entry(c, v)).unwrap();
        }
        let history = load_history(&dir, "lj").unwrap();
        assert_eq!(history.len(), 3);
        assert_eq!(history[0].commit, "aaa");
        assert_eq!(history[2].commit, "ccc");
        assert!(load_history(&dir, "rhodo").unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summarize_and_bisect_name_the_drifting_run() {
        let history = vec![entry("aaa", 1.0), entry("bbb", 1.02), entry("ccc", 1.5)];
        let s = summarize(&history, "step_seconds").unwrap();
        assert_eq!(s.runs, 3);
        assert!((s.delta_percent - 50.0).abs() < 1e-9);
        let (i, e) = bisect_regression(&history, "step_seconds", 0.10).unwrap();
        assert_eq!((i, e.commit.as_str()), (2, "ccc"), "ccc broke it");
        assert!(bisect_regression(&history, "step_seconds", 0.60).is_none());
        assert!(summarize(&history, "nope").is_none());
        let table = render(&history, "step_seconds");
        assert!(table.contains("ccc") && table.contains("+50.0%"));
    }
}
