//! Exporters: OpenMetrics text snapshots and folded-stack (flamegraph)
//! output from an [`ObserveSnapshot`], plus strict parsers for both so
//! round-trips can be asserted in tests and CI.

use std::collections::BTreeMap;

use md_observe::{ObserveSnapshot, Phase, TASK_LABELS};

/// Prefix stamped on every exported metric family.
const METRIC_PREFIX: &str = "md_";

/// One parsed OpenMetrics sample.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenMetric {
    /// Family name (including the `md_` prefix).
    pub name: String,
    /// Label key/value pairs, sorted by key.
    pub labels: BTreeMap<String, String>,
    /// Sample value.
    pub value: f64,
}

fn metric_name_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:.9e}")
    }
}

/// Renders an OpenMetrics text snapshot: every counter and gauge as a
/// gauge family, every histogram as a summary family (quantiles plus
/// `_count` and `_sum`), and per-task totals summed from the retained step
/// samples as `md_task_seconds{task="..."}`. Ends with the mandatory `# EOF`.
pub fn openmetrics(snapshot: &ObserveSnapshot) -> String {
    let mut out = String::new();
    for (&name, &value) in &snapshot.counters {
        let family = format!("{METRIC_PREFIX}{name}");
        out.push_str(&format!("# TYPE {family} gauge\n"));
        out.push_str(&format!("{family} {}\n", fmt_value(value)));
    }
    for (&name, summary) in &snapshot.hists {
        let family = format!("{METRIC_PREFIX}{name}");
        out.push_str(&format!("# TYPE {family} summary\n"));
        for (q, v) in [
            ("0.5", summary.p50),
            ("0.95", summary.p95),
            ("0.99", summary.p99),
        ] {
            out.push_str(&format!("{family}{{quantile=\"{q}\"}} {}\n", fmt_value(v)));
        }
        out.push_str(&format!(
            "{family}_count {}\n",
            fmt_value(summary.count as f64)
        ));
        out.push_str(&format!(
            "{family}_sum {}\n",
            fmt_value(summary.mean * summary.count as f64)
        ));
    }
    if !snapshot.steps.is_empty() {
        let mut task_totals = [0.0f64; 8];
        for s in &snapshot.steps {
            for (acc, v) in task_totals.iter_mut().zip(&s.task_seconds) {
                *acc += v;
            }
        }
        let family = format!("{METRIC_PREFIX}task_seconds");
        out.push_str(&format!("# TYPE {family} gauge\n"));
        for (label, total) in TASK_LABELS.iter().zip(task_totals) {
            out.push_str(&format!(
                "{family}{{task=\"{label}\"}} {}\n",
                fmt_value(total)
            ));
        }
        let steps_family = format!("{METRIC_PREFIX}steps_retained");
        out.push_str(&format!("# TYPE {steps_family} gauge\n"));
        out.push_str(&format!(
            "{steps_family} {}\n",
            fmt_value(snapshot.steps.len() as f64)
        ));
    }
    out.push_str("# EOF\n");
    out
}

/// Strictly parses an OpenMetrics text snapshot produced by
/// [`openmetrics`]: validates metric-name charset and label syntax and
/// requires the terminal `# EOF` line.
pub fn parse_openmetrics(text: &str) -> Result<Vec<OpenMetric>, String> {
    let mut metrics = Vec::new();
    let mut saw_eof = false;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if saw_eof {
            return Err(format!("line {n}: content after # EOF"));
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if line.starts_with('#') {
            let mut parts = line.split_whitespace();
            let (hash, kind) = (parts.next(), parts.next());
            if hash != Some("#") || !matches!(kind, Some("TYPE" | "HELP" | "UNIT")) {
                return Err(format!("line {n}: malformed comment {line:?}"));
            }
            continue;
        }
        if line.is_empty() {
            return Err(format!("line {n}: blank line not allowed"));
        }
        let (series, value_str) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: missing value"))?;
        let value: f64 = value_str
            .parse()
            .map_err(|_| format!("line {n}: bad value {value_str:?}"))?;
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), BTreeMap::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                let mut labels = BTreeMap::new();
                for pair in body.split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {n}: bad label {pair:?}"))?;
                    if !metric_name_ok(k) {
                        return Err(format!("line {n}: bad label name {k:?}"));
                    }
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("line {n}: unquoted label value {v:?}"))?;
                    labels.insert(k.to_string(), v.to_string());
                }
                (name.to_string(), labels)
            }
        };
        if !metric_name_ok(&name) {
            return Err(format!("line {n}: bad metric name {name:?}"));
        }
        metrics.push(OpenMetric {
            name,
            labels,
            value,
        });
    }
    if !saw_eof {
        return Err("missing terminal # EOF".to_string());
    }
    Ok(metrics)
}

/// Renders folded stacks (flamegraph collapse format) from the snapshot's
/// span events: per lane, spans are nested by time containment, each
/// frame's *self* time (duration minus children) becomes one
/// `lane;outer;inner <integer µs>` line. Lines are aggregated and sorted
/// for determinism.
pub fn folded_stacks(snapshot: &ObserveSnapshot) -> String {
    let mut lanes: BTreeMap<u32, Vec<(f64, f64, &'static str)>> = BTreeMap::new();
    for e in &snapshot.events {
        if e.phase == Phase::Span && e.dur_us > 0.0 {
            lanes
                .entry(e.lane)
                .or_default()
                .push((e.ts_us, e.dur_us, e.name));
        }
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (lane, mut spans) in lanes {
        // Sort by start ascending; ties widest-first so parents precede
        // their children in the containment scan.
        spans.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite ts")
                .then(b.1.partial_cmp(&a.1).expect("finite dur"))
        });
        let lane_name = snapshot
            .lanes
            .get(&lane)
            .cloned()
            .unwrap_or_else(|| format!("lane{lane}"));
        // Stack of open frames: (start_us, end_us, children_us, path).
        struct Frame {
            start: f64,
            end: f64,
            children_us: f64,
            path: String,
        }
        let mut stack: Vec<Frame> = Vec::new();
        fn emit(folded: &mut BTreeMap<String, u64>, frame: Frame) {
            let self_us = ((frame.end - frame.start) - frame.children_us)
                .max(0.0)
                .round() as u64;
            if self_us > 0 {
                *folded.entry(frame.path).or_default() += self_us;
            }
        }
        const EPS: f64 = 1e-6;
        for (ts, dur, name) in spans {
            while stack.last().is_some_and(|top| ts >= top.end - EPS) {
                let frame = stack.pop().expect("non-empty");
                emit(&mut folded, frame);
            }
            let path = match stack.last() {
                Some(top) => format!("{};{name}", top.path),
                None => format!("{lane_name};{name}"),
            };
            if let Some(top) = stack.last_mut() {
                top.children_us += dur;
            }
            stack.push(Frame {
                start: ts,
                end: ts + dur,
                children_us: 0.0,
                path,
            });
        }
        while let Some(frame) = stack.pop() {
            emit(&mut folded, frame);
        }
    }
    let mut out = String::new();
    for (path, us) in folded {
        out.push_str(&format!("{path} {us}\n"));
    }
    out
}

/// Strictly parses folded-stack output: every line must be
/// `frame(;frame)* <non-negative integer>` with non-empty frames.
pub fn parse_folded(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let (path, count_str) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: missing sample count"))?;
        let count: u64 = count_str
            .parse()
            .map_err(|_| format!("line {n}: bad sample count {count_str:?}"))?;
        let frames: Vec<String> = path.split(';').map(str::to_string).collect();
        if frames.iter().any(String::is_empty) {
            return Err(format!("line {n}: empty frame in {path:?}"));
        }
        out.push((frames, count));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_observe::{ObserveConfig, Recorder};

    fn snapshot_with_activity() -> ObserveSnapshot {
        let rec = Recorder::new(ObserveConfig::default());
        rec.count(0, "insight_findings", 3.0);
        rec.gauge(0, "imbalance_worst_varavg_pct", 37.5);
        rec.observe("health_step_seconds", 0.004);
        rec.observe("health_step_seconds", 0.006);
        rec.set_lane_name(0, "engine");
        // engine lane: step span containing two task spans.
        rec.record_span_at(0, "task", "step", 0.0, 100.0);
        rec.record_span_at(0, "task", "Pair", 0.0, 60.0);
        rec.record_span_at(0, "task", "Neigh", 60.0, 30.0);
        let mut sample = md_observe::StepSample::default();
        sample.task_seconds[0] = 0.25;
        rec.push_step(sample);
        rec.snapshot()
    }

    #[test]
    fn openmetrics_round_trips_through_the_strict_parser() {
        let text = openmetrics(&snapshot_with_activity());
        assert!(text.ends_with("# EOF\n"));
        let metrics = parse_openmetrics(&text).expect("round-trip");
        let find = |name: &str| -> Vec<&OpenMetric> {
            metrics.iter().filter(|m| m.name == name).collect()
        };
        assert_eq!(find("md_insight_findings")[0].value, 3.0);
        assert_eq!(find("md_imbalance_worst_varavg_pct")[0].value, 37.5);
        let quantiles = find("md_health_step_seconds");
        assert_eq!(quantiles.len(), 3, "p50/p95/p99");
        assert_eq!(find("md_health_step_seconds_count")[0].value, 2.0);
        let task_rows = find("md_task_seconds");
        assert_eq!(task_rows.len(), 8);
        assert_eq!(task_rows[0].labels["task"], "Bond");
    }

    #[test]
    fn openmetrics_parser_rejects_malformed_input() {
        assert!(parse_openmetrics("md_x 1.0\n").is_err(), "missing EOF");
        assert!(parse_openmetrics("bad-name 1.0\n# EOF\n").is_err());
        assert!(parse_openmetrics("md_x{q=unquoted} 1.0\n# EOF\n").is_err());
        assert!(parse_openmetrics("md_x notanumber\n# EOF\n").is_err());
        assert!(
            parse_openmetrics("# EOF\nmd_x 1.0\n").is_err(),
            "trailing content"
        );
        assert!(parse_openmetrics("# BOGUS md_x gauge\n# EOF\n").is_err());
        assert!(
            parse_openmetrics("# EOF\n").is_ok(),
            "empty snapshot is valid"
        );
    }

    #[test]
    fn folded_stacks_nest_by_containment_and_report_self_time() {
        let text = folded_stacks(&snapshot_with_activity());
        let parsed = parse_folded(&text).expect("round-trip");
        let get = |path: &[&str]| -> Option<u64> {
            parsed
                .iter()
                .find(|(frames, _)| frames == path)
                .map(|&(_, c)| c)
        };
        // step spans 0..100 with children 0..60 and 60..90: 10 µs self.
        assert_eq!(get(&["engine", "step"]), Some(10));
        assert_eq!(get(&["engine", "step", "Pair"]), Some(60));
        assert_eq!(get(&["engine", "step", "Neigh"]), Some(30));
    }

    #[test]
    fn folded_parser_rejects_malformed_lines() {
        assert!(parse_folded("engine;step 10\n").is_ok());
        assert!(parse_folded("nospace\n").is_err());
        assert!(parse_folded("engine;step ten\n").is_err());
        assert!(parse_folded("engine;;step 10\n").is_err(), "empty frame");
        assert!(parse_folded("engine;step -4\n").is_err(), "negative count");
    }
}
