//! Perf-regression detection against stored per-deck baselines.
//!
//! A [`Baseline`] is a JSON record of per-metric EWMA mean/variance kept
//! under a `baselines/` directory, one file per deck. Fresh observations
//! are compared with a z-score test (sigma floored at a fraction of the
//! mean so a noiseless baseline still tolerates small drift) plus a
//! minimum relative delta, producing a structured [`RegressionReport`].
//! [`Baseline::absorb`] folds an accepted run back in with EWMA updates.
//!
//! The modeled per-task step costs fed in by the harness are pure
//! arithmetic over workload counts — bit-deterministic and host-independent
//! — so committed baselines compare exactly across machines.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use md_observe::json::{escape, Json};

/// Tuning knobs for the comparator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionConfig {
    /// EWMA weight of the newest observation when absorbing, 0..=1.
    pub alpha: f64,
    /// z-score above which a delta is significant.
    pub z_threshold: f64,
    /// Minimum relative delta (|new − mean| / mean) to flag, so tiny but
    /// statistically "significant" drifts don't fail CI.
    pub min_rel_delta: f64,
    /// Sigma floor as a fraction of |mean| (guards var = 0 baselines).
    pub rel_floor: f64,
}

impl Default for RegressionConfig {
    fn default() -> RegressionConfig {
        RegressionConfig {
            alpha: 0.3,
            z_threshold: 4.0,
            min_rel_delta: 0.10,
            rel_floor: 0.02,
        }
    }
}

/// One metric's stored statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricBaseline {
    /// EWMA mean.
    pub mean: f64,
    /// EWMA variance.
    pub var: f64,
    /// Runs folded in.
    pub samples: u64,
}

/// Per-deck baseline: a named set of metric statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Baseline {
    /// Deck name (e.g. `lj`).
    pub deck: String,
    /// Metric name → statistics, sorted for stable serialization.
    pub metrics: BTreeMap<String, MetricBaseline>,
}

/// Verdict for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Ok,
    /// Significantly slower than the baseline.
    Regressed,
    /// Significantly faster than the baseline.
    Improved,
    /// Metric absent from the baseline.
    New,
}

impl Verdict {
    /// Uppercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "OK",
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "IMPROVED",
            Verdict::New => "NEW",
        }
    }
}

/// One metric's comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricVerdict {
    /// Metric name.
    pub name: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Observed value.
    pub observed: f64,
    /// Baseline mean (0 for [`Verdict::New`]).
    pub baseline_mean: f64,
    /// Relative delta vs the baseline mean (0 for new metrics).
    pub rel_delta: f64,
    /// z-score of the delta (0 for new metrics).
    pub z: f64,
}

/// Structured result of comparing a run against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionReport {
    /// Deck compared.
    pub deck: String,
    /// Per-metric outcomes, in metric-name order.
    pub verdicts: Vec<MetricVerdict>,
    /// True when any metric regressed.
    pub regressed: bool,
}

impl RegressionReport {
    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = format!("regression check: deck {}\n", self.deck);
        out.push_str("metric                        verdict     observed     baseline    delta\n");
        for v in &self.verdicts {
            out.push_str(&format!(
                "{:<28} {:<10} {:>12.6} {:>12.6} {:>+7.1}%\n",
                v.name,
                v.verdict.label(),
                v.observed,
                v.baseline_mean,
                100.0 * v.rel_delta,
            ));
        }
        out.push_str(if self.regressed {
            "verdict: REGRESSED\n"
        } else {
            "verdict: OK\n"
        });
        out
    }
}

impl Baseline {
    /// An empty baseline for `deck`.
    pub fn new(deck: &str) -> Baseline {
        Baseline {
            deck: deck.to_string(),
            metrics: BTreeMap::new(),
        }
    }

    /// Compares observations against the stored statistics.
    pub fn compare(
        &self,
        observations: &BTreeMap<String, f64>,
        cfg: &RegressionConfig,
    ) -> RegressionReport {
        let mut verdicts = Vec::with_capacity(observations.len());
        for (name, &observed) in observations {
            let v = match self.metrics.get(name) {
                None => MetricVerdict {
                    name: name.clone(),
                    verdict: Verdict::New,
                    observed,
                    baseline_mean: 0.0,
                    rel_delta: 0.0,
                    z: 0.0,
                },
                Some(base) => {
                    let sigma = base
                        .var
                        .max(0.0)
                        .sqrt()
                        .max(cfg.rel_floor * base.mean.abs());
                    let delta = observed - base.mean;
                    let rel = if base.mean.abs() > 0.0 {
                        delta / base.mean.abs()
                    } else if observed == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    };
                    let z = if sigma > 0.0 { delta / sigma } else { 0.0 };
                    let verdict = if rel > cfg.min_rel_delta && z > cfg.z_threshold {
                        Verdict::Regressed
                    } else if rel < -cfg.min_rel_delta && z < -cfg.z_threshold {
                        Verdict::Improved
                    } else {
                        Verdict::Ok
                    };
                    MetricVerdict {
                        name: name.clone(),
                        verdict,
                        observed,
                        baseline_mean: base.mean,
                        rel_delta: rel,
                        z,
                    }
                }
            };
            verdicts.push(v);
        }
        RegressionReport {
            deck: self.deck.clone(),
            regressed: verdicts.iter().any(|v| v.verdict == Verdict::Regressed),
            verdicts,
        }
    }

    /// Folds a run's observations in with EWMA updates; unseen metrics are
    /// seeded with the observed value and zero variance.
    pub fn absorb(&mut self, observations: &BTreeMap<String, f64>, cfg: &RegressionConfig) {
        for (name, &observed) in observations {
            match self.metrics.get_mut(name) {
                None => {
                    self.metrics.insert(
                        name.clone(),
                        MetricBaseline {
                            mean: observed,
                            var: 0.0,
                            samples: 1,
                        },
                    );
                }
                Some(base) => {
                    // West-style EWMA mean/variance update.
                    let delta = observed - base.mean;
                    let incr = cfg.alpha * delta;
                    base.mean += incr;
                    base.var = (1.0 - cfg.alpha) * (base.var + delta * incr);
                    base.samples += 1;
                }
            }
        }
    }

    /// Serializes to deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"deck\": {},\n", escape(&self.deck)));
        out.push_str("  \"metrics\": {");
        let mut first = true;
        for (name, m) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {}: {{ \"mean\": {:.9e}, \"var\": {:.9e}, \"samples\": {} }}",
                escape(name),
                m.mean,
                m.var,
                m.samples
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses the [`Baseline::to_json`] format.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let root = Json::parse(text)?;
        let deck = root
            .get("deck")
            .and_then(Json::as_str)
            .ok_or("baseline missing \"deck\"")?
            .to_string();
        let metrics_obj = match root.get("metrics") {
            Some(Json::Obj(m)) => m,
            _ => return Err("baseline missing \"metrics\" object".to_string()),
        };
        let mut metrics = BTreeMap::new();
        for (name, entry) in metrics_obj {
            let field = |key: &str| -> Result<f64, String> {
                entry
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("metric {name:?} missing \"{key}\""))
            };
            metrics.insert(
                name.clone(),
                MetricBaseline {
                    mean: field("mean")?,
                    var: field("var")?,
                    samples: field("samples")? as u64,
                },
            );
        }
        Ok(Baseline { deck, metrics })
    }

    /// Loads `<dir>/<deck>.json`; `Ok(None)` when the file doesn't exist.
    pub fn load(dir: &Path, deck: &str) -> Result<Option<Baseline>, String> {
        let path = dir.join(format!("{deck}.json"));
        match fs::read_to_string(&path) {
            Ok(text) => Baseline::parse(&text)
                .map(Some)
                .map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Writes `<dir>/<deck>.json`, creating the directory if needed.
    pub fn save(&self, dir: &Path) -> Result<(), String> {
        fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = dir.join(format!("{}.json", self.deck));
        fs::write(&path, self.to_json()).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn self_comparison_is_ok_and_inflation_regresses() {
        let cfg = RegressionConfig::default();
        let mut base = Baseline::new("lj");
        base.absorb(&obs(&[("step_seconds.Pair", 1.0)]), &cfg);

        let same = base.compare(&obs(&[("step_seconds.Pair", 1.0)]), &cfg);
        assert!(!same.regressed);
        assert_eq!(same.verdicts[0].verdict, Verdict::Ok);

        // +37.5% ≫ the 10% relative gate and 4σ on the 2% floor.
        let slow = base.compare(&obs(&[("step_seconds.Pair", 1.375)]), &cfg);
        assert!(slow.regressed);
        assert_eq!(slow.verdicts[0].verdict, Verdict::Regressed);
        assert!(slow.render().contains("REGRESSED"));

        let fast = base.compare(&obs(&[("step_seconds.Pair", 0.5)]), &cfg);
        assert_eq!(fast.verdicts[0].verdict, Verdict::Improved);
        assert!(!fast.regressed);
    }

    #[test]
    fn small_drift_stays_ok_via_the_relative_gate() {
        let cfg = RegressionConfig::default();
        let mut base = Baseline::new("lj");
        base.absorb(&obs(&[("m", 1.0)]), &cfg);
        // +8% is above 4σ on the 2% floor but below min_rel_delta.
        let r = base.compare(&obs(&[("m", 1.08)]), &cfg);
        assert_eq!(r.verdicts[0].verdict, Verdict::Ok);
    }

    #[test]
    fn unknown_metrics_are_new_not_regressed() {
        let base = Baseline::new("lj");
        let r = base.compare(&obs(&[("brand_new", 3.0)]), &RegressionConfig::default());
        assert_eq!(r.verdicts[0].verdict, Verdict::New);
        assert!(!r.regressed);
    }

    #[test]
    fn absorb_moves_the_mean_by_alpha() {
        let cfg = RegressionConfig::default();
        let mut base = Baseline::new("lj");
        base.absorb(&obs(&[("m", 1.0)]), &cfg);
        base.absorb(&obs(&[("m", 2.0)]), &cfg);
        let m = &base.metrics["m"];
        assert!((m.mean - 1.3).abs() < 1e-12, "mean + 0.3·delta");
        assert!(m.var > 0.0);
        assert_eq!(m.samples, 2);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let cfg = RegressionConfig::default();
        let mut base = Baseline::new("rhodopsin");
        base.absorb(
            &obs(&[("step_seconds.Pair", 0.0123), ("step_seconds.total", 0.05)]),
            &cfg,
        );
        base.absorb(
            &obs(&[("step_seconds.Pair", 0.0130), ("step_seconds.total", 0.052)]),
            &cfg,
        );
        let text = base.to_json();
        let parsed = Baseline::parse(&text).expect("round-trip parse");
        assert_eq!(parsed.deck, base.deck);
        assert_eq!(parsed.metrics.len(), base.metrics.len());
        for (name, m) in &base.metrics {
            let p = &parsed.metrics[name];
            assert!((p.mean - m.mean).abs() < 1e-15 * m.mean.abs().max(1.0));
            assert!((p.var - m.var).abs() < 1e-15);
            assert_eq!(p.samples, m.samples);
        }
    }

    #[test]
    fn load_missing_file_is_none_and_save_round_trips() {
        let dir = std::env::temp_dir().join(format!("md-insight-baseline-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(Baseline::load(&dir, "lj").expect("missing is ok"), None);
        let mut base = Baseline::new("lj");
        base.absorb(&obs(&[("m", 1.5)]), &RegressionConfig::default());
        base.save(&dir).expect("save");
        let loaded = Baseline::load(&dir, "lj").expect("load").expect("present");
        assert_eq!(loaded, base);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"deck\": \"lj\"}").is_err());
        assert!(Baseline::parse("{\"deck\": \"lj\", \"metrics\": {\"m\": {}}}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
