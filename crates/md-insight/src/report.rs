//! The assembled characterization report: attribution + imbalance + MPI +
//! critical path + regression, distilled into a severity-ranked findings
//! list with a human-readable rendering.

use md_core::TaskKind;
use md_observe::Recorder;

use crate::attribution::{
    Breakdown, GpuAttribution, ImbalanceReport, MpiTable, RepartitionSummary,
};
use crate::critical_path::{BoundSegment, CriticalPathSummary, DeviceCriticalPath};
use crate::regression::{RegressionReport, Verdict};

/// How urgent a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Background fact worth knowing.
    Info,
    /// Something looks off; worth a look.
    Warning,
    /// Actionable problem (regression, strong imbalance).
    Critical,
}

impl Severity {
    /// Uppercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "INFO",
            Severity::Warning => "WARNING",
            Severity::Critical => "CRITICAL",
        }
    }
}

/// One typed finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Urgency.
    pub severity: Severity,
    /// Stable machine-matchable kind (e.g. `"imbalance.suspect_rank"`).
    pub kind: &'static str,
    /// Human-readable statement.
    pub message: String,
}

/// Everything md-insight derived from one run.
#[derive(Debug, Clone, Default)]
pub struct InsightReport {
    /// Engine-side task breakdown (from step samples), if recorded.
    pub breakdown: Option<Breakdown>,
    /// Modeled-cluster task breakdown (rank-0 scaled ledger), if modeled.
    pub model_breakdown: Option<Breakdown>,
    /// Cross-rank imbalance, if per-rank stats were collected.
    pub imbalance: Option<ImbalanceReport>,
    /// Per-MPI-function overhead, if per-rank stats were collected.
    pub mpi: Option<MpiTable>,
    /// Critical-path summary, if step tracking ran.
    pub critical: Option<CriticalPathSummary>,
    /// Per-device kernel/memcpy/idle attribution, if the GPU model ran
    /// traced.
    pub gpu: Option<GpuAttribution>,
    /// Host↔device critical path, if the GPU model ran traced.
    pub device_critical: Option<DeviceCriticalPath>,
    /// Imbalance-aware re-split summary, if the model ran with a
    /// repartition cadence and actually re-split.
    pub repartition: Option<RepartitionSummary>,
    /// Regression check, if a baseline was available.
    pub regression: Option<RegressionReport>,
    /// Severity-ranked findings (most severe first).
    pub findings: Vec<Finding>,
}

/// Imbalance `%varavg` above this is a warning finding.
const VARAVG_WARN_PERCENT: f64 = 25.0;

impl InsightReport {
    /// Derives the findings list from whatever sections are present and
    /// sorts it most-severe-first. Call after populating the sections.
    pub fn finalize(&mut self) {
        let mut findings = Vec::new();
        if let Some(b) = &self.breakdown {
            findings.push(Finding {
                severity: Severity::Info,
                kind: "attribution.dominant_task",
                message: format!(
                    "engine time is dominated by {} ({:.1}% of {:.4} s over {} steps)",
                    b.dominant.label(),
                    b.dominant_percent,
                    b.total_seconds,
                    b.steps
                ),
            });
        }
        if let Some(b) = &self.model_breakdown {
            findings.push(Finding {
                severity: Severity::Info,
                kind: "attribution.model_dominant_task",
                message: format!(
                    "modeled cluster time is dominated by {} ({:.1}%)",
                    b.dominant.label(),
                    b.dominant_percent
                ),
            });
        }
        if let Some(imb) = &self.imbalance {
            match imb.suspect_rank {
                Some(rank) => findings.push(Finding {
                    severity: Severity::Critical,
                    kind: "imbalance.suspect_rank",
                    message: format!(
                        "load imbalance attributed to rank {rank}: its compute time \
                         exceeds the {}-rank mean by {:.1}%",
                        imb.nranks, imb.suspect_excess_percent
                    ),
                }),
                None => findings.push(Finding {
                    severity: Severity::Info,
                    kind: "imbalance.balanced",
                    message: format!(
                        "compute load is balanced across {} ranks (max excess {:.1}%)",
                        imb.nranks, imb.suspect_excess_percent
                    ),
                }),
            }
            if let Some(task) = imb.worst_task {
                if imb.worst_varavg_percent > VARAVG_WARN_PERCENT {
                    findings.push(Finding {
                        severity: Severity::Warning,
                        kind: "imbalance.varavg",
                        message: format!(
                            "{} %varavg is {:.1}% (LAMMPS convention: 100·(max−avg)/avg)",
                            task.label(),
                            imb.worst_varavg_percent
                        ),
                    });
                }
            }
        }
        if let Some(mpi) = &self.mpi {
            if mpi.total_mean_seconds > 0.0 {
                let skew_pct = 100.0 * mpi.skew_mean_seconds / mpi.total_mean_seconds;
                findings.push(Finding {
                    severity: if skew_pct > 50.0 {
                        Severity::Warning
                    } else {
                        Severity::Info
                    },
                    kind: "mpi.skew_share",
                    message: format!(
                        "{skew_pct:.1}% of MPI time is skew-induced waiting \
                         ({:.4} s of {:.4} s per rank)",
                        mpi.skew_mean_seconds, mpi.total_mean_seconds
                    ),
                });
            }
        }
        if let Some(cp) = &self.critical {
            if let (Some((rank, secs)), Some((task, _))) = (cp.top_rank, cp.top_task) {
                let share = if cp.total_seconds > 0.0 {
                    100.0 * secs / cp.total_seconds
                } else {
                    0.0
                };
                findings.push(Finding {
                    severity: if share > 50.0 {
                        Severity::Warning
                    } else {
                        Severity::Info
                    },
                    kind: "critical_path.top",
                    message: format!(
                        "critical path runs through rank {rank} for {share:.1}% of \
                         {} steps, mostly in {}",
                        cp.steps,
                        task.label()
                    ),
                });
            }
        }
        if let Some(gpu) = &self.gpu {
            if !gpu.devices.is_empty() && gpu.steps > 0 {
                let htod: f64 = gpu.devices.iter().map(|d| d.htod_bytes_per_step).sum();
                let dtoh: f64 = gpu.devices.iter().map(|d| d.dtoh_bytes_per_step).sum();
                if gpu.mean_memcpy_percent > 50.0 {
                    findings.push(Finding {
                        severity: Severity::Warning,
                        kind: "gpu.memcpy_bound",
                        message: format!(
                            "modeled device time is memcpy-bound: {:.1}% of active device \
                             time is PCIe copies across {} device(s) \
                             ({:.0} B/step HtoD, {:.0} B/step DtoH)",
                            gpu.mean_memcpy_percent,
                            gpu.devices.len(),
                            htod,
                            dtoh
                        ),
                    });
                } else {
                    findings.push(Finding {
                        severity: Severity::Info,
                        kind: "gpu.kernel_bound",
                        message: format!(
                            "modeled device time is kernel-bound: compute kernels take \
                             {:.1}% of active device time (memcpy {:.1}%)",
                            100.0 - gpu.mean_memcpy_percent,
                            gpu.mean_memcpy_percent
                        ),
                    });
                }
            }
        }
        if let Some(dcp) = &self.device_critical {
            if let Some(side) = dcp.dominant {
                let n = match side {
                    BoundSegment::Host => dcp.host_bound_steps,
                    BoundSegment::Copy => dcp.copy_bound_steps,
                    BoundSegment::Kernel => dcp.kernel_bound_steps,
                };
                let share = 100.0 * n as f64 / dcp.steps.len().max(1) as f64;
                findings.push(Finding {
                    severity: if side == BoundSegment::Copy && share > 50.0 {
                        Severity::Warning
                    } else {
                        Severity::Info
                    },
                    kind: match side {
                        BoundSegment::Host => "critical_path.device_host",
                        BoundSegment::Copy => "critical_path.device_copy",
                        BoundSegment::Kernel => "critical_path.device_kernel",
                    },
                    message: format!(
                        "the host<->device critical path is bounded by a {} segment in \
                         {n} of {} steps ({share:.1}%)",
                        side.label(),
                        dcp.steps.len()
                    ),
                });
            }
        }
        if let Some(rep) = &self.repartition {
            if rep.effective {
                findings.push(Finding {
                    severity: Severity::Info,
                    kind: "repartition.effective",
                    message: format!(
                        "{} imbalance-aware re-split(s) moved {} atoms and shrank the \
                         windowed compute %varavg from {:.1}% to {:.1}%",
                        rep.events.len(),
                        rep.total_moved_atoms,
                        rep.first_varavg_percent,
                        rep.last_varavg_percent
                    ),
                });
            } else {
                findings.push(Finding {
                    severity: Severity::Warning,
                    kind: "repartition.ineffective",
                    message: format!(
                        "{} re-split(s) failed to shrink the windowed compute %varavg \
                         ({:.1}% -> {:.1}%)",
                        rep.events.len(),
                        rep.first_varavg_percent,
                        rep.last_varavg_percent
                    ),
                });
            }
        }
        if let Some(reg) = &self.regression {
            let regressed: Vec<&str> = reg
                .verdicts
                .iter()
                .filter(|v| v.verdict == Verdict::Regressed)
                .map(|v| v.name.as_str())
                .collect();
            if regressed.is_empty() {
                findings.push(Finding {
                    severity: Severity::Info,
                    kind: "regression.ok",
                    message: format!(
                        "no perf regression vs the {} baseline ({} metrics checked)",
                        reg.deck,
                        reg.verdicts.len()
                    ),
                });
            } else {
                findings.push(Finding {
                    severity: Severity::Critical,
                    kind: "regression.detected",
                    message: format!(
                        "perf REGRESSED vs the {} baseline: {}",
                        reg.deck,
                        regressed.join(", ")
                    ),
                });
            }
        }
        findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
        self.findings = findings;
    }

    /// True when any finding is [`Severity::Critical`].
    pub fn has_critical(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.severity == Severity::Critical)
    }

    /// Publishes headline gauges on a recorder so the findings show up in
    /// metric exports: `insight_findings`, `imbalance_suspect_rank` (−1
    /// when balanced), `imbalance_worst_varavg_pct`.
    pub fn publish_counters(&self, recorder: &Recorder) {
        recorder.gauge(0, "insight_findings", self.findings.len() as f64);
        if let Some(imb) = &self.imbalance {
            recorder.gauge(
                0,
                "imbalance_suspect_rank",
                imb.suspect_rank.map_or(-1.0, |r| r as f64),
            );
            recorder.gauge(0, "imbalance_worst_varavg_pct", imb.worst_varavg_percent);
        }
        if let Some(rep) = &self.repartition {
            recorder.gauge(0, "imbalance_repartitions", rep.events.len() as f64);
        }
    }

    /// Renders the full characterization report.
    pub fn render(&self) -> String {
        let mut out = String::from("== md-insight characterization report ==\n");
        out.push_str("\n-- findings --\n");
        if self.findings.is_empty() {
            out.push_str("(none)\n");
        }
        for f in &self.findings {
            out.push_str(&format!(
                "[{:<8}] {:<28} {}\n",
                f.severity.label(),
                f.kind,
                f.message
            ));
        }
        for (title, breakdown) in [
            ("engine task breakdown", &self.breakdown),
            ("modeled cluster task breakdown", &self.model_breakdown),
        ] {
            if let Some(b) = breakdown {
                out.push_str(&format!("\n-- {title} --\n"));
                for s in &b.shares {
                    out.push_str(&format!(
                        "{:<8} {:>12.6} s {:>6.1}%\n",
                        s.task.label(),
                        s.seconds,
                        s.percent
                    ));
                }
            }
        }
        if let Some(imb) = &self.imbalance {
            out.push_str("\n-- per-task load imbalance across ranks --\n");
            out.push_str("task         avg          max          min    %varavg\n");
            for t in &imb.per_task {
                out.push_str(&format!(
                    "{:<8} {:>10.6} {:>12.6} {:>12.6} {:>8.1}\n",
                    t.task.label(),
                    t.avg,
                    t.max,
                    t.min,
                    t.varavg_percent
                ));
            }
            out.push_str("rank compute seconds:");
            for (rank, s) in imb.rank_compute_seconds.iter().enumerate() {
                out.push_str(&format!(" r{rank}={s:.4}"));
            }
            out.push('\n');
        }
        if let Some(mpi) = &self.mpi {
            out.push_str("\n-- per-MPI-function overhead --\n");
            out.push_str("function        mean          max     % of MPI\n");
            for r in &mpi.rows {
                out.push_str(&format!(
                    "{:<12} {:>9.6} {:>12.6} {:>9.1}\n",
                    r.function.label(),
                    r.mean_seconds,
                    r.max_seconds,
                    r.percent_of_mpi
                ));
            }
            out.push_str(&format!(
                "mean MPI total {:.6} s, skew-wait {:.6} s\n",
                mpi.total_mean_seconds, mpi.skew_mean_seconds
            ));
        }
        if let Some(cp) = &self.critical {
            out.push_str("\n-- critical path --\n");
            out.push_str(&cp.render());
        }
        if let Some(gpu) = &self.gpu {
            out.push_str("\n-- per-device breakdown --\n");
            out.push_str(&gpu.render());
        }
        if let Some(dcp) = &self.device_critical {
            out.push_str("\n-- host<->device critical path --\n");
            out.push_str(&dcp.render());
        }
        if let Some(rep) = &self.repartition {
            out.push_str("\n-- imbalance-aware repartitioning --\n");
            out.push_str("step    suspect  moved atoms  %varavg before  %varavg after\n");
            for e in &rep.events {
                out.push_str(&format!(
                    "{:<7} r{:<6} {:>11} {:>15.1} {:>14.1}\n",
                    e.step,
                    e.suspect_rank,
                    e.moved_atoms,
                    e.varavg_before_percent,
                    e.varavg_after_percent
                ));
            }
        }
        if let Some(reg) = &self.regression {
            out.push_str("\n-- perf regression --\n");
            out.push_str(&reg.render());
        }
        out
    }
}

/// Which task dominated: convenience for tests and the harness.
pub fn dominant_task(breakdown: &Breakdown) -> TaskKind {
    breakdown.dominant
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::ImbalanceReport;
    use md_core::TaskLedger;
    use md_observe::ObserveConfig;

    fn skewed_ledgers() -> Vec<TaskLedger> {
        (0..4)
            .map(|rank| {
                let mut l = TaskLedger::new();
                l.add(TaskKind::Pair, if rank == 3 { 5.0 } else { 1.0 });
                l
            })
            .collect()
    }

    #[test]
    fn findings_rank_critical_first_and_name_the_rank() {
        let mut report = InsightReport {
            imbalance: Some(ImbalanceReport::from_rank_ledgers(&skewed_ledgers())),
            ..InsightReport::default()
        };
        report.finalize();
        assert!(report.has_critical());
        assert_eq!(report.findings[0].severity, Severity::Critical);
        assert_eq!(report.findings[0].kind, "imbalance.suspect_rank");
        assert!(report.findings[0].message.contains("rank 3"));
        let rendered = report.render();
        assert!(rendered.contains("CRITICAL"));
        assert!(rendered.contains("%varavg"));
    }

    #[test]
    fn balanced_run_without_baseline_has_no_critical_findings() {
        let ledgers = vec![
            {
                let mut l = TaskLedger::new();
                l.add(TaskKind::Pair, 2.0);
                l
            };
            4
        ];
        let mut report = InsightReport {
            imbalance: Some(ImbalanceReport::from_rank_ledgers(&ledgers)),
            ..InsightReport::default()
        };
        report.finalize();
        assert!(!report.has_critical());
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == "imbalance.balanced"));
    }

    #[test]
    fn gpu_sections_produce_ranked_findings() {
        use crate::attribution::DeviceBreakdown;
        use crate::critical_path::{BoundSegment, DeviceCriticalPath, DeviceStepBound};
        let gpu = GpuAttribution {
            devices: vec![DeviceBreakdown {
                device: 0,
                kernel_seconds: 1.0,
                memcpy_seconds: 3.0,
                idle_seconds: 1.0,
                active_seconds: 4.0,
                memcpy_percent_of_active: 75.0,
                kernel_percent_of_active: 25.0,
                idle_percent: 20.0,
                htod_bytes_per_step: 4096.0,
                dtoh_bytes_per_step: 2048.0,
            }],
            steps: 10,
            total_seconds: 5.0,
            mean_memcpy_percent: 75.0,
        };
        let dcp = DeviceCriticalPath {
            steps: vec![DeviceStepBound {
                step: 0,
                device: 0,
                host_seconds: 0.1,
                device_seconds: 0.4,
                bound: BoundSegment::Copy,
                kind: Some(md_model::KernelKind::MemcpyHtoD),
                seconds: 0.3,
            }],
            host_bound_steps: 0,
            copy_bound_steps: 1,
            kernel_bound_steps: 0,
            dominant: Some(BoundSegment::Copy),
            bound_seconds: 0.3,
            total_seconds: 0.5,
        };
        let mut report = InsightReport {
            gpu: Some(gpu),
            device_critical: Some(dcp),
            ..InsightReport::default()
        };
        report.finalize();
        let memcpy = report
            .findings
            .iter()
            .find(|f| f.kind == "gpu.memcpy_bound")
            .expect("memcpy-bound finding");
        assert_eq!(memcpy.severity, Severity::Warning);
        assert!(memcpy.message.contains("75.0%"));
        let copy = report
            .findings
            .iter()
            .find(|f| f.kind == "critical_path.device_copy")
            .expect("device-copy finding");
        assert_eq!(copy.severity, Severity::Warning);
        let rendered = report.render();
        assert!(rendered.contains("per-device breakdown"));
        assert!(rendered.contains("host<->device critical path"));
    }

    #[test]
    fn kernel_bound_gpu_attribution_is_informational() {
        use crate::attribution::DeviceBreakdown;
        let gpu = GpuAttribution {
            devices: vec![DeviceBreakdown {
                device: 0,
                kernel_seconds: 4.0,
                memcpy_seconds: 1.0,
                idle_seconds: 0.0,
                active_seconds: 5.0,
                memcpy_percent_of_active: 20.0,
                kernel_percent_of_active: 80.0,
                idle_percent: 0.0,
                htod_bytes_per_step: 1024.0,
                dtoh_bytes_per_step: 512.0,
            }],
            steps: 5,
            total_seconds: 5.0,
            mean_memcpy_percent: 20.0,
        };
        let mut report = InsightReport {
            gpu: Some(gpu),
            ..InsightReport::default()
        };
        report.finalize();
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == "gpu.kernel_bound")
            .expect("kernel-bound finding");
        assert_eq!(f.severity, Severity::Info);
        assert!(!report.has_critical());
    }

    #[test]
    fn repartition_summary_yields_a_ranked_finding() {
        let ev = |before: f64, after: f64| md_model::RepartitionEvent {
            step: 20,
            suspect_rank: 3,
            moved_atoms: 512,
            varavg_before_percent: before,
            varavg_after_percent: after,
        };
        let mut report = InsightReport {
            repartition: RepartitionSummary::from_events(&[ev(40.0, 5.0)]),
            ..InsightReport::default()
        };
        report.finalize();
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == "repartition.effective")
            .expect("effective finding");
        assert_eq!(f.severity, Severity::Info);
        assert!(f.message.contains("512 atoms"));
        assert!(report.render().contains("imbalance-aware repartitioning"));

        let mut bad = InsightReport {
            repartition: RepartitionSummary::from_events(&[ev(40.0, 45.0)]),
            ..InsightReport::default()
        };
        bad.finalize();
        assert!(bad
            .findings
            .iter()
            .any(|f| f.kind == "repartition.ineffective" && f.severity == Severity::Warning));

        let rec = Recorder::new(ObserveConfig::default());
        report.publish_counters(&rec);
        assert_eq!(rec.snapshot().counters["imbalance_repartitions"], 1.0);
    }

    #[test]
    fn counters_follow_the_naming_convention_and_publish() {
        let mut report = InsightReport {
            imbalance: Some(ImbalanceReport::from_rank_ledgers(&skewed_ledgers())),
            ..InsightReport::default()
        };
        report.finalize();
        let rec = Recorder::new(ObserveConfig::default());
        report.publish_counters(&rec);
        let snap = rec.snapshot();
        for name in snap.counters.keys() {
            assert!(
                md_observe::counter_name_allowed(name),
                "{name} violates the counter-naming convention"
            );
        }
        assert_eq!(snap.counters["imbalance_suspect_rank"], 3.0);
        assert!(snap.counters["insight_findings"] >= 2.0);
    }
}
