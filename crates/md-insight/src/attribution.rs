//! Per-task bottleneck attribution and load-imbalance metrics.
//!
//! Three views, all over the eight-task LAMMPS taxonomy:
//!
//! - [`Breakdown`]: where the time went (shares + dominant task), from
//!   either a [`TaskLedger`] or a window of [`StepSample`]s (Fig. 3).
//! - [`ImbalanceReport`]: per-task spread across virtual ranks using the
//!   LAMMPS `%varavg` convention — `100 · (max − avg) / avg` — plus a
//!   suspect-rank attribution based on per-rank *compute* time (waiting
//!   shows up as `Comm` on the healthy ranks, so the culprit is the rank
//!   whose non-communication time sticks out, not the ones stuck in
//!   `MPI_Wait`).
//! - [`MpiTable`]: per-MPI-function overhead across ranks (Figs. 4–5).
//! - [`GpuAttribution`]: per-device kernel-vs-memcpy-vs-idle shares and
//!   PCIe traffic from the GPU model's traced offload schedule (Figs. 7–9).

use md_core::{TaskKind, TaskLedger};
use md_model::gpu::GpuTimeline;
use md_observe::StepSample;
use md_parallel::{MpiFunction, MpiLedger};

/// A rank whose compute time exceeds the mean by more than this fraction is
/// flagged as the imbalance suspect. Shared with md-parallel's census so the
/// analyzer and the repartitioner name the same straggler.
pub const SUSPECT_EXCESS_THRESHOLD: f64 = md_parallel::SUSPECT_EXCESS_FRACTION;

/// One task's share of a breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskShare {
    /// The task.
    pub task: TaskKind,
    /// Seconds attributed to it.
    pub seconds: f64,
    /// Share of the task total, 0..=100.
    pub percent: f64,
}

/// Where the time went: per-task shares plus the dominant task.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Shares in [`TaskKind::ALL`] (legend) order; percents sum to ~100.
    pub shares: Vec<TaskShare>,
    /// Sum over all tasks, seconds.
    pub total_seconds: f64,
    /// The task with the largest share.
    pub dominant: TaskKind,
    /// Its share, 0..=100.
    pub dominant_percent: f64,
    /// Steps the breakdown covers (0 when built from a bare ledger).
    pub steps: usize,
}

impl Breakdown {
    fn from_seconds(seconds: [f64; 8], steps: usize) -> Breakdown {
        let total: f64 = seconds.iter().sum();
        let shares: Vec<TaskShare> = TaskKind::ALL
            .iter()
            .zip(seconds)
            .map(|(&task, s)| TaskShare {
                task,
                seconds: s,
                percent: if total > 0.0 { 100.0 * s / total } else { 0.0 },
            })
            .collect();
        let top = shares
            .iter()
            .max_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite"))
            .expect("eight tasks");
        Breakdown {
            dominant: top.task,
            dominant_percent: top.percent,
            shares,
            total_seconds: total,
            steps,
        }
    }

    /// Breakdown of an accumulated ledger (`steps` is informational).
    pub fn from_ledger(ledger: &TaskLedger, steps: usize) -> Breakdown {
        let mut seconds = [0.0; 8];
        for (i, (_, s)) in ledger.iter().enumerate() {
            seconds[i] = s;
        }
        Breakdown::from_seconds(seconds, steps)
    }

    /// Breakdown summed over a window of per-step samples.
    pub fn from_step_samples(samples: &[StepSample]) -> Breakdown {
        let mut seconds = [0.0; 8];
        for s in samples {
            for (acc, v) in seconds.iter_mut().zip(&s.task_seconds) {
                *acc += v;
            }
        }
        Breakdown::from_seconds(seconds, samples.len())
    }
}

/// Rolling dominant-task detection: for each full window of `window`
/// samples, the task with the largest summed share, tagged with the step
/// index at the window's end. Adjacent equal entries are collapsed, so the
/// result reads as "Pair dominated until step 40, then Kspace took over".
pub fn rolling_dominant(samples: &[StepSample], window: usize) -> Vec<(u64, TaskKind)> {
    let window = window.max(1);
    let mut out: Vec<(u64, TaskKind)> = Vec::new();
    for chunk in samples.chunks(window) {
        if chunk.len() < window && !out.is_empty() {
            break; // ignore a short tail once we have full windows
        }
        let b = Breakdown::from_step_samples(chunk);
        if b.total_seconds <= 0.0 {
            continue;
        }
        let end_step = chunk.last().expect("non-empty chunk").step;
        match out.last() {
            Some(&(_, t)) if t == b.dominant => {
                let last = out.last_mut().expect("non-empty");
                last.0 = end_step;
            }
            _ => out.push((end_step, b.dominant)),
        }
    }
    out
}

/// One task's spread across ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskImbalance {
    /// The task.
    pub task: TaskKind,
    /// Mean seconds across ranks.
    pub avg: f64,
    /// Maximum across ranks.
    pub max: f64,
    /// Minimum across ranks.
    pub min: f64,
    /// LAMMPS-style `%varavg`: `100 · (max − avg) / avg` (0 when avg = 0).
    pub varavg_percent: f64,
}

/// Load-imbalance attribution across virtual ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct ImbalanceReport {
    /// Rank count.
    pub nranks: usize,
    /// Per-task spread, [`TaskKind::ALL`] order.
    pub per_task: Vec<TaskImbalance>,
    /// Per-rank compute seconds (total minus `Comm` minus `Other`): the
    /// waiting that imbalance *causes* is excluded so the rank that causes
    /// it stands out.
    pub rank_compute_seconds: Vec<f64>,
    /// Rank whose compute time exceeds the mean by more than
    /// [`SUSPECT_EXCESS_THRESHOLD`], if any (the imbalance source).
    pub suspect_rank: Option<usize>,
    /// That rank's excess over the mean, percent.
    pub suspect_excess_percent: f64,
    /// The compute task with the worst `%varavg` among tasks carrying at
    /// least 1% of the mean compute time.
    pub worst_task: Option<TaskKind>,
    /// Its `%varavg`.
    pub worst_varavg_percent: f64,
}

impl ImbalanceReport {
    /// Computes the spread of per-rank ledgers (e.g.
    /// `CpuRunResult::rank_tasks`).
    ///
    /// # Panics
    ///
    /// Panics if `ledgers` is empty.
    pub fn from_rank_ledgers(ledgers: &[TaskLedger]) -> ImbalanceReport {
        assert!(!ledgers.is_empty(), "imbalance needs at least one rank");
        let n = ledgers.len() as f64;
        let per_task: Vec<TaskImbalance> = TaskKind::ALL
            .iter()
            .map(|&task| {
                let mut sum = 0.0;
                let mut max = f64::MIN;
                let mut min = f64::MAX;
                for l in ledgers {
                    let s = l.seconds(task);
                    sum += s;
                    max = max.max(s);
                    min = min.min(s);
                }
                let avg = sum / n;
                TaskImbalance {
                    task,
                    avg,
                    max,
                    min,
                    varavg_percent: if avg > 0.0 {
                        100.0 * (max - avg) / avg
                    } else {
                        0.0
                    },
                }
            })
            .collect();

        let rank_compute_seconds: Vec<f64> = ledgers
            .iter()
            .map(|l| l.total() - l.seconds(TaskKind::Comm) - l.seconds(TaskKind::Other))
            .collect();
        let mean = rank_compute_seconds.iter().sum::<f64>() / n;
        let (max_rank, max_compute) = rank_compute_seconds
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite compute"))
            .expect("non-empty");
        let excess = if mean > 0.0 {
            (max_compute - mean) / mean
        } else {
            0.0
        };
        let suspect_rank = (excess > SUSPECT_EXCESS_THRESHOLD).then_some(max_rank);

        let mean_compute_total = mean.max(f64::MIN_POSITIVE);
        let worst = per_task
            .iter()
            .filter(|t| {
                t.task != TaskKind::Comm
                    && t.task != TaskKind::Other
                    && t.avg > 0.01 * mean_compute_total
            })
            .max_by(|a, b| {
                a.varavg_percent
                    .partial_cmp(&b.varavg_percent)
                    .expect("finite varavg")
            });
        ImbalanceReport {
            nranks: ledgers.len(),
            suspect_rank,
            suspect_excess_percent: 100.0 * excess,
            worst_task: worst.map(|t| t.task),
            worst_varavg_percent: worst.map_or(0.0, |t| t.varavg_percent),
            per_task,
            rank_compute_seconds,
        }
    }
}

/// Summary of the imbalance-aware re-splits a modeled run performed: did the
/// feedback loop (census suspect → repartition) actually shrink the windowed
/// compute `%varavg` every time it fired?
#[derive(Debug, Clone, PartialEq)]
pub struct RepartitionSummary {
    /// The re-splits, in step order.
    pub events: Vec<md_model::RepartitionEvent>,
    /// Whether *every* re-split strictly decreased the windowed `%varavg`.
    pub effective: bool,
    /// Total owned atoms moved across all re-splits.
    pub total_moved_atoms: usize,
    /// Windowed `%varavg` before the first re-split.
    pub first_varavg_percent: f64,
    /// Windowed `%varavg` after the last re-split.
    pub last_varavg_percent: f64,
}

impl RepartitionSummary {
    /// Summarizes a run's re-split events (e.g. `CpuRunResult::repartitions`).
    /// Returns `None` when the run never re-split.
    pub fn from_events(events: &[md_model::RepartitionEvent]) -> Option<RepartitionSummary> {
        let (first, last) = (events.first()?, events.last()?);
        Some(RepartitionSummary {
            effective: events
                .iter()
                .all(|e| e.varavg_after_percent < e.varavg_before_percent),
            total_moved_atoms: events.iter().map(|e| e.moved_atoms).sum(),
            first_varavg_percent: first.varavg_before_percent,
            last_varavg_percent: last.varavg_after_percent,
            events: events.to_vec(),
        })
    }
}

/// One MPI function's overhead across ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpiRow {
    /// The function.
    pub function: MpiFunction,
    /// Mean seconds across ranks.
    pub mean_seconds: f64,
    /// Maximum seconds on any rank.
    pub max_seconds: f64,
    /// Share of mean total MPI time, 0..=100.
    pub percent_of_mpi: f64,
}

/// Per-MPI-function overhead table (the Figs. 4–5 view).
#[derive(Debug, Clone, PartialEq)]
pub struct MpiTable {
    /// Rows in [`MpiFunction::ALL`] (legend) order.
    pub rows: Vec<MpiRow>,
    /// Mean total MPI seconds per rank.
    pub total_mean_seconds: f64,
    /// Mean skew-wait seconds per rank (the paper's "MPI imbalance").
    pub skew_mean_seconds: f64,
}

impl MpiTable {
    /// Builds the table from per-rank MPI ledgers.
    ///
    /// # Panics
    ///
    /// Panics if `ledgers` is empty.
    pub fn from_rank_ledgers(ledgers: &[MpiLedger]) -> MpiTable {
        assert!(!ledgers.is_empty(), "MPI table needs at least one rank");
        let n = ledgers.len() as f64;
        let total_mean = ledgers.iter().map(MpiLedger::total).sum::<f64>() / n;
        let skew_mean = ledgers.iter().map(MpiLedger::skew_seconds).sum::<f64>() / n;
        let rows = MpiFunction::ALL
            .iter()
            .map(|&function| {
                let mut sum = 0.0;
                let mut max = 0.0f64;
                for l in ledgers {
                    let s = l.seconds(function);
                    sum += s;
                    max = max.max(s);
                }
                let mean = sum / n;
                MpiRow {
                    function,
                    mean_seconds: mean,
                    max_seconds: max,
                    percent_of_mpi: if total_mean > 0.0 {
                        100.0 * mean / total_mean
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        MpiTable {
            rows,
            total_mean_seconds: total_mean,
            skew_mean_seconds: skew_mean,
        }
    }
}

/// One modeled device's activity decomposition over a traced window: how
/// much of the wall-clock window the device spent in compute kernels, in
/// PCIe copies, and idle (waiting for the host segment or another device's
/// longer round). This is the analyzed form of the paper's Figure 8 stacks
/// — "memcpy-bound" is `memcpy_percent_of_active > 50`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceBreakdown {
    /// Device id.
    pub device: usize,
    /// Seconds in compute kernels (everything that is not a PCIe copy,
    /// including `[CUDA memset]` — it runs on the device).
    pub kernel_seconds: f64,
    /// Seconds in HtoD/DtoH copies.
    pub memcpy_seconds: f64,
    /// Seconds the device sat idle within the window.
    pub idle_seconds: f64,
    /// `kernel_seconds + memcpy_seconds`.
    pub active_seconds: f64,
    /// Memcpy share of *active* device time, 0..=100 (the Figure 8 metric).
    pub memcpy_percent_of_active: f64,
    /// Kernel share of active device time, 0..=100.
    pub kernel_percent_of_active: f64,
    /// Idle share of the whole window, 0..=100.
    pub idle_percent: f64,
    /// Mean host→device payload per step, bytes.
    pub htod_bytes_per_step: f64,
    /// Mean device→host payload per step, bytes.
    pub dtoh_bytes_per_step: f64,
}

/// Per-device attribution of a traced GPU-model run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuAttribution {
    /// Devices in id order.
    pub devices: Vec<DeviceBreakdown>,
    /// Steps the window covers.
    pub steps: usize,
    /// Wall-clock seconds of the window.
    pub total_seconds: f64,
    /// Mean memcpy share of active time across devices, 0..=100.
    pub mean_memcpy_percent: f64,
}

impl GpuAttribution {
    /// Decomposes a traced offload schedule per device.
    pub fn from_timeline(timeline: &GpuTimeline) -> GpuAttribution {
        let window: f64 = timeline.steps.iter().map(|s| s.seconds()).sum();
        let nsteps = timeline.steps.len();
        let mut kernel = vec![0.0f64; timeline.gpus];
        let mut memcpy = vec![0.0f64; timeline.gpus];
        // PCIe payload per direction, attributed to the device that moved it.
        let mut htod = vec![0.0f64; timeline.gpus];
        let mut dtoh = vec![0.0f64; timeline.gpus];
        for step in &timeline.steps {
            for seg in &step.segments {
                if seg.kind.is_memcpy() {
                    memcpy[seg.device] += seg.seconds;
                    if seg.kind == md_model::KernelKind::MemcpyHtoD {
                        htod[seg.device] += seg.bytes as f64;
                    } else {
                        dtoh[seg.device] += seg.bytes as f64;
                    }
                } else {
                    kernel[seg.device] += seg.seconds;
                }
            }
        }
        let steps_f = (nsteps as f64).max(1.0);
        let devices: Vec<DeviceBreakdown> = (0..timeline.gpus)
            .map(|d| {
                let active = kernel[d] + memcpy[d];
                let idle = (window - active).max(0.0);
                DeviceBreakdown {
                    device: d,
                    kernel_seconds: kernel[d],
                    memcpy_seconds: memcpy[d],
                    idle_seconds: idle,
                    active_seconds: active,
                    memcpy_percent_of_active: if active > 0.0 {
                        100.0 * memcpy[d] / active
                    } else {
                        0.0
                    },
                    kernel_percent_of_active: if active > 0.0 {
                        100.0 * kernel[d] / active
                    } else {
                        0.0
                    },
                    idle_percent: if window > 0.0 {
                        100.0 * idle / window
                    } else {
                        0.0
                    },
                    htod_bytes_per_step: htod[d] / steps_f,
                    dtoh_bytes_per_step: dtoh[d] / steps_f,
                }
            })
            .collect();
        let mean_memcpy = if devices.is_empty() {
            0.0
        } else {
            devices
                .iter()
                .map(|d| d.memcpy_percent_of_active)
                .sum::<f64>()
                / devices.len() as f64
        };
        GpuAttribution {
            devices,
            steps: nsteps,
            total_seconds: window,
            mean_memcpy_percent: mean_memcpy,
        }
    }

    /// Renders the per-device table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} device(s), {} steps, {:.6} s window\n\
             device   kernel s     memcpy s     idle s   memcpy%  idle%  HtoD B/step  DtoH B/step\n",
            self.devices.len(),
            self.steps,
            self.total_seconds
        );
        for d in &self.devices {
            out.push_str(&format!(
                "gpu {:<3} {:>10.6} {:>12.6} {:>10.6} {:>8.1} {:>6.1} {:>12.0} {:>12.0}\n",
                d.device,
                d.kernel_seconds,
                d.memcpy_seconds,
                d.idle_seconds,
                d.memcpy_percent_of_active,
                d.idle_percent,
                d.htod_bytes_per_step,
                d.dtoh_bytes_per_step
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(pairs: &[(TaskKind, f64)]) -> TaskLedger {
        let mut l = TaskLedger::new();
        for &(t, s) in pairs {
            l.add(t, s);
        }
        l
    }

    #[test]
    fn breakdown_finds_the_dominant_task() {
        let l = ledger(&[(TaskKind::Pair, 8.0), (TaskKind::Neigh, 2.0)]);
        let b = Breakdown::from_ledger(&l, 100);
        assert_eq!(b.dominant, TaskKind::Pair);
        assert!((b.dominant_percent - 80.0).abs() < 1e-12);
        assert!((b.total_seconds - 10.0).abs() < 1e-12);
        let sum: f64 = b.shares.iter().map(|s| s.percent).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_from_step_samples_sums_the_window() {
        let mut s1 = StepSample::default();
        s1.task_seconds[TaskKind::Pair.index()] = 2.0;
        let mut s2 = StepSample::default();
        s2.task_seconds[TaskKind::Kspace.index()] = 5.0;
        let b = Breakdown::from_step_samples(&[s1, s2]);
        assert_eq!(b.steps, 2);
        assert_eq!(b.dominant, TaskKind::Kspace);
        assert!((b.total_seconds - 7.0).abs() < 1e-12);
    }

    #[test]
    fn rolling_dominant_tracks_regime_changes() {
        let mut samples = Vec::new();
        for step in 0..20u64 {
            let mut s = StepSample {
                step,
                ..StepSample::default()
            };
            if step < 10 {
                s.task_seconds[TaskKind::Pair.index()] = 1.0;
            } else {
                s.task_seconds[TaskKind::Kspace.index()] = 1.0;
            }
            samples.push(s);
        }
        let regimes = rolling_dominant(&samples, 5);
        assert_eq!(
            regimes,
            vec![(9, TaskKind::Pair), (19, TaskKind::Kspace)],
            "adjacent equal windows collapse"
        );
    }

    #[test]
    fn varavg_matches_the_lammps_definition() {
        // Ranks spend 1, 1, 1, 5 seconds in Pair: avg 2, max 5.
        let ledgers: Vec<TaskLedger> = [1.0, 1.0, 1.0, 5.0]
            .iter()
            .map(|&s| ledger(&[(TaskKind::Pair, s)]))
            .collect();
        let r = ImbalanceReport::from_rank_ledgers(&ledgers);
        let pair = &r.per_task[TaskKind::Pair.index()];
        assert!(
            (pair.varavg_percent - 150.0).abs() < 1e-9,
            "%varavg = 100·(5−2)/2"
        );
        assert_eq!(pair.max, 5.0);
        assert_eq!(pair.min, 1.0);
        assert_eq!(r.suspect_rank, Some(3));
        assert!((r.suspect_excess_percent - 150.0).abs() < 1e-9);
        assert_eq!(r.worst_task, Some(TaskKind::Pair));
    }

    #[test]
    fn waiting_ranks_are_not_the_suspect() {
        // Rank 0 computes 4 s; ranks 1–3 compute 1 s and wait 3 s in Comm.
        // The suspect must be the slow computer, not the waiters.
        let ledgers = vec![
            ledger(&[(TaskKind::Pair, 4.0)]),
            ledger(&[(TaskKind::Pair, 1.0), (TaskKind::Comm, 3.0)]),
            ledger(&[(TaskKind::Pair, 1.0), (TaskKind::Comm, 3.0)]),
            ledger(&[(TaskKind::Pair, 1.0), (TaskKind::Comm, 3.0)]),
        ];
        let r = ImbalanceReport::from_rank_ledgers(&ledgers);
        assert_eq!(r.suspect_rank, Some(0));
    }

    #[test]
    fn balanced_ranks_have_no_suspect() {
        let ledgers = vec![ledger(&[(TaskKind::Pair, 2.0)]); 4];
        let r = ImbalanceReport::from_rank_ledgers(&ledgers);
        assert_eq!(r.suspect_rank, None);
        assert_eq!(r.per_task[TaskKind::Pair.index()].varavg_percent, 0.0);
    }

    #[test]
    fn device_breakdown_decomposes_a_synthetic_timeline() {
        use md_model::gpu::{GpuSegment, GpuStepSchedule};
        use md_model::KernelKind;
        // One device, one step: 1 s HtoD (100 B), 2 s kernel, 1 s DtoH
        // (50 B), then a 1 s host segment → 5 s window, 1 s idle.
        let seg = |kind, start, seconds, bytes| GpuSegment {
            device: 0,
            rank: 0,
            kind,
            start_seconds: start,
            seconds,
            bytes,
        };
        let timeline = GpuTimeline {
            benchmark: md_workloads::Benchmark::Lj,
            gpus: 1,
            host_ranks: 1,
            steps: vec![GpuStepSchedule {
                step: 0,
                start_seconds: 0.0,
                host_seconds: 1.0,
                device_seconds: 4.0,
                device_busy: vec![4.0],
                htod_bytes: 100,
                dtoh_bytes: 50,
                segments: vec![
                    seg(KernelKind::MemcpyHtoD, 0.0, 1.0, 100),
                    seg(KernelKind::KLjFast, 1.0, 2.0, 0),
                    seg(KernelKind::MemcpyDtoH, 3.0, 1.0, 50),
                ],
            }],
        };
        let a = GpuAttribution::from_timeline(&timeline);
        assert_eq!(a.steps, 1);
        assert!((a.total_seconds - 5.0).abs() < 1e-12);
        let d = &a.devices[0];
        assert!((d.memcpy_seconds - 2.0).abs() < 1e-12);
        assert!((d.kernel_seconds - 2.0).abs() < 1e-12);
        assert!((d.idle_seconds - 1.0).abs() < 1e-12);
        assert!((d.memcpy_percent_of_active - 50.0).abs() < 1e-9);
        assert!((d.idle_percent - 20.0).abs() < 1e-9);
        assert!((d.htod_bytes_per_step - 100.0).abs() < 1e-12);
        assert!((d.dtoh_bytes_per_step - 50.0).abs() < 1e-12);
        let rendered = a.render();
        assert!(rendered.contains("gpu 0"));
    }

    #[test]
    fn empty_timeline_yields_a_degenerate_attribution() {
        let timeline = GpuTimeline {
            benchmark: md_workloads::Benchmark::Lj,
            gpus: 1,
            host_ranks: 6,
            steps: Vec::new(),
        };
        let a = GpuAttribution::from_timeline(&timeline);
        assert_eq!(a.steps, 0);
        assert_eq!(a.total_seconds, 0.0);
        assert_eq!(a.devices[0].memcpy_percent_of_active, 0.0);
        assert_eq!(a.mean_memcpy_percent, 0.0);
    }

    #[test]
    fn repartition_summary_judges_effectiveness() {
        use md_model::RepartitionEvent;
        let ev = |step, before, after| RepartitionEvent {
            step,
            suspect_rank: 3,
            moved_atoms: 100,
            varavg_before_percent: before,
            varavg_after_percent: after,
        };
        assert!(RepartitionSummary::from_events(&[]).is_none());
        let good = RepartitionSummary::from_events(&[ev(20, 40.0, 5.0), ev(40, 5.0, 2.0)]).unwrap();
        assert!(good.effective);
        assert_eq!(good.total_moved_atoms, 200);
        assert!((good.first_varavg_percent - 40.0).abs() < 1e-12);
        assert!((good.last_varavg_percent - 2.0).abs() < 1e-12);
        let bad = RepartitionSummary::from_events(&[ev(20, 40.0, 45.0)]).unwrap();
        assert!(!bad.effective, "a re-split that grew %varavg is a failure");
    }

    #[test]
    fn mpi_table_means_and_shares() {
        let mut a = MpiLedger::new();
        a.add(MpiFunction::Wait, 3.0);
        a.add_skew(3.0);
        let mut b = MpiLedger::new();
        b.add(MpiFunction::Sendrecv, 1.0);
        let t = MpiTable::from_rank_ledgers(&[a, b]);
        assert!((t.total_mean_seconds - 2.0).abs() < 1e-12);
        assert!((t.skew_mean_seconds - 1.5).abs() < 1e-12);
        let wait = t
            .rows
            .iter()
            .find(|r| r.function == MpiFunction::Wait)
            .unwrap();
        assert!((wait.mean_seconds - 1.5).abs() < 1e-12);
        assert_eq!(wait.max_seconds, 3.0);
        assert!((wait.percent_of_mpi - 75.0).abs() < 1e-9);
    }
}
