//! # md-workloads — the five-benchmark MD suite of the paper
//!
//! Builds runnable decks for the experiments of Table 2:
//!
//! | Benchmark | System | Force field | Integration |
//! |-----------|--------|-------------|-------------|
//! | [`Benchmark::Lj`]    | 3D Lennard-Jones melt (fcc, ρ\*=0.8442)   | `lj/cut` 2.5σ        | NVE |
//! | [`Benchmark::Chain`] | bead-spring polymer melt, 100-mer chains  | FENE + WCA           | NVE + Langevin |
//! | [`Benchmark::Eam`]   | copper fcc solid                          | EAM (Sutton-Chen Cu) | NVE |
//! | [`Benchmark::Chute`] | granular chute flow                       | `gran/hooke/history` | NVE + gravity |
//! | [`Benchmark::Rhodo`] | solvated bio-like system (paper: rhodopsin protein in lipid bilayer) | CHARMM LJ + Coulomb, PPPM 1e-4 | NPT + SHAKE |
//!
//! The Rhodopsin deck is a synthetic substitution (no protein data bank
//! access): a charge-neutral solvated system matched to the original's
//! density, cutoffs, neighbor count, constraint and long-range settings —
//! see DESIGN.md for the substitution argument.
//!
//! Sizes follow the paper: the 32k-atom base replicated `s³`-fold for
//! `s ∈ {1, 2, 3, 4}` gives 32k, 256k, 864k, and 2048k atoms.
//!
//! ## Example
//!
//! ```rust
//! use md_workloads::{Benchmark, build_deck};
//!
//! # fn main() -> Result<(), md_core::CoreError> {
//! let mut deck = build_deck(Benchmark::Lj, 1, 42)?;
//! assert_eq!(deck.simulation.atoms().len(), 32_000);
//! deck.simulation.run(1)?;
//! # Ok(())
//! # }
//! ```

pub mod chain;
pub mod chute;
pub mod eam;
pub mod io;
pub mod lattice;
pub mod lj;
pub mod rhodo;
pub mod taxonomy;

pub use taxonomy::{DeckInfo, TAXONOMY};

use md_core::force::PairStyle;
use md_core::{CoreError, Result, Simulation, Threads};
use md_potentials::{Threadable, Threaded};

/// Boxes `style` for the builder, wrapping it in [`Threaded`] when the
/// threading knob is active (more than one thread, or deterministic mode so
/// even one thread follows the fixed-chunk reduction order).
pub(crate) fn wrap_pair<P: Threadable + 'static>(
    style: P,
    threads: Threads,
) -> Result<Box<dyn PairStyle>> {
    if threads.active() {
        Ok(Box::new(Threaded::with_mode(style, threads)?))
    } else {
        Ok(Box::new(style))
    }
}

/// The five benchmarks of the suite.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Benchmark {
    /// Bead-spring polymer melt with FENE bonds.
    Chain,
    /// Granular chute flow with frictional history.
    Chute,
    /// Copper solid with the embedded-atom method.
    Eam,
    /// Lennard-Jones melt.
    Lj,
    /// Solvated bio-like system with long-range electrostatics (the paper's
    /// all-atom rhodopsin protein in a lipid bilayer).
    Rhodo,
}

impl Benchmark {
    /// All benchmarks, in the paper's alphabetical figure order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::Chain,
        Benchmark::Chute,
        Benchmark::Eam,
        Benchmark::Lj,
        Benchmark::Rhodo,
    ];

    /// Lowercase name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Chain => "chain",
            Benchmark::Chute => "chute",
            Benchmark::Eam => "eam",
            Benchmark::Lj => "lj",
            Benchmark::Rhodo => "rhodo",
        }
    }

    /// Parses a benchmark name.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| CoreError::InvalidParameter {
                name: "benchmark",
                reason: format!("unknown benchmark {name:?}"),
            })
    }

    /// Whether the LAMMPS GPU package supports this benchmark (it lacks the
    /// `gran/hooke` pair style, so Chute is CPU-only — paper Section 6).
    pub fn gpu_supported(self) -> bool {
        !matches!(self, Benchmark::Chute)
    }

    /// Whether this benchmark computes long-range (k-space) forces.
    pub fn has_kspace(self) -> bool {
        matches!(self, Benchmark::Rhodo)
    }

    /// Whether this benchmark computes bonded forces.
    pub fn has_bonds(self) -> bool {
        matches!(self, Benchmark::Chain | Benchmark::Rhodo)
    }

    /// Whether the pair computation exploits Newton's third law
    /// (half neighbor lists). Chute does not (paper Section 3).
    pub fn newton_pairs(self) -> bool {
        !matches!(self, Benchmark::Chute)
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The paper's four problem sizes, as the replication factor `s` of the
/// 32k-atom base (atoms = 32000·s³).
pub const SCALES: [usize; 4] = [1, 2, 3, 4];

/// Atom count at replication factor `scale`.
pub fn atoms_at_scale(scale: usize) -> usize {
    32_000 * scale * scale * scale
}

/// Size label in the paper's "k atoms" convention (32, 256, 864, 2048).
pub fn size_label(scale: usize) -> usize {
    atoms_at_scale(scale) / 1000
}

/// A fully constructed, runnable benchmark deck.
pub struct Deck {
    /// Which benchmark this is.
    pub benchmark: Benchmark,
    /// Replication factor (1, 2, 3, 4).
    pub scale: usize,
    /// The ready-to-run simulation.
    pub simulation: Simulation,
    /// Static deck characteristics (the Table 2 row).
    pub info: DeckInfo,
}

impl std::fmt::Debug for Deck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deck")
            .field("benchmark", &self.benchmark)
            .field("scale", &self.scale)
            .field("atoms", &self.simulation.atoms().len())
            .finish()
    }
}

/// Builds a runnable deck for `benchmark` at replication factor `scale`
/// (1..=4), deterministically seeded. Threading comes from the environment
/// (`MD_THREADS`, `MD_DETERMINISTIC`); use [`build_deck_with`] to set it
/// explicitly.
///
/// # Errors
///
/// Returns an error if `scale` is outside 1..=4 or construction fails.
pub fn build_deck(benchmark: Benchmark, scale: usize, seed: u64) -> Result<Deck> {
    build_deck_with(benchmark, scale, seed, Threads::from_env())
}

/// Builds a runnable deck with an explicit shared-memory threading knob.
/// Every hot kernel the benchmark owns — pair forces (LJ, CHARMM, EAM),
/// neighbor-list builds, and PPPM for Rhodopsin — honors it; Chute's
/// granular pair style keeps per-contact mutable history and stays serial
/// (only its neighbor builds thread).
///
/// # Errors
///
/// Returns an error if `scale` is outside 1..=4 or construction fails.
pub fn build_deck_with(
    benchmark: Benchmark,
    scale: usize,
    seed: u64,
    threads: Threads,
) -> Result<Deck> {
    if !(1..=4).contains(&scale) {
        return Err(CoreError::InvalidParameter {
            name: "scale",
            reason: format!("replication factor {scale} outside 1..=4"),
        });
    }
    let simulation = match benchmark {
        Benchmark::Lj => lj::build_with(scale, seed, threads)?,
        Benchmark::Chain => chain::build_with(scale, seed, threads)?,
        Benchmark::Eam => eam::build_with(scale, seed, threads)?,
        Benchmark::Chute => chute::build_with(scale, seed, threads)?,
        Benchmark::Rhodo => rhodo::build_with(scale, seed, threads)?,
    };
    Ok(Deck {
        benchmark,
        scale,
        simulation,
        info: taxonomy::info(benchmark),
    })
}

/// Builds only the particle positions and box of a deck (cheap; used by the
/// decomposition census at large scales where a full simulation is not
/// needed).
///
/// # Errors
///
/// Returns an error if `scale` is outside 1..=4.
pub fn build_positions(
    benchmark: Benchmark,
    scale: usize,
    seed: u64,
) -> Result<(md_core::SimBox, Vec<md_core::V3>)> {
    if !(1..=4).contains(&scale) {
        return Err(CoreError::InvalidParameter {
            name: "scale",
            reason: format!("replication factor {scale} outside 1..=4"),
        });
    }
    Ok(match benchmark {
        Benchmark::Lj => lj::positions(scale),
        Benchmark::Chain => chain::positions(scale),
        Benchmark::Eam => eam::positions(scale),
        Benchmark::Chute => chute::positions(scale, seed),
        Benchmark::Rhodo => rhodo::positions(scale, seed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::parse(b.name()).unwrap(), b);
        }
        assert!(Benchmark::parse("nope").is_err());
    }

    #[test]
    fn scales_match_paper_sizes() {
        assert_eq!(SCALES.map(size_label), [32, 256, 864, 2048]);
    }

    #[test]
    fn chute_is_the_gpu_exception() {
        assert!(!Benchmark::Chute.gpu_supported());
        assert_eq!(
            Benchmark::ALL.iter().filter(|b| b.gpu_supported()).count(),
            4
        );
    }

    #[test]
    fn feature_flags_match_table2() {
        assert!(Benchmark::Rhodo.has_kspace());
        assert!(!Benchmark::Lj.has_kspace());
        assert!(Benchmark::Chain.has_bonds());
        assert!(!Benchmark::Chute.newton_pairs());
    }

    #[test]
    fn build_deck_rejects_bad_scale() {
        assert!(build_deck(Benchmark::Lj, 0, 1).is_err());
        assert!(build_deck(Benchmark::Lj, 5, 1).is_err());
    }
}
