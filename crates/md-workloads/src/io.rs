//! LAMMPS-compatible file I/O: `read_data`/`write_data` for full system
//! state (the paper's decks ship as LAMMPS data files under `bench/`) and
//! XYZ trajectory dumps (the `Output` task of Table 1 covers "dump files").
//!
//! The data format implemented here covers the sections the benchmark suite
//! needs: header (counts, types, box bounds), `Masses`, `Atoms` (styles
//! `atomic`, `charge`, and `full`), `Velocities`, `Bonds`, `Angles`, and
//! `Dihedrals`. Round-tripping a deck through `write_data` → `read_data`
//! reproduces the state exactly (modulo float formatting at 1e-12).

use md_core::{AtomStore, CoreError, Result, SimBox, Vec3};
use std::fmt::Write as _;
use std::io::BufRead;
use std::path::Path;

/// Which per-atom columns the `Atoms` section carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AtomStyle {
    /// `id type x y z` — LJ/EAM-style decks.
    Atomic,
    /// `id type q x y z` — charged systems.
    Charge,
    /// `id mol type q x y z` — molecular systems (rhodo-class decks).
    Full,
}

impl AtomStyle {
    /// LAMMPS keyword for the style.
    pub fn label(self) -> &'static str {
        match self {
            AtomStyle::Atomic => "atomic",
            AtomStyle::Charge => "charge",
            AtomStyle::Full => "full",
        }
    }
}

/// Serializes a system to LAMMPS data-file text.
pub fn write_data_string(bx: &SimBox, atoms: &AtomStore, style: AtomStyle) -> String {
    let mut s = String::new();
    let n = atoms.len();
    let _ = writeln!(s, "LAMMPS data file via verlette (style {})", style.label());
    let _ = writeln!(s);
    let _ = writeln!(s, "{n} atoms");
    if !atoms.bonds().is_empty() {
        let _ = writeln!(s, "{} bonds", atoms.bonds().len());
    }
    if !atoms.angles().is_empty() {
        let _ = writeln!(s, "{} angles", atoms.angles().len());
    }
    if !atoms.dihedrals().is_empty() {
        let _ = writeln!(s, "{} dihedrals", atoms.dihedrals().len());
    }
    let ntypes = atoms.ntypes().max(1);
    let _ = writeln!(s, "{ntypes} atom types");
    let bond_types = atoms.bonds().iter().map(|b| b.kind).max().map(|m| m + 1);
    if let Some(bt) = bond_types {
        let _ = writeln!(s, "{bt} bond types");
    }
    let angle_types = atoms.angles().iter().map(|a| a.kind).max().map(|m| m + 1);
    if let Some(at) = angle_types {
        let _ = writeln!(s, "{at} angle types");
    }
    let dih_types = atoms
        .dihedrals()
        .iter()
        .map(|d| d.kind)
        .max()
        .map(|m| m + 1);
    if let Some(dt) = dih_types {
        let _ = writeln!(s, "{dt} dihedral types");
    }
    let _ = writeln!(s);
    let (lo, hi) = (bx.lo(), bx.hi());
    let _ = writeln!(s, "{:.12} {:.12} xlo xhi", lo.x, hi.x);
    let _ = writeln!(s, "{:.12} {:.12} ylo yhi", lo.y, hi.y);
    let _ = writeln!(s, "{:.12} {:.12} zlo zhi", lo.z, hi.z);
    let _ = writeln!(s);
    let _ = writeln!(s, "Masses");
    let _ = writeln!(s);
    for (t, &m) in atoms.masses_by_type().iter().enumerate() {
        let _ = writeln!(s, "{} {:.12}", t + 1, m);
    }
    let _ = writeln!(s);
    let _ = writeln!(s, "Atoms # {}", style.label());
    let _ = writeln!(s);
    for i in 0..n {
        let p = atoms.x()[i];
        let t = atoms.kinds()[i] + 1;
        match style {
            AtomStyle::Atomic => {
                let _ = writeln!(s, "{} {} {:.12} {:.12} {:.12}", i + 1, t, p.x, p.y, p.z);
            }
            AtomStyle::Charge => {
                let _ = writeln!(
                    s,
                    "{} {} {:.12} {:.12} {:.12} {:.12}",
                    i + 1,
                    t,
                    atoms.charges()[i],
                    p.x,
                    p.y,
                    p.z
                );
            }
            AtomStyle::Full => {
                let _ = writeln!(
                    s,
                    "{} {} {} {:.12} {:.12} {:.12} {:.12}",
                    i + 1,
                    atoms.molecules()[i] + 1,
                    t,
                    atoms.charges()[i],
                    p.x,
                    p.y,
                    p.z
                );
            }
        }
    }
    let _ = writeln!(s);
    let _ = writeln!(s, "Velocities");
    let _ = writeln!(s);
    for i in 0..n {
        let v = atoms.v()[i];
        let _ = writeln!(s, "{} {:.12} {:.12} {:.12}", i + 1, v.x, v.y, v.z);
    }
    if !atoms.bonds().is_empty() {
        let _ = writeln!(s);
        let _ = writeln!(s, "Bonds");
        let _ = writeln!(s);
        for (k, b) in atoms.bonds().iter().enumerate() {
            let _ = writeln!(s, "{} {} {} {}", k + 1, b.kind + 1, b.i + 1, b.j + 1);
        }
    }
    if !atoms.angles().is_empty() {
        let _ = writeln!(s);
        let _ = writeln!(s, "Angles");
        let _ = writeln!(s);
        for (k, a) in atoms.angles().iter().enumerate() {
            let _ = writeln!(
                s,
                "{} {} {} {} {}",
                k + 1,
                a.kind + 1,
                a.i + 1,
                a.j + 1,
                a.k + 1
            );
        }
    }
    if !atoms.dihedrals().is_empty() {
        let _ = writeln!(s);
        let _ = writeln!(s, "Dihedrals");
        let _ = writeln!(s);
        for (k, d) in atoms.dihedrals().iter().enumerate() {
            let _ = writeln!(
                s,
                "{} {} {} {} {} {}",
                k + 1,
                d.kind + 1,
                d.i + 1,
                d.j + 1,
                d.k + 1,
                d.l + 1
            );
        }
    }
    s
}

/// Writes a system to a LAMMPS data file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_data(path: &Path, bx: &SimBox, atoms: &AtomStore, style: AtomStyle) -> Result<()> {
    let text = write_data_string(bx, atoms, style);
    std::fs::write(path, text).map_err(|e| CoreError::InvalidParameter {
        name: "write_data",
        reason: format!("{}: {e}", path.display()),
    })
}

/// Parses a LAMMPS data file from text.
///
/// # Errors
///
/// Returns an error for malformed headers, unknown sections, or counts that
/// do not match the declared totals.
pub fn read_data_string(text: &str, style: AtomStyle) -> Result<(SimBox, AtomStore)> {
    let bad = |reason: String| CoreError::InvalidParameter {
        name: "read_data",
        reason,
    };
    let mut natoms = 0usize;
    let mut ntypes = 0usize;
    let mut bounds = [[0.0f64; 2]; 3];
    let mut lines = text.lines().peekable();
    // Skip the title line.
    lines.next();

    // Header: read until the first named section.
    let section_names = [
        "Masses",
        "Atoms",
        "Velocities",
        "Bonds",
        "Angles",
        "Dihedrals",
    ];
    let mut section: Option<String> = None;
    for line in lines.by_ref() {
        let line = line.split('#').next().unwrap_or("").trim().to_string();
        if line.is_empty() {
            continue;
        }
        if section_names.iter().any(|s| line.starts_with(s)) {
            section = Some(line);
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [n, "atoms"] => natoms = n.parse().map_err(|_| bad(format!("bad atom count {n}")))?,
            [n, "atom", "types"] => {
                ntypes = n.parse().map_err(|_| bad(format!("bad type count {n}")))?
            }
            [lo, hi, "xlo", "xhi"] => {
                bounds[0] = [
                    lo.parse().map_err(|_| bad("bad xlo".into()))?,
                    hi.parse().map_err(|_| bad("bad xhi".into()))?,
                ]
            }
            [lo, hi, "ylo", "yhi"] => {
                bounds[1] = [
                    lo.parse().map_err(|_| bad("bad ylo".into()))?,
                    hi.parse().map_err(|_| bad("bad yhi".into()))?,
                ]
            }
            [lo, hi, "zlo", "zhi"] => {
                bounds[2] = [
                    lo.parse().map_err(|_| bad("bad zlo".into()))?,
                    hi.parse().map_err(|_| bad("bad zhi".into()))?,
                ]
            }
            // Bond/angle/dihedral counts and types: tolerated, re-derived.
            [_, "bonds"]
            | [_, "angles"]
            | [_, "dihedrals"]
            | [_, "bond", "types"]
            | [_, "angle", "types"]
            | [_, "dihedral", "types"] => {}
            _ => return Err(bad(format!("unrecognized header line {line:?}"))),
        }
    }
    if natoms == 0 {
        return Err(bad("no atoms declared".into()));
    }
    let bx = SimBox::new(
        Vec3::new(bounds[0][0], bounds[1][0], bounds[2][0]),
        Vec3::new(bounds[0][1], bounds[1][1], bounds[2][1]),
    )?;

    let mut atoms = AtomStore::with_capacity(natoms);
    let mut masses = vec![1.0f64; ntypes.max(1)];
    // Pre-fill atoms so sections can arrive in any order.
    let mut x = vec![Vec3::<f64>::zero(); natoms];
    let mut v = vec![Vec3::<f64>::zero(); natoms];
    let mut kind = vec![0u32; natoms];
    let mut charge = vec![0.0f64; natoms];
    let mut molecule = vec![0u32; natoms];
    let mut bonds: Vec<(u32, u32, u32)> = Vec::new();
    let mut angles: Vec<(u32, u32, u32, u32)> = Vec::new();
    let mut dihedrals: Vec<(u32, u32, u32, u32, u32)> = Vec::new();

    while let Some(sec) = section.take() {
        let name = sec.split_whitespace().next().unwrap_or("").to_string();
        // Body lines until the next section or EOF.
        for line in lines.by_ref() {
            let raw = line.split('#').next().unwrap_or("").trim();
            if raw.is_empty() {
                continue;
            }
            if section_names.iter().any(|s| raw.starts_with(s)) {
                section = Some(raw.to_string());
                break;
            }
            let p: Vec<&str> = raw.split_whitespace().collect();
            let f = |s: &str| -> Result<f64> {
                s.parse()
                    .map_err(|_| bad(format!("bad number {s:?} in {name}")))
            };
            let idx = |s: &str| -> Result<usize> {
                let one: usize = s
                    .parse()
                    .map_err(|_| bad(format!("bad id {s:?} in {name}")))?;
                if one == 0 || one > natoms {
                    return Err(bad(format!("id {one} out of range in {name}")));
                }
                Ok(one - 1)
            };
            match name.as_str() {
                "Masses" => {
                    let t: usize = idx(p[0]).map_or_else(
                        |_| {
                            p[0].parse::<usize>()
                                .map(|v| v - 1)
                                .map_err(|_| bad("bad type".into()))
                        },
                        Ok,
                    )?;
                    if t >= masses.len() {
                        masses.resize(t + 1, 1.0);
                    }
                    masses[t] = f(p[1])?;
                }
                "Atoms" => {
                    let i = idx(p[0])?;
                    match style {
                        AtomStyle::Atomic => {
                            kind[i] = f(p[1])? as u32 - 1;
                            x[i] = Vec3::new(f(p[2])?, f(p[3])?, f(p[4])?);
                        }
                        AtomStyle::Charge => {
                            kind[i] = f(p[1])? as u32 - 1;
                            charge[i] = f(p[2])?;
                            x[i] = Vec3::new(f(p[3])?, f(p[4])?, f(p[5])?);
                        }
                        AtomStyle::Full => {
                            molecule[i] = f(p[1])? as u32 - 1;
                            kind[i] = f(p[2])? as u32 - 1;
                            charge[i] = f(p[3])?;
                            x[i] = Vec3::new(f(p[4])?, f(p[5])?, f(p[6])?);
                        }
                    }
                }
                "Velocities" => {
                    let i = idx(p[0])?;
                    v[i] = Vec3::new(f(p[1])?, f(p[2])?, f(p[3])?);
                }
                "Bonds" => bonds.push((f(p[1])? as u32 - 1, idx(p[2])? as u32, idx(p[3])? as u32)),
                "Angles" => angles.push((
                    f(p[1])? as u32 - 1,
                    idx(p[2])? as u32,
                    idx(p[3])? as u32,
                    idx(p[4])? as u32,
                )),
                "Dihedrals" => dihedrals.push((
                    f(p[1])? as u32 - 1,
                    idx(p[2])? as u32,
                    idx(p[3])? as u32,
                    idx(p[4])? as u32,
                    idx(p[5])? as u32,
                )),
                other => return Err(bad(format!("unsupported section {other:?}"))),
            }
        }
        if section.is_none() {
            break;
        }
    }

    for i in 0..natoms {
        atoms.push_full(x[i], v[i], kind[i], charge[i], 0.0, molecule[i]);
    }
    atoms.set_masses(masses);
    for (k, i, j) in bonds {
        atoms.add_bond(k, i, j);
    }
    for (t, i, j, k) in angles {
        atoms.add_angle(t, i, j, k);
    }
    for (t, i, j, k, l) in dihedrals {
        atoms.add_dihedral(t, i, j, k, l);
    }
    atoms.validate()?;
    Ok((bx, atoms))
}

/// Reads a LAMMPS data file from disk.
///
/// # Errors
///
/// Propagates I/O and parse failures.
pub fn read_data(path: &Path, style: AtomStyle) -> Result<(SimBox, AtomStore)> {
    let text = std::fs::read_to_string(path).map_err(|e| CoreError::InvalidParameter {
        name: "read_data",
        reason: format!("{}: {e}", path.display()),
    })?;
    read_data_string(&text, style)
}

/// An XYZ trajectory dump writer (one frame per [`XyzDump::write_frame`]).
#[derive(Debug)]
pub struct XyzDump<W: std::io::Write> {
    out: W,
    frames: usize,
}

impl XyzDump<std::io::BufWriter<std::fs::File>> {
    /// Creates a dump writing to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &Path) -> Result<Self> {
        let file = std::fs::File::create(path).map_err(|e| CoreError::InvalidParameter {
            name: "dump",
            reason: format!("{}: {e}", path.display()),
        })?;
        Ok(XyzDump {
            out: std::io::BufWriter::new(file),
            frames: 0,
        })
    }
}

impl<W: std::io::Write> XyzDump<W> {
    /// Creates a dump over any writer (pass `&mut buf` for in-memory use).
    pub fn new(out: W) -> Self {
        XyzDump { out, frames: 0 }
    }

    /// Frames written so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Appends one frame (element symbols default to `T<type>`).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_frame(&mut self, atoms: &AtomStore, step: u64) -> Result<()> {
        let werr = |e: std::io::Error| CoreError::InvalidParameter {
            name: "dump",
            reason: e.to_string(),
        };
        writeln!(self.out, "{}", atoms.len()).map_err(werr)?;
        writeln!(self.out, "Atoms. Timestep: {step}").map_err(werr)?;
        for i in 0..atoms.len() {
            let p = atoms.x()[i];
            writeln!(
                self.out,
                "T{} {:.6} {:.6} {:.6}",
                atoms.kinds()[i],
                p.x,
                p.y,
                p.z
            )
            .map_err(werr)?;
        }
        self.frames += 1;
        Ok(())
    }
}

/// A [`BufRead`]-based XYZ frame counter/reader for verification.
///
/// # Errors
///
/// Returns an error on malformed frame headers.
pub fn count_xyz_frames<R: BufRead>(reader: R) -> Result<usize> {
    let mut lines = reader.lines();
    let mut frames = 0usize;
    while let Some(first) = lines.next() {
        let first = first.map_err(|e| CoreError::InvalidParameter {
            name: "dump",
            reason: e.to_string(),
        })?;
        if first.trim().is_empty() {
            continue;
        }
        let n: usize = first
            .trim()
            .parse()
            .map_err(|_| CoreError::InvalidParameter {
                name: "dump",
                reason: format!("bad frame header {first:?}"),
            })?;
        // Comment line + n atom lines.
        for _ in 0..=n {
            lines.next();
        }
        frames += 1;
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::V3 as _V3;

    fn sample_system() -> (SimBox, AtomStore) {
        let bx = SimBox::orthogonal(4.0, 5.0, 6.0);
        let mut atoms = AtomStore::new();
        atoms.push_full(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.1, 0.2, 0.3),
            0,
            -0.5,
            0.0,
            0,
        );
        atoms.push_full(
            Vec3::new(2.5, 1.5, 0.5),
            Vec3::new(-0.1, 0.0, 0.4),
            1,
            0.5,
            0.0,
            0,
        );
        atoms.push_full(Vec3::new(3.0, 4.0, 5.0), Vec3::zero(), 0, 0.0, 0.0, 1);
        atoms.set_masses(vec![1.5, 2.5]);
        atoms.add_bond(0, 0, 1);
        atoms.add_angle(0, 0, 1, 2);
        atoms.add_dihedral(0, 0, 1, 2, 0);
        (bx, atoms)
    }

    #[test]
    fn data_roundtrip_full_style() {
        let (bx, atoms) = sample_system();
        let text = write_data_string(&bx, &atoms, AtomStyle::Full);
        let (bx2, atoms2) = read_data_string(&text, AtomStyle::Full).unwrap();
        assert!((bx.lengths() - bx2.lengths()).norm() < 1e-9);
        assert_eq!(atoms.len(), atoms2.len());
        for i in 0..atoms.len() {
            assert!((atoms.x()[i] - atoms2.x()[i]).norm() < 1e-9);
            assert!((atoms.v()[i] - atoms2.v()[i]).norm() < 1e-9);
            assert_eq!(atoms.kinds()[i], atoms2.kinds()[i]);
            assert!((atoms.charges()[i] - atoms2.charges()[i]).abs() < 1e-12);
            assert_eq!(atoms.molecules()[i], atoms2.molecules()[i]);
        }
        assert_eq!(atoms.bonds(), atoms2.bonds());
        assert_eq!(atoms.angles(), atoms2.angles());
        assert_eq!(atoms.dihedrals(), atoms2.dihedrals());
        assert_eq!(atoms.masses_by_type(), atoms2.masses_by_type());
    }

    #[test]
    fn data_roundtrip_atomic_style() {
        let (bx, atoms) = sample_system();
        let text = write_data_string(&bx, &atoms, AtomStyle::Atomic);
        let (_, atoms2) = read_data_string(&text, AtomStyle::Atomic).unwrap();
        assert_eq!(atoms2.len(), 3);
        // Charges are not carried by atomic style.
        assert!(atoms2.charges().iter().all(|&q| q == 0.0));
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(read_data_string("title\n\nnot a header\n", AtomStyle::Atomic).is_err());
        assert!(read_data_string("title\n\n0 atoms\n", AtomStyle::Atomic).is_err());
    }

    #[test]
    fn read_rejects_out_of_range_ids() {
        let text = "t\n\n1 atoms\n1 atom types\n0 1 xlo xhi\n0 1 ylo yhi\n0 1 zlo zhi\n\nAtoms\n\n5 1 0 0 0\n";
        assert!(read_data_string(text, AtomStyle::Atomic).is_err());
    }

    #[test]
    fn xyz_dump_counts_frames() {
        let (_, atoms) = sample_system();
        let mut buf = Vec::new();
        {
            let mut dump = XyzDump::new(&mut buf);
            dump.write_frame(&atoms, 0).unwrap();
            dump.write_frame(&atoms, 100).unwrap();
            assert_eq!(dump.frames(), 2);
        }
        let frames = count_xyz_frames(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(frames, 2);
    }

    #[test]
    fn deck_roundtrips_through_data_file() {
        // The real 32k LJ deck survives a write/read cycle.
        let mut deck = crate::build_deck(crate::Benchmark::Lj, 1, 3).unwrap();
        deck.simulation.run(2).unwrap();
        let bx = *deck.simulation.sim_box();
        let text = write_data_string(&bx, deck.simulation.atoms(), AtomStyle::Atomic);
        let (bx2, atoms2) = read_data_string(&text, AtomStyle::Atomic).unwrap();
        assert_eq!(atoms2.len(), 32_000);
        assert!((bx2.volume() - bx.volume()).abs() < 1e-6);
        let _unused: _V3 = atoms2.x()[0];
    }
}
