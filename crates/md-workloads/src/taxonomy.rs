//! The suite taxonomy — the data behind the paper's Table 2.

use crate::Benchmark;

/// Static characteristics of one benchmark deck (one Table 2 column).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeckInfo {
    /// Benchmark identity.
    pub benchmark: &'static str,
    /// Smallest deck size in atoms.
    pub min_atoms: usize,
    /// Force-field name as LAMMPS spells it.
    pub force_field: &'static str,
    /// Cutoff, with units (Å or σ).
    pub cutoff: &'static str,
    /// Neighbor skin, with units.
    pub neighbor_skin: &'static str,
    /// Expected neighbors per atom (paper value).
    pub neighbors_per_atom: f64,
    /// `pair_modify` setting, if any.
    pub pair_modify: &'static str,
    /// `kspace_style`, if any.
    pub kspace_style: &'static str,
    /// K-space relative error threshold, if any.
    pub kspace_error: &'static str,
    /// Time-integration ensemble.
    pub integration: &'static str,
}

/// The full Table 2, in the paper's column order.
pub const TAXONOMY: [DeckInfo; 5] = [
    DeckInfo {
        benchmark: "rhodo",
        min_atoms: 32_000,
        force_field: "CHARMM",
        cutoff: "8.0-10.0 A",
        neighbor_skin: "2.0 A",
        neighbors_per_atom: 440.0,
        pair_modify: "mix arithmetic",
        kspace_style: "pppm",
        kspace_error: "1.0e-4",
        integration: "NPT",
    },
    DeckInfo {
        benchmark: "lj",
        min_atoms: 32_000,
        force_field: "lj",
        cutoff: "2.5 sigma",
        neighbor_skin: "0.3 sigma",
        neighbors_per_atom: 55.0,
        pair_modify: "-",
        kspace_style: "-",
        kspace_error: "-",
        integration: "NVE",
    },
    DeckInfo {
        benchmark: "chain",
        min_atoms: 32_000,
        force_field: "lj",
        cutoff: "1.12 sigma",
        neighbor_skin: "0.4 sigma",
        neighbors_per_atom: 5.0,
        pair_modify: "-",
        kspace_style: "-",
        kspace_error: "-",
        integration: "NVE",
    },
    DeckInfo {
        benchmark: "eam",
        min_atoms: 32_000,
        force_field: "EAM",
        cutoff: "4.95 A",
        neighbor_skin: "1.0 A",
        neighbors_per_atom: 45.0,
        pair_modify: "-",
        kspace_style: "-",
        kspace_error: "-",
        integration: "NVE",
    },
    DeckInfo {
        benchmark: "chute",
        min_atoms: 32_000,
        force_field: "gran/hooke/history",
        cutoff: "1.0 sigma",
        neighbor_skin: "0.1 sigma",
        neighbors_per_atom: 7.0,
        pair_modify: "-",
        kspace_style: "-",
        kspace_error: "-",
        integration: "NVE",
    },
];

/// The taxonomy row of one benchmark.
pub fn info(benchmark: Benchmark) -> DeckInfo {
    TAXONOMY
        .iter()
        .find(|d| d.benchmark == benchmark.name())
        .copied()
        .expect("every benchmark has a taxonomy row")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_has_a_row() {
        for b in Benchmark::ALL {
            let row = info(b);
            assert_eq!(row.benchmark, b.name());
            assert_eq!(row.min_atoms, 32_000);
        }
    }

    #[test]
    fn only_rhodo_has_kspace() {
        for row in TAXONOMY {
            if row.benchmark == "rhodo" {
                assert_eq!(row.kspace_style, "pppm");
            } else {
                assert_eq!(row.kspace_style, "-");
            }
        }
    }

    #[test]
    fn neighbor_ordering_matches_paper() {
        // rhodo (440) >> lj (55) > eam (45) > chute (7) > chain (5).
        let npa = |name: &str| {
            TAXONOMY
                .iter()
                .find(|d| d.benchmark == name)
                .expect("row")
                .neighbors_per_atom
        };
        assert!(npa("rhodo") > npa("lj"));
        assert!(npa("lj") > npa("eam"));
        assert!(npa("eam") > npa("chute"));
        assert!(npa("chute") > npa("chain"));
    }
}
