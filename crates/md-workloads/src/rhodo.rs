//! The Rhodopsin benchmark: an all-atom solvated biomolecular system
//! (LAMMPS `bench/in.rhodo`), reproduced here as a *synthetic* bio-like deck.
//!
//! The original simulates the rhodopsin protein in a solvated lipid bilayer
//! (CHARMM force field, PPPM at 1e-4, NPT, SHAKE) — input data we cannot
//! redistribute. The substitute preserves every workload-relevant property
//! (see DESIGN.md): biological atom density 0.1 atoms/Å³, 8–10 Å LJ
//! switching with 10 Å Coulomb cutoff and 2 Å skin (≈440 neighbors/atom),
//! partial charges with PPPM long-range electrostatics, SHAKE-constrained
//! hydrogen-like bonds, bonded terms including dihedrals, and Nose-Hoover
//! NPT integration at a 2 fs timestep.

use md_core::compute::seed_velocities;
use md_core::constraint::{Shake, ShakeParams};
use md_core::integrate::{NoseHooverNpt, NptParams};
use md_core::{AtomStore, KspaceStyle, Result, SimBox, Simulation, Threads, UnitSystem, Vec3, V3};
use md_kspace::Pppm;
use md_potentials::LjCharmmCoulLong;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inner LJ switching radius (Å).
pub const INNER_LJ: f64 = 8.0;
/// Outer LJ cutoff (Å).
pub const OUTER_LJ: f64 = 10.0;
/// Coulomb real-space cutoff (Å).
pub const CUT_COUL: f64 = 10.0;
/// Neighbor skin (Å).
pub const SKIN: f64 = 2.0;
/// Default PPPM relative force-error threshold (Table 2).
pub const KSPACE_ERROR: f64 = 1.0e-4;
/// Timestep (fs).
pub const DT: f64 = 2.0;
/// NPT temperature set point (K).
pub const TEMPERATURE: f64 = 300.0;
/// NPT pressure set point (atm).
pub const PRESSURE: f64 = 1.0;

/// Water O-H constrained bond length (Å).
const R_OH: f64 = 0.9572;
/// Water H-H constrained distance (rigid TIP3P geometry, Å).
const R_HH: f64 = 1.5139;

/// Base lattice: 16 × 20 × 34 molecule sites; 320 chains of 10 beads each
/// occupy 4 stacked sites, 9600 waters occupy one site each
/// (3·9600 + 10·320 = 32000 atoms).
const BASE_DIMS: (usize, usize, usize) = (16, 20, 34);
const CHAINS_PER_CELL: usize = 320;
const CHAIN_BEADS: usize = 10;

/// Site spacing that realizes 0.1 atoms/Å³.
fn spacing() -> f64 {
    // atoms per site-volume: 32000 atoms in 16·20·34 = 10880 sites.
    let sites = (BASE_DIMS.0 * BASE_DIMS.1 * BASE_DIMS.2) as f64;
    (32_000.0 / (0.1 * sites)).powf(1.0 / 3.0)
}

/// Internal: builds atoms + topology + constraint list.
fn assemble(scale: usize, seed: u64) -> (SimBox, AtomStore, Vec<ShakeParams>) {
    let (nx, ny, nz) = (
        BASE_DIMS.0 * scale,
        BASE_DIMS.1 * scale,
        BASE_DIMS.2 * scale,
    );
    let a = spacing();
    let bx = SimBox::orthogonal(nx as f64 * a, ny as f64 * a, nz as f64 * a);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut atoms = AtomStore::with_capacity(32_000 * scale.pow(3));
    let mut shake = Vec::new();
    // Types: 0 = water O, 1 = water H, 2 = chain bead.
    // Choose chain columns deterministically: chains stack along z in runs
    // of 4 sites; distribute them over the first columns of the grid.
    let nchains = CHAINS_PER_CELL * scale.pow(3);
    let columns = nx * ny;
    let chain_cols: usize = nchains.div_ceil(nz / 4);
    let mut chains_placed = 0usize;
    let mut molecule: u32 = 0;
    for iy in 0..ny {
        for ix in 0..nx {
            let col = iy * nx + ix;
            let col_is_chain = col < chain_cols;
            let mut iz = 0usize;
            while iz < nz {
                let cx = (ix as f64 + 0.5) * a;
                let cy = (iy as f64 + 0.5) * a;
                let cz = (iz as f64 + 0.5) * a;
                if col_is_chain && chains_placed < nchains && iz + 4 <= nz {
                    // A 10-bead zigzag chain centered in its 4-stacked-site
                    // block: dz = 1 Å leaves a full lattice gap (~3.2 Å) to
                    // the water molecules above and below.
                    let dz = 1.0;
                    let block_center = (iz as f64 + 2.0) * a;
                    let z0 = block_center - 0.5 * dz * (CHAIN_BEADS - 1) as f64;
                    let first = atoms.len() as u32;
                    for b in 0..CHAIN_BEADS {
                        let off = if b % 2 == 0 { 0.3 } else { -0.3 };
                        let q = if b % 2 == 0 { 0.25 } else { -0.25 };
                        atoms.push_full(
                            Vec3::new(cx + off, cy, z0 + b as f64 * dz),
                            Vec3::zero(),
                            2,
                            q,
                            0.0,
                            molecule,
                        );
                    }
                    for b in 0..CHAIN_BEADS as u32 - 1 {
                        atoms.add_bond(0, first + b, first + b + 1);
                    }
                    for b in 0..CHAIN_BEADS as u32 - 2 {
                        atoms.add_angle(0, first + b, first + b + 1, first + b + 2);
                    }
                    for b in 0..CHAIN_BEADS as u32 - 3 {
                        atoms.add_dihedral(
                            0,
                            first + b,
                            first + b + 1,
                            first + b + 2,
                            first + b + 3,
                        );
                    }
                    molecule += 1;
                    chains_placed += 1;
                    iz += 4;
                } else {
                    // A rigid water: O plus two H, orientation jittered.
                    let o = atoms.len() as u32;
                    let theta: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
                    let half = 104.52f64.to_radians() / 2.0;
                    let dir1 = Vec3::new(
                        (theta + half).cos() * R_OH,
                        (theta + half).sin() * R_OH,
                        0.0,
                    );
                    let dir2 = Vec3::new(
                        (theta - half).cos() * R_OH,
                        (theta - half).sin() * R_OH,
                        0.0,
                    );
                    let xo = Vec3::new(cx, cy, cz);
                    atoms.push_full(xo, Vec3::zero(), 0, -0.834, 0.0, molecule);
                    atoms.push_full(xo + dir1, Vec3::zero(), 1, 0.417, 0.0, molecule);
                    atoms.push_full(xo + dir2, Vec3::zero(), 1, 0.417, 0.0, molecule);
                    atoms.add_bond(1, o, o + 1);
                    atoms.add_bond(1, o, o + 2);
                    atoms.add_angle(1, o + 1, o, o + 2);
                    shake.push(ShakeParams {
                        i: o,
                        j: o + 1,
                        length: R_OH,
                    });
                    shake.push(ShakeParams {
                        i: o,
                        j: o + 2,
                        length: R_OH,
                    });
                    shake.push(ShakeParams {
                        i: o + 1,
                        j: o + 2,
                        length: R_HH,
                    });
                    molecule += 1;
                    iz += 1;
                }
            }
        }
    }
    let _ = columns;
    // O, H, chain bead.
    atoms.set_masses(vec![15.9994, 1.008, 12.011]);
    // CHARMM exclusions: 1-2, 1-3, 1-4 all excluded.
    atoms.build_exclusions(true, true, true);
    (bx, atoms, shake)
}

/// Positions and box at replication factor `scale`.
pub fn positions(scale: usize, seed: u64) -> (SimBox, Vec<V3>) {
    let (bx, atoms, _) = assemble(scale, seed);
    (bx, atoms.x().to_vec())
}

/// Builds the runnable deck at the default 1e-4 k-space error threshold.
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn build(scale: usize, seed: u64) -> Result<Simulation> {
    build_with(scale, seed, Threads::from_env())
}

/// Builds the runnable deck with an explicit threading knob (CHARMM pair
/// kernel, neighbor builds, and the PPPM solver all thread).
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn build_with(scale: usize, seed: u64, threads: Threads) -> Result<Simulation> {
    build_full(scale, seed, KSPACE_ERROR, threads)
}

/// Builds the deck with an explicit k-space error threshold (the paper's
/// Section 7 sweeps 1e-4 … 1e-7).
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn build_with_error(scale: usize, seed: u64, kspace_error: f64) -> Result<Simulation> {
    build_full(scale, seed, kspace_error, Threads::from_env())
}

fn build_full(scale: usize, seed: u64, kspace_error: f64, threads: Threads) -> Result<Simulation> {
    let (bx, mut atoms, shake) = assemble(scale, seed);
    let units = UnitSystem::real();
    seed_velocities(&mut atoms, &units, TEMPERATURE, seed);

    let mut pair = LjCharmmCoulLong::new(
        3,
        &[
            (0, 0.1521, 3.1507), // water O
            (1, 0.0460, 1.0),    // water H (small core)
            (2, 0.0700, 3.55),   // chain bead
        ],
        INNER_LJ,
        OUTER_LJ,
        CUT_COUL,
    )?;
    let mut pppm = Pppm::new(CUT_COUL, kspace_error, 5);
    pppm.set_qqr2e(units.qqr2e);
    pppm.setup(&bx, atoms.charges())?;
    pair.set_g_ewald(pppm.g_ewald());

    Simulation::builder(bx, atoms, units)
        .pair(crate::wrap_pair(pair, threads)?)
        .threads(threads)
        .bond(Box::new(md_potentials::HarmonicBond::new(&[
            (300.0, 1.166), // chain backbone (zigzag: sqrt(1.0² + 0.6²))
            (450.0, R_OH),  // water O-H (SHAKE keeps it rigid; term is benign)
        ])?))
        .angle(Box::new(md_potentials::HarmonicAngle::new(&[
            (40.0, 120.0),  // chain
            (55.0, 104.52), // water
        ])?))
        .dihedral(Box::new(md_potentials::CharmmDihedral::new(&[(
            1.0, 2, 180.0,
        )])?))
        .kspace(Box::new(pppm))
        .integrator(Box::new(NoseHooverNpt::new(NptParams {
            t_target: TEMPERATURE,
            t_damp: 100.0,
            p_target: PRESSURE,
            p_damp: 1000.0,
        })?))
        .shake(Shake::new(shake, 1e-6, 100))
        .skin(SKIN)
        .dt(DT)
        .thermo_every(50)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_size_is_32k_and_neutral() {
        let (bx, atoms, shake) = assemble(1, 9);
        assert_eq!(atoms.len(), 32_000);
        let qsum: f64 = atoms.charges().iter().sum();
        assert!(qsum.abs() < 1e-9, "net charge {qsum}");
        // Density 0.1 atoms/Å³.
        let rho = atoms.len() as f64 / bx.volume();
        assert!((rho - 0.1).abs() < 1e-3, "density {rho}");
        // 3 constraints per water.
        assert_eq!(shake.len() % 3, 0);
    }

    #[test]
    fn topology_counts() {
        let (_, atoms, _) = assemble(1, 9);
        // 320 chains: 9 bonds, 8 angles, 7 dihedrals each;
        // 9600 waters: 2 bonds, 1 angle each.
        assert_eq!(atoms.bonds().len(), 320 * 9 + 9600 * 2);
        assert_eq!(atoms.angles().len(), 320 * 8 + 9600);
        assert_eq!(atoms.dihedrals().len(), 320 * 7);
    }

    #[test]
    fn neighbor_count_matches_table2() {
        // Table 2: ~440 neighbors/atom within the 10 Å cutoff at 0.1 Å⁻³
        // (the skin adds more; accept a generous band).
        let sim = build(1, 9).unwrap();
        let nbr = sim.neighbor_list().unwrap().stats().neighbors_within_cutoff;
        assert!((350.0..=520.0).contains(&nbr), "neighbors/atom {nbr}");
    }

    #[test]
    fn deck_runs_with_shake_and_pppm() {
        let mut sim = build(1, 9).unwrap();
        sim.run(3).unwrap();
        // SHAKE held the water geometry.
        let atoms = sim.atoms();
        let bx = *sim.sim_box();
        // First water of the deck is the first non-chain molecule; find an
        // O (type 0) and check its two H neighbors by index.
        let o = atoms.kinds().iter().position(|&t| t == 0).expect("a water");
        let r1 = bx.min_image(atoms.x()[o], atoms.x()[o + 1]).norm();
        assert!((r1 - R_OH).abs() < 1e-3, "O-H length {r1}");
        // K-space was active.
        assert!(sim.energy().ecoul.abs() > 0.0);
    }
}
