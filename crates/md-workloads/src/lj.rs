//! The LJ benchmark: a 3D Lennard-Jones melt (LAMMPS `bench/in.lj`).
//!
//! 32000·s³ atoms on an fcc lattice at reduced density 0.8442, temperature
//! 1.44, `lj/cut` at 2.5σ with a 0.3σ skin, NVE integration, dt = 0.005τ.

use crate::lattice::{fcc, fcc_lattice_constant};
use md_core::compute::seed_velocities;
use md_core::{AtomStore, Result, SimBox, Simulation, Threads, UnitSystem, Vec3, V3};
use md_potentials::LjCut;

/// Reduced density of the melt.
pub const DENSITY: f64 = 0.8442;
/// Initial reduced temperature.
pub const TEMPERATURE: f64 = 1.44;
/// Pair cutoff in σ.
pub const CUTOFF: f64 = 2.5;
/// Neighbor skin in σ.
pub const SKIN: f64 = 0.3;
/// Timestep in τ.
pub const DT: f64 = 0.005;

/// Positions and box at replication factor `scale`.
pub fn positions(scale: usize) -> (SimBox, Vec<V3>) {
    let cells = 20 * scale;
    fcc(cells, cells, cells, fcc_lattice_constant(DENSITY))
}

/// Builds the runnable deck.
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn build(scale: usize, seed: u64) -> Result<Simulation> {
    build_with(scale, seed, Threads::from_env())
}

/// Builds the runnable deck with an explicit threading knob.
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn build_with(scale: usize, seed: u64, threads: Threads) -> Result<Simulation> {
    let (bx, x) = positions(scale);
    let mut atoms = AtomStore::with_capacity(x.len());
    for p in x {
        atoms.push(p, Vec3::zero(), 0);
    }
    atoms.set_masses(vec![1.0]);
    let units = UnitSystem::lj();
    seed_velocities(&mut atoms, &units, TEMPERATURE, seed);
    let lj = LjCut::new(1, &[(0, 0, 1.0, 1.0)], CUTOFF)?;
    Simulation::builder(bx, atoms, units)
        .pair(crate::wrap_pair(lj, threads)?)
        .threads(threads)
        .skin(SKIN)
        .dt(DT)
        .thermo_every(100)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_size_is_32k() {
        let (bx, x) = positions(1);
        assert_eq!(x.len(), 32_000);
        assert!((x.len() as f64 / bx.volume() - DENSITY).abs() < 1e-9);
    }

    #[test]
    fn melt_runs_and_conserves_energy() {
        let mut sim = build(1, 7).unwrap();
        let e0 = sim.thermo().total_energy();
        sim.run(20).unwrap();
        let e1 = sim.thermo().total_energy();
        let rel = ((e1 - e0) / e0).abs();
        // Plain truncated (unshifted) LJ drifts slightly as pairs cross the
        // cutoff, as in LAMMPS; require better than half a percent.
        assert!(rel < 5e-3, "energy drift {rel} over 20 steps");
    }

    #[test]
    fn neighbor_count_matches_table2() {
        // Table 2: ~55 neighbors/atom for the LJ melt (cutoff + skin).
        let sim = build(1, 7).unwrap();
        let nbr = sim.neighbor_list().unwrap().stats().neighbors_within_cutoff;
        assert!((45.0..=65.0).contains(&nbr), "neighbors/atom {nbr}");
    }

    #[test]
    fn initial_temperature_is_144() {
        let sim = build(1, 3).unwrap();
        assert!((sim.thermo().temperature - TEMPERATURE).abs() < 1e-6);
    }
}
