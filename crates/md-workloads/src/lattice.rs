//! Lattice generators for the benchmark decks.

use md_core::{SimBox, Vec3, V3};

/// Generates an fcc lattice of `nx × ny × nz` conventional cells with
/// lattice constant `a`, returning the box and the 4·nx·ny·nz positions.
pub fn fcc(nx: usize, ny: usize, nz: usize, a: f64) -> (SimBox, Vec<V3>) {
    let bx = SimBox::orthogonal(nx as f64 * a, ny as f64 * a, nz as f64 * a);
    let basis = [
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(0.5, 0.5, 0.0),
        Vec3::new(0.5, 0.0, 0.5),
        Vec3::new(0.0, 0.5, 0.5),
    ];
    let mut x = Vec::with_capacity(4 * nx * ny * nz);
    for cx in 0..nx {
        for cy in 0..ny {
            for cz in 0..nz {
                for b in basis {
                    x.push(Vec3::new(
                        (cx as f64 + b.x) * a,
                        (cy as f64 + b.y) * a,
                        (cz as f64 + b.z) * a,
                    ));
                }
            }
        }
    }
    (bx, x)
}

/// Generates a simple-cubic lattice of `nx × ny × nz` sites with spacing `a`,
/// offset half a spacing from the origin.
pub fn simple_cubic(nx: usize, ny: usize, nz: usize, a: f64) -> (SimBox, Vec<V3>) {
    let bx = SimBox::orthogonal(nx as f64 * a, ny as f64 * a, nz as f64 * a);
    let mut x = Vec::with_capacity(nx * ny * nz);
    for cz in 0..nz {
        for cy in 0..ny {
            for cx in 0..nx {
                x.push(Vec3::new(
                    (cx as f64 + 0.5) * a,
                    (cy as f64 + 0.5) * a,
                    (cz as f64 + 0.5) * a,
                ));
            }
        }
    }
    (bx, x)
}

/// The fcc lattice constant that realizes a reduced density `rho` (atoms per
/// unit volume): `a = (4/ρ)^{1/3}`.
pub fn fcc_lattice_constant(rho: f64) -> f64 {
    (4.0 / rho).powf(1.0 / 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcc_density_matches_request() {
        let rho = 0.8442;
        let a = fcc_lattice_constant(rho);
        let (bx, x) = fcc(5, 5, 5, a);
        let measured = x.len() as f64 / bx.volume();
        assert!((measured - rho).abs() < 1e-12);
        assert_eq!(x.len(), 500);
    }

    #[test]
    fn fcc_nearest_neighbor_distance() {
        let (bx, x) = fcc(3, 3, 3, 1.0);
        let mut dmin = f64::INFINITY;
        for i in 0..x.len() {
            for j in (i + 1)..x.len() {
                dmin = dmin.min(bx.min_image(x[i], x[j]).norm());
            }
        }
        assert!((dmin - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn simple_cubic_counts_and_bounds() {
        let (bx, x) = simple_cubic(4, 5, 6, 2.0);
        assert_eq!(x.len(), 120);
        for p in &x {
            assert!(bx.contains(*p));
        }
    }

    #[test]
    fn all_fcc_sites_inside_box() {
        let (bx, x) = fcc(4, 4, 4, 1.7);
        assert!(x.iter().all(|p| bx.contains(*p)));
    }
}
