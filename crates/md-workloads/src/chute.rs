//! The Chute benchmark: granular chute flow (LAMMPS `bench/in.chute`).
//!
//! A bed of granular spheres on a 26°-inclined chute: gravity drives the
//! flow, a frozen bottom particle layer plus a Hookean granular wall confine
//! it, and the `gran/hooke/history` pair style tracks per-contact tangential
//! history. Periodic in x/y, fixed (shrink-wrapped in LAMMPS, walled here)
//! in z. This is the one benchmark without Newton's-third-law pair halving
//! and the one the reference GPU package cannot run.

use md_core::{AtomStore, Result, SimBox, Simulation, Threads, UnitSystem, Vec3, V3};
use md_potentials::{Freeze, GranHookeHistory, GranWall, Gravity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Normal spring constant.
pub const KN: f64 = 2000.0;
/// Normal damping.
pub const GAMMA_N: f64 = 50.0;
/// Coulomb friction coefficient.
pub const XMU: f64 = 0.5;
/// Particle diameter (reduced units).
pub const DIAMETER: f64 = 1.0;
/// Chute inclination (degrees).
pub const CHUTE_ANGLE: f64 = 26.0;
/// Timestep.
pub const DT: f64 = 0.0001;
/// Neighbor skin.
pub const SKIN: f64 = 0.1;

/// Base grid: 40 × 40 columns × 20 layers = 32000 particles.
const BASE_XY: usize = 40;
const BASE_LAYERS: usize = 20;

/// Positions and box at replication factor `scale` (jitter seeded).
pub fn positions(scale: usize, seed: u64) -> (SimBox, Vec<V3>) {
    let (nx, ny, nlayer) = (BASE_XY * scale, BASE_XY * scale, BASE_LAYERS * scale);
    // Modest head room above the bed: LAMMPS shrink-wraps the z boundary
    // around the flow, so the decomposition never owns large empty slabs.
    let lz = 1.25 * nlayer as f64;
    let bx = SimBox::orthogonal(nx as f64, ny as f64, lz).with_periodicity(true, true, false);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(nx * ny * nlayer);
    for layer in 0..nlayer {
        for iy in 0..ny {
            for ix in 0..nx {
                // Slight jitter breaks the crystalline symmetry; the bottom
                // (frozen) layer stays exact.
                let (jx, jy) = if layer == 0 {
                    (0.0, 0.0)
                } else {
                    (rng.gen::<f64>() * 0.1 - 0.05, rng.gen::<f64>() * 0.1 - 0.05)
                };
                x.push(Vec3::new(
                    ix as f64 + 0.5 + jx,
                    iy as f64 + 0.5 + jy,
                    0.5 + 0.95 * layer as f64,
                ));
            }
        }
    }
    (bx, x)
}

/// Builds the runnable deck.
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn build(scale: usize, seed: u64) -> Result<Simulation> {
    build_with(scale, seed, Threads::from_env())
}

/// Builds the runnable deck with an explicit threading knob. The granular
/// pair style mutates per-contact tangential history during `compute`, so
/// it is not chunk-safe and stays serial — only the neighbor-list builds
/// thread (which are pure-integer and bitwise invariant anyway).
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn build_with(scale: usize, seed: u64, threads: Threads) -> Result<Simulation> {
    let (bx, x) = positions(scale, seed);
    let nx = BASE_XY * scale;
    let ny = BASE_XY * scale;
    let mut atoms = AtomStore::with_capacity(x.len());
    for (i, p) in x.into_iter().enumerate() {
        // Layer 0 is the frozen base (type 1); the rest flows (type 0).
        let kind = if i < nx * ny { 1 } else { 0 };
        atoms.push_full(p, Vec3::zero(), kind, 0.0, 0.5 * DIAMETER, 0);
    }
    atoms.set_masses(vec![1.0, 1.0]);
    let units = UnitSystem::lj();
    let gran = GranHookeHistory::new(KN, GAMMA_N, XMU, DIAMETER)?;
    Simulation::builder(bx, atoms, units)
        .pair(Box::new(gran))
        .threads(threads)
        .fix(Box::new(Gravity::chute(1.0, CHUTE_ANGLE)))
        .fix(Box::new(GranWall::new(0.0, KN, GAMMA_N)))
        .fix(Box::new(Freeze::new(1)))
        .skin(SKIN)
        .dt(DT)
        .thermo_every(1000)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_size_is_32k() {
        let (_, x) = positions(1, 1);
        assert_eq!(x.len(), 32_000);
    }

    #[test]
    fn neighbor_count_matches_table2() {
        // Table 2: ~7 neighbors/atom (contact-range cutoff).
        let sim = build(1, 1).unwrap();
        let nbr = sim.neighbor_list().unwrap().stats().neighbors_per_atom;
        assert!((4.0..=12.0).contains(&nbr), "neighbors/atom {nbr}");
    }

    #[test]
    fn flow_starts_moving_downhill_while_base_stays_frozen() {
        let mut sim = build(1, 1).unwrap();
        sim.run(200).unwrap();
        let atoms = sim.atoms();
        let n_base = 40 * 40;
        // Frozen base: zero velocity.
        for i in 0..n_base {
            assert!(atoms.v()[i].norm() < 1e-12, "base particle {i} moved");
        }
        // Flowing particles drift along +x (gravity tilt direction).
        let mean_vx: f64 =
            atoms.v()[n_base..].iter().map(|v| v.x).sum::<f64>() / (atoms.len() - n_base) as f64;
        assert!(
            mean_vx > 0.0,
            "mean flow velocity {mean_vx} should be downhill"
        );
    }

    #[test]
    fn uses_full_neighbor_list() {
        use md_core::neighbor::NeighborListKind;
        let sim = build(1, 1).unwrap();
        assert_eq!(sim.neighbor_list().unwrap().kind(), NeighborListKind::Full);
    }
}
