//! The EAM benchmark: a copper metallic solid (LAMMPS `bench/in.eam`).
//!
//! 32000·s³ Cu atoms on the experimental fcc lattice (a = 3.615 Å) with the
//! Sutton-Chen analytic EAM, metal units, a 4.95 Å force cutoff and 1.0 Å
//! skin, velocities created at 1600 K, NVE integration at dt = 5 fs.

use crate::lattice::fcc;
use md_core::compute::seed_velocities;
use md_core::{AtomStore, Result, SimBox, Simulation, Threads, UnitSystem, Vec3, V3};
use md_potentials::SuttonChenEam;

/// Copper fcc lattice constant (Å).
pub const LATTICE_A: f64 = 3.615;
/// Initial temperature (K).
pub const TEMPERATURE: f64 = 1600.0;
/// Force cutoff (Å), per the paper's Table 2.
pub const CUTOFF: f64 = 4.95;
/// Neighbor skin (Å).
pub const SKIN: f64 = 1.0;
/// Timestep (ps).
pub const DT: f64 = 0.005;
/// Copper atomic mass (g/mol).
pub const MASS_CU: f64 = 63.546;

/// Positions and box at replication factor `scale`.
pub fn positions(scale: usize) -> (SimBox, Vec<V3>) {
    let cells = 20 * scale;
    fcc(cells, cells, cells, LATTICE_A)
}

/// Builds the runnable deck.
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn build(scale: usize, seed: u64) -> Result<Simulation> {
    build_with(scale, seed, Threads::from_env())
}

/// Builds the runnable deck with an explicit threading knob (the two-pass
/// EAM kernel threads per density/embedding/force chunk).
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn build_with(scale: usize, seed: u64, threads: Threads) -> Result<Simulation> {
    let (bx, x) = positions(scale);
    let mut atoms = AtomStore::with_capacity(x.len());
    for p in x {
        atoms.push(p, Vec3::zero(), 0);
    }
    atoms.set_masses(vec![MASS_CU]);
    let units = UnitSystem::metal();
    seed_velocities(&mut atoms, &units, TEMPERATURE, seed);
    Simulation::builder(bx, atoms, units)
        .pair(crate::wrap_pair(SuttonChenEam::copper(), threads)?)
        .threads(threads)
        .skin(SKIN)
        .dt(DT)
        .thermo_every(100)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_size_is_32k() {
        let (_, x) = positions(1);
        assert_eq!(x.len(), 32_000);
    }

    #[test]
    fn neighbor_count_matches_table2() {
        // Table 2: ~45 neighbors/atom (42 fcc shells within 4.95 Å + skin).
        let sim = build(1, 2).unwrap();
        let nbr = sim.neighbor_list().unwrap().stats().neighbors_within_cutoff;
        assert!((35.0..=55.0).contains(&nbr), "neighbors/atom {nbr}");
    }

    #[test]
    fn solid_stays_bound_under_dynamics() {
        let mut sim = build(1, 2).unwrap();
        let e0 = sim.thermo();
        assert!(e0.potential < 0.0, "cohesive lattice must bind");
        sim.run(10).unwrap();
        let e1 = sim.thermo();
        // Energy approximately conserved (NVE, 5 fs steps at 1600 K).
        let rel = ((e1.total_energy() - e0.total_energy()) / e0.total_energy()).abs();
        assert!(rel < 1e-2, "energy drift {rel}");
    }
}
