//! The Chain benchmark: a bead-spring polymer melt with 100-mer chains
//! (LAMMPS `bench/in.chain`, the Kremer-Grest model).
//!
//! FENE bonds with a WCA (purely repulsive LJ) pair interaction, NVE
//! integration with a Langevin thermostat at T\* = 1.0. Chains are laid out
//! as serpentine walks over a simple-cubic lattice at the melt density, so
//! every initial bond length sits safely inside the FENE well.

use md_core::compute::seed_velocities;
use md_core::{AtomStore, Result, SimBox, Simulation, Threads, UnitSystem, Vec3, V3};
use md_potentials::{FeneBond, LjCut};

/// Reduced bead density.
pub const DENSITY: f64 = 0.8442;
/// Beads per chain.
pub const CHAIN_LENGTH: usize = 100;
/// WCA cutoff, `2^{1/6}σ` (Table 2 rounds it to 1.12σ).
pub const CUTOFF: f64 = 1.122_462_048_309_373;
/// Neighbor skin in σ.
pub const SKIN: f64 = 0.4;
/// Timestep in τ.
pub const DT: f64 = 0.012;
/// Thermostat target temperature.
pub const TEMPERATURE: f64 = 1.0;
/// Langevin damping time.
pub const LANGEVIN_DAMP: f64 = 10.0;

/// Serpentine lattice walk: `50s × 40s × 16s` sites visited so consecutive
/// sites are always nearest neighbors.
fn serpentine(scale: usize) -> (SimBox, Vec<V3>) {
    let (nx, ny, nz) = (50 * scale, 40 * scale, 16 * scale);
    let a = (1.0 / DENSITY).powf(1.0 / 3.0);
    let bx = SimBox::orthogonal(nx as f64 * a, ny as f64 * a, nz as f64 * a);
    let mut x = Vec::with_capacity(nx * ny * nz);
    for cz in 0..nz {
        for wy in 0..ny {
            // Serpentine in y per z-layer.
            let cy = if cz % 2 == 0 { wy } else { ny - 1 - wy };
            for wx in 0..nx {
                // Serpentine in x per row.
                let cx = if wy % 2 == 0 { wx } else { nx - 1 - wx };
                x.push(Vec3::new(
                    (cx as f64 + 0.5) * a,
                    (cy as f64 + 0.5) * a,
                    (cz as f64 + 0.5) * a,
                ));
            }
        }
    }
    (bx, x)
}

/// Positions and box at replication factor `scale`.
pub fn positions(scale: usize) -> (SimBox, Vec<V3>) {
    serpentine(scale)
}

/// Builds the runnable deck.
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn build(scale: usize, seed: u64) -> Result<Simulation> {
    build_with(scale, seed, Threads::from_env())
}

/// Builds the runnable deck with an explicit threading knob (the WCA pair
/// kernel and neighbor builds thread; bonded terms stay serial).
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn build_with(scale: usize, seed: u64, threads: Threads) -> Result<Simulation> {
    let (bx, x) = positions(scale);
    let n = x.len();
    debug_assert_eq!(n % CHAIN_LENGTH, 0);
    let mut atoms = AtomStore::with_capacity(n);
    for (i, p) in x.into_iter().enumerate() {
        let molecule = (i / CHAIN_LENGTH) as u32;
        atoms.push_full(p, Vec3::zero(), 0, 0.0, 0.0, molecule);
    }
    atoms.set_masses(vec![1.0]);
    // Bond consecutive beads within each chain.
    for i in 0..n - 1 {
        if i / CHAIN_LENGTH == (i + 1) / CHAIN_LENGTH {
            atoms.add_bond(0, i as u32, (i + 1) as u32);
        }
    }
    // LAMMPS `special_bonds fene` = 0 1 1: exclude only 1-2 pairs.
    atoms.build_exclusions(true, false, false);
    let units = UnitSystem::lj();
    seed_velocities(&mut atoms, &units, TEMPERATURE, seed);
    let wca = LjCut::new(1, &[(0, 0, 1.0, 1.0)], CUTOFF)?;
    Simulation::builder(bx, atoms, units)
        .pair(crate::wrap_pair(wca, threads)?)
        .threads(threads)
        .bond(Box::new(FeneBond::kremer_grest()))
        .fix(Box::new(md_core::Langevin::new(
            TEMPERATURE,
            LANGEVIN_DAMP,
            seed ^ 0x9e37,
        )?))
        .skin(SKIN)
        .dt(DT)
        .thermo_every(100)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_size_and_chain_count() {
        let (_, x) = positions(1);
        assert_eq!(x.len(), 32_000);
        assert_eq!(x.len() / CHAIN_LENGTH, 320);
    }

    #[test]
    fn consecutive_beads_are_lattice_neighbors() {
        let (bx, x) = positions(1);
        let a = (1.0 / DENSITY).powf(1.0 / 3.0);
        for w in x.windows(2) {
            let d = bx.min_image(w[1], w[0]).norm();
            assert!(
                d < 1.01 * a,
                "serpentine step of length {d} (lattice constant {a})"
            );
        }
    }

    #[test]
    fn bonds_stay_inside_fene_well() {
        let mut sim = build(1, 5).unwrap();
        sim.run(30).unwrap();
        let atoms = sim.atoms();
        let bx = *sim.sim_box();
        let mut rmax = 0.0f64;
        for b in atoms.bonds() {
            let r = bx
                .min_image(atoms.x()[b.i as usize], atoms.x()[b.j as usize])
                .norm();
            rmax = rmax.max(r);
        }
        assert!(
            rmax < 1.5,
            "max bond length {rmax} must stay under R0 = 1.5"
        );
    }

    #[test]
    fn neighbor_count_matches_table2() {
        // Table 2: ~5 neighbors/atom for Chain (tiny WCA cutoff, 1-2 excluded).
        let sim = build(1, 5).unwrap();
        let nbr = sim.neighbor_list().unwrap().stats().neighbors_within_cutoff;
        assert!((2.0..=9.0).contains(&nbr), "neighbors/atom {nbr}");
    }

    #[test]
    fn bond_count_is_99_per_chain() {
        let sim = build(1, 5).unwrap();
        assert_eq!(sim.atoms().bonds().len(), 320 * 99);
    }
}
