//! Per-timestep time series in a bounded ring buffer.
//!
//! One [`StepSample`] per engine timestep: the step's per-task time split
//! (the eight Table-1 tasks), its total latency, and the engine counters the
//! paper's characterization needs step-resolved (neighbor rebuilds, ghost
//! counts, pair interactions, energy drift). The ring keeps the most recent
//! `capacity` steps so arbitrarily long runs stay bounded; the count of
//! evicted samples is retained so exporters can say what was dropped.

/// Number of task slots (mirrors `md_core::TaskKind::ALL`; md-observe is a
/// leaf crate, so the engine-side order is asserted by a test in md-core).
pub const NUM_TASKS: usize = 8;

/// Task labels in slot order — must match `md_core::TaskKind::ALL`.
pub const TASK_LABELS: [&str; NUM_TASKS] = [
    "Bond", "Comm", "Kspace", "Modify", "Neigh", "Other", "Output", "Pair",
];

/// One timestep's timing split and counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSample {
    /// Timestep index (engine step counter after the step ran).
    pub step: u64,
    /// Seconds spent in each task during this step, in
    /// [`TASK_LABELS`] order.
    pub task_seconds: [f64; NUM_TASKS],
    /// Wall-clock (or simulated) seconds for the whole step.
    pub wall_seconds: f64,
    /// Whether the neighbor list was rebuilt this step.
    pub neighbor_rebuild: bool,
    /// Ghost atoms communicated this step (0 for single-process runs).
    pub ghost_atoms: u64,
    /// Pair interactions evaluated this step (half-list pair count).
    pub pair_interactions: u64,
    /// Relative total-energy drift versus the first recorded step
    /// (`|E - E₀| / max(|E₀|, 1)`); `0.0` until thermo is sampled.
    pub energy_drift: f64,
}

impl Default for StepSample {
    fn default() -> Self {
        StepSample {
            step: 0,
            task_seconds: [0.0; NUM_TASKS],
            wall_seconds: 0.0,
            neighbor_rebuild: false,
            ghost_atoms: 0,
            pair_interactions: 0,
            energy_drift: 0.0,
        }
    }
}

/// Bounded ring of the most recent [`StepSample`]s.
#[derive(Debug, Clone)]
pub struct StepSeries {
    buf: Vec<StepSample>,
    capacity: usize,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    /// Total samples ever pushed (≥ `len()`).
    pushed: u64,
}

impl StepSeries {
    /// A series keeping at most `capacity` recent steps.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "step series needs capacity >= 1");
        StepSeries {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Appends a sample, evicting the oldest once full.
    pub fn push(&mut self, sample: StepSample) {
        if self.buf.len() < self.capacity {
            self.buf.push(sample);
        } else {
            self.buf[self.head] = sample;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total samples ever pushed (retained + evicted).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Samples evicted to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// Iterates retained samples oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &StepSample> + '_ {
        let (wrapped, fresh) = self.buf.split_at(self.head);
        fresh.iter().chain(wrapped.iter())
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<&StepSample> {
        if self.buf.is_empty() {
            None
        } else if self.head == 0 {
            self.buf.last()
        } else {
            Some(&self.buf[self.head - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(step: u64) -> StepSample {
        StepSample {
            step,
            ..StepSample::default()
        }
    }

    #[test]
    fn fills_then_wraps_keeping_most_recent() {
        let mut s = StepSeries::new(4);
        for i in 0..10 {
            s.push(sample(i));
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.total_pushed(), 10);
        assert_eq!(s.evicted(), 6);
        let steps: Vec<u64> = s.iter().map(|x| x.step).collect();
        assert_eq!(steps, vec![6, 7, 8, 9]);
        assert_eq!(s.last().unwrap().step, 9);
    }

    #[test]
    fn iterates_in_order_before_wrap() {
        let mut s = StepSeries::new(8);
        for i in 0..5 {
            s.push(sample(i));
        }
        let steps: Vec<u64> = s.iter().map(|x| x.step).collect();
        assert_eq!(steps, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.evicted(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = StepSeries::new(0);
    }
}
